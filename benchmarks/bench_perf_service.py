"""Concurrency gates for the scale-out service front end.

Two contracts from the scale-out PR:

* **Warm throughput** — :data:`CLIENTS` concurrent keep-alive clients
  hammering cache-warm ``POST /jobs`` must push at least
  :data:`MIN_WARM_SPEEDUP`x more requests/second through the sharded
  asyncio server than through the legacy threaded single-pool server.
* **Cold storm single-flight** — :data:`STORM_CLIENTS` clients split
  across **two separate server processes** sharing one cache directory
  all request the same cold key; the claim protocol must make exactly
  one process compute the artifact, and every client must receive
  byte-identical artifact responses.

Run standalone to measure and record ``BENCH_service.json``::

    PYTHONPATH=src python benchmarks/bench_perf_service.py [--quick]
"""

from __future__ import annotations

import argparse
import http.client
import json
import os
import platform
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional

from repro.service import AnalysisServer, AsyncAnalysisServer

MIN_WARM_SPEEDUP = 2.0
CLIENTS = 16            #: concurrent clients for the warm throughput gate
STORM_CLIENTS = 64      #: clients in the cold same-key storm
WARM_WORKLOADS = ["ora", "track", "ear", "doduc"]
BASELINE_PATH = Path(__file__).resolve().parent.parent / \
    "BENCH_service.json"

# a server process for the storm: same cache dir as its sibling, own
# pid and pools — only the disk claim files coordinate the two
_CHILD_SERVER = """\
import sys
from repro.service import AsyncAnalysisServer
srv = AsyncAnalysisServer(cache_dir=sys.argv[1], shards=2, inline=True)
srv.start()
print(srv.url, flush=True)
sys.stdin.read()
srv.stop()
"""


def _post(conn: http.client.HTTPConnection, body: bytes):
    conn.request("POST", "/jobs", body=body,
                 headers={"Content-Type": "application/json"})
    resp = conn.getresponse()
    return resp, resp.read()


def _hammer(host: str, port: int, n_requests: int,
            bodies: List[bytes]) -> float:
    """One client: ``n_requests`` warm POSTs over a keep-alive
    connection (reconnecting when the server closes it)."""
    conn = http.client.HTTPConnection(host, port, timeout=60)
    done = 0
    while done < n_requests:
        try:
            resp, data = _post(conn, bodies[done % len(bodies)])
            assert resp.status == 202, (resp.status, data)
            done += 1
            if resp.getheader("Connection", "").lower() == "close":
                conn.close()
                conn = http.client.HTTPConnection(host, port, timeout=60)
        except (http.client.HTTPException, ConnectionError, OSError):
            conn.close()
            conn = http.client.HTTPConnection(host, port, timeout=60)
    conn.close()
    return done


def _warm_throughput(server, n_requests: int) -> Dict:
    """Requests/second for CLIENTS concurrent warm clients."""
    bodies = [json.dumps({"workload": w}).encode()
              for w in WARM_WORKLOADS]
    # prewarm every key so the hammer only ever hits the cache
    conn = http.client.HTTPConnection(server.host, server.port,
                                      timeout=120)
    for body in bodies:
        resp, data = _post(conn, body)
        assert resp.status == 202, (resp.status, data)
    conn.close()

    threads = [threading.Thread(target=_hammer,
                                args=(server.host, server.port,
                                      n_requests, bodies))
               for _ in range(CLIENTS)]
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    seconds = time.perf_counter() - t0
    total = CLIENTS * n_requests
    return {"requests": total, "seconds": round(seconds, 3),
            "requests_per_sec": round(total / seconds, 1)}


def _storm_client(base: str, body: bytes, out: List, i: int) -> None:
    host, port = base.split("//", 1)[1].rsplit(":", 1)
    conn = http.client.HTTPConnection(host, int(port), timeout=120)
    try:
        resp, data = _post(conn, body)
        assert resp.status == 202, (resp.status, data)
        job = json.loads(data)["job"]
        deadline = time.time() + 120
        while job["state"] not in ("done", "failed"):
            assert time.time() < deadline, "storm job timed out"
            time.sleep(0.05)
            conn.request("GET", f"/jobs/{job['id']}")
            resp = conn.getresponse()
            job = json.loads(resp.read())["job"]
        assert job["state"] == "done", job
        conn.request("GET", f"/artifacts/{job['key']}")
        resp = conn.getresponse()
        artifact_bytes = resp.read()
        assert resp.status == 200
        out[i] = artifact_bytes
    finally:
        conn.close()


def _cold_storm(workload: str) -> Dict:
    """STORM_CLIENTS same-key clients against two server processes on
    one cache dir: exactly one computation, identical bytes for all."""
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    with tempfile.TemporaryDirectory(prefix="repro-storm-") as cache:
        children = [subprocess.Popen([sys.executable, "-c",
                                      _CHILD_SERVER, cache],
                                     stdin=subprocess.PIPE,
                                     stdout=subprocess.PIPE,
                                     env=env, text=True)
                    for _ in range(2)]
        try:
            bases = [c.stdout.readline().strip() for c in children]
            assert all(b.startswith("http") for b in bases), bases
            body = json.dumps({"workload": workload,
                               "options": {"salt": "storm"}}).encode()
            responses: List = [None] * STORM_CLIENTS
            threads = [threading.Thread(
                target=_storm_client,
                args=(bases[i % 2], body, responses, i))
                for i in range(STORM_CLIENTS)]
            t0 = time.perf_counter()
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            seconds = time.perf_counter() - t0
            assert all(r is not None for r in responses), \
                "storm client died"
            distinct = {bytes(r) for r in responses}
            assert len(distinct) == 1, \
                f"{len(distinct)} distinct artifact responses"
            computed = 0
            for base in bases:
                host, port = base.split("//", 1)[1].rsplit(":", 1)
                conn = http.client.HTTPConnection(host, int(port),
                                                  timeout=30)
                conn.request("GET", "/metrics")
                counters = json.loads(
                    conn.getresponse().read())["counters"]
                conn.close()
                computed += counters.get("artifacts_computed", 0)
            assert computed == 1, \
                f"storm computed the key {computed} times, want 1"
        finally:
            for child in children:
                child.stdin.close()
                child.wait(timeout=30)
    return {"clients": STORM_CLIENTS, "server_processes": 2,
            "seconds": round(seconds, 3), "computations": computed,
            "bit_identical": True}


def run_bench(n_requests: int = 100,
              storm_workload: str = "ora") -> Dict:
    with tempfile.TemporaryDirectory(prefix="repro-bench-") as cache:
        with AnalysisServer(cache_dir=cache, inline=True) as server:
            single = _warm_throughput(server, n_requests)
    with tempfile.TemporaryDirectory(prefix="repro-bench-") as cache:
        with AsyncAnalysisServer(cache_dir=cache, inline=True,
                                 shards=4) as server:
            sharded = _warm_throughput(server, n_requests)

    speedup = sharded["requests_per_sec"] / single["requests_per_sec"]
    assert speedup >= MIN_WARM_SPEEDUP, (
        f"sharded warm throughput only {speedup:.2f}x the single-pool "
        f"server at {CLIENTS} clients "
        f"(contract: >= {MIN_WARM_SPEEDUP}x)")

    storm = _cold_storm(storm_workload)

    return {
        "benchmark": "scale-out service concurrency gates",
        "units": "warm POST /jobs requests per second",
        "host": {"python": platform.python_version(),
                 "machine": platform.machine(),
                 "cpus": os.cpu_count()},
        "clients": CLIENTS,
        "requests_per_client": n_requests,
        "single_pool": single,
        "sharded": sharded,
        "warm_speedup": round(speedup, 2),
        "contract_min_speedup": MIN_WARM_SPEEDUP,
        "cold_storm": storm,
    }


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="fewer warm requests per client (CI mode)")
    ap.add_argument("--no-write", action="store_true",
                    help="don't record BENCH_service.json")
    args = ap.parse_args(argv)
    result = run_bench(n_requests=30 if args.quick else 100)
    print(json.dumps(result, indent=2))
    if not args.no_write:
        BASELINE_PATH.write_text(json.dumps(result, indent=2) + "\n")
        print(f"wrote {BASELINE_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
