"""Real-parallel-execution benchmark: measured speedup on actual cores.

A DOALL-heavy inline workload (a sequential outer stepping loop around
a large parallel inner loop doing SQRT/EXP/COS work with a scalar
reduction) is executed by the sequential transpiled engine and by the
par_backend at 1, 2, and 4 workers.  The bench verifies bit-parity on
every run, reports measured wall-clock speedups next to the cost
model's predictions for the same counts, and asserts the speedup
contract — but **only on hosts with at least**
:data:`MIN_CORES_FOR_SPEEDUP` **free cores**: on a 1-core CI box the
measured numbers are recorded for the table yet cannot gate (worker
processes would just time-slice one core).  The sequential ops/sec
throughput always gates against the committed baseline.

Run standalone to (re)generate the committed baseline::

    PYTHONPATH=src python benchmarks/bench_perf_parallel.py

which writes ``BENCH_parallel.json`` at the repo root —
``scripts/perf_check.py --only parallel`` compares fresh numbers
against that file.
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path
from typing import Dict, List

from repro.ir import build_program
from repro.parallelize import Parallelizer
from repro.runtime import run_program
from repro.runtime.par_backend import ParallelRunner, analyze_offloads

WORKER_COUNTS = (1, 2, 4)
#: measured-speedup contract at 4 workers (enforced on capable hosts)
MIN_PARALLEL_SPEEDUP = 1.5
MIN_CORES_FOR_SPEEDUP = 4
REPEATS = 2
BASELINE_PATH = Path(__file__).resolve().parent.parent / \
    "BENCH_parallel.json"

#: The workload: outer stepping loop is sequential (it PRINTs, and its
#: scale factor chains across steps); the inner loop is a classic DOALL
#: with a private inner accumulation loop, a PARALLEL array write, and
#: a scalar sum reduction.  Heavy per-iteration math amortizes the
#: dispatch round-trips, like the paper's coarse-grained loops.
SOURCE = """
      PROGRAM pbench
      COMMON /st/ s, d
      COMMON /fld/ c(4096)
      d = 1.0
      DO 30 it = 1, 3
        s = 0.0
        DO 20 i = 1, 4096
          t = 0.0
          DO 10 k = 1, 64
            t = t + SQRT(i * d + k) * COS(k * 0.5) + EXP(-k * 0.01)
10        CONTINUE
          c(i) = t
          s = s + t
20      CONTINUE
        d = d + s * 0.0000001
        PRINT *, s
30    CONTINUE
      END
"""


def _build():
    prog = build_program(SOURCE, "pbench")
    plan = Parallelizer(prog).plan()
    return prog, plan


def host_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:
        return os.cpu_count() or 1


def run_bench() -> Dict:
    prog, plan = _build()
    offloads, rejects = analyze_offloads(prog, plan)
    assert offloads, f"bench loop failed to offload: {rejects}"

    from repro.runtime.transpile import load_module
    run = load_module(prog).namespace["run"]
    seq = run_program(prog, engine="transpiled")
    seq_wall = float("inf")
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        out = run(())
        seq_wall = min(seq_wall, time.perf_counter() - t0)
        assert out == seq.outputs

    workers: Dict[str, Dict] = {}
    parity = True
    for w in WORKER_COUNTS:
        runner_wall = float("inf")
        res = None
        for _ in range(REPEATS):
            runner = ParallelRunner(prog, plan, workers=w)
            t0 = time.perf_counter()
            res = runner.execute(())
            runner_wall = min(runner_wall,
                              time.perf_counter() - t0)
        ok = (res.outputs == seq.outputs and res.ops == seq.ops)
        parity = parity and ok
        workers[str(w)] = {
            "seconds": round(runner_wall, 4),
            "speedup": round(seq_wall / runner_wall, 3),
            "dispatches": res.dispatches,
            "parity": ok,
        }

    from repro.runtime import ALPHASERVER_8400, ParallelExecutor
    ex = ParallelExecutor(prog, plan, ALPHASERVER_8400,
                          engine="transpiled")
    predicted = {str(p): round(ex.account(p).speedup, 3)
                 for p in WORKER_COUNTS}

    return {
        "benchmark": "real parallel execution (par_backend)",
        "units": "wall-clock speedup over the sequential transpiled "
                 "engine",
        "host": {"python": platform.python_version(),
                 "machine": platform.machine(),
                 "cores": host_cores()},
        "seq": {"seconds": round(seq_wall, 4), "ops": seq.ops,
                "ops_per_sec": round(seq.ops / seq_wall, 1)},
        "workers": workers,
        "predicted": predicted,
        "parity": parity,
    }


def _rows(report: Dict) -> List[List]:
    return [[w, f"{r['seconds']:.3f}s", f"{r['speedup']:.2f}x",
             f"{report['predicted'][w]:.2f}x",
             "ok" if r["parity"] else "DIVERGED"]
            for w, r in report["workers"].items()]


def test_parallel_backend_speedup(benchmark):
    from conftest import once, print_table
    report = once(benchmark, run_bench)
    print_table("real parallel execution (measured vs predicted)",
                ["workers", "wall", "measured", "predicted", "parity"],
                _rows(report))
    assert report["parity"], "parallel execution diverged from sequential"
    pred = [report["predicted"][str(p)] for p in WORKER_COUNTS]
    assert pred == sorted(pred), (
        f"predicted speedups not monotonic over {WORKER_COUNTS}: {pred}")
    if report["host"]["cores"] >= MIN_CORES_FOR_SPEEDUP:
        sp = report["workers"]["4"]["speedup"]
        assert sp >= MIN_PARALLEL_SPEEDUP, (
            f"measured speedup {sp:.2f}x at 4 workers below the "
            f"{MIN_PARALLEL_SPEEDUP}x contract")
        measured = [report["workers"][str(p)]["speedup"]
                    for p in WORKER_COUNTS]
        assert measured[1] >= measured[0] * 0.9 and \
            measured[2] >= measured[1] * 0.9, (
            f"measured speedups not (near-)monotonic: {measured}")


if __name__ == "__main__":
    fresh = run_bench()
    BASELINE_PATH.write_text(json.dumps(fresh, indent=2) + "\n")
    print(json.dumps(fresh, indent=2))
    print(f"baseline written: {BASELINE_PATH}")
