"""Ablations for the slicing design choices of sections 3.5-3.7.

* **context sensitivity** (section 3.5.1): on the paper's own Fig 3-3
  shape, a context-insensitive traversal (simulated by unioning every
  call site's actuals) picks up unrealizable-path statements that the
  context-sensitive slicer provably excludes,
* **slice summaries + hierarchical sets** (sections 3.5.2/3.5.4): the
  memoized DAG representation makes repeated slice queries dramatically
  cheaper than first-query cost, and shares nodes across slices.
"""

import time

from conftest import once, print_table
from repro.ir import build_program
from repro.slicing import Slicer

MANY_CALLERS = "\n".join(
    ["      PROGRAM main", "      COMMON /g/ acc"]
    + [f"      x{k} = {k}.0\n      CALL use(x{k})" for k in range(1, 9)]
    + ["      y = acc", "      PRINT *, y", "      END", "",
       "      SUBROUTINE use(v)", "      COMMON /g/ acc",
       "      acc = acc + v", "      END"])


def test_ablate_context_sensitivity(benchmark):
    def compute():
        prog = build_program(MANY_CALLERS, "ctx")
        slicer = Slicer(prog)
        main = prog.procedure("main")
        from repro.ir.statements import AssignStmt
        y_assign = [s for s in main.statements()
                    if isinstance(s, AssignStmt)
                    and s.target.symbol.name == "y"][0]
        acc = main.symbols.lookup("acc")
        cs = slicer.slice_of_use(y_assign, acc, kind="data")
        # context-insensitive approximation: resolve EVERY exposed formal
        # with the actuals of EVERY call site (the unrealizable paths)
        use = prog.procedure("use")
        call_sites = main.call_sites()
        ci_lines = set(cs.lines())
        for call in call_sites:
            res = slicer.slice_of_value(
                slicer.issa.exit_versions["use"][
                    id(use.symbols.lookup("acc"))],
                kind="data", context=[call])
            ci_lines |= res.lines()
        return cs, ci_lines

    cs, ci_lines = once(benchmark, compute)
    print_table("Context sensitivity ablation",
                ["variant", "slice lines"],
                [["context-sensitive", cs.line_count()],
                 ["context-insensitive (simulated)", len(ci_lines)]])
    # context-sensitive slicing through ALL sites here genuinely needs all
    # the x assignments (every call reaches acc) — so sizes match on this
    # program; the invariant that matters: CS never exceeds CI.
    assert cs.line_count() <= len(ci_lines)


def test_ablate_slice_summaries(benchmark):
    """Memoized summaries make the second query of a big program's slices
    near-free (section 3.5.2's redundancy argument)."""
    def compute():
        from repro.workloads import get
        prog = get("hydro").build()
        slicer = Slicer(prog)
        from repro.ir.statements import AssignStmt
        targets = [s for s in prog.procedure("vsetuv").statements()
                   if isinstance(s, AssignStmt)][:6]
        t0 = time.perf_counter()
        first = [slicer.slice_of_use(s, s.target.symbol, kind="program")
                 for s in targets]
        cold = time.perf_counter() - t0
        t0 = time.perf_counter()
        second = [slicer.slice_of_use(s, s.target.symbol, kind="program")
                  for s in targets]
        warm = time.perf_counter() - t0
        nodes = sum(r.line_count() for r in first)
        return cold, warm, nodes, first, second

    cold, warm, nodes, first, second = once(benchmark, compute)
    print_table("Slice summary memoization",
                ["query", "seconds"],
                [["cold (builds summaries)", f"{cold:.4f}"],
                 ["warm (memoized)", f"{warm:.4f}"]])
    assert [r.stmt_ids for r in first] == [r.stmt_ids for r in second]
    assert warm < cold / 5 or warm < 0.01
