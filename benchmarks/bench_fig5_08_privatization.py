"""Fig 5-8: dead privatizable arrays, improved parallel loops, and the
resulting 4-processor speedup per liveness variant.

Paper shape: base (no array liveness) < flow-insensitive <= 1-bit <= full
in loops parallelized; hydro improves 2.4 -> 3.3, wave5's new loops are
too small to change its speedup, hydro2d gains nothing (no privatizable
arrays).
"""

from conftest import once, print_table
from repro.analysis import FLOW_INSENSITIVE, FULL, ONE_BIT
from repro.parallelize import Parallelizer
from repro.runtime import ALPHASERVER_8400, ParallelExecutor
from repro.workloads import CHAPTER5

VARIANTS = [("base", None), ("flow-insens", FLOW_INSENSITIVE),
            ("1-bit", ONE_BIT), ("full", FULL)]


def test_fig5_08(benchmark):
    def compute():
        table = {}
        for w in CHAPTER5:
            if w.name == "flo88":       # measured on its own fig (5-12)
                continue
            prog = w.build()
            per = {}
            base_parallel = None
            for label, variant in VARIANTS:
                plan = Parallelizer(
                    prog, use_liveness=variant is not None,
                    liveness_variant=variant or FULL).plan()
                parallel = {l.name for l in plan.parallel_loops()}
                dead_priv = sum(
                    1 for lp in plan.loops.values()
                    for vp in lp.vars.values()
                    if vp.status == "private" and not vp.is_scalar)
                res = ParallelExecutor(prog, plan, ALPHASERVER_8400,
                                       inputs=w.inputs).results_for([4])[4]
                if base_parallel is None:
                    base_parallel = parallel
                per[label] = dict(dead_priv=dead_priv,
                                  gained=len(parallel - base_parallel),
                                  speedup=res.speedup)
            table[w.name] = per
        return table

    table = once(benchmark, compute)

    rows = []
    for name, per in table.items():
        for label, _ in VARIANTS:
            e = per[label]
            rows.append([name, label, e["dead_priv"], e["gained"],
                         f"{e['speedup']:.2f}"])
    print_table("Fig 5-8: privatization with liveness (4 processors)",
                ["program", "variant", "dead private arrays",
                 "loops gained", "speedup(4p)"], rows)

    for name, per in table.items():
        sp = [per[l]["speedup"] for l, _ in VARIANTS]
        gained = [per[l]["gained"] for l, _ in VARIANTS]
        # more precise variants never lose loops or speedup materially
        assert gained[0] <= gained[1] <= gained[2] + 1 and \
            gained[1] <= gained[3]
        assert sp[3] >= sp[0] - 0.05
    # hydro is the paper's showcase: full liveness gains loops and speedup
    assert table["hydro"]["full"]["gained"] >= 1
    assert table["hydro"]["full"]["speedup"] > \
        table["hydro"]["base"]["speedup"]
    # hydro2d: dead variables but no privatizable arrays -> no gain
    assert table["hydro2d"]["full"]["gained"] == 0
