"""Fig 4-1: program information and results of automatic parallelization.

Paper row per application: description, data set, lines, coverage,
granularity, 8-processor speedup.  Shape: coverage is already high
(70-90 %) yet speedups stay between 1.0 and 2.7 — coverage alone does not
deliver performance.
"""

from conftest import once, print_table

NAMES = ["mdg", "arc3d", "hydro", "flo88"]


def test_fig4_01(benchmark, ch4):
    def compute():
        return {name: ch4(name) for name in NAMES}

    data = once(benchmark, compute)

    rows = []
    for name in NAMES:
        d = data[name]
        paper = d.workload.paper
        rows.append([
            name,
            d.program.total_lines(),
            f"{d.auto_coverage:.0%} (paper {paper['auto_coverage']:.0%})",
            f"{d.auto_granularity:.4f} ms",
            f"{d.auto_by_procs[8].speedup:.2f} "
            f"(paper {paper['auto_speedup_8']:.1f})",
        ])
    print_table("Fig 4-1: automatic parallelization",
                ["program", "lines", "coverage", "granularity",
                 "speedup(8p)"], rows)

    for name in NAMES:
        d = data[name]
        # respectable coverage...
        assert d.auto_coverage > 0.6
        # ...but modest speedup, never above ~3 (paper max: 2.7)
        assert d.auto_by_procs[8].speedup < 3.2
    # mdg gets essentially nothing from automatic parallelization
    assert data["mdg"].auto_by_procs[8].speedup < 1.2
    # hydro profits most among the AlphaServer codes (paper: 2.7)
    assert data["hydro"].auto_by_procs[8].speedup > \
        data["arc3d"].auto_by_procs[8].speedup > \
        data["mdg"].auto_by_procs[8].speedup
