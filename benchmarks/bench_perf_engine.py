"""Execution-engine shootout: closure-compiled vs tree-walking oracle.

Times all three engines end-to-end (``run_program`` wall clock, which
for the compiled engine *includes* the closure-compilation step and for
the transpiled engine the codegen-or-cache-hit step) on the three
workloads with the largest dynamic op counts, reports ops/sec and the
speedups, and asserts the tentpole contracts:

* the compiled engine is at least ``MIN_SPEEDUP``x faster on mdg,
* the transpiled engine is at least ``MIN_TRANSPILED_SPEEDUP``x the
  compiled engine's ops/sec on mdg (repeats after the first hit the
  codegen cache, matching the warm service path),
* all engines produce bit-identical outputs and op counts.

Run standalone to (re)generate the committed baseline::

    PYTHONPATH=src python benchmarks/bench_perf_engine.py

which writes ``BENCH_engine.json`` at the repo root —
``scripts/perf_check.py`` compares fresh numbers against that file.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path
from typing import Dict, List

from repro.runtime import run_program
from repro.workloads import get

WORKLOADS = ("mdg", "flo88", "hydro2d")
MIN_SPEEDUP = 2.0
#: transpiled-over-compiled ops/sec contract on the plain-run path
MIN_TRANSPILED_SPEEDUP = 10.0
#: repeats per engine; the best (minimum) time is kept
REPEATS = {"tree": 2, "compiled": 3, "transpiled": 3}
BASELINE_PATH = Path(__file__).resolve().parent.parent / "BENCH_engine.json"


def _time_engine(name: str, engine: str) -> Dict:
    """Best-of-N wall-clock for one workload under one engine."""
    w = get(name)
    best = float("inf")
    ops = outputs = None
    for _ in range(REPEATS[engine]):
        program = w.build()
        t0 = time.perf_counter()
        eng = run_program(program, w.inputs, engine=engine)
        best = min(best, time.perf_counter() - t0)
        ops, outputs = eng.ops, eng.outputs
    return {"seconds": best, "ops": ops,
            "ops_per_sec": ops / best if best else 0.0,
            "outputs": [float(v) for v in outputs]}


def run_bench(workloads=WORKLOADS) -> Dict:
    """Measure every workload under both engines; verify parity inline."""
    results: Dict[str, Dict] = {}
    for name in workloads:
        tree = _time_engine(name, "tree")
        comp = _time_engine(name, "compiled")
        trans = _time_engine(name, "transpiled")
        assert comp["ops"] == tree["ops"] == trans["ops"], (
            f"{name}: op-count drift tree={tree['ops']} "
            f"compiled={comp['ops']} transpiled={trans['ops']}")
        assert comp["outputs"] == tree["outputs"] == trans["outputs"], (
            f"{name}: output drift between engines")
        results[name] = {
            "ops": tree["ops"],
            "tree": {"seconds": round(tree["seconds"], 4),
                     "ops_per_sec": round(tree["ops_per_sec"], 1)},
            "compiled": {"seconds": round(comp["seconds"], 4),
                         "ops_per_sec": round(comp["ops_per_sec"], 1)},
            "transpiled": {"seconds": round(trans["seconds"], 4),
                           "ops_per_sec": round(trans["ops_per_sec"], 1)},
            "speedup": round(comp["ops_per_sec"] / tree["ops_per_sec"], 2),
            "transpiled_speedup": round(
                trans["ops_per_sec"] / comp["ops_per_sec"], 2),
        }
    return {
        "benchmark": "execution-engine shootout",
        "units": "interpreter ops per wall-clock second",
        "host": {"python": platform.python_version(),
                 "machine": platform.machine()},
        "workloads": results,
    }


def _rows(report: Dict) -> List[List]:
    return [[name, r["ops"],
             f"{r['tree']['ops_per_sec'] / 1e6:.2f}M",
             f"{r['compiled']['ops_per_sec'] / 1e6:.2f}M",
             f"{r['transpiled']['ops_per_sec'] / 1e6:.2f}M",
             f"{r['speedup']:.2f}x",
             f"{r['transpiled_speedup']:.2f}x"]
            for name, r in report["workloads"].items()]


def test_compiled_engine_speedup(benchmark):
    from conftest import once, print_table
    report = once(benchmark, run_bench)
    print_table("engine ops/sec (tree vs compiled vs transpiled)",
                ["workload", "ops", "tree", "compiled", "transpiled",
                 "comp/tree", "trans/comp"],
                _rows(report))
    for name, r in report["workloads"].items():
        assert r["speedup"] > 1.0, f"{name}: compiled engine not faster"
    assert report["workloads"]["mdg"]["speedup"] >= MIN_SPEEDUP, (
        f"mdg speedup {report['workloads']['mdg']['speedup']} "
        f"below the {MIN_SPEEDUP}x contract")


def test_transpiled_engine_speedup(benchmark):
    from conftest import once, print_table
    report = once(benchmark, run_bench)
    print_table("engine ops/sec (tree vs compiled vs transpiled)",
                ["workload", "ops", "tree", "compiled", "transpiled",
                 "comp/tree", "trans/comp"],
                _rows(report))
    for name, r in report["workloads"].items():
        assert r["transpiled_speedup"] > 1.0, (
            f"{name}: transpiled engine not faster than compiled")
    mdg = report["workloads"]["mdg"]["transpiled_speedup"]
    assert mdg >= MIN_TRANSPILED_SPEEDUP, (
        f"mdg transpiled/compiled speedup {mdg} below the "
        f"{MIN_TRANSPILED_SPEEDUP}x contract")


def main() -> None:
    report = run_bench()
    BASELINE_PATH.write_text(json.dumps(report, indent=2) + "\n")
    width = max(len(n) for n in report["workloads"])
    print(f"wrote {BASELINE_PATH}")
    for name, r in report["workloads"].items():
        print(f"  {name:{width}s}  ops={r['ops']:>9}  "
              f"tree={r['tree']['ops_per_sec'] / 1e6:5.2f}M/s  "
              f"compiled={r['compiled']['ops_per_sec'] / 1e6:5.2f}M/s  "
              f"transpiled={r['transpiled']['ops_per_sec'] / 1e6:5.2f}M/s  "
              f"speedup={r['speedup']:.2f}x  "
              f"transpiled_speedup={r['transpiled_speedup']:.2f}x")
    assert report["workloads"]["mdg"]["speedup"] >= MIN_SPEEDUP
    assert report["workloads"]["mdg"]["transpiled_speedup"] >= \
        MIN_TRANSPILED_SPEEDUP


if __name__ == "__main__":
    main()
