"""Execution-engine shootout: closure-compiled vs tree-walking oracle.

Times both engines end-to-end (``run_program`` wall clock, which for the
compiled engine *includes* the closure-compilation step) on the three
workloads with the largest dynamic op counts, reports ops/sec and the
speedup, and asserts the tentpole contract:

* the compiled engine is at least ``MIN_SPEEDUP``x faster on mdg,
* both engines produce bit-identical outputs and op counts.

Run standalone to (re)generate the committed baseline::

    PYTHONPATH=src python benchmarks/bench_perf_engine.py

which writes ``BENCH_engine.json`` at the repo root —
``scripts/perf_check.py`` compares fresh numbers against that file.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path
from typing import Dict, List

from repro.runtime import run_program
from repro.workloads import get

WORKLOADS = ("mdg", "flo88", "hydro2d")
MIN_SPEEDUP = 2.0
#: repeats per engine; the best (minimum) time is kept
REPEATS = {"tree": 2, "compiled": 3}
BASELINE_PATH = Path(__file__).resolve().parent.parent / "BENCH_engine.json"


def _time_engine(name: str, engine: str) -> Dict:
    """Best-of-N wall-clock for one workload under one engine."""
    w = get(name)
    best = float("inf")
    ops = outputs = None
    for _ in range(REPEATS[engine]):
        program = w.build()
        t0 = time.perf_counter()
        eng = run_program(program, w.inputs, engine=engine)
        best = min(best, time.perf_counter() - t0)
        ops, outputs = eng.ops, eng.outputs
    return {"seconds": best, "ops": ops,
            "ops_per_sec": ops / best if best else 0.0,
            "outputs": [float(v) for v in outputs]}


def run_bench(workloads=WORKLOADS) -> Dict:
    """Measure every workload under both engines; verify parity inline."""
    results: Dict[str, Dict] = {}
    for name in workloads:
        tree = _time_engine(name, "tree")
        comp = _time_engine(name, "compiled")
        assert comp["ops"] == tree["ops"], (
            f"{name}: op-count drift tree={tree['ops']} "
            f"compiled={comp['ops']}")
        assert comp["outputs"] == tree["outputs"], (
            f"{name}: output drift between engines")
        results[name] = {
            "ops": tree["ops"],
            "tree": {"seconds": round(tree["seconds"], 4),
                     "ops_per_sec": round(tree["ops_per_sec"], 1)},
            "compiled": {"seconds": round(comp["seconds"], 4),
                         "ops_per_sec": round(comp["ops_per_sec"], 1)},
            "speedup": round(comp["ops_per_sec"] / tree["ops_per_sec"], 2),
        }
    return {
        "benchmark": "execution-engine shootout",
        "units": "interpreter ops per wall-clock second",
        "host": {"python": platform.python_version(),
                 "machine": platform.machine()},
        "workloads": results,
    }


def _rows(report: Dict) -> List[List]:
    return [[name, r["ops"],
             f"{r['tree']['ops_per_sec'] / 1e6:.2f}M",
             f"{r['compiled']['ops_per_sec'] / 1e6:.2f}M",
             f"{r['speedup']:.2f}x"]
            for name, r in report["workloads"].items()]


def test_compiled_engine_speedup(benchmark):
    from conftest import once, print_table
    report = once(benchmark, run_bench)
    print_table("engine ops/sec (tree vs compiled)",
                ["workload", "ops", "tree", "compiled", "speedup"],
                _rows(report))
    for name, r in report["workloads"].items():
        assert r["speedup"] > 1.0, f"{name}: compiled engine not faster"
    assert report["workloads"]["mdg"]["speedup"] >= MIN_SPEEDUP, (
        f"mdg speedup {report['workloads']['mdg']['speedup']} "
        f"below the {MIN_SPEEDUP}x contract")


def main() -> None:
    report = run_bench()
    BASELINE_PATH.write_text(json.dumps(report, indent=2) + "\n")
    width = max(len(n) for n in report["workloads"])
    print(f"wrote {BASELINE_PATH}")
    for name, r in report["workloads"].items():
        print(f"  {name:{width}s}  ops={r['ops']:>9}  "
              f"tree={r['tree']['ops_per_sec'] / 1e6:5.2f}M/s  "
              f"compiled={r['compiled']['ops_per_sec'] / 1e6:5.2f}M/s  "
              f"speedup={r['speedup']:.2f}x")
    assert report["workloads"]["mdg"]["speedup"] >= MIN_SPEEDUP


if __name__ == "__main__":
    main()
