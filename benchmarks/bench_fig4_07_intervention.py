"""Fig 4-7: number of loops requiring user intervention.

Paper rows per application (split inter/intra-procedural): executed,
sequential, important, important-without-dynamic-dependence,
user-parallelized, remaining important.  Shape: the compiler handles ~80 %
of loops; the dynamic filter reduces the rest to a handful; the user
parallelizes most of those; almost nothing important remains.
"""

from conftest import once, print_table

NAMES = ["mdg", "arc3d", "hydro", "flo88"]


def _split(loops, pred):
    inter = sum(1 for l in loops if l.contains_call() and pred(l))
    intra = sum(1 for l in loops if not l.contains_call() and pred(l))
    return inter, intra


def test_fig4_07(benchmark, ch4):
    data = once(benchmark, lambda: {n: ch4(n) for n in NAMES})

    totals = {}
    rows = []
    for name in NAMES:
        d = data[name]
        guru = d.auto_guru
        executed = [r.loop for r in guru.executed_reports()]
        sequential = [r.loop for r in guru.sequential_reports()]
        important = [r.loop for r in guru.targets()]
        no_dyn = [r.loop for r in guru.targets_without_dynamic_deps()]
        user_par = [l for l in important
                    if d.user_plan.is_parallel(l)
                    and not d.auto_plan.is_parallel(l)]
        remaining = [r.loop for r in d.user_guru.targets()]
        totals[name] = dict(executed=len(executed),
                            sequential=len(sequential),
                            important=len(important),
                            no_dyn=len(no_dyn), user=len(user_par),
                            remaining=len(remaining))
        for label, loops in (("executed", executed),
                             ("sequential", sequential),
                             ("important", important),
                             ("imp, no dyn dep", no_dyn),
                             ("user-parallelized", user_par),
                             ("remaining important", remaining)):
            inter, intra = _split(loops, lambda l: True)
            rows.append([name, label, inter, intra, inter + intra])
    print_table("Fig 4-7: loops requiring user intervention",
                ["program", "row", "inter", "intra", "total"], rows)

    for name in NAMES:
        t = totals[name]
        # the funnel narrows monotonically
        assert t["executed"] >= t["sequential"] >= t["important"] \
            >= t["no_dyn"] >= t["user"]
        # compiler parallelizes a majority of executed loops
        assert t["sequential"] <= 0.65 * t["executed"]
        # almost nothing important remains after user input
        assert t["remaining"] <= max(1, t["important"] - t["user"])
    # the user parallelizes a meaningful number of loops overall
    assert sum(t["user"] for t in totals.values()) >= 10
    # and a couple of attempts fail program-wide (paper: 2 remaining)
    assert sum(t["remaining"] for t in totals.values()) <= 4
