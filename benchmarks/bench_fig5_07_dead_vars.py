"""Fig 5-7: loops, modified variables, and % dead at loop exits.

Paper shape: the full algorithm finds the most dead variables, the 1-bit
variant is close behind but strictly weaker somewhere, and the
flow-insensitive variant trails badly (hydro 47/70/72 %, wave5 3/22/32 %,
hydro2d 1/5/18 %...).
"""

from conftest import once, print_table
from repro.analysis import (ArrayDataFlow, FLOW_INSENSITIVE, FULL, ONE_BIT,
                            dead_fraction_per_program)
from repro.workloads import CHAPTER5


def test_fig5_07(benchmark):
    def compute():
        table = {}
        for w in CHAPTER5:
            df = ArrayDataFlow(w.build())
            row = {}
            for variant in (FLOW_INSENSITIVE, ONE_BIT, FULL):
                loops, mod, dead = dead_fraction_per_program(df, variant)
                row[variant] = (loops, mod, dead)
            table[w.name] = row
        return table

    table = once(benchmark, compute)

    rows = []
    for name, row in table.items():
        loops, mod, _ = row[FULL]
        pct = {v: (f"{row[v][2]}/{mod} = "
                   f"{100 * row[v][2] / mod:.0f}%") if mod else "-"
               for v in (FLOW_INSENSITIVE, ONE_BIT, FULL)}
        paper = next(w for w in CHAPTER5 if w.name == name).paper.get(
            "dead_pct", {})
        rows.append([name, loops, mod,
                     pct[FLOW_INSENSITIVE], pct[ONE_BIT], pct[FULL],
                     "/".join(f"{100*v:.0f}" for v in paper.values())
                     if paper else "-"])
    print_table("Fig 5-7: modified variables dead at loop exits",
                ["program", "loops", "mod vars", "flow-insens", "1-bit",
                 "full", "paper FI/1b/full %"], rows)

    strict_fi, strict_ob = 0, 0
    for name, row in table.items():
        fi, ob, fu = (row[v][2] for v in (FLOW_INSENSITIVE, ONE_BIT, FULL))
        assert fi <= ob <= fu, name
        strict_fi += fu > fi
        strict_ob += fu > ob
    # the precision ladder has real gaps on most programs
    assert strict_fi >= 4
    assert strict_ob >= 2
