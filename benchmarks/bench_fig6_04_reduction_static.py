"""Fig 6-4: impact of reductions — static measurements.

Paper rows: per program, how many loops parallelize with reduction
recognition off vs on.  Shape: reduction recognition strictly adds
parallel loops on most programs ("parallelizing reductions makes a
tremendous difference in the amount of computation that can be
parallelized") and never removes any.
"""

from conftest import once, print_table
from repro.parallelize import Parallelizer
from repro.workloads import nas_perfect, get

PROGRAMS = [w.name for w in nas_perfect.WORKLOADS] + ["bdna", "mdg"]


def test_fig6_04(benchmark):
    def compute():
        table = {}
        for name in PROGRAMS:
            prog = get(name).build()
            on = Parallelizer(prog, use_reductions=True).plan()
            off = Parallelizer(prog, use_reductions=False).plan()
            on_names = {l.name for l in on.parallel_loops()}
            off_names = {l.name for l in off.parallel_loops()}
            table[name] = (len(prog.all_loops()), off_names, on_names)
        return table

    table = once(benchmark, compute)
    rows = [[name, total, len(off), len(on), len(on - off)]
            for name, (total, off, on) in table.items()]
    print_table("Fig 6-4: parallel loops without/with reduction analysis",
                ["program", "loops", "parallel w/o red",
                 "parallel w/ red", "gained"], rows)

    gained_programs = 0
    for name, (total, off, on) in table.items():
        assert off <= on, f"{name}: reduction analysis removed loops!"
        if on - off:
            gained_programs += 1
    # the paper finds reductions matter on 12 programs across the suites
    assert gained_programs >= 10
    # the signature cases
    _, off, on = table["bdna"]
    assert {"actfor/240", "scatter/60"} <= on - off
    _, off, on = table["spec77"]
    assert "spec77/100" in on - off       # interprocedural reduction
