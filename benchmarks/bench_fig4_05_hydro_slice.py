"""Fig 4-5 / 4-6: the vsetuv/85 slice and hydro's memory-behaviour story.

Fig 4-5 presents the slice around dkrc's conditional bounds (k1 from
k_lower(l), the conditional k1p1 bump).  Fig 4-6 contrasts vsetuv (column
access) and vqterm (row access) on the same duac array — the source of
the data-reshuffling overhead that keeps hydro's user speedup at 4.3.
"""

from conftest import once
from repro.viz import render_slice


def test_fig4_05(benchmark, ch4):
    def compute():
        d = ch4("hydro")
        loop = d.program.loop("vsetuv/85")
        return d, loop, d.auto_slices[loop.stmt_id]

    d, loop, slices = once(benchmark, compute)
    assert slices
    by_var = {s.var.display_name: s for s in slices}
    assert "dkrc" in by_var or "aif3" in by_var
    ds = by_var.get("dkrc") or by_var["aif3"]

    print("\n=== Fig 4-5: slice for the dkrc dependence in vsetuv/85 ===")
    print(render_slice(d.program, ds.program_slice_cr, around_loop=loop))

    lines = {ln for _, ln in ds.program_slice_cr.lines()}
    src = d.program.source_text.splitlines()
    joined = "\n".join(src[ln - 1] for ln in sorted(lines))
    # the slice surfaces the loop-variant bounds the user must reason about
    assert "klo(l)" in joined or "k1p1" in joined or "k1" in joined

    # Fig 4-6's point, shape-checked: vsetuv and vqterm both touch duac,
    # with transposed index roles
    vsetuv_src = "\n".join(l for l in src if "duac(k,l)" in l)
    vqterm_like = "\n".join(l for l in src if "duac(k,l) * 0.5" in l)
    assert vsetuv_src
    assert vqterm_like        # vqterm reads duac rows
