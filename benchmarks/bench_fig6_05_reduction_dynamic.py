"""Fig 6-5: coverage and granularity on the programs where parallel
reductions have an impact — dynamic measurements.

Shape: with reduction recognition, the affected programs reach high
parallelism coverage (the paper's impacted set all exceed ~50 %, many
90 %+); without it coverage collapses.
"""

from conftest import once, print_table
from repro.explorer.metrics import (parallel_coverage,
                                    parallel_granularity_ms)
from repro.parallelize import Parallelizer
from repro.runtime import SGI_CHALLENGE, profile_program
from repro.workloads import get, nas_perfect

PROGRAMS = [w.name for w in nas_perfect.WORKLOADS] + ["bdna"]


def test_fig6_05(benchmark):
    def compute():
        table = {}
        for name in PROGRAMS:
            w = get(name)
            prog = w.build()
            prof = profile_program(prog, w.inputs)
            on = Parallelizer(prog, use_reductions=True).plan()
            off = Parallelizer(prog, use_reductions=False).plan()
            table[name] = dict(
                cov_on=parallel_coverage(prog, on, prof),
                cov_off=parallel_coverage(prog, off, prof),
                gran_on=parallel_granularity_ms(prog, on, prof,
                                                SGI_CHALLENGE),
            )
        return table

    table = once(benchmark, compute)
    rows = [[n, f"{e['cov_on']:.0%}", f"{e['cov_off']:.0%}",
             f"{e['gran_on']:.4f} ms"] for n, e in table.items()]
    print_table("Fig 6-5: coverage & granularity, with/without reductions",
                ["program", "coverage w/ red", "coverage w/o red",
                 "granularity"], rows)

    impacted = [n for n, e in table.items()
                if e["cov_on"] - e["cov_off"] > 0.3]
    # the paper's impacted set: most of these programs
    assert len(impacted) >= 9
    for n in impacted:
        assert table[n]["cov_on"] > 0.5
    # embar is the extreme case: nothing parallel without reductions
    assert table["embar"]["cov_off"] < 0.05
    assert table["embar"]["cov_on"] > 0.95
