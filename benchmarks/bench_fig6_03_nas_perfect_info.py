"""Fig 6-3: program information for the NAS Parallel and Perfect Club
miniatures used in the chapter-6 reduction study."""

from conftest import once, print_table
from repro.workloads import nas_perfect


def test_fig6_03(benchmark):
    def compute():
        rows = []
        for w in nas_perfect.WORKLOADS:
            prog = w.build()
            suite = "NAS" if "nas" in w.tags else "Perfect"
            rows.append([w.name, suite, w.line_count(),
                         len(prog.all_loops()),
                         len(prog.procedures)])
        return rows

    rows = once(benchmark, compute)
    print_table("Fig 6-3: NAS + Perfect program information",
                ["program", "suite", "lines", "loops", "procedures"], rows)

    suites = {r[1] for r in rows}
    assert suites == {"NAS", "Perfect"}
    assert len(rows) >= 10
    assert any(r[4] > 1 for r in rows)   # interprocedural programs present
