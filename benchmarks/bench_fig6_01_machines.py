"""Fig 6-1: characteristics of the multiprocessor systems used for the
experiments — reproduced as the simulated machine models' parameters."""

from conftest import once, print_table
from repro.runtime import MACHINES


def test_fig6_01(benchmark):
    rows = once(benchmark, lambda: [
        [m.name, m.processors, f"{m.clock_mhz} MHz",
         f"{m.cache_bytes // (1024 * 1024)} MB",
         int(m.spawn_ops), int(m.lock_ops), m.bus_ops_per_miss,
         m.description]
        for m in MACHINES.values()])
    print_table("Fig 6-1: simulated machine models",
                ["machine", "procs", "clock", "cache/CPU", "spawn(ops)",
                 "lock(ops)", "bus/miss", "description"], rows)

    by_name = {r[0]: r for r in rows}
    assert "SGI Challenge" in by_name and "SGI Origin 2000" in by_name
    # the paper's contrast: the Challenge is the small bus machine, the
    # Origin the scalable ccNUMA one
    challenge = MACHINES["challenge"]
    origin = MACHINES["origin"]
    assert challenge.processors < origin.processors
    assert challenge.bus_contention > origin.bus_contention
    assert origin.cache_bytes >= challenge.cache_bytes
