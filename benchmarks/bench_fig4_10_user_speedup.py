"""Fig 4-10: results of parallelization with and without user input.

Paper rows per application: coverage, granularity, 4- and 8-processor
speedups, automatic vs user-assisted.  Shape: user input lifts coverage
to >= 94 % and multiplies the speedups (mdg 1.0 -> 6.0 on 8 procs).
"""

from conftest import once, print_table

NAMES = ["mdg", "arc3d", "hydro", "flo88"]


def test_fig4_10(benchmark, ch4):
    data = once(benchmark, lambda: {n: ch4(n) for n in NAMES})

    rows = []
    for name in NAMES:
        d = data[name]
        paper = d.workload.paper
        rows.append([
            name, "auto",
            f"{d.auto_coverage:.0%}",
            f"{d.auto_granularity:.4f}",
            f"{d.auto_by_procs[4].speedup:.2f}",
            f"{d.auto_by_procs[8].speedup:.2f} "
            f"(paper {paper['auto_speedup_8']:.1f})",
        ])
        rows.append([
            name, "user",
            f"{d.user_coverage:.0%} (paper {paper['user_coverage']:.0%})",
            f"{d.user_granularity:.4f}",
            f"{d.user_by_procs[4].speedup:.2f} "
            f"(paper {paper['user_speedup_4']:.1f})",
            f"{d.user_by_procs[8].speedup:.2f} "
            f"(paper {paper['user_speedup_8']:.1f})",
        ])
    print_table("Fig 4-10: with and without user intervention",
                ["program", "mode", "coverage", "gran (ms)",
                 "speedup(4p)", "speedup(8p)"], rows)

    for name in NAMES:
        d = data[name]
        # user input raises coverage and granularity
        assert d.user_coverage >= d.auto_coverage - 1e-9
        assert d.user_coverage > 0.9
        assert d.user_granularity > d.auto_granularity
        # and improves both 4- and 8-processor speedups substantially
        assert d.user_by_procs[4].speedup > d.auto_by_procs[4].speedup
        assert d.user_by_procs[8].speedup > d.auto_by_procs[8].speedup
    # mdg's dramatic jump (paper: 1.0 -> 6.0)
    m = data["mdg"]
    assert m.user_by_procs[8].speedup > 5 * m.auto_by_procs[8].speedup
    # hydro's moderate jump (paper: 2.7 -> 4.3)
    h = data["hydro"]
    assert 1.3 < (h.user_by_procs[8].speedup
                  / h.auto_by_procs[8].speedup) < 4.0
