"""Fig 5-12: flo88 speedups without and with array contraction on the
32-processor SGI Origin.

Paper series: without contraction the code saturates at ~6.3x by 32
processors; with contraction it reaches 19.6x.  Shape: a low memory-bound
plateau before, near-linear-ish scaling after, with the crossover visible
from 8 processors up.
"""

import pytest

from conftest import once, print_table
from repro.parallelize import Parallelizer, contract_in_program
from repro.runtime import SGI_ORIGIN, ParallelExecutor, run_program
from repro.workloads import get

PROCS = [1, 2, 4, 8, 16, 32]


def test_fig5_12(benchmark):
    def compute():
        w = get("flo88_fused")
        prog = w.build()
        seq = run_program(prog, w.inputs).outputs
        plan = Parallelizer(prog, assertions=w.user_assertions).plan()
        before = ParallelExecutor(prog, plan, SGI_ORIGIN,
                                  inputs=w.inputs).results_for(PROCS)
        contraction = contract_in_program(prog)
        assert run_program(prog, w.inputs).outputs == seq
        plan2 = Parallelizer(prog, assertions=w.user_assertions).plan()
        after = ParallelExecutor(prog, plan2, SGI_ORIGIN,
                                 inputs=w.inputs).results_for(PROCS)
        return w, contraction, before, after

    w, contraction, before, after = once(benchmark, compute)

    rows = [[p, f"{before[p].speedup:.2f}", f"{after[p].speedup:.2f}"]
            for p in PROCS]
    print_table("Fig 5-12: flo88 speedups without/with array contraction "
                "(SGI Origin)",
                ["processors", "without", "with"], rows)
    print(f"paper @32: {w.paper['contraction_speedup_before_32']} -> "
          f"{w.paper['contraction_speedup_after_32']}")
    print("contracted:", contraction.contracted)

    # the paper's 2-D -> 1-D -> scalar rewrites happened
    names = {v for _, v, _ in contraction.contracted}
    assert {"d", "t"} <= names
    # both curves monotone non-decreasing
    for series in (before, after):
        sp = [series[p].speedup for p in PROCS]
        assert all(b >= a - 0.05 for a, b in zip(sp, sp[1:]))
    # without contraction the code saturates well below 32
    assert before[32].speedup < 12
    assert before[32].speedup < before[16].speedup * 1.5
    # with contraction the 32-processor point is ~3x better (paper 3.1x)
    assert after[32].speedup > 2.0 * before[32].speedup
    assert after[32].speedup > 15
    # small processor counts barely differ (the crossover is in the tail)
    assert abs(after[2].speedup - before[2].speedup) < 0.8
