"""Fig 4-8: average size of the slices requiring intervention, as a
percentage of loop size.

Paper columns per examined loop: program & control slices at "full",
"loop" (restricted to statements inside the loop), "CR" (code-region
pruned) and "AR" (code-region + array pruned) levels.  Shape: full slices
can exceed the loop; CR cuts them to ~15 % of the loop; AR helps further
on mdg's interf/1000 (31 % -> 9 % in the paper).
"""

from conftest import once, print_table

NAMES = ["mdg", "arc3d", "hydro", "flo88"]


def _pct(count, loop_lines):
    return round(100.0 * count / loop_lines) if loop_lines else 0


def test_fig4_08(benchmark, ch4):
    def compute():
        rows = []
        stats = []
        for name in NAMES:
            d = ch4(name)
            slicer = d.session.slicer
            for report in d.auto_guru.targets():
                loop = report.loop
                dep_slices = d.auto_slices.get(loop.stmt_id, [])
                if not dep_slices:
                    continue
                region = slicer.region_of_loop(loop)
                loop_lines = slicer.loop_line_count(loop)
                ds = dep_slices[0]
                full = ds.program_slice.line_count()
                in_loop = ds.program_slice.lines_within(region)
                cr = ds.program_slice_cr.line_count()
                ar = ds.program_slice_ar.line_count()
                cfull = ds.control_slice.line_count()
                ccr = ds.control_slice_cr.line_count()
                car = ds.control_slice_ar.line_count()
                rows.append([f"{name}:{loop.name}", loop_lines,
                             _pct(full, loop_lines),
                             _pct(in_loop, loop_lines),
                             _pct(cr, loop_lines), _pct(ar, loop_lines),
                             _pct(cfull, loop_lines),
                             _pct(ccr, loop_lines), _pct(car, loop_lines)])
                stats.append((loop_lines, in_loop, cr, ar))
        return rows, stats

    rows, stats = once(benchmark, compute)
    print_table(
        "Fig 4-8: slice sizes as % of loop size",
        ["loop", "lines", "prog full%", "prog loop%", "prog CR%",
         "prog AR%", "ctrl full%", "ctrl CR%", "ctrl AR%"], rows)

    assert len(rows) >= 8, "need a spread of examined loops"
    # pruning never grows a slice
    for loop_lines, in_loop, cr, ar in stats:
        assert ar <= cr + 1
        assert cr <= in_loop + 1 or cr <= loop_lines
    # code-region restriction achieves the paper's point: on average the
    # user reads a modest fraction of the loop
    avg_ar = sum(_pct(ar, n) for n, _, _, ar in stats) / len(stats)
    assert avg_ar < 50, f"AR slices average {avg_ar}% of loop size"
