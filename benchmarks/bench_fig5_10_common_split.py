"""Fig 5-10: common-block splits and the resulting 4-processor speedup.

Paper rows: arc3d 1 split (no gain), wave5 1 split (no gain), hydro2d 5
splits (2.6 -> 2.8).  Shape here: hydro2d's differently-shaped /varh-like/
blocks split (the genuinely-flowing one is refused) and the speedup does
not regress — the gain comes from the smaller per-block footprints.
"""

import pytest

from conftest import once, print_table
from repro.parallelize import Parallelizer, find_splittable_blocks, \
    split_common_blocks
from repro.runtime import ALPHASERVER_8400, ParallelExecutor, run_program
from repro.workloads import get


def test_fig5_10(benchmark):
    def compute():
        w = get("hydro2d")
        base_prog = w.build()
        base_out = run_program(base_prog, w.inputs).outputs
        plan0 = Parallelizer(base_prog).plan()
        before = ParallelExecutor(base_prog, plan0, ALPHASERVER_8400,
                                  inputs=w.inputs).results_for([4])[4]

        prog = w.build()
        report = find_splittable_blocks(prog)
        split_common_blocks(prog, report.split_blocks)
        after_out = run_program(prog, w.inputs).outputs
        plan1 = Parallelizer(prog).plan()
        after = ParallelExecutor(prog, plan1, ALPHASERVER_8400,
                                 inputs=w.inputs).results_for([4])[4]
        return w, report, base_out, after_out, before, after

    w, report, base_out, after_out, before, after = once(benchmark, compute)

    print_table(
        "Fig 5-10: common block splits (hydro2d)",
        ["metric", "value", "paper"],
        [["splits", report.total_splits(), w.paper["common_splits"]],
         ["speedup(4p) before", f"{before.speedup:.2f}",
          w.paper["speedup_before_splits"]],
         ["speedup(4p) after", f"{after.speedup:.2f}",
          w.paper["speedup_after_splits"]]])
    for block, pairs in report.splittable_pairs.items():
        print(f"  /{block}/: {pairs}")

    assert report.total_splits() >= 2          # paper: 5
    assert "varn" not in report.split_blocks   # real flow is respected
    assert after_out == pytest.approx(base_out)
    assert after.speedup >= before.speedup * 0.97
