"""Cold vs warm-cache batch latency over the workload corpus.

The PR-2 tentpole contract: a ``repro batch`` over the corpus served
from a warm artifact cache must be at least :data:`MIN_WARM_SPEEDUP`x
faster than the cold batch that populated it, and the batch artifacts
must be bit-identical to sequential in-process Explorer runs.

Run standalone to measure and record ``BENCH_batch.json``::

    PYTHONPATH=src python benchmarks/bench_perf_batch.py [--quick]

``--quick`` restricts to the sub-second corpus entries (the full corpus
takes ~1 min cold on a laptop core).
"""

from __future__ import annotations

import argparse
import json
import platform
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional

from repro.service import (AnalysisRequest, ArtifactStore, BatchScheduler,
                           ServiceMetrics, canonical_json)
from repro.workloads import ALL

MIN_WARM_SPEEDUP = 5.0
#: Small entries used by --quick (each sub-second cold).
QUICK = ["ora", "track", "ear", "doduc", "dyfesm", "wave5", "hydro2d",
         "bdna", "cgm", "mdljdp2"]
BASELINE_PATH = Path(__file__).resolve().parent.parent / "BENCH_batch.json"


def _timed_batch(names: List[str], cache_dir: str,
                 workers: Optional[int]) -> Dict:
    """One scheduler pass over ``names`` against ``cache_dir``."""
    metrics = ServiceMetrics()
    store = ArtifactStore(cache_dir, metrics=metrics)
    requests = [AnalysisRequest(n) for n in names]
    t0 = time.perf_counter()
    with BatchScheduler(store, metrics=metrics, workers=workers) as sched:
        jobs = [sched.submit(r) for r in requests]
        ok = sched.wait(jobs, timeout=1800)
        artifacts = [sched.artifact(j) for j in jobs]
    seconds = time.perf_counter() - t0
    assert ok, "batch timed out"
    failed = [n for n, a in zip(names, artifacts) if a is None]
    assert not failed, f"failed workloads: {failed}"
    snap = metrics.snapshot()
    return {"seconds": seconds, "artifacts": artifacts,
            "cache_hit_rate": snap["cache_hit_rate"],
            "cached_jobs": metrics.counter("jobs_served_cached")}


def run_bench(names: Optional[List[str]] = None,
              workers: Optional[int] = None,
              verify_sequential: bool = True) -> Dict:
    names = list(names or sorted(ALL))
    with tempfile.TemporaryDirectory(prefix="repro-bench-") as cache_dir:
        cold = _timed_batch(names, cache_dir, workers)
        warm = _timed_batch(names, cache_dir, workers)

    assert warm["cached_jobs"] == len(names), "warm batch missed the cache"
    speedup = cold["seconds"] / warm["seconds"] if warm["seconds"] else \
        float("inf")
    assert speedup >= MIN_WARM_SPEEDUP, (
        f"warm batch only {speedup:.1f}x faster than cold "
        f"(contract: >= {MIN_WARM_SPEEDUP}x)")

    drifted: List[str] = []
    if verify_sequential:
        # determinism contract: pool artifacts == sequential oracle
        from repro.service import execute_request
        for name, artifact in zip(names, cold["artifacts"]):
            oracle = execute_request(AnalysisRequest(name))
            if canonical_json(artifact) != canonical_json(oracle):
                drifted.append(name)
        assert not drifted, f"batch/sequential drift: {drifted}"

    return {
        "benchmark": "cold vs warm-cache batch latency",
        "units": "wall-clock seconds for one batch over the corpus",
        "host": {"python": platform.python_version(),
                 "machine": platform.machine()},
        "workloads": names,
        "cold": {"seconds": round(cold["seconds"], 3),
                 "cache_hit_rate": cold["cache_hit_rate"]},
        "warm": {"seconds": round(warm["seconds"], 3),
                 "cache_hit_rate": warm["cache_hit_rate"]},
        "warm_speedup": round(speedup, 1),
        "contract_min_speedup": MIN_WARM_SPEEDUP,
        "sequential_verified": verify_sequential,
    }


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help=f"only the small entries: {', '.join(QUICK)}")
    ap.add_argument("--workers", type=int, default=None)
    ap.add_argument("--no-verify", action="store_true",
                    help="skip the batch-vs-sequential bit-identity check")
    ap.add_argument("--no-write", action="store_true",
                    help="don't record BENCH_batch.json")
    args = ap.parse_args(argv)
    names = QUICK if args.quick else None
    result = run_bench(names, workers=args.workers,
                       verify_sequential=not args.no_verify)
    print(json.dumps(result, indent=2))
    if not args.no_write:
        BASELINE_PATH.write_text(json.dumps(result, indent=2) + "\n")
        print(f"wrote {BASELINE_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
