"""Fig 6-6: performance improvement due to reduction analysis on a
4-processor SGI Challenge.

Shape: every impacted program speeds up with reduction recognition, most
substantially (the paper shows up to ~3.5x on 4 processors); no program
slows down.
"""

from conftest import once, print_table
from repro.parallelize import Parallelizer
from repro.runtime import ParallelExecutor, SGI_CHALLENGE
from repro.workloads import get, nas_perfect

PROGRAMS = [w.name for w in nas_perfect.WORKLOADS] + ["bdna"]


def _speedups(machine, procs):
    table = {}
    for name in PROGRAMS:
        w = get(name)
        prog = w.build()
        on = Parallelizer(prog, use_reductions=True).plan()
        off = Parallelizer(prog, use_reductions=False).plan()
        sp_on = ParallelExecutor(prog, on, machine, inputs=w.inputs
                                 ).results_for([procs])[procs].speedup
        sp_off = ParallelExecutor(prog, off, machine, inputs=w.inputs
                                  ).results_for([procs])[procs].speedup
        table[name] = (sp_off, sp_on)
    return table


def test_fig6_06(benchmark):
    table = once(benchmark, lambda: _speedups(SGI_CHALLENGE, 4))
    rows = [[n, f"{off:.2f}", f"{on:.2f}", f"{on / off:.2f}x"]
            for n, (off, on) in table.items()]
    print_table("Fig 6-6: 4-processor SGI Challenge speedups "
                "without/with reduction analysis",
                ["program", "w/o reductions", "w/ reductions",
                 "improvement"], rows)

    improved = 0
    for name, (off, on) in table.items():
        assert on >= off * 0.98, f"{name} regressed"
        if on > off * 1.3:
            improved += 1
    assert improved >= 8
    # embar: from nothing to near-linear
    off, on = table["embar"]
    assert off < 1.1 and on > 3.0
