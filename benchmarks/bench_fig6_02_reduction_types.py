"""Fig 6-2: numbers of reductions according to their operation types in
the SPEC92 kernels.

Columns: +, *, MIN, MAX, split scalar vs array.  Shape: sums dominate,
every operation type appears somewhere in the suite, and both scalar and
array targets occur.
"""

from conftest import once, print_table
from repro.analysis import scan_block_reductions
from repro.ir.expressions import ArrayRef
from repro.workloads import spec_kernels


def census(prog):
    counts = {}
    for proc in prog.procedures.values():
        for upd in scan_block_reductions(proc.body):
            kind = "array" if isinstance(upd.target, ArrayRef) else "scalar"
            counts[(upd.op, kind)] = counts.get((upd.op, kind), 0) + 1
    return counts


def test_fig6_02(benchmark):
    def compute():
        return {w.name: census(w.build())
                for w in spec_kernels.WORKLOADS}

    table = once(benchmark, compute)

    ops = ["+", "*", "min", "max"]
    rows = []
    for name, counts in table.items():
        rows.append([name] + [
            f"{counts.get((op, 'scalar'), 0)}/"
            f"{counts.get((op, 'array'), 0)}" for op in ops])
    totals = {(op, k): sum(c.get((op, k), 0) for c in table.values())
              for op in ops for k in ("scalar", "array")}
    rows.append(["TOTAL"] + [
        f"{totals[(op, 'scalar')]}/{totals[(op, 'array')]}" for op in ops])
    print_table("Fig 6-2: reductions by operation type (scalar/array)",
                ["program"] + ops, rows)

    # the curated minimum census holds
    for name, expected in spec_kernels.EXPECTED_REDUCTIONS.items():
        counts = table[name]
        remap = {"sum": "+", "prod": "*", "min": "min", "max": "max"}
        for key, n in expected.items():
            op, kind = key.rsplit("_", 1)
            assert counts.get((remap[op], kind), 0) >= n, (name, key)
    # shape: + dominates; MIN/MAX and * all occur; arrays and scalars both
    plus = totals[("+", "scalar")] + totals[("+", "array")]
    assert plus > sum(totals[(op, k)] for op in ("*", "min", "max")
                      for k in ("scalar", "array")) / 2
    assert totals[("min", "scalar")] >= 1
    assert totals[("max", "scalar")] >= 2
    assert totals[("*", "scalar")] >= 1
    assert totals[("+", "array")] >= 4
