"""Ablation: the section-6.3 reduction lowering strategies.

Prices bdna's region reduction (actfor) and sparse reduction (scatter)
under all four lowerings.  Shapes the paper argues for:

* naive whole-array private copies pay initialization/finalization
  proportional to the full 2000-element arrays — slow (section 6.3.2),
* minimizing the reduction region to the touched prefix removes most of
  that overhead (section 6.3.3),
* staggered finalization removes the serialization (section 6.3.4),
* per-update locking avoids copies entirely but pays a lock per update —
  cheap only when the update count is small (section 6.3.5).
"""

from conftest import once, print_table
from repro.parallelize import Parallelizer
from repro.runtime import (ATOMIC, MINIMIZED, NAIVE, STAGGERED,
                           ParallelExecutor, SGI_CHALLENGE)
from repro.workloads import get

STRATEGIES = [NAIVE, MINIMIZED, STAGGERED, ATOMIC]


def test_ablate_reduction_impl(benchmark):
    def compute():
        w = get("bdna")
        prog = w.build()
        plan = Parallelizer(prog).plan()
        out = {}
        for strategy in STRATEGIES:
            res = ParallelExecutor(prog, plan, SGI_CHALLENGE,
                                   reduction_strategy=strategy,
                                   inputs=w.inputs).results_for([4])[4]
            out[strategy] = res.speedup
        return out

    speedups = once(benchmark, compute)
    print_table("Reduction lowering strategies on bdna (4-proc Challenge)",
                ["strategy", "speedup"],
                [[s, f"{speedups[s]:.2f}"] for s in STRATEGIES])

    # region minimization beats naive, staggering beats serialized
    assert speedups[MINIMIZED] > speedups[NAIVE]
    assert speedups[STAGGERED] >= speedups[MINIMIZED]
    # per-update locks lose when updates are plentiful (bdna's actfor does
    # thousands of updates per invocation)
    assert speedups[ATOMIC] < speedups[STAGGERED]
