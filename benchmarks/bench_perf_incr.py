"""Incremental re-analysis shootout: warm cone cache vs cold pipeline.

Times the static analysis pipeline on three corpus workloads under
three regimes:

* ``full``      — the cold full pipeline: ``execute_request`` on the
  workload (parse, interprocedural analysis, execution, profiling,
  Guru ranking) — what re-analysis cost before the cone cache, and
  what the batch service pays on any content-key miss,
* ``warm_edit`` — a one-line comment is inserted into one procedure and
  the *first* re-analysis runs against the disk store the pristine run
  filled: only the victim's dependency cone misses, everything else is
  served at the source or value level,
* ``hot``       — re-analysis of unchanged source against the same
  store: 100% source-level hits, no planning at all.

The warm regimes run the static analysis only (``analysis_only`` is
the interactive edit/re-analyze path — no execution), so the speedups
are end-to-end "what the user waits for after an edit" numbers.

Reports seconds per regime and asserts the tentpole contract:

* the warm-edit path is at least ``MIN_WARM_SPEEDUP``x faster than the
  cold full pipeline on every workload,
* the hot path is at least ``MIN_HOT_SPEEDUP``x faster,
* the warm-edit artifact is **bit-identical** to a cold run on the
  edited source (parity: caching is invisible in the payload).

Run standalone to (re)generate the committed baseline::

    PYTHONPATH=src python benchmarks/bench_perf_incr.py

which writes ``BENCH_incremental.json`` at the repo root —
``scripts/perf_check.py`` compares fresh numbers against that file.
"""

from __future__ import annotations

import json
import platform
import shutil
import tempfile
import time
from pathlib import Path
from typing import Dict, List

from repro.analysis.incremental import IncrementalAnalyzer
from repro.ir import build_program
from repro.service.artifacts import ArtifactStore, canonical_json
from repro.service.jobs import AnalysisRequest, execute_request
from repro.workloads import get

WORKLOADS = ("mdg", "flo88", "hydro2d")
#: procedure edited for the warm-edit regime — a leaf-ish init routine
#: with a small dependency cone, the interactive-editing common case
VICTIMS = {"mdg": "initia", "flo88": "initw", "hydro2d": "start2d"}
MIN_WARM_SPEEDUP = 10.0
MIN_HOT_SPEEDUP = 10.0
HOT_REPEATS = 3
BASELINE_PATH = Path(__file__).resolve().parent.parent / "BENCH_incremental.json"


def _comment_edit(source: str, program, victim: str) -> str:
    """Insert a comment line at the top of ``victim`` — a content change
    with identical semantics (every ⟨R,E,W,M⟩ summary stays bit-equal)."""
    at = program.procedures[victim].source_lines.start
    lines = source.splitlines()
    return "\n".join(lines[:at] + ["C perf probe"] + lines[at:])


def _analyze(source: str, name: str, store) -> Dict:
    program = build_program(source, name)
    analyzer = IncrementalAnalyzer(program, source, store=store)
    return analyzer.analysis_artifact()


def _time_one(source: str, name: str, store) -> (float, Dict):
    t0 = time.perf_counter()
    artifact = _analyze(source, name, store)
    return time.perf_counter() - t0, artifact


def run_bench(workloads=WORKLOADS) -> Dict:
    """Measure every workload on all three regimes; verify parity."""
    results: Dict[str, Dict] = {}
    for name in workloads:
        w = get(name)
        program = build_program(w.source, w.name)
        edited = _comment_edit(w.source, program, VICTIMS[name])

        # cold full pipeline: the whole Explorer job, nothing cached
        t0 = time.perf_counter()
        execute_request(AnalysisRequest(name))
        full_s = time.perf_counter() - t0

        root = tempfile.mkdtemp(prefix=f"bench-incr-{name}-")
        try:
            store = ArtifactStore(root)
            _analyze(w.source, w.name, store)         # fill the cache

            # warm edit: FIRST re-analysis after the edit (the second
            # one would hit the re-anchored source keys and measure the
            # hot path instead)
            warm_s, warm = _time_one(edited, w.name, store)

            # hot: unchanged source, 100% source-level hits
            hot_s = min(_time_one(edited, w.name, store)[0]
                        for _ in range(HOT_REPEATS))
        finally:
            shutil.rmtree(root, ignore_errors=True)

        cold = _analyze(edited, w.name, ArtifactStore(None))
        parity = canonical_json(warm) == canonical_json(cold)
        assert parity, f"{name}: warm-edit artifact differs from cold"

        results[name] = {
            "procedures": len(program.procedures),
            "victim": VICTIMS[name],
            "full_s": round(full_s, 4),
            "warm_edit_s": round(warm_s, 4),
            "hot_s": round(hot_s, 4),
            "warm_speedup": round(full_s / warm_s, 2) if warm_s else 0.0,
            "hot_speedup": round(full_s / hot_s, 2) if hot_s else 0.0,
            "parity": parity,
        }
    return {
        "benchmark": "incremental re-analysis (cone cache)",
        "units": "wall-clock seconds per analysis run",
        "host": {"python": platform.python_version(),
                 "machine": platform.machine()},
        "workloads": results,
    }


def _rows(report: Dict) -> List[List]:
    return [[name,
             r["victim"],
             f"{r['full_s'] * 1e3:.1f}ms",
             f"{r['warm_edit_s'] * 1e3:.1f}ms",
             f"{r['hot_s'] * 1e3:.1f}ms",
             f"{r['warm_speedup']:.1f}x",
             f"{r['hot_speedup']:.1f}x"]
            for name, r in report["workloads"].items()]


def test_incremental_warm_speedup(benchmark):
    from conftest import once, print_table
    report = once(benchmark, run_bench)
    print_table("incremental re-analysis (full vs warm-edit vs hot)",
                ["workload", "victim", "full", "warm edit", "hot",
                 "warm x", "hot x"],
                _rows(report))
    for name, r in report["workloads"].items():
        assert r["parity"], f"{name}: warm-edit artifact not bit-identical"
        assert r["warm_speedup"] >= MIN_WARM_SPEEDUP, (
            f"{name}: warm-edit re-analysis only {r['warm_speedup']:.1f}x "
            f"over the cold pipeline, below the {MIN_WARM_SPEEDUP}x "
            f"contract")
        assert r["hot_speedup"] >= MIN_HOT_SPEEDUP, (
            f"{name}: hot re-analysis only {r['hot_speedup']:.1f}x over "
            f"the cold pipeline, below the {MIN_HOT_SPEEDUP}x contract")


def main() -> None:
    report = run_bench()
    BASELINE_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {BASELINE_PATH}")
    for row in _rows(report):
        print("  " + "  ".join(f"{c:>9}" if i > 1 else f"{c:10s}"
                               for i, c in enumerate(row)))
    for name, r in report["workloads"].items():
        assert r["warm_speedup"] >= MIN_WARM_SPEEDUP, (
            f"{name}: {r['warm_speedup']}x < {MIN_WARM_SPEEDUP}x")
        assert r["hot_speedup"] >= MIN_HOT_SPEEDUP, (
            f"{name}: {r['hot_speedup']}x < {MIN_HOT_SPEEDUP}x")


if __name__ == "__main__":
    main()
