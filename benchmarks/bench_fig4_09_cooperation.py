"""Fig 4-9: user-assisted parallelization — what the compiler analyzed
automatically vs. what the user supplied, in the user-parallelized loops.

Paper rows: parallel arrays / privatizable arrays / privatizable scalars /
reduction arrays / reduction scalars (automatic), then user-input
privatizable arrays/scalars.  Shape: the compiler does the vast majority
of the variable-level work; the user touches a handful of variables.
"""

from conftest import once, print_table
from repro.parallelize.plan import (INDUCTION, PARALLEL, PRIVATE,
                                    PRIVATE_FINAL, PRIVATE_USER, REDUCTION)

NAMES = ["mdg", "arc3d", "hydro", "flo88"]


def test_fig4_09(benchmark, ch4):
    def compute():
        table = {}
        for name in NAMES:
            d = ch4(name)
            counts = dict(par_arr=0, priv_arr=0, priv_scl=0, red_arr=0,
                          red_scl=0, user_arr=0, user_scl=0)
            user_loops = [r.loop for r in d.auto_guru.targets()
                          if d.user_plan.is_parallel(r.loop)
                          and not d.auto_plan.is_parallel(r.loop)]
            for loop in user_loops:
                lp = d.user_plan.plan_for(loop)
                for vp in lp.vars.values():
                    scalar = vp.is_scalar
                    if vp.status == PARALLEL:
                        counts["par_arr" if not scalar else
                               "priv_scl"] += (0 if scalar else 1)
                    elif vp.status in (PRIVATE, PRIVATE_FINAL, INDUCTION):
                        counts["priv_scl" if scalar else "priv_arr"] += 1
                    elif vp.status == REDUCTION:
                        counts["red_scl" if scalar else "red_arr"] += 1
                    elif vp.status == PRIVATE_USER:
                        counts["user_scl" if scalar else "user_arr"] += 1
            table[name] = counts
        return table

    table = once(benchmark, compute)

    rows = []
    for label, key in (("parallel arrays", "par_arr"),
                       ("privatizable arrays (auto)", "priv_arr"),
                       ("privatizable scalars (auto)", "priv_scl"),
                       ("reduction arrays", "red_arr"),
                       ("reduction scalars", "red_scl"),
                       ("privatizable arrays (user)", "user_arr"),
                       ("privatizable scalars (user)", "user_scl")):
        rows.append([label] + [table[n][key] for n in NAMES]
                    + [sum(table[n][key] for n in NAMES)])
    print_table("Fig 4-9: automatic vs user-supplied analysis",
                ["classification"] + NAMES + ["total"], rows)

    auto_total = sum(table[n][k] for n in NAMES
                     for k in ("par_arr", "priv_arr", "priv_scl",
                               "red_arr", "red_scl"))
    user_total = sum(table[n][k] for n in NAMES
                     for k in ("user_arr", "user_scl"))
    # paper: 363 automatic vs 63 user — the compiler dominates
    assert auto_total > user_total
    # mdg's signature: 3 reduction arrays and 1 reduction scalar
    assert table["mdg"]["red_arr"] == 3
    assert table["mdg"]["red_scl"] == 1
    # arc3d's user work is scalar privatization (the SN pattern)
    assert table["arc3d"]["user_scl"] == 3
    assert table["arc3d"]["user_arr"] == 0
