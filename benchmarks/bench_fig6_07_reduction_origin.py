"""Fig 6-7: the same reduction-analysis improvement on a 4-processor SGI
Origin.  Shape: the qualitative story matches Fig 6-6 on the second
machine (the paper runs both to show machine-independence of the win)."""

from conftest import once, print_table
from repro.runtime import SGI_ORIGIN

from bench_fig6_06_reduction_challenge import PROGRAMS, _speedups


def test_fig6_07(benchmark):
    table = once(benchmark, lambda: _speedups(SGI_ORIGIN, 4))
    rows = [[n, f"{off:.2f}", f"{on:.2f}", f"{on / off:.2f}x"]
            for n, (off, on) in table.items()]
    print_table("Fig 6-7: 4-processor SGI Origin speedups "
                "without/with reduction analysis",
                ["program", "w/o reductions", "w/ reductions",
                 "improvement"], rows)

    improved = sum(1 for off, on in table.values() if on > off * 1.3)
    assert improved >= 8
    for name, (off, on) in table.items():
        assert on >= off * 0.98, f"{name} regressed"
