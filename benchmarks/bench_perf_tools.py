"""Instrumented-tools shootout: the dynamic analyzers on three paths.

Times the Loop Profile Analyzer and the Dynamic Dependence Analyzer on
the three workloads with the largest dynamic op counts, under:

* ``tree``     — the observer riding the tree-walking oracle,
* ``generic``  — the observer riding the compiled engine through the
  generic per-event callback protocol (``specialize=False``),
* ``fast``     — the analyzer compiled *into* the closure engine
  (``VARIANT_PROFILE`` / ``VARIANT_DYNDEP``).

Reports ops/sec per path and asserts the tentpole contract:

* the fast path is at least ``MIN_SPEEDUP``x faster than the tree
  observer path on every workload, for both tools,
* all three paths produce bit-identical analyzer state.

Run standalone to (re)generate the committed baseline::

    PYTHONPATH=src python benchmarks/bench_perf_tools.py

which writes ``BENCH_tools.json`` at the repo root —
``scripts/perf_check.py`` compares fresh numbers against that file.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path
from typing import Dict, List

from repro.ir import build_program
from repro.runtime import reduction_stmt_ids
from repro.runtime.compile_engine import engine_label, make_engine
from repro.runtime.dyndep import DynamicDependenceAnalyzer
from repro.runtime.profiler import LoopProfiler
from repro.workloads import get

WORKLOADS = ("mdg", "flo88", "hydro2d")
TOOLS = ("profile", "dyndep")
MIN_SPEEDUP = 3.0
#: path -> (engine kwarg dict, repeats); best (minimum) time is kept
PATHS = {
    "tree": ({"engine": "tree"}, 1),
    "generic": ({"engine": "compiled", "specialize": False}, 2),
    "fast": ({"engine": "compiled"}, 3),
}
EXPECT_LABEL = {
    ("profile", "tree"): "tree",
    ("profile", "generic"): "compiled/loops",
    ("profile", "fast"): "compiled/profile",
    ("dyndep", "tree"): "tree",
    ("dyndep", "generic"): "compiled/full",
    ("dyndep", "fast"): "compiled/dyndep",
}
BASELINE_PATH = Path(__file__).resolve().parent.parent / "BENCH_tools.json"


def _run_tool(tool: str, prog, inputs, skip, **kw):
    """One instrumented run; returns (analyzer, engine)."""
    if tool == "profile":
        obs = LoopProfiler()
    else:
        obs = DynamicDependenceAnalyzer(skip_stmt_ids=skip)
    eng = make_engine(prog, inputs, observers=[], **kw)
    obs.attach(eng)
    eng.run()
    if tool == "profile":
        obs.finish()
    return obs, eng


def _state(tool: str, obs):
    """The bit-parity fingerprint of one analyzer run."""
    if tool == "profile":
        return ([(p.loop.stmt_id, p.total_ops, p.invocations, p.iterations)
                 for p in obs.executed_loops()], obs.total_ops)
    return (obs.carried, obs.carried_by_var, obs.witnesses,
            obs.sampled_accesses, obs.skipped_accesses)


def _time_tool(tool: str, path: str, prog, inputs, skip) -> Dict:
    """Best-of-N wall-clock for one tool on one path (includes the
    closure-compilation step for the compiled paths, matching how
    ``profile_program`` / ``analyze_dependences`` pay for it)."""
    kw, repeats = PATHS[path]
    best = float("inf")
    ops = state = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        obs, eng = _run_tool(tool, prog, inputs, skip, **kw)
        best = min(best, time.perf_counter() - t0)
        assert engine_label(eng) == EXPECT_LABEL[(tool, path)], (
            f"{tool}/{path} ran on {engine_label(eng)}")
        ops, state = eng.ops, _state(tool, obs)
    return {"seconds": best, "ops": ops,
            "ops_per_sec": ops / best if best else 0.0, "state": state}


def run_bench(workloads=WORKLOADS) -> Dict:
    """Measure every (workload, tool) on all paths; verify parity."""
    results: Dict[str, Dict] = {}
    for name in workloads:
        w = get(name)
        # build ONCE per workload so stmt_ids line up across paths
        prog = build_program(w.source, w.name)
        skip = reduction_stmt_ids(prog)
        results[name] = {}
        for tool in TOOLS:
            timed = {p: _time_tool(tool, p, prog, w.inputs,
                                   skip if tool == "dyndep" else None)
                     for p in PATHS}
            ref = timed["tree"]
            for path in ("generic", "fast"):
                assert timed[path]["ops"] == ref["ops"], (
                    f"{name}/{tool}: op-count drift on {path} path")
                assert timed[path]["state"] == ref["state"], (
                    f"{name}/{tool}: analyzer state drift on {path} path")
            results[name][tool] = {
                "ops": ref["ops"],
                **{p: {"seconds": round(t["seconds"], 4),
                       "ops_per_sec": round(t["ops_per_sec"], 1)}
                   for p, t in timed.items()},
                "speedup_vs_tree": round(
                    timed["fast"]["ops_per_sec"] / ref["ops_per_sec"], 2),
                "speedup_vs_generic": round(
                    timed["fast"]["ops_per_sec"]
                    / timed["generic"]["ops_per_sec"], 2),
            }
    return {
        "benchmark": "instrumented-tools shootout",
        "units": "interpreter ops per wall-clock second",
        "host": {"python": platform.python_version(),
                 "machine": platform.machine()},
        "workloads": results,
    }


def _rows(report: Dict) -> List[List]:
    rows = []
    for name, tools in report["workloads"].items():
        for tool, r in tools.items():
            rows.append([
                name, tool,
                f"{r['tree']['ops_per_sec'] / 1e6:.2f}M",
                f"{r['generic']['ops_per_sec'] / 1e6:.2f}M",
                f"{r['fast']['ops_per_sec'] / 1e6:.2f}M",
                f"{r['speedup_vs_tree']:.2f}x",
                f"{r['speedup_vs_generic']:.2f}x",
            ])
    return rows


def test_instrumented_fast_path_speedup(benchmark):
    from conftest import once, print_table
    report = once(benchmark, run_bench)
    print_table("instrumented ops/sec (tree vs generic vs fast)",
                ["workload", "tool", "tree", "generic", "fast",
                 "vs tree", "vs generic"],
                _rows(report))
    for name, tools in report["workloads"].items():
        for tool, r in tools.items():
            assert r["speedup_vs_tree"] >= MIN_SPEEDUP, (
                f"{name}/{tool}: fast path only "
                f"{r['speedup_vs_tree']:.2f}x over the tree observer "
                f"path, below the {MIN_SPEEDUP}x contract")
            if tool == "dyndep":
                # per-access shadow-memory specialization must beat the
                # generic callback protocol outright; for the profiler
                # the generic loops-variant is already event-light, so
                # its margin is thin and only reported, not gated
                assert r["speedup_vs_generic"] > 1.0, (
                    f"{name}/{tool}: fast path not faster than the "
                    f"generic observer path")


def main() -> None:
    report = run_bench()
    BASELINE_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {BASELINE_PATH}")
    for row in _rows(report):
        print("  " + "  ".join(f"{c:>9}" if i else f"{c:10s}"
                               for i, c in enumerate(row)))
    for name, tools in report["workloads"].items():
        for tool, r in tools.items():
            assert r["speedup_vs_tree"] >= MIN_SPEEDUP, (
                f"{name}/{tool}: {r['speedup_vs_tree']}x < {MIN_SPEEDUP}x")


if __name__ == "__main__":
    main()
