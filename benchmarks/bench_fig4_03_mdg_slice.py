"""Fig 4-3: slices of the relevant references to K in interf/1000.

The paper's figure highlights precisely the KC/RS/RL machinery of the
109-line loop: the KC accumulation (loop 1110), the guarded RL writes
(loop 1130), and the guarded RL reads (loop 1140) — about ten lines.
"""

from conftest import once
from repro.viz import render_slice


def test_fig4_03(benchmark, ch4):
    def compute():
        d = ch4("mdg")
        loop = d.program.loop("interf/1000")
        return d, loop, d.auto_slices[loop.stmt_id]

    d, loop, slices = once(benchmark, compute)
    assert slices, "interf/1000 must carry an unresolved dependence"
    ds = slices[0]
    assert ds.var.display_name == "rl"

    print("\n=== Fig 4-3: pruned slice for the RL dependence ===")
    print(render_slice(d.program, ds.program_slice_ar, around_loop=loop))

    lines = {ln for _, ln in ds.program_slice_ar.lines()}
    src = d.program.source_text.splitlines()

    def has(fragment):
        return any(fragment in src[ln - 1] for ln in lines)

    # the slice contains the KC counting and the guards of Fig 4-3
    assert has("kc = kc + 1") or has("kc = 0")
    assert has("kc .NE. 9") or has("kc .EQ. 0")
    # and it is a small fraction of the loop (paper: 9% with AR pruning)
    loop_lines = d.session.slicer.loop_line_count(loop)
    assert ds.program_slice_ar.line_count() <= 0.5 * loop_lines
    # the control slice isolates the conditions governing the accesses
    assert ds.control_slice_ar.line_count() > 0
