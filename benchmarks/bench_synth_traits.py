"""Synth trait coverage: which analysis wins per generated trait profile.

The machine-generated extension of Fig 6-2's shape: instead of a census
over the hand-picked SPEC92 kernels, classify every loop of a seeded
corpus slice by the analysis that proved it parallel (static dependence
test alone, reduction recognizer, privatizer) or, for statically blocked
loops, by dyndep's verdict (carried dependence confirmed vs clean
candidate).  Shape assertions: every analysis wins somewhere, and each
trait profile is won by the analysis it was designed to exercise.
"""

from conftest import once, print_table
from repro.workloads.synth.stats import WINNERS, trait_table


def test_synth_trait_coverage(benchmark):
    rows = once(benchmark, lambda: trait_table(seeds_per_profile=4))

    print_table("Synth trait coverage: winning analysis per profile "
                "(4 seeds each)",
                ["profile", "progs", "loops"] + list(WINNERS), rows)

    by_profile = {r[0]: dict(zip(WINNERS, r[3:])) for r in rows}
    # each trait profile is won by the analysis it targets
    for prof in ("red-sc", "red-arr", "red-sp", "red-mm"):
        assert by_profile[prof]["reduction"] > 0, prof
    assert by_profile["priv"]["privatizer"] + \
        by_profile["priv"]["dyndep-dep"] > 0
    assert by_profile["ind"]["dyndep-dep"] > 0      # chains are real deps
    assert by_profile["deep"]["static"] > 0
    # every analysis wins somewhere across the population
    totals = {w: sum(p[w] for p in by_profile.values()) for w in WINNERS}
    for winner in ("static", "reduction", "privatizer", "dyndep-dep"):
        assert totals[winner] > 0, totals
    # the static dependence test carries the bulk of the corpus (init
    # loops and stencils), mirroring the paper's automatic-pass story
    assert totals["static"] >= max(totals["reduction"],
                                   totals["privatizer"])
