"""Fig 4-2 / 4-4: the Codeview before and after user parallelization.

The paper's screenshots show interf/1000 rendered black (sequential) with
a white focus bar before user input, and white (parallel) afterwards.  The
ASCII codeview reproduces the information content: per-line glyphs flip
from '#' to 'o' for the loop's lines once the assertion lands.
"""

from conftest import once
from repro.viz import Codeview


def test_fig4_02_and_4_04(benchmark, ch4):
    def compute():
        d = ch4("mdg")
        loop = d.program.loop("interf/1000")
        before = Codeview(d.program, d.auto_plan).render(focus=loop)
        after = Codeview(d.program, d.user_plan).render()
        return d, loop, before, after

    d, loop, before, after = once(benchmark, compute)
    print("\n=== Fig 4-2: codeview before user input (focus bar '>') ===")
    print(before)
    print("\n=== Fig 4-4: codeview after parallelization ===")
    print(after)

    loop_lines = {s.line for s in loop.body.walk()} | {loop.line}

    def glyph_of(text, ln):
        for row in text.splitlines():
            if row.strip().startswith(f"{ln} "):
                return row.split()[1]
        return None

    # before: the focused loop renders with the focus glyph
    assert glyph_of(before, loop.line) == ">"
    # after: interf/1000 renders parallel ('o'); inner loops may still
    # show '#' (they are nested under the parallel loop, not parallel
    # themselves)
    assert glyph_of(after, loop.line) == "o"
    # the failed/sequential pieces remain visible as '#": somewhere in the
    # auto view there must be sequential loop lines
    assert "#" in before
