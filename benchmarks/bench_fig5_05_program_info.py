"""Fig 5-5: program information for the chapter-5 benchmark suite."""

from conftest import once, print_table
from repro.workloads import CHAPTER5


def test_fig5_05(benchmark):
    def compute():
        return [(w.name, w.description, w.line_count(),
                 w.paper.get("lines", "-"), len(w.build().all_loops()))
                for w in CHAPTER5]

    rows = once(benchmark, compute)
    print_table("Fig 5-5: program information",
                ["program", "description", "lines (miniature)",
                 "lines (paper)", "loops"],
                [[n, d[:44], lc, pl, nl] for n, d, lc, pl, nl in rows])
    names = [r[0] for r in rows]
    assert names == ["hydro", "flo88", "arc3d", "wave5", "hydro2d"]
    for _, _, lc, _, nl in rows:
        assert lc > 40 and nl >= 5
