"""Shared benchmark infrastructure.

Each bench regenerates one of the paper's tables/figures: it prints the
same rows/series the paper reports (with the paper's numbers alongside)
and asserts the *shape* — who wins, roughly by how much, where crossovers
fall.  Expensive Explorer sessions are computed once per pytest session
and shared.

All benches use the ``benchmark`` fixture (rounds=1) so that
``pytest benchmarks/ --benchmark-only`` selects and times them.
"""

from typing import Dict

import pytest

from repro.explorer import ExplorerSession
from repro.runtime import (ALPHASERVER_8400, SGI_ORIGIN, ParallelExecutor)
from repro.workloads import get

_CH4_MACHINE = {"mdg": ALPHASERVER_8400, "arc3d": ALPHASERVER_8400,
                "hydro": ALPHASERVER_8400, "flo88": SGI_ORIGIN}


class Chapter4Data:
    """One full Explorer story for a chapter-4 workload: automatic pass,
    user assertions, and 4/8-processor pricing of both plans."""

    def __init__(self, name: str):
        self.name = name
        self.workload = get(name)
        self.machine = _CH4_MACHINE[name]
        self.program = self.workload.build()
        self.session = ExplorerSession(
            self.program, inputs=self.workload.inputs,
            machine=self.machine, use_liveness=False)
        self.auto_result = self.session.run_automatic()
        self.auto_plan = self.session.plan
        self.auto_guru = self.session.guru
        auto_ex = ParallelExecutor(self.program, self.auto_plan,
                                   self.machine,
                                   inputs=self.workload.inputs)
        self.auto_by_procs = auto_ex.results_for([4, 8])
        self.auto_coverage = self.session.coverage()
        self.auto_granularity = self.session.granularity_ms()
        # slices for the unresolved dependences, captured while the
        # automatic plan is still current
        self.auto_slices = {
            r.loop.stmt_id: self.session.slices_for(r.loop)
            for r in self.auto_guru.targets()}

        self.outcomes, self.user_result = self.session.apply_assertions(
            self.workload.user_assertions)
        self.user_plan = self.session.plan
        self.user_guru = self.session.guru
        user_ex = ParallelExecutor(self.program, self.user_plan,
                                   self.machine,
                                   inputs=self.workload.inputs)
        self.user_by_procs = user_ex.results_for([4, 8])
        self.user_coverage = self.session.coverage()
        self.user_granularity = self.session.granularity_ms()


_cache: Dict[str, Chapter4Data] = {}


def chapter4_data(name: str) -> Chapter4Data:
    if name not in _cache:
        _cache[name] = Chapter4Data(name)
    return _cache[name]


@pytest.fixture(scope="session")
def ch4():
    """name -> Chapter4Data, computed lazily."""
    return chapter4_data


def print_table(title: str, headers, rows) -> None:
    print(f"\n=== {title} ===")
    widths = [max(len(str(h)), *(len(str(r[k])) for r in rows))
              for k, h in enumerate(headers)]
    print("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))


def once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
