"""Fig 5-6: total running time of the interprocedural analysis.

Paper columns: base (scalar analyses), + bottom-up array pass, then the
three top-down liveness variants (flow-insensitive / 1-bit / full).
This is the one figure whose *subject* is analysis time, so each column
is a real pytest-benchmark measurement.  Shape: the top-down phase is a
minority of the total cost, and the full variant costs at most a small
constant factor over the 1-bit one ("the one-bit algorithm is not much
faster than the full algorithm").
"""

import time

import pytest

from conftest import print_table
from repro.analysis import (ArrayDataFlow, ArrayLiveness, FLOW_INSENSITIVE,
                            FULL, ONE_BIT, SymbolicAnalysis)
from repro.workloads import CHAPTER5

_times = {}


def _measure(name):
    w = next(x for x in CHAPTER5 if x.name == name)
    prog = w.build()
    out = {}
    t0 = time.perf_counter()
    sa = SymbolicAnalysis(prog)
    for proc in prog.procedures.values():
        sa.result(proc)
    out["base"] = time.perf_counter() - t0
    t0 = time.perf_counter()
    df = ArrayDataFlow(prog, sa)
    out["bottom_up"] = time.perf_counter() - t0
    for variant in (FLOW_INSENSITIVE, ONE_BIT, FULL):
        t0 = time.perf_counter()
        ArrayLiveness(df, variant)
        out[variant] = time.perf_counter() - t0
    return out


@pytest.mark.parametrize("name", [w.name for w in CHAPTER5[:3]])
def test_fig5_06_per_program(benchmark, name):
    result = benchmark.pedantic(lambda: _measure(name), rounds=1,
                                iterations=1)
    _times[name] = result
    print_table(
        f"Fig 5-6: analysis time breakdown for {name} (seconds)",
        ["phase", "seconds"],
        [[k, f"{v:.3f}"] for k, v in result.items()])
    # the cheap variants really are cheaper, and even the full variant
    # stays interactive-scale (the paper's point: "fast liveness analysis
    # on arrays can be achieved")
    assert result[FLOW_INSENSITIVE] <= result[FULL] * 1.5 + 0.2
    assert result[ONE_BIT] <= result[FULL] * 1.5 + 0.2
    assert result[FULL] < 30.0
    # deviation from the paper, recorded in EXPERIMENTS.md: our 1-bit
    # top-down is a set propagation and is much faster than full, whereas
    # the paper's 1-bit reused the sections machinery and was not.
