"""Command-line interface: ``python -m repro <command> <file.f> ...``.

Commands mirror the Explorer workflow on mini-Fortran source files:

* ``run``         — execute the program, print its output,
* ``parallelize`` — run the automatic parallelizer, print per-loop plans
  and the annotated source,
* ``explore``     — the full Explorer session: profile, dynamic
  dependences, Guru strategy, codeview, simulated speedup,
* ``slice``       — slice a variable's uses inside a loop,
* ``advise``      — memory-performance advisories,
* ``compile``     — transpile to a self-contained Python module.

Workload names from the corpus (e.g. ``mdg``) may be given instead of a
file path.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from .explorer import ExplorerSession
from .ir import build_program
from .ir.program import Program
from .parallelize import Parallelizer, annotate_source
from .parallelize.memory_advisor import advise, report_lines
from .runtime import MACHINES, execute_parallel, run_program
from .viz import Codeview, render_slice


def _load(target: str):
    """A (program, inputs, assertions) triple from a path or corpus name."""
    from .workloads import ALL
    if target in ALL:
        w = ALL[target]
        return w.build(), w.inputs, w.user_assertions
    with open(target) as fh:
        text = fh.read()
    return build_program(text, target), [], []


def _machine(name: str):
    try:
        return MACHINES[name]
    except KeyError:
        raise SystemExit(f"unknown machine {name!r}; "
                         f"choose from {sorted(MACHINES)}")


def cmd_run(args) -> int:
    program, inputs, _ = _load(args.target)
    if args.inputs:
        inputs = [float(x) for x in args.inputs]
    interp = run_program(program, inputs)
    for value in interp.outputs:
        print(value)
    print(f"[{interp.ops} ops]", file=sys.stderr)
    return 0


def cmd_parallelize(args) -> int:
    program, inputs, assertions = _load(args.target)
    plan = Parallelizer(program,
                        assertions=assertions if args.assertions else [],
                        use_reductions=not args.no_reductions,
                        use_liveness=not args.no_liveness).plan()
    for loop in program.all_loops():
        lp = plan.plan_for(loop)
        tag = "PARALLEL" if lp.parallel else "sequential"
        print(f"{loop.name}: {tag}")
        for vp in lp.vars.values():
            line = f"    {vp.display_name}: {vp.status}"
            if vp.reason:
                line += f"  ({vp.reason})"
            print(line)
    if args.annotate:
        print("\n--- annotated source ---")
        print(annotate_source(program, plan))
    return 0


def cmd_explore(args) -> int:
    program, inputs, assertions = _load(args.target)
    machine = _machine(args.machine)
    session = ExplorerSession(program, inputs=inputs, machine=machine,
                              use_liveness=not args.no_liveness)
    result = session.run_automatic()
    print("== automatic parallelization ==")
    for line in session.summary_lines():
        print(line)
    print("\n== Parallelization Guru ==")
    for line in session.guru.strategy_lines():
        print(line)
    if args.codeview:
        targets = session.guru.targets()
        focus = targets[0].loop if targets else None
        print("\n== codeview ==")
        view = Codeview(program, session.plan)
        print(view.render(focus=focus))
        print(view.legend())
    if assertions and args.assertions:
        print("\n== applying workload assertions ==")
        outcomes, result = session.apply_assertions(assertions)
        for o in outcomes:
            status = "accepted" if o.accepted else "REJECTED"
            print(f"{o.assertion}: {status}")
            for w in o.warnings:
                print(f"  warning: {w}")
        for line in session.summary_lines():
            print(line)
    return 0


def cmd_slice(args) -> int:
    from .ir.statements import AssignStmt
    from .ir.expressions import ArrayRef, VarRef
    from .slicing import Slicer
    program, _, _ = _load(args.target)
    loop = program.loop(args.loop)
    proc = program.procedures[loop.proc_name]
    symbol = proc.symbols.lookup(args.variable.lower())
    if symbol is None:
        raise SystemExit(f"no variable {args.variable!r} in "
                         f"{loop.proc_name}")
    slicer = Slicer(program)
    stmt = None
    for s in loop.body.walk():
        for expr in s.sub_expressions():
            for node in expr.walk():
                if isinstance(node, (VarRef, ArrayRef)) and \
                        node.symbol is symbol:
                    stmt = s
                    break
    if stmt is None:
        raise SystemExit(f"{args.variable} is not read inside {args.loop}")
    res = slicer.slice_of_use(
        stmt, symbol, kind=args.kind,
        array_restricted=args.array_restricted,
        region_loop=loop if args.region_restricted else None)
    print(render_slice(program, res, around_loop=loop))
    return 0


def cmd_compile(args) -> int:
    from .runtime.transpile import transpile_to_python
    program, _, _ = _load(args.target)
    text = transpile_to_python(program)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(text)
        print(f"wrote {args.output}")
    else:
        print(text)
    return 0


def cmd_advise(args) -> int:
    program, _, assertions = _load(args.target)
    plan = Parallelizer(program, assertions=assertions).plan()
    for line in report_lines(advise(program, plan)):
        print(line)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SUIF Explorer reproduction - interactive and "
                    "interprocedural parallelization of mini-Fortran")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("run", help="execute a program")
    p.add_argument("target")
    p.add_argument("--inputs", nargs="*", help="values for READ statements")
    p.set_defaults(func=cmd_run)

    p = sub.add_parser("parallelize", help="automatic parallelization plan")
    p.add_argument("target")
    p.add_argument("--annotate", action="store_true",
                   help="print the directive-annotated source")
    p.add_argument("--assertions", action="store_true",
                   help="apply the workload's user assertions")
    p.add_argument("--no-reductions", action="store_true")
    p.add_argument("--no-liveness", action="store_true")
    p.set_defaults(func=cmd_parallelize)

    p = sub.add_parser("explore", help="full Explorer session")
    p.add_argument("target")
    p.add_argument("--machine", default="alphaserver",
                   choices=sorted(MACHINES))
    p.add_argument("--codeview", action="store_true")
    p.add_argument("--assertions", action="store_true")
    p.add_argument("--no-liveness", action="store_true")
    p.set_defaults(func=cmd_explore)

    p = sub.add_parser("slice", help="slice a variable's use in a loop")
    p.add_argument("target")
    p.add_argument("loop", help="loop name, e.g. interf/1000")
    p.add_argument("variable")
    p.add_argument("--kind", default="program",
                   choices=["program", "data"])
    p.add_argument("--array-restricted", action="store_true")
    p.add_argument("--region-restricted", action="store_true")
    p.set_defaults(func=cmd_slice)

    p = sub.add_parser("advise", help="memory-performance advisories")
    p.add_argument("target")
    p.set_defaults(func=cmd_advise)

    p = sub.add_parser("compile", help="transpile to a Python module")
    p.add_argument("target")
    p.add_argument("-o", "--output", help="write to a file")
    p.set_defaults(func=cmd_compile)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
