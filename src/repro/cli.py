"""Command-line interface: ``python -m repro <command> <file.f> ...``.

Commands mirror the Explorer workflow on mini-Fortran source files:

* ``run``         — execute the program, print its output,
* ``parallelize`` — run the automatic parallelizer, print per-loop plans
  and the annotated source,
* ``explore``     — the full Explorer session: profile, dynamic
  dependences, Guru strategy, codeview, simulated speedup,
* ``profile``     — the Loop Profile Analyzer: per-loop inclusive op
  counts, invocation counts and coverage (reports which execution
  engine ran on stderr),
* ``dyndep``      — the Dynamic Dependence Analyzer: loop-carried flow
  dependences observed in one instrumented execution (reports which
  execution engine ran on stderr),
* ``slice``       — slice a variable's uses inside a loop,
* ``parallel``    — execute the plan's DOALL loops on real cores
  (worker processes over shared memory) and verify bit-parity against
  the sequential transpiled engine,
* ``advise``      — memory-performance advisories,
* ``compile``     — transpile to a self-contained Python module,
* ``batch``       — run many workloads through the cached process-pool
  scheduler (``repro batch`` = the full corpus),
* ``serve``       — the multi-client analysis service over HTTP,
* ``trace``       — run the full pipeline under the tracer and print the
  span tree (or export Chrome ``trace_event`` JSON for
  ``chrome://tracing`` / Perfetto).

Workload names from the corpus (e.g. ``mdg``) may be given instead of a
file path.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from .explorer import ExplorerSession
from .ir import build_program
from .ir.program import Program
from .parallelize import Parallelizer, annotate_source
from .parallelize.memory_advisor import advise, report_lines
from .runtime import MACHINES, execute_parallel, run_program
from .viz import Codeview, render_slice


def _load(target: str):
    """A (program, inputs, assertions) triple from a path or corpus name
    (eager, lazy, and ``synth/s<seed>-<profile>`` names all resolve)."""
    import os
    from .workloads import get
    try:
        w = get(target)
    except (KeyError, ValueError) as exc:
        if os.path.exists(target):
            with open(target) as fh:
                text = fh.read()
            return build_program(text, target), [], []
        raise SystemExit(f"{target!r} is neither a file nor a corpus "
                         f"workload; {exc.args[0]}")
    return w.build(), w.inputs, w.user_assertions


def _load_source(target: str):
    """A (source, program name) pair — the incremental analyzer hashes
    raw text, so it needs the source itself, not a built Program."""
    import os
    from .workloads import get
    try:
        w = get(target)
    except (KeyError, ValueError):
        if os.path.exists(target):
            with open(target) as fh:
                return fh.read(), target
        raise SystemExit(f"{target!r} is neither a file nor a corpus "
                         f"workload")
    return w.source, w.name


def _machine(name: str):
    try:
        return MACHINES[name]
    except KeyError:
        raise SystemExit(f"unknown machine {name!r}; "
                         f"choose from {sorted(MACHINES)}")


def cmd_run(args) -> int:
    from .runtime.compile_engine import engine_label
    program, inputs, _ = _load(args.target)
    if args.inputs:
        inputs = [float(x) for x in args.inputs]
    interp = run_program(program, inputs, engine=args.engine)
    for value in interp.outputs:
        print(value)
    print(f"[{interp.ops} ops; engine: {engine_label(interp)}]",
          file=sys.stderr)
    return 0


def cmd_parallelize(args) -> int:
    program, inputs, assertions = _load(args.target)
    plan = Parallelizer(program,
                        assertions=assertions if args.assertions else [],
                        use_reductions=not args.no_reductions,
                        use_liveness=not args.no_liveness).plan()
    for loop in program.all_loops():
        lp = plan.plan_for(loop)
        tag = "PARALLEL" if lp.parallel else "sequential"
        print(f"{loop.name}: {tag}")
        for vp in lp.vars.values():
            line = f"    {vp.display_name}: {vp.status}"
            if vp.reason:
                line += f"  ({vp.reason})"
            print(line)
    if args.annotate:
        print("\n--- annotated source ---")
        print(annotate_source(program, plan))
    return 0


def cmd_analyze(args) -> int:
    from .analysis.incremental import (IncrementalAnalyzer,
                                       proc_cache_stats, set_proc_store)
    from .service.artifacts import ArtifactStore
    source, name = _load_source(args.target)
    if args.cache_dir:
        set_proc_store(ArtifactStore(args.cache_dir))
    program = build_program(source, name)
    analyzer = IncrementalAnalyzer(program, source)
    before = proc_cache_stats()
    artifact = analyzer.analysis_artifact(slice_names=args.slice or (),
                                          workers=args.workers)
    after = proc_cache_stats()
    for loop_name, row in artifact["plan"].items():
        tag = "PARALLEL" if row["parallel"] else "sequential"
        print(f"{loop_name}: {tag}")
        if args.verbose:
            for var, vp in row["vars"].items():
                line = f"    {var}: {vp['status']}"
                if vp["reason"]:
                    line += f"  ({vp['reason']})"
                print(line)
    for query, per_var in artifact["slices"].items():
        print(f"slice {query}:")
        for var, counts in per_var.items():
            print(f"    {var}: program={counts['program']} "
                  f"control={counts['control']} "
                  f"cr={counts['program_cr']}/{counts['control_cr']} "
                  f"ar={counts['program_ar']}/{counts['control_ar']}")
    hits = after["hit"] - before["hit"]
    misses = after["miss"] - before["miss"]
    # entries span all three cache levels (plan rows, summaries,
    # liveness contexts), so they exceed the procedure count
    print(f"[{len(artifact['procs'])} procedures; proc-cache "
          f"{hits} hits / {misses} misses]", file=sys.stderr)
    return 0


def cmd_explore(args) -> int:
    program, inputs, assertions = _load(args.target)
    machine = _machine(args.machine)
    session = ExplorerSession(program, inputs=inputs, machine=machine,
                              use_liveness=not args.no_liveness)
    result = session.run_automatic()
    print("== automatic parallelization ==")
    for line in session.summary_lines():
        print(line)
    print("\n== Parallelization Guru ==")
    for line in session.guru.strategy_lines():
        print(line)
    if args.codeview:
        targets = session.guru.targets()
        focus = targets[0].loop if targets else None
        print("\n== codeview ==")
        view = Codeview(program, session.plan)
        print(view.render(focus=focus))
        print(view.legend())
    if assertions and args.assertions:
        print("\n== applying workload assertions ==")
        outcomes, result = session.apply_assertions(assertions)
        for o in outcomes:
            status = "accepted" if o.accepted else "REJECTED"
            print(f"{o.assertion}: {status}")
            for w in o.warnings:
                print(f"  warning: {w}")
        for line in session.summary_lines():
            print(line)
    return 0


def cmd_profile(args) -> int:
    from .runtime.compile_engine import engine_label
    from .runtime.profiler import profile_program
    program, inputs, _ = _load(args.target)
    if args.inputs:
        inputs = [float(x) for x in args.inputs]
    machine = _machine(args.machine)
    profiler = profile_program(program, inputs, engine=args.engine)
    loops = sorted(profiler.executed_loops(),
                   key=lambda p: -p.total_ops)
    print(f"{'loop':<18s} {'total ops':>12s} {'inv':>6s} {'iters':>9s} "
          f"{'coverage':>9s} {'grain ms':>9s}")
    for prof in loops:
        print(f"{prof.name:<18s} {prof.total_ops:>12d} "
              f"{prof.invocations:>6d} {prof.iterations:>9d} "
              f"{profiler.coverage_of(prof.loop):>8.1%} "
              f"{profiler.granularity_ms(prof.loop, machine):>9.3f}")
    print(f"[{profiler.total_ops} ops; engine: "
          f"{engine_label(profiler.interpreter)}]", file=sys.stderr)
    return 0


def cmd_dyndep(args) -> int:
    from .runtime.compile_engine import engine_label
    from .runtime.dyndep import analyze_dependences, reduction_stmt_ids
    program, inputs, _ = _load(args.target)
    if args.inputs:
        inputs = [float(x) for x in args.inputs]
    skip = set() if args.keep_reductions else reduction_stmt_ids(program)
    analyzer = analyze_dependences(program, inputs, skip_stmt_ids=skip,
                                   sample_stride=args.stride,
                                   engine=args.engine)
    loops = {loop.stmt_id: loop for loop in program.all_loops()}
    for loop in program.all_loops():
        count = analyzer.carried.get(loop.stmt_id, 0)
        if not count:
            continue
        vars_ = sorted(name for (lid, name) in analyzer.carried_by_var
                       if lid == loop.stmt_id)
        print(f"{loop.name}: {count} loop-carried flow dependence(s) "
              f"on {', '.join(vars_)}")
        for wline, rline in analyzer.witnesses.get(loop.stmt_id, []):
            print(f"    write line {wline} -> read line {rline}")
    clean = [loop.name for sid, loop in loops.items()
             if sid not in analyzer.carried]
    if clean:
        print(f"no carried dependences observed: {', '.join(clean)}")
    print(f"[sampled {analyzer.sampled_accesses} accesses, skipped "
          f"{analyzer.skipped_accesses}; engine: "
          f"{engine_label(analyzer.interpreter)}]", file=sys.stderr)
    return 0


def cmd_slice(args) -> int:
    from .ir.statements import AssignStmt
    from .ir.expressions import ArrayRef, VarRef
    from .slicing import Slicer
    program, _, _ = _load(args.target)
    loop = program.loop(args.loop)
    proc = program.procedures[loop.proc_name]
    symbol = proc.symbols.lookup(args.variable.lower())
    if symbol is None:
        raise SystemExit(f"no variable {args.variable!r} in "
                         f"{loop.proc_name}")
    slicer = Slicer(program)
    stmt = None
    for s in loop.body.walk():
        for expr in s.sub_expressions():
            for node in expr.walk():
                if isinstance(node, (VarRef, ArrayRef)) and \
                        node.symbol is symbol:
                    stmt = s
                    break
    if stmt is None:
        raise SystemExit(f"{args.variable} is not read inside {args.loop}")
    res = slicer.slice_of_use(
        stmt, symbol, kind=args.kind,
        array_restricted=args.array_restricted,
        region_loop=loop if args.region_restricted else None)
    print(render_slice(program, res, around_loop=loop))
    return 0


def cmd_parallel(args) -> int:
    import time
    from .runtime.par_backend import ParallelRunner
    from .runtime.transpile import load_module
    program, inputs, assertions = _load(args.target)
    if args.inputs:
        inputs = [float(x) for x in args.inputs]
    plan = Parallelizer(
        program,
        assertions=assertions if args.assertions else []).plan()
    runner = ParallelRunner(program, plan, workers=args.workers)
    t0 = time.perf_counter()
    result = runner.execute(inputs)
    par_wall = time.perf_counter() - t0
    for value in result.outputs:
        print(value)
    run = load_module(program).namespace["run"]
    t0 = time.perf_counter()
    seq_out = run(inputs)
    seq_wall = time.perf_counter() - t0
    parity = "bit-identical" if seq_out == result.outputs else "DIVERGED"
    npar = len(plan.parallel_loops())
    print(f"[{result.ops} ops; {result.workers} workers; "
          f"{result.offloaded}/{npar} parallel loops offloadable; "
          f"{result.dispatches} dispatches, {result.declined} declined]",
          file=sys.stderr)
    print(f"[wall {par_wall:.3f}s parallel vs {seq_wall:.3f}s "
          f"sequential ({seq_wall / par_wall:.2f}x); outputs {parity} "
          f"to the transpiled engine]", file=sys.stderr)
    if args.rejects and result.rejects:
        for loop, why in sorted(result.rejects.items()):
            print(f"[not offloadable: {loop}: {why}]", file=sys.stderr)
    return 0 if seq_out == result.outputs else 1


def cmd_compile(args) -> int:
    from .runtime.transpile import transpile_to_python
    program, _, _ = _load(args.target)
    text = transpile_to_python(program)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(text)
        print(f"wrote {args.output}")
    else:
        print(text)
    return 0


def cmd_batch(args) -> int:
    import json
    import time
    from .service import (AnalysisRequest, ArtifactStore, BatchScheduler,
                          ServiceMetrics, canonical_json)
    from .workloads import ALL, get
    names = args.names or sorted(ALL)
    try:
        for name in names:
            get(name)
    except (KeyError, ValueError) as exc:
        raise SystemExit(str(exc.args[0]))
    options = {"engine": args.engine, "machine": args.machine,
               "use_liveness": not args.no_liveness,
               "assertions": args.assertions}
    requests = [AnalysisRequest(name, options=options) for name in names]
    metrics = ServiceMetrics()
    store = ArtifactStore(args.cache_dir, metrics=metrics)
    tracer = None
    if getattr(args, "trace", None):
        from .obs import Tracer
        tracer = Tracer()
    t0 = time.perf_counter()
    with BatchScheduler(store, metrics=metrics, workers=args.workers,
                        inline=args.sequential,
                        tracer=tracer) as scheduler:
        jobs = [scheduler.submit(r) for r in requests]
        scheduler.wait(jobs)
        artifacts = [scheduler.artifact(j) for j in jobs]
    elapsed = time.perf_counter() - t0
    failed = 0
    if args.json:
        print(canonical_json({n: a for n, a in zip(names, artifacts)}))
    for name, job, artifact in zip(names, jobs, artifacts):
        # Exit status keys on the job *state*, not on artifact presence:
        # a done job whose artifact was evicted from a memory-only store
        # is not a failure, while a failed job must be nonzero even if a
        # stale artifact exists under the same key.
        if job.state == "failed":
            failed += 1
            print(f"{name:14s} FAILED  {job.error}", file=sys.stderr)
        elif artifact is None:
            print(f"{name:14s} done (artifact evicted from cache; rerun "
                  f"with --cache-dir to keep it)", file=sys.stderr)
        elif not args.json:
            ex = artifact["execution"]
            tag = "cached" if job.cached else "computed"
            print(f"{name:14s} {tag:8s} speedup {ex['speedup']:5.2f}x  "
                  f"coverage {ex['coverage']:6.1%}  "
                  f"key {job.key[:12]}")
    if tracer is not None:
        from .obs import to_chrome
        with open(args.trace, "w") as fh:
            json.dump(to_chrome(tracer.to_dicts()), fh)
        print(f"[trace: {len(tracer.finished_spans())} spans -> "
              f"{args.trace}]", file=sys.stderr)
    snap = metrics.snapshot()
    print(f"[{len(names)} jobs in {elapsed:.2f}s; cache hit-rate "
          f"{snap['cache_hit_rate']:.0%}]", file=sys.stderr)
    return 1 if failed else 0


def cmd_serve(args) -> int:
    from .service import AnalysisServer, AsyncAnalysisServer
    kwargs = dict(cache_dir=args.cache_dir, workers=args.workers,
                  host=args.host, port=args.port,
                  quiet=not args.verbose,
                  inject=args.inject,
                  default_deadline_s=args.default_deadline,
                  max_jobs=args.max_jobs,
                  max_queue=args.max_queue,
                  allow_faults=(True if args.allow_faults else None))
    if args.shards >= 1:
        # Scale-out mode: asyncio front end over key-sharded pools.
        server = AsyncAnalysisServer(shards=args.shards, **kwargs)
    else:
        # --shards 0: the legacy thread-per-connection single-pool server.
        server = AnalysisServer(**kwargs)
    if args.inject:
        print(f"[chaos] fault injection active: {args.inject}", flush=True)
    elif args.allow_faults:
        print("[chaos] per-request fault directives allowed", flush=True)
    if args.shards >= 1:
        # The async server binds inside serve_forever; start the loop in
        # a background thread so the bound URL (port 0 included) is
        # printable before blocking.
        server.start()
        print(f"analysis service listening on {server.url} "
              f"({args.shards} shards)", flush=True)
    else:
        print(f"analysis service listening on {server.url}", flush=True)
    print("  POST /jobs {\"workload\": \"mdg\"}   GET /jobs/<id>")
    print("  GET /jobs/<id>/events  (progress; SSE with "
          "Accept: text/event-stream)")
    print("  GET /artifacts/<key>   GET /corpus   GET /metrics")
    print("  GET /trace/<job_id>    (per-job span trace)", flush=True)
    try:
        if args.shards >= 1:
            import threading
            threading.Event().wait()      # serve from the started thread
        else:
            server.serve_forever()
    except KeyboardInterrupt:
        print("\nshutting down")
        server.stop()
    return 0


def cmd_trace(args) -> int:
    import json
    from .obs import (Tracer, activate, phase_totals, render_tree,
                      to_chrome)
    from .service import AnalysisRequest
    from .service.jobs import execute_request
    # slicing is demand-driven now; ask for the guru targets' slices so
    # the trace exercises the full phase taxonomy
    options = {"engine": args.engine, "machine": args.machine,
               "slice": ["targets"]}
    target = args.target
    import os
    from .workloads import ALL
    if target in ALL:
        request = AnalysisRequest(target, options=options)
    elif os.path.exists(target):
        with open(target) as fh:
            request = AnalysisRequest(source=fh.read(),
                                      program_name=target,
                                      inputs=[], options=options)
    else:
        raise SystemExit(
            f"{target!r} is neither a file nor a corpus workload; "
            f"workloads: {', '.join(sorted(ALL))}")
    tracer = Tracer()
    with activate(tracer):
        execute_request(request)
    spans = tracer.to_dicts()
    if args.export == "chrome":
        payload = json.dumps(to_chrome(spans))
        if args.output:
            with open(args.output, "w") as fh:
                fh.write(payload)
            print(f"wrote {len(spans)} spans to {args.output} "
                  f"(open in chrome://tracing or Perfetto)",
                  file=sys.stderr)
        else:
            print(payload)
        return 0
    for line in render_tree(spans, min_ms=args.min_ms):
        print(line)
    print("\n-- phase totals --")
    totals = phase_totals(spans)
    width = max(len(n) for n in totals)
    for name, agg in sorted(totals.items(),
                            key=lambda kv: -kv[1]["total_s"]):
        print(f"{name:<{width}s}  x{agg['count']:<3d} "
              f"total {agg['total_s'] * 1e3:9.2f} ms  "
              f"max {agg['max_s'] * 1e3:8.2f} ms")
    return 0


def cmd_synth(args) -> int:
    import json
    from .workloads import synth
    if args.list_profiles:
        for prof in synth.PROFILES:
            print(f"{prof:10s} {synth.SPECS[prof].description}")
        return 0
    if args.slice is not None:
        for name in synth.pinned_slice(args.slice):
            print(name)
        return 0
    w = synth.generate(args.seed, args.profile)
    if args.manifest:
        print(json.dumps(w.manifest, indent=2, sort_keys=True))
    else:
        print(w.source)
        print(f"[{w.name}: {w.manifest['plan']['parallel_count']}/"
              f"{w.manifest['plan']['loop_count']} loops parallel; "
              f"reference {w.manifest['reference']['ops']} ops; "
              f"sha256 {w.manifest['source_sha256'][:12]}]",
              file=sys.stderr)
    return 0


def cmd_synthstats(args) -> int:
    from .workloads.synth.stats import render_table, trait_table
    profiles = args.profiles or ()
    rows = trait_table(seeds_per_profile=args.seeds, profiles=profiles)
    print(render_table(rows))
    total = sum(r[2] for r in rows)
    print(f"[{sum(r[1] for r in rows)} generated programs, {total} "
          f"loops classified]", file=sys.stderr)
    return 0


def cmd_advise(args) -> int:
    program, _, assertions = _load(args.target)
    plan = Parallelizer(program, assertions=assertions).plan()
    for line in report_lines(advise(program, plan)):
        print(line)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SUIF Explorer reproduction - interactive and "
                    "interprocedural parallelization of mini-Fortran")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("run", help="execute a program")
    p.add_argument("target")
    p.add_argument("--inputs", nargs="*", help="values for READ statements")
    p.add_argument("--engine", default="compiled",
                   choices=["compiled", "transpiled", "tree"])
    p.set_defaults(func=cmd_run)

    p = sub.add_parser("parallelize", help="automatic parallelization plan")
    p.add_argument("target")
    p.add_argument("--annotate", action="store_true",
                   help="print the directive-annotated source")
    p.add_argument("--assertions", action="store_true",
                   help="apply the workload's user assertions")
    p.add_argument("--no-reductions", action="store_true")
    p.add_argument("--no-liveness", action="store_true")
    p.set_defaults(func=cmd_parallelize)

    p = sub.add_parser("analyze", help="incremental static analysis "
                       "served from the per-procedure cone cache")
    p.add_argument("target")
    p.add_argument("--cache-dir", default=None,
                   help="persistent proc/ cache root (warm runs reuse "
                   "every unchanged dependency cone)")
    p.add_argument("--slice", action="append", metavar="LOOP[@VAR]",
                   help="demand slice query point (repeatable)")
    p.add_argument("--workers", type=int, default=0,
                   help="fan independent cones out onto N processes")
    p.add_argument("-v", "--verbose", action="store_true",
                   help="per-variable verdicts")
    p.set_defaults(func=cmd_analyze)

    p = sub.add_parser("explore", help="full Explorer session")
    p.add_argument("target")
    p.add_argument("--machine", default="alphaserver",
                   choices=sorted(MACHINES))
    p.add_argument("--codeview", action="store_true")
    p.add_argument("--assertions", action="store_true")
    p.add_argument("--no-liveness", action="store_true")
    p.set_defaults(func=cmd_explore)

    p = sub.add_parser("profile", help="per-loop execution profile")
    p.add_argument("target")
    p.add_argument("--inputs", nargs="*", help="values for READ statements")
    p.add_argument("--engine", default="compiled",
                   choices=["compiled", "transpiled", "tree"])
    p.add_argument("--machine", default="alphaserver",
                   choices=sorted(MACHINES))
    p.set_defaults(func=cmd_profile)

    p = sub.add_parser("dyndep", help="dynamic loop-carried dependences")
    p.add_argument("target")
    p.add_argument("--inputs", nargs="*", help="values for READ statements")
    p.add_argument("--engine", default="compiled",
                   choices=["compiled", "transpiled", "tree"])
    p.add_argument("--stride", type=int, default=1,
                   help="iteration sampling stride (section 2.5.2 "
                        "batch skipping; default: 1 = sample everything)")
    p.add_argument("--keep-reductions", action="store_true",
                   help="instrument compiler-recognized reduction "
                        "updates too (default: skipped)")
    p.set_defaults(func=cmd_dyndep)

    p = sub.add_parser("slice", help="slice a variable's use in a loop")
    p.add_argument("target")
    p.add_argument("loop", help="loop name, e.g. interf/1000")
    p.add_argument("variable")
    p.add_argument("--kind", default="program",
                   choices=["program", "data"])
    p.add_argument("--array-restricted", action="store_true")
    p.add_argument("--region-restricted", action="store_true")
    p.set_defaults(func=cmd_slice)

    p = sub.add_parser("advise", help="memory-performance advisories")
    p.add_argument("target")
    p.set_defaults(func=cmd_advise)

    p = sub.add_parser("parallel", help="execute DOALL loops on real "
                       "cores and check parity against the sequential "
                       "transpiled engine")
    p.add_argument("target")
    p.add_argument("--workers", type=int, default=2,
                   help="worker process count (default 2)")
    p.add_argument("--inputs", nargs="*", help="values for READ statements")
    p.add_argument("--assertions", action="store_true",
                   help="apply the workload's user assertions to the plan")
    p.add_argument("--rejects", action="store_true",
                   help="list parallel loops codegen could not offload")
    p.set_defaults(func=cmd_parallel)

    p = sub.add_parser("compile", help="transpile to a Python module")
    p.add_argument("target")
    p.add_argument("-o", "--output", help="write to a file")
    p.set_defaults(func=cmd_compile)

    p = sub.add_parser("batch", help="analyze corpus workloads through "
                                     "the cached batch scheduler")
    p.add_argument("names", nargs="*",
                   help="workload names (default: the full corpus)")
    p.add_argument("--cache-dir", help="artifact store directory "
                                       "(default: in-memory only)")
    p.add_argument("--workers", type=int, help="process-pool size")
    p.add_argument("--sequential", action="store_true",
                   help="run inline in this process (no pool)")
    p.add_argument("--engine", default="compiled",
                   choices=["compiled", "transpiled", "tree"])
    p.add_argument("--machine", default="alphaserver",
                   choices=sorted(MACHINES))
    p.add_argument("--assertions", action="store_true",
                   help="apply each workload's user assertions")
    p.add_argument("--no-liveness", action="store_true")
    p.add_argument("--json", action="store_true",
                   help="print the artifacts as canonical JSON")
    p.add_argument("--trace", metavar="FILE",
                   help="record spans for the whole batch and write "
                        "Chrome trace_event JSON to FILE")
    p.set_defaults(func=cmd_batch)

    p = sub.add_parser("trace", help="run the pipeline under the tracer "
                                     "and print the span tree")
    p.add_argument("target", help="corpus workload name or source file")
    p.add_argument("--export", choices=["chrome"],
                   help="emit Chrome trace_event JSON instead of a tree")
    p.add_argument("-o", "--output", help="write the export to a file")
    p.add_argument("--min-ms", type=float, default=0.0,
                   help="hide tree spans shorter than this (default: 0)")
    p.add_argument("--engine", default="compiled",
                   choices=["compiled", "transpiled", "tree"])
    p.add_argument("--machine", default="alphaserver",
                   choices=sorted(MACHINES))
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser("synth", help="generate a seeded synthetic "
                                     "workload (print source or trait "
                                     "manifest)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--profile", default="mix",
                   help="trait profile (see --list-profiles)")
    p.add_argument("--manifest", action="store_true",
                   help="print the trait manifest JSON instead of source")
    p.add_argument("--list-profiles", action="store_true",
                   help="list trait profiles and exit")
    p.add_argument("--slice", type=int, metavar="N",
                   help="print the first N names of the canonical "
                        "pinned corpus slice and exit")
    p.set_defaults(func=cmd_synth)

    p = sub.add_parser("synthstats", help="trait-coverage table: which "
                       "analysis wins per trait profile over a generated "
                       "corpus slice (machine-made Fig. 6.2 extension)")
    p.add_argument("--seeds", type=int, default=4,
                   help="seeds per profile (default 4)")
    p.add_argument("--profiles", nargs="*",
                   help="restrict to these profiles (default: all)")
    p.set_defaults(func=cmd_synthstats)

    p = sub.add_parser("serve", help="serve the analysis API over HTTP")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8077)
    p.add_argument("--cache-dir", help="artifact store directory")
    p.add_argument("--workers", type=int, help="process-pool size")
    p.add_argument("--verbose", action="store_true",
                   help="log every HTTP request")
    p.add_argument("--inject", metavar="SPEC",
                   help="seeded fault-injection plan, e.g. "
                        "'crash=0.2,hang=0.05,seed=7' (chaos testing; "
                        "also allows per-request fault directives)")
    p.add_argument("--allow-faults", action="store_true",
                   help="accept options.fault chaos directives on POST "
                        "/jobs without a chaos plan (default: rejected "
                        "with 400 unless --inject is active)")
    p.add_argument("--default-deadline", type=float, metavar="SECONDS",
                   help="per-job wall-time deadline applied when a "
                        "request sets no deadline_s option")
    p.add_argument("--max-jobs", type=int, default=1024,
                   help="finished-job retention cap (oldest evicted)")
    p.add_argument("--shards", type=int, default=2,
                   help="worker pools sharded by artifact content key "
                        "behind the asyncio front end (default 2; 0 = "
                        "legacy thread-per-connection single-pool server)")
    p.add_argument("--max-queue", type=int, metavar="M",
                   help="per-shard admission cap on in-flight jobs; "
                        "excess new work is shed with 429 + Retry-After "
                        "(default: unbounded)")
    p.set_defaults(func=cmd_serve)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
