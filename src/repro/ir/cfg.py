"""Per-procedure control-flow graphs over the structured IR.

Used by SSA construction (:mod:`repro.ssa`) and scalar liveness.  Because
the IR is structured, the CFG is built by a single recursive walk; DO loops
expand into init / test / body / increment blocks (so the loop index has
explicit defs for SSA), and IF arms expand into diamonds.

Each basic block holds a list of :class:`CfgItem`; items wrap either a real
simple statement or a pseudo-operation (loop init/test/incr, branch
condition) and expose uniform ``defs()`` / ``uses()`` in terms of scalar
symbols plus *weak* array defs.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set, Tuple

from .expressions import ArrayRef, Expression, VarRef
from .program import Procedure
from .statements import (AssignStmt, Block, CallStmt, CycleStmt, ExitStmt,
                         IfStmt, IoStmt, LoopStmt, NoopStmt, ReturnStmt,
                         Statement, StopStmt)
from .symbols import Symbol

STMT = "stmt"
LOOP_INIT = "loop_init"
LOOP_TEST = "loop_test"
LOOP_INCR = "loop_incr"
BRANCH = "branch"


class CfgItem:
    """One operation inside a basic block."""

    __slots__ = ("kind", "stmt", "cond")

    def __init__(self, kind: str, stmt: Statement,
                 cond: Optional[Expression] = None):
        self.kind = kind
        self.stmt = stmt          # underlying IR statement (loop / if / simple)
        self.cond = cond          # branch condition for BRANCH items

    # -- def/use sets --------------------------------------------------------
    def defs(self) -> List[Tuple[Symbol, bool]]:
        """(symbol, is_strong) pairs defined by this item.  Array-element
        stores are weak defs of the whole array (section 3.4.2: 'any store
        to an array element potentially modifies the entire array')."""
        if self.kind == STMT and isinstance(self.stmt, AssignStmt):
            tgt = self.stmt.target
            if isinstance(tgt, VarRef):
                return [(tgt.symbol, True)]
            return [(tgt.symbol, False)]
        if self.kind in (LOOP_INIT, LOOP_INCR):
            return [(self.stmt.index, True)]
        if self.kind == STMT and isinstance(self.stmt, IoStmt) \
                and self.stmt.kind == "read":
            out = []
            for item in self.stmt.items:
                if isinstance(item, VarRef):
                    out.append((item.symbol, True))
                elif isinstance(item, ArrayRef):
                    out.append((item.symbol, False))
            return out
        return []

    def uses(self) -> List[Symbol]:
        """Symbols read by this item (arrays read as whole variables)."""
        exprs: List[Expression] = []
        if self.kind == STMT:
            s = self.stmt
            if isinstance(s, AssignStmt):
                exprs.append(s.value)
                if isinstance(s.target, ArrayRef):
                    exprs.extend(s.target.indices)
            elif isinstance(s, CallStmt):
                exprs.extend(s.args)
            elif isinstance(s, IoStmt) and s.kind == "print":
                exprs.extend(s.items)
            elif isinstance(s, IoStmt) and s.kind == "read":
                for item in s.items:
                    if isinstance(item, ArrayRef):
                        exprs.extend(item.indices)
        elif self.kind == LOOP_INIT:
            exprs.append(self.stmt.low)
        elif self.kind == LOOP_TEST:
            exprs.append(self.stmt.high)
            exprs.append(VarRef(self.stmt.index))
            if self.stmt.step is not None:
                exprs.append(self.stmt.step)
        elif self.kind == LOOP_INCR:
            exprs.append(VarRef(self.stmt.index))
            if self.stmt.step is not None:
                exprs.append(self.stmt.step)
        elif self.kind == BRANCH:
            exprs.append(self.cond)
        out: List[Symbol] = []
        for e in exprs:
            for ref in e.walk():
                if isinstance(ref, (VarRef, ArrayRef)):
                    out.append(ref.symbol)
        return out

    def __repr__(self):
        return f"CfgItem({self.kind}, {self.stmt!r})"


class BasicBlock:
    __slots__ = ("block_id", "items", "succs", "preds")

    def __init__(self, block_id: int):
        self.block_id = block_id
        self.items: List[CfgItem] = []
        self.succs: List["BasicBlock"] = []
        self.preds: List["BasicBlock"] = []

    def add_edge(self, other: "BasicBlock") -> None:
        if other not in self.succs:
            self.succs.append(other)
            other.preds.append(self)

    def __repr__(self):
        return f"BB{self.block_id}"


class Cfg:
    """CFG for one procedure.  ``entry`` and ``exit`` are empty blocks."""

    def __init__(self, proc: Procedure):
        self.proc = proc
        self._next_id = 0
        self.blocks: List[BasicBlock] = []
        self.entry = self._new_block()
        self.exit = self._new_block()
        # Map loop stmt_id -> (incr block, after block) for cycle/exit edges.
        self._loop_targets: Dict[int, Tuple[BasicBlock, BasicBlock]] = {}
        self._loop_stack: List[LoopStmt] = []
        last = self._build_block(proc.body, self.entry)
        last.add_edge(self.exit)
        self._prune_unreachable()

    def _new_block(self) -> BasicBlock:
        bb = BasicBlock(self._next_id)
        self._next_id += 1
        self.blocks.append(bb)
        return bb

    # -- construction -------------------------------------------------------
    def _build_block(self, block: Block, current: BasicBlock) -> BasicBlock:
        for stmt in block.statements:
            current = self._build_stmt(stmt, current)
        return current

    def _build_stmt(self, stmt: Statement, current: BasicBlock) -> BasicBlock:
        if isinstance(stmt, (AssignStmt, CallStmt, IoStmt, NoopStmt)):
            current.items.append(CfgItem(STMT, stmt))
            return current
        if isinstance(stmt, IfStmt):
            join = self._new_block()
            for cond, arm_block in stmt.arms:
                current.items.append(CfgItem(BRANCH, stmt, cond))
                arm_entry = self._new_block()
                current.add_edge(arm_entry)
                arm_end = self._build_block(arm_block, arm_entry)
                arm_end.add_edge(join)
                fall = self._new_block()
                current.add_edge(fall)
                current = fall
            if stmt.else_block is not None:
                end = self._build_block(stmt.else_block, current)
                end.add_edge(join)
            else:
                current.add_edge(join)
            return join
        if isinstance(stmt, LoopStmt):
            current.items.append(CfgItem(LOOP_INIT, stmt))
            header = self._new_block()
            header.items.append(CfgItem(LOOP_TEST, stmt))
            current.add_edge(header)
            body_entry = self._new_block()
            after = self._new_block()
            incr = self._new_block()
            incr.items.append(CfgItem(LOOP_INCR, stmt))
            header.add_edge(body_entry)
            header.add_edge(after)
            self._loop_targets[stmt.stmt_id] = (incr, after)
            self._loop_stack.append(stmt)
            body_end = self._build_block(stmt.body, body_entry)
            self._loop_stack.pop()
            body_end.add_edge(incr)
            incr.add_edge(header)
            return after
        if isinstance(stmt, CycleStmt):
            loop = self._resolve_cycle_target(stmt)
            incr, _ = self._loop_targets[loop.stmt_id]
            current.add_edge(incr)
            return self._new_block()    # unreachable continuation
        if isinstance(stmt, ExitStmt):
            if not self._loop_stack:
                raise ValueError(f"EXIT outside loop at line {stmt.line}")
            _, after = self._loop_targets[self._loop_stack[-1].stmt_id]
            current.add_edge(after)
            return self._new_block()
        if isinstance(stmt, (ReturnStmt, StopStmt)):
            current.add_edge(self.exit)
            return self._new_block()
        raise TypeError(f"unexpected statement {stmt!r}")

    def _resolve_cycle_target(self, stmt: CycleStmt) -> LoopStmt:
        if stmt.target_label is None:
            if not self._loop_stack:
                raise ValueError(f"CYCLE outside loop at line {stmt.line}")
            return self._loop_stack[-1]
        for loop in reversed(self._loop_stack):
            if loop.term_label == stmt.target_label:
                return loop
        raise ValueError(
            f"CYCLE target label {stmt.target_label} not found "
            f"(line {stmt.line})")

    def _prune_unreachable(self) -> None:
        reachable: Set[int] = set()
        work = [self.entry]
        while work:
            bb = work.pop()
            if bb.block_id in reachable:
                continue
            reachable.add(bb.block_id)
            work.extend(bb.succs)
        reachable.add(self.exit.block_id)
        self.blocks = [b for b in self.blocks if b.block_id in reachable]
        for b in self.blocks:
            b.succs = [s for s in b.succs if s.block_id in reachable]
            b.preds = [p for p in b.preds if p.block_id in reachable]

    # -- traversal ----------------------------------------------------------
    def reverse_post_order(self) -> List[BasicBlock]:
        visited: Set[int] = set()
        order: List[BasicBlock] = []

        def visit(bb: BasicBlock) -> None:
            visited.add(bb.block_id)
            for s in bb.succs:
                if s.block_id not in visited:
                    visit(s)
            order.append(bb)

        visit(self.entry)
        for bb in self.blocks:     # disconnected exit etc.
            if bb.block_id not in visited:
                visit(bb)
        order.reverse()
        return order

    def items(self) -> Iterator[CfgItem]:
        for bb in self.blocks:
            yield from bb.items
