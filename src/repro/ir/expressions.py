"""Resolved IR expressions.

Unlike the AST, every variable reference carries its :class:`Symbol`, and
array references are distinguished from intrinsic calls.  Expressions know
how to enumerate the scalar/array reads they perform — the raw material for
every data-flow analysis in the system.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence

from .symbols import Symbol

ARITH_OPS = ("+", "-", "*", "/", "**")
CMP_OPS = ("<", "<=", ">", ">=", "==", "/=")
LOGIC_OPS = ("and", "or")


class Expression:
    __slots__ = ()

    def walk(self) -> Iterator["Expression"]:
        """Yield self and all sub-expressions, pre-order."""
        yield self

    def scalar_reads(self) -> Iterator["VarRef"]:
        for node in self.walk():
            if isinstance(node, VarRef):
                yield node

    def array_reads(self) -> Iterator["ArrayRef"]:
        for node in self.walk():
            if isinstance(node, ArrayRef):
                yield node

    def referenced_symbols(self) -> Iterator[Symbol]:
        for node in self.walk():
            if isinstance(node, (VarRef, ArrayRef)):
                yield node.symbol


class Const(Expression):
    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value

    def __repr__(self):
        return repr(self.value)

    def __eq__(self, other):
        return isinstance(other, Const) and self.value == other.value

    def __hash__(self):
        return hash(("Const", self.value))


class StrConst(Expression):
    __slots__ = ("value",)

    def __init__(self, value: str):
        self.value = value

    def __repr__(self):
        return f"'{self.value}'"


class VarRef(Expression):
    """Read (or, as an assignment target, write) of a scalar variable."""

    __slots__ = ("symbol",)

    def __init__(self, symbol: Symbol):
        self.symbol = symbol

    def __repr__(self):
        return self.symbol.name

    def __eq__(self, other):
        return isinstance(other, VarRef) and self.symbol is other.symbol

    def __hash__(self):
        return hash(("VarRef", id(self.symbol)))


class ArrayRef(Expression):
    """``a(i, j)`` — element reference with one subscript per dimension."""

    __slots__ = ("symbol", "indices")

    def __init__(self, symbol: Symbol, indices: Sequence[Expression]):
        self.symbol = symbol
        self.indices = list(indices)

    def walk(self) -> Iterator[Expression]:
        yield self
        for idx in self.indices:
            yield from idx.walk()

    def __repr__(self):
        return f"{self.symbol.name}({', '.join(map(repr, self.indices))})"


class BinaryOp(Expression):
    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Expression, right: Expression):
        self.op = op
        self.left = left
        self.right = right

    def walk(self) -> Iterator[Expression]:
        yield self
        yield from self.left.walk()
        yield from self.right.walk()

    def __repr__(self):
        return f"({self.left!r} {self.op} {self.right!r})"


class UnaryOp(Expression):
    __slots__ = ("op", "operand")

    def __init__(self, op: str, operand: Expression):
        self.op = op
        self.operand = operand

    def walk(self) -> Iterator[Expression]:
        yield self
        yield from self.operand.walk()

    def __repr__(self):
        return f"({self.op}{self.operand!r})"


class Intrinsic(Expression):
    """Intrinsic function application (MIN, MAX, ABS, MOD, SQRT, ...)."""

    __slots__ = ("name", "args")

    def __init__(self, name: str, args: Sequence[Expression]):
        self.name = name
        self.args = list(args)

    def walk(self) -> Iterator[Expression]:
        yield self
        for a in self.args:
            yield from a.walk()

    def __repr__(self):
        return f"{self.name}({', '.join(map(repr, self.args))})"


def expr_uses_symbol(expr: Expression, symbol: Symbol) -> bool:
    return any(s is symbol for s in expr.referenced_symbols())


def fold_constants(expr: Expression) -> Expression:
    """Light constant folding used by declaration-bound evaluation."""
    if isinstance(expr, BinaryOp):
        left = fold_constants(expr.left)
        right = fold_constants(expr.right)
        if isinstance(left, Const) and isinstance(right, Const):
            return Const(_apply_binop(expr.op, left.value, right.value))
        return BinaryOp(expr.op, left, right)
    if isinstance(expr, UnaryOp):
        inner = fold_constants(expr.operand)
        if isinstance(inner, Const):
            if expr.op == "-":
                return Const(-inner.value)
            if expr.op == "not":
                return Const(not inner.value)
        return UnaryOp(expr.op, inner)
    return expr


def _apply_binop(op: str, a, b):
    if op == "+":
        return a + b
    if op == "-":
        return a - b
    if op == "*":
        return a * b
    if op == "/":
        if isinstance(a, int) and isinstance(b, int):
            q = abs(a) // abs(b)
            return q if (a >= 0) == (b >= 0) else -q
        return a / b
    if op == "**":
        return a ** b
    if op == "<":
        return a < b
    if op == "<=":
        return a <= b
    if op == ">":
        return a > b
    if op == ">=":
        return a >= b
    if op == "==":
        return a == b
    if op == "/=":
        return a != b
    if op == "and":
        return bool(a) and bool(b)
    if op == "or":
        return bool(a) or bool(b)
    raise ValueError(f"unknown operator {op!r}")
