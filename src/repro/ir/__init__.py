"""Resolved intermediate representation of mini-Fortran programs."""

from .builder import build_program
from .callgraph import CallGraph
from .cfg import Cfg
from .expressions import (ArrayRef, BinaryOp, Const, Expression, Intrinsic,
                          StrConst, UnaryOp, VarRef)
from .printer import format_expr, format_procedure, format_program, \
    format_statement
from .program import Procedure, Program
from .regions import Region, RegionGraph
from .statements import (AssignStmt, Block, CallStmt, CycleStmt, ExitStmt,
                         IfStmt, IoStmt, LoopStmt, NoopStmt, ReturnStmt,
                         Statement, StopStmt, enclosing_loops)
from .symbols import CommonBlock, Dimension, Symbol, SymbolTable

__all__ = [
    "build_program", "CallGraph", "Cfg",
    "ArrayRef", "BinaryOp", "Const", "Expression", "Intrinsic", "StrConst",
    "UnaryOp", "VarRef",
    "format_expr", "format_procedure", "format_program", "format_statement",
    "Procedure", "Program", "Region", "RegionGraph",
    "AssignStmt", "Block", "CallStmt", "CycleStmt", "ExitStmt", "IfStmt",
    "IoStmt", "LoopStmt", "NoopStmt", "ReturnStmt", "Statement", "StopStmt",
    "enclosing_loops",
    "CommonBlock", "Dimension", "Symbol", "SymbolTable",
]
