"""Symbols, array shapes, and COMMON-block layout.

Fortran semantics the analyses depend on live here:

* arrays have per-dimension inclusive bounds (default lower bound 1),
  possibly *adjustable* (bounds are expressions over formals) or
  *assumed-size* (``*`` last dimension),
* COMMON blocks give every procedure its own *view* (name, shape, element
  offset) over one shared storage sequence — the source of the aliasing
  that the array-liveness-driven common-block splitting (paper section 5.5)
  untangles.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

INT = "integer"
REAL = "real"


class Dimension:
    """One array dimension with inclusive bounds ``low:high``.

    Bounds are IR expressions (:mod:`repro.ir.expressions`); ``high`` may be
    None for an assumed-size ``*`` dimension.  ``constant_extent`` is filled
    in when both bounds fold to integers.
    """

    __slots__ = ("low", "high")

    def __init__(self, low, high):
        self.low = low
        self.high = high

    def constant_extent(self) -> Optional[int]:
        from .expressions import Const
        if isinstance(self.low, Const) and isinstance(self.high, Const):
            return int(self.high.value) - int(self.low.value) + 1
        return None

    def __repr__(self) -> str:
        return f"{self.low!r}:{self.high!r}"


class Symbol:
    """A scalar or array variable local to one procedure's scope.

    ``storage`` distinguishes where the value lives:

    * ``"local"`` — procedure-private,
    * ``"formal"`` — dummy argument (passed by reference),
    * ``"common"`` — a view into COMMON block ``common_block`` at element
      offset ``common_offset``,
    * ``"const"`` — PARAMETER constant with ``const_value``.
    """

    __slots__ = ("name", "type", "dims", "storage", "common_block",
                 "common_offset", "const_value", "proc_name")

    def __init__(self, name: str, type_: str = REAL,
                 dims: Optional[List[Dimension]] = None,
                 storage: str = "local",
                 common_block: Optional[str] = None,
                 common_offset: int = 0,
                 const_value=None,
                 proc_name: str = ""):
        self.name = name
        self.type = type_
        self.dims = dims or []
        self.storage = storage
        self.common_block = common_block
        self.common_offset = common_offset
        self.const_value = const_value
        self.proc_name = proc_name

    @property
    def is_array(self) -> bool:
        return bool(self.dims)

    @property
    def is_formal(self) -> bool:
        return self.storage == "formal"

    @property
    def is_common(self) -> bool:
        return self.storage == "common"

    @property
    def is_const(self) -> bool:
        return self.storage == "const"

    @property
    def rank(self) -> int:
        return len(self.dims)

    def constant_size(self) -> Optional[int]:
        """Total element count if all extents are constant, else None."""
        if not self.is_array:
            return 1
        total = 1
        for d in self.dims:
            e = d.constant_extent()
            if e is None:
                return None
            total *= e
        return total

    def qualified(self) -> str:
        return f"{self.proc_name}::{self.name}" if self.proc_name else self.name

    def __repr__(self) -> str:
        shape = "(" + ",".join(map(repr, self.dims)) + ")" if self.dims else ""
        return f"Symbol({self.qualified()}{shape}, {self.storage})"


class CommonView:
    """One procedure's declared view of a COMMON block: the ordered symbols
    it lays over the block's storage."""

    __slots__ = ("proc_name", "symbols")

    def __init__(self, proc_name: str, symbols: List[Symbol]):
        self.proc_name = proc_name
        self.symbols = symbols


class CommonBlock:
    """A COMMON block: shared flat storage plus all per-procedure views."""

    __slots__ = ("name", "views", "size")

    def __init__(self, name: str):
        self.name = name
        self.views: Dict[str, CommonView] = {}
        self.size = 0

    def add_view(self, view: CommonView) -> None:
        self.views[view.proc_name] = view
        offset = 0
        for sym in view.symbols:
            sym.common_offset = offset
            n = sym.constant_size()
            if n is None:
                raise ValueError(
                    f"COMMON /{self.name}/ member {sym.name} in "
                    f"{view.proc_name} must have constant shape")
            offset += n
        self.size = max(self.size, offset)

    def overlapping_pairs(self) -> List[Tuple[Symbol, Symbol]]:
        """All pairs of symbols from *different* views whose storage ranges
        overlap — the alias pairs (paper section 3.4.2 / 5.5)."""
        spans: List[Tuple[Symbol, int, int]] = []
        for view in self.views.values():
            for sym in view.symbols:
                size = sym.constant_size() or 0
                spans.append((sym, sym.common_offset,
                              sym.common_offset + size))
        pairs: List[Tuple[Symbol, Symbol]] = []
        for i, (a, alo, ahi) in enumerate(spans):
            for b, blo, bhi in spans[i + 1:]:
                if a.proc_name == b.proc_name:
                    continue
                if alo < bhi and blo < ahi:
                    pairs.append((a, b))
        return pairs


class SymbolTable:
    """Per-procedure name → Symbol mapping."""

    def __init__(self, proc_name: str):
        self.proc_name = proc_name
        self._symbols: Dict[str, Symbol] = {}

    def define(self, symbol: Symbol) -> Symbol:
        symbol.proc_name = self.proc_name
        self._symbols[symbol.name] = symbol
        return symbol

    def lookup(self, name: str) -> Optional[Symbol]:
        return self._symbols.get(name)

    def get_or_create(self, name: str, type_: str = REAL) -> Symbol:
        sym = self._symbols.get(name)
        if sym is None:
            inferred = INT if name[:1] in "ijklmn" else type_
            sym = self.define(Symbol(name, inferred))
        return sym

    def all(self) -> List[Symbol]:
        return list(self._symbols.values())

    def arrays(self) -> List[Symbol]:
        return [s for s in self._symbols.values() if s.is_array]

    def __contains__(self, name: str) -> bool:
        return name in self._symbols

    def __iter__(self):
        return iter(self._symbols.values())
