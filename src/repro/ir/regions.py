"""Region graph: the hierarchical program representation of section 5.2.

"A region graph is a hierarchical program representation where every
procedure, loop, and loop body in the program is represented as a region.
The edges connect a region to its subregions, i.e. from callers to callees,
and from code representing an outer scope to that of an inner scope."

Regions here are lightweight wrappers over the structured IR; the analyses
traverse them in bottom-up or top-down order.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Union

from .callgraph import CallGraph
from .program import Procedure, Program
from .statements import Block, CallStmt, LoopStmt, Statement

PROC = "proc"
LOOP = "loop"
LOOP_BODY = "loop_body"


class Region:
    """One node of the region graph."""

    __slots__ = ("kind", "proc", "loop", "region_id", "parent", "children")

    _counter = [0]

    def __init__(self, kind: str, proc: Procedure,
                 loop: Optional[LoopStmt] = None):
        self.kind = kind
        self.proc = proc
        self.loop = loop
        Region._counter[0] += 1
        self.region_id = Region._counter[0]
        self.parent: Optional[Region] = None
        self.children: List[Region] = []

    @property
    def name(self) -> str:
        if self.kind == PROC:
            return self.proc.name
        suffix = "" if self.kind == LOOP else ".body"
        return f"{self.loop.name}{suffix}"

    def block(self) -> Block:
        """The statement list this region directly contains.

        * proc region: the procedure body,
        * loop region: a one-statement view (the loop statement itself),
        * loop-body region: the loop body block.
        """
        if self.kind == PROC:
            return self.proc.body
        if self.kind == LOOP:
            return Block([self.loop])
        return self.loop.body

    def direct_statements(self) -> Iterator[Statement]:
        """Statements at this region's own nesting level (loops appear as
        single LoopStmt nodes; their insides belong to subregions)."""
        if self.kind == LOOP:
            yield self.loop
            return
        block = self.proc.body if self.kind == PROC else self.loop.body
        yield from _direct(block)

    def call_sites(self) -> List[CallStmt]:
        return [s for s in self.direct_statements_recursive_nonloop()
                if isinstance(s, CallStmt)]

    def direct_statements_recursive_nonloop(self) -> Iterator[Statement]:
        """All statements in this region excluding those inside nested
        loop subregions (i.e. IF bodies are included, loop bodies not)."""
        if self.kind == LOOP:
            return iter(())
        block = self.proc.body if self.kind == PROC else self.loop.body
        return _walk_stop_at_loops(block)

    def __repr__(self):
        return f"Region({self.kind}:{self.name})"


def _direct(block: Block) -> Iterator[Statement]:
    for stmt in block.statements:
        yield stmt


def _walk_stop_at_loops(block: Block) -> Iterator[Statement]:
    for stmt in block.statements:
        yield stmt
        if isinstance(stmt, LoopStmt):
            continue
        for child in stmt.children_blocks():
            yield from _walk_stop_at_loops(child)


class RegionGraph:
    """Region graph for a whole program.

    ``proc_region[p]`` is procedure p's region; ``loop_region[id(loop)]`` /
    ``body_region[id(loop)]`` give each loop's two regions.  ``bottom_up()``
    yields regions innermost-first within each procedure, procedures in
    callee-first order; ``top_down()`` is the reverse.
    """

    def __init__(self, program: Program,
                 callgraph: Optional[CallGraph] = None):
        self.program = program
        self.callgraph = callgraph or CallGraph(program)
        self.proc_region: Dict[str, Region] = {}
        self.loop_region: Dict[int, Region] = {}
        self.body_region: Dict[int, Region] = {}
        for proc in program.procedures.values():
            self._build_proc(proc)

    def _build_proc(self, proc: Procedure) -> None:
        root = Region(PROC, proc)
        self.proc_region[proc.name] = root

        def attach(loop: LoopStmt, parent: Region) -> None:
            lr = Region(LOOP, proc, loop)
            br = Region(LOOP_BODY, proc, loop)
            lr.parent = parent
            parent.children.append(lr)
            br.parent = lr
            lr.children.append(br)
            self.loop_region[loop.stmt_id] = lr
            self.body_region[loop.stmt_id] = br
            for inner in _immediate_inner_loops(loop.body):
                attach(inner, br)

        for top in _immediate_inner_loops(proc.body):
            attach(top, root)

    # -- traversal orders ---------------------------------------------------
    def bottom_up(self) -> Iterator[Region]:
        """Regions innermost-first, callee procedures before callers."""
        for proc_name in self.callgraph.bottom_up_order():
            root = self.proc_region.get(proc_name)
            if root is None:
                continue
            yield from self._post_order(root)

    def top_down(self) -> Iterator[Region]:
        order = list(self.bottom_up())
        return iter(reversed(order))

    def _post_order(self, region: Region) -> Iterator[Region]:
        for child in region.children:
            yield from self._post_order(child)
        yield region

    def region_of_loop(self, loop: LoopStmt) -> Region:
        return self.loop_region[loop.stmt_id]

    def body_of_loop(self, loop: LoopStmt) -> Region:
        return self.body_region[loop.stmt_id]

    def parent_region(self, region: Region) -> Optional[Region]:
        return region.parent


def _immediate_inner_loops(block: Block) -> List[LoopStmt]:
    """Loops at the top nesting level of ``block`` (descending into IFs but
    not into other loops)."""
    out: List[LoopStmt] = []

    def scan(b: Block) -> None:
        for stmt in b.statements:
            if isinstance(stmt, LoopStmt):
                out.append(stmt)
            else:
                for child in stmt.children_blocks():
                    scan(child)

    scan(block)
    return out
