"""Lowering from the mini-Fortran AST to the resolved, structured IR.

Responsibilities:

* symbol resolution with Fortran implicit typing (I–N integer),
* COMMON block layout and view registration,
* disambiguating ``name(args)`` into array references vs. intrinsics,
* **GOTO elimination** so every later pass sees structured code only:

  - ``GOTO L`` where ``L`` is the terminating label of an enclosing DO
    becomes :class:`CycleStmt` (hydro's ``IF (K1 .EQ. 0) GO TO 85``),
  - a conditional forward ``GOTO L`` jumping over statements inside the
    same statement list becomes an ``IF (.NOT. cond)`` guard around the
    skipped statements (mdg's ``IF (...) GO TO 2355``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..lang import ast_nodes as ast
from ..lang.errors import BuildError
from ..lang.parser import INTRINSICS, parse_source
from .expressions import (ArrayRef, BinaryOp, Const, Expression, Intrinsic,
                          StrConst, UnaryOp, VarRef, fold_constants)
from .program import Procedure, Program
from .statements import (AssignStmt, Block, CallStmt, CycleStmt, ExitStmt,
                         IfStmt, IoStmt, LoopStmt, NoopStmt, ReturnStmt,
                         Statement, StopStmt)
from .symbols import Dimension, Symbol, SymbolTable, INT, REAL


def build_program(source: str, name: str = "program") -> Program:
    """Parse and lower mini-Fortran source text into a :class:`Program`."""
    from ..obs import get_tracer
    with get_tracer().span("build", program=name) as sp:
        tree = parse_source(source, unit=name)
        program = Program(name)
        program.source_text = source
        builder = _Builder(program)
        for unit in tree.units:
            builder.build_unit(unit)
        builder.validate_calls()
        sp.tag(procedures=len(program.procedures),
               loops=len(program.all_loops()))
        return program


class _Builder:
    def __init__(self, program: Program):
        self.program = program
        self._call_sites: List[CallStmt] = []

    # -- units ---------------------------------------------------------------
    def build_unit(self, unit: ast.Unit) -> None:
        table = SymbolTable(unit.name)
        formals: List[Symbol] = []
        for pname in unit.params:
            inferred = INT if pname[:1] in "ijklmn" else REAL
            sym = table.define(Symbol(pname, inferred, storage="formal"))
            formals.append(sym)

        common_names: List[str] = []
        for decl in unit.decls:
            self._build_declaration(decl, table, common_names, unit.name)

        lowerer = _StatementLowerer(self, table, unit.name)
        body = lowerer.lower_block(unit.body)

        last_line = unit.loc.line
        for stmt in body.walk():
            last_line = max(last_line, stmt.line)
        proc = Procedure(unit.name, unit.kind, formals, table, body,
                         common_names,
                         source_lines=range(unit.loc.line, last_line + 2))
        self._name_loops(proc)
        self.program.add_procedure(proc)
        self._call_sites.extend(proc.call_sites())

    def _name_loops(self, proc: Procedure) -> None:
        for loop in proc.loops():
            if loop.term_label is not None:
                loop.name = f"{proc.name}/{loop.term_label}"
            else:
                loop.name = f"{proc.name}/L{loop.line}"

    def validate_calls(self) -> None:
        for call in self._call_sites:
            if call.callee not in self.program.procedures:
                raise BuildError(
                    f"call to undefined subroutine {call.callee!r} "
                    f"(line {call.line})")
            callee = self.program.procedures[call.callee]
            if len(callee.formals) != len(call.args):
                raise BuildError(
                    f"call to {call.callee!r} at line {call.line} passes "
                    f"{len(call.args)} args, expected {len(callee.formals)}")

    # -- declarations ------------------------------------------------------------
    def _build_declaration(self, decl: ast.Declaration, table: SymbolTable,
                           common_names: List[str], proc_name: str) -> None:
        if decl.kind == "parameter":
            for pname, expr in decl.params:
                value = fold_constants(self._lower_expr_decl(expr, table))
                if not isinstance(value, Const):
                    raise BuildError(
                        f"PARAMETER {pname} is not a constant", decl.loc)
                table.define(Symbol(pname, INT if isinstance(value.value, int)
                                    else REAL, storage="const",
                                    const_value=value.value))
            return

        if decl.kind in ("type", "dimension"):
            for entry in decl.entries:
                self._declare_entry(entry, table,
                                    decl.type_name or None)
            return

        if decl.kind == "common":
            from .symbols import CommonView
            members: List[Symbol] = []
            for entry in decl.entries:
                sym = self._declare_entry(entry, table, None)
                sym.storage = "common"
                sym.common_block = decl.common_name
                members.append(sym)
            block = self.program.common_block(decl.common_name)
            block.add_view(CommonView(proc_name, members))
            if decl.common_name not in common_names:
                common_names.append(decl.common_name)
            return

        raise BuildError(f"unknown declaration kind {decl.kind!r}", decl.loc)

    def _declare_entry(self, entry: ast.ArrayDecl, table: SymbolTable,
                       type_name: Optional[str]) -> Symbol:
        existing = table.lookup(entry.name)
        dims: List[Dimension] = []
        for low_ast, high_ast in entry.dims:
            low = (self._lower_expr_decl(low_ast, table)
                   if low_ast is not None else Const(1))
            high = (self._lower_expr_decl(high_ast, table)
                    if high_ast is not None else None)
            dims.append(Dimension(fold_constants(low),
                                  fold_constants(high) if high is not None
                                  else None))
        if existing is not None:
            # e.g. INTEGER n after n appeared as a formal, or DIMENSION
            # refining a typed name.
            if type_name:
                existing.type = type_name
            if dims:
                existing.dims = dims
            return existing
        inferred = type_name or (INT if entry.name[:1] in "ijklmn" else REAL)
        return table.define(Symbol(entry.name, inferred, dims=dims))

    def _lower_expr_decl(self, expr: ast.Expr, table: SymbolTable
                         ) -> Expression:
        """Lower an expression appearing in a declaration context."""
        return _StatementLowerer(self, table, table.proc_name
                                 ).lower_expr(expr)


class _StatementLowerer:
    """Lower one unit's statement tree, eliminating GOTOs on the way."""

    def __init__(self, builder: _Builder, table: SymbolTable, proc_name: str):
        self.builder = builder
        self.table = table
        self.proc_name = proc_name
        self._loop_label_stack: List[int] = []

    # -- expressions -----------------------------------------------------------
    def lower_expr(self, expr: ast.Expr) -> Expression:
        if isinstance(expr, ast.NumLit):
            return Const(expr.value)
        if isinstance(expr, ast.StrLit):
            return StrConst(expr.value)
        if isinstance(expr, ast.BoolLit):
            return Const(expr.value)
        if isinstance(expr, ast.Name):
            sym = self.table.get_or_create(expr.ident)
            if sym.is_const:
                return Const(sym.const_value)
            if sym.is_array:
                # whole-array actual argument (only legal in CALL position;
                # callers check)
                return ArrayRef(sym, [])
            return VarRef(sym)
        if isinstance(expr, ast.Apply):
            declared = self.table.lookup(expr.ident)
            if declared is not None and declared.is_array:
                if len(expr.args) > declared.rank:
                    raise BuildError(
                        f"array {expr.ident} has rank {declared.rank}, "
                        f"indexed with {len(expr.args)} subscripts", expr.loc)
                return ArrayRef(declared,
                                [self.lower_expr(a) for a in expr.args])
            if expr.ident in INTRINSICS:
                return Intrinsic(_normalize_intrinsic(expr.ident),
                                 [self.lower_expr(a) for a in expr.args])
            raise BuildError(
                f"{expr.ident!r} is neither a declared array nor an "
                f"intrinsic", expr.loc)
        if isinstance(expr, ast.BinOp):
            return BinaryOp(expr.op, self.lower_expr(expr.left),
                            self.lower_expr(expr.right))
        if isinstance(expr, ast.UnOp):
            return UnaryOp(expr.op, self.lower_expr(expr.operand))
        raise BuildError(f"cannot lower expression {expr!r}", expr.loc)

    # -- statements -----------------------------------------------------------
    def lower_block(self, stmts: List[ast.Stmt]) -> Block:
        return Block(self._lower_list(stmts))

    def _lower_list(self, stmts: List[ast.Stmt]) -> List[Statement]:
        out: List[Statement] = []
        i = 0
        while i < len(stmts):
            node = stmts[i]
            goto = _extract_goto(node)
            if goto is not None:
                cond_ast, target = goto
                handled, consumed = self._lower_goto(
                    node, cond_ast, target, stmts, i, out)
                if handled:
                    i += consumed
                    continue
            out.append(self._lower_stmt(node))
            i += 1
        return out

    def _lower_goto(self, node: ast.Stmt, cond_ast: Optional[ast.Expr],
                    target: int, stmts: List[ast.Stmt], i: int,
                    out: List[Statement]) -> Tuple[bool, int]:
        """Handle a (possibly conditional) GOTO at position ``i``.

        Returns (handled, #ast-statements consumed)."""
        # Case 1: jump to an enclosing loop's terminating label -> CYCLE.
        if target in self._loop_label_stack:
            cyc = CycleStmt(target_label=target, line=node.loc.line)
            if cond_ast is not None:
                cond = self.lower_expr(cond_ast)
                out.append(IfStmt([(cond, Block([cyc]))], None,
                                  line=node.loc.line, label=node.label))
            else:
                cyc.label = node.label
                out.append(cyc)
            return True, 1

        # Case 2: conditional forward jump within this statement list ->
        # guard the skipped statements with the negated condition.
        if cond_ast is not None:
            for j in range(i + 1, len(stmts)):
                if stmts[j].label == target:
                    skipped = self._lower_list(stmts[i + 1:j])
                    guard = UnaryOp("not", self.lower_expr(cond_ast))
                    out.append(IfStmt([(guard, Block(skipped))], None,
                                      line=node.loc.line, label=node.label))
                    return True, j - i   # resume at the labeled statement
        raise BuildError(
            f"unsupported GOTO {target} at line {node.loc.line}: target is "
            f"neither an enclosing DO terminator nor a forward label in the "
            f"same statement list")

    def _lower_stmt(self, node: ast.Stmt) -> Statement:
        line = node.loc.line
        label = node.label
        if isinstance(node, ast.Assign):
            target = self.lower_expr(node.target)
            if not isinstance(target, (VarRef, ArrayRef)) or (
                    isinstance(target, ArrayRef) and not target.indices):
                raise BuildError("invalid assignment target", node.loc)
            return AssignStmt(target, self.lower_expr(node.value),
                              line=line, label=label)
        if isinstance(node, ast.CallStmt):
            args = [self.lower_expr(a) for a in node.args]
            return CallStmt(node.name, args, line=line, label=label)
        if isinstance(node, ast.DoLoop):
            index = self.table.get_or_create(node.var)
            low = self.lower_expr(node.low)
            high = self.lower_expr(node.high)
            step = self.lower_expr(node.step) if node.step else None
            if node.term_label is not None:
                self._loop_label_stack.append(node.term_label)
            body = self.lower_block(node.body)
            if node.term_label is not None:
                self._loop_label_stack.pop()
            return LoopStmt(index, low, high, step, body,
                            term_label=node.term_label, line=line,
                            label=label)
        if isinstance(node, ast.IfBlock):
            arms = [(self.lower_expr(c), self.lower_block(b))
                    for c, b in node.arms]
            else_block = (self.lower_block(node.else_body)
                          if node.else_body is not None else None)
            return IfStmt(arms, else_block, line=line, label=label)
        if isinstance(node, ast.LogicalIf):
            cond = self.lower_expr(node.cond)
            inner = self._lower_list([node.stmt])
            return IfStmt([(cond, Block(inner))], None, line=line,
                          label=label)
        if isinstance(node, ast.Continue):
            return NoopStmt(line=line, label=label)
        if isinstance(node, ast.Return):
            return ReturnStmt(line=line, label=label)
        if isinstance(node, ast.Stop):
            return StopStmt(line=line, label=label)
        if isinstance(node, ast.ExitStmt):
            return ExitStmt(line=line, label=label)
        if isinstance(node, ast.CycleStmt):
            return CycleStmt(line=line, label=label)
        if isinstance(node, ast.IoStmt):
            return IoStmt(node.kind, [self.lower_expr(e) for e in node.items],
                          line=line, label=label)
        if isinstance(node, ast.Goto):
            raise BuildError(f"unsupported bare GOTO at line {line}")
        raise BuildError(f"cannot lower statement {node!r}", node.loc)


def _extract_goto(node: ast.Stmt) -> Optional[Tuple[Optional[ast.Expr], int]]:
    """If ``node`` is ``GOTO L`` or ``IF (c) GOTO L``, return (cond?, L)."""
    if isinstance(node, ast.Goto):
        return (None, node.target)
    if isinstance(node, ast.LogicalIf) and isinstance(node.stmt, ast.Goto):
        return (node.cond, node.stmt.target)
    return None


_INTRINSIC_ALIASES = {
    "amin1": "min", "amax1": "max", "min0": "min", "max0": "max",
    "iabs": "abs",
}


def _normalize_intrinsic(name: str) -> str:
    return _INTRINSIC_ALIASES.get(name, name)
