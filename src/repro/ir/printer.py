"""Render IR back to mini-Fortran-style text (for viz and examples)."""

from __future__ import annotations

from typing import List

from .expressions import (ArrayRef, BinaryOp, Const, Expression, Intrinsic,
                          StrConst, UnaryOp, VarRef)
from .program import Procedure, Program
from .statements import (AssignStmt, Block, CallStmt, CycleStmt, ExitStmt,
                         IfStmt, IoStmt, LoopStmt, NoopStmt, ReturnStmt,
                         Statement, StopStmt)


def format_expr(expr: Expression) -> str:
    if isinstance(expr, Const):
        return str(expr.value)
    if isinstance(expr, StrConst):
        return f"'{expr.value}'"
    if isinstance(expr, VarRef):
        return expr.symbol.name
    if isinstance(expr, ArrayRef):
        return f"{expr.symbol.name}({', '.join(format_expr(i) for i in expr.indices)})"
    if isinstance(expr, BinaryOp):
        op = {"and": ".AND.", "or": ".OR."}.get(expr.op, expr.op)
        return f"({format_expr(expr.left)} {op} {format_expr(expr.right)})"
    if isinstance(expr, UnaryOp):
        op = ".NOT. " if expr.op == "not" else expr.op
        return f"({op}{format_expr(expr.operand)})"
    if isinstance(expr, Intrinsic):
        return f"{expr.name.upper()}({', '.join(format_expr(a) for a in expr.args)})"
    return repr(expr)


def format_statement(stmt: Statement, indent: int = 0) -> List[str]:
    pad = "  " * indent
    lab = f"{stmt.label} " if stmt.label else ""
    if isinstance(stmt, AssignStmt):
        return [f"{pad}{lab}{format_expr(stmt.target)} = "
                f"{format_expr(stmt.value)}"]
    if isinstance(stmt, CallStmt):
        args = ", ".join(format_expr(a) for a in stmt.args)
        return [f"{pad}{lab}CALL {stmt.callee}({args})"]
    if isinstance(stmt, LoopStmt):
        head = (f"{pad}{lab}DO {stmt.term_label or ''} "
                f"{stmt.index.name} = {format_expr(stmt.low)}, "
                f"{format_expr(stmt.high)}").rstrip()
        if stmt.step is not None:
            head += f", {format_expr(stmt.step)}"
        lines = [head]
        for s in stmt.body.statements:
            lines.extend(format_statement(s, indent + 1))
        if stmt.term_label is None:
            lines.append(f"{pad}END DO")
        return lines
    if isinstance(stmt, IfStmt):
        lines: List[str] = []
        for k, (cond, body) in enumerate(stmt.arms):
            kw = "IF" if k == 0 else "ELSE IF"
            lines.append(f"{pad}{lab if k == 0 else ''}{kw} "
                         f"({format_expr(cond)}) THEN")
            for s in body.statements:
                lines.extend(format_statement(s, indent + 1))
        if stmt.else_block is not None:
            lines.append(f"{pad}ELSE")
            for s in stmt.else_block.statements:
                lines.extend(format_statement(s, indent + 1))
        lines.append(f"{pad}END IF")
        return lines
    if isinstance(stmt, CycleStmt):
        return [f"{pad}{lab}CYCLE"]
    if isinstance(stmt, ExitStmt):
        return [f"{pad}{lab}EXIT"]
    if isinstance(stmt, ReturnStmt):
        return [f"{pad}{lab}RETURN"]
    if isinstance(stmt, StopStmt):
        return [f"{pad}{lab}STOP"]
    if isinstance(stmt, NoopStmt):
        return [f"{pad}{lab}CONTINUE"]
    if isinstance(stmt, IoStmt):
        items = ", ".join(format_expr(i) for i in stmt.items)
        return [f"{pad}{lab}{stmt.kind.upper()} *, {items}".rstrip(", ")]
    return [f"{pad}{stmt!r}"]


def format_procedure(proc: Procedure) -> str:
    if proc.kind == "program":
        head = f"PROGRAM {proc.name}"
    else:
        params = ", ".join(f.name for f in proc.formals)
        head = f"SUBROUTINE {proc.name}({params})"
    lines = [head]
    for stmt in proc.body.statements:
        lines.extend(format_statement(stmt, 1))
    lines.append("END")
    return "\n".join(lines)


def format_program(program: Program) -> str:
    return "\n\n".join(format_procedure(p)
                       for p in program.procedures.values())
