"""Program and Procedure containers."""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from .statements import (AssignStmt, Block, CallStmt, LoopStmt, Statement,
                         assign_parents)
from .symbols import CommonBlock, Symbol, SymbolTable


class Procedure:
    """One PROGRAM or SUBROUTINE unit after lowering."""

    __slots__ = ("name", "kind", "formals", "symbols", "body",
                 "common_blocks", "source_lines")

    def __init__(self, name: str, kind: str, formals: List[Symbol],
                 symbols: SymbolTable, body: Block,
                 common_blocks: List[str],
                 source_lines: Optional[range] = None):
        self.name = name
        self.kind = kind                    # "program" | "subroutine"
        self.formals = formals
        self.symbols = symbols
        self.body = body
        self.common_blocks = common_blocks  # names of blocks declared here
        self.source_lines = source_lines or range(0, 0)
        assign_parents(body)
        for stmt in body.walk():
            stmt.proc_name = name

    # -- queries -----------------------------------------------------------
    def loops(self) -> List[LoopStmt]:
        """All loops in this procedure, outermost first (pre-order)."""
        return [s for s in self.body.walk() if isinstance(s, LoopStmt)]

    def top_level_loops(self) -> List[LoopStmt]:
        out = []
        for stmt in self.body.walk():
            if isinstance(stmt, LoopStmt):
                from .statements import enclosing_loops
                if not enclosing_loops(stmt):
                    out.append(stmt)
        return out

    def call_sites(self) -> List[CallStmt]:
        return [s for s in self.body.walk() if isinstance(s, CallStmt)]

    def statements(self) -> Iterator[Statement]:
        return self.body.walk()

    def line_count(self) -> int:
        return len(self.source_lines)

    def common_symbols(self) -> List[Symbol]:
        return [s for s in self.symbols if s.is_common]

    def __repr__(self):
        return f"Procedure({self.name})"


class Program:
    """A whole mini-Fortran program: procedures + COMMON blocks + indexes."""

    def __init__(self, name: str = "program"):
        self.name = name
        self.procedures: Dict[str, Procedure] = {}
        self.commons: Dict[str, CommonBlock] = {}
        self.main: Optional[str] = None
        self.source_text: str = ""
        self._stmt_index: Dict[int, Statement] = {}
        self._loop_by_name: Dict[str, LoopStmt] = {}

    # -- construction -------------------------------------------------------
    def add_procedure(self, proc: Procedure) -> None:
        self.procedures[proc.name] = proc
        if proc.kind == "program":
            self.main = proc.name
        for stmt in proc.statements():
            self._stmt_index[stmt.stmt_id] = stmt
            if isinstance(stmt, LoopStmt) and stmt.name:
                self._loop_by_name[stmt.name] = stmt

    def common_block(self, name: str) -> CommonBlock:
        blk = self.commons.get(name)
        if blk is None:
            blk = CommonBlock(name)
            self.commons[name] = blk
        return blk

    # -- queries -----------------------------------------------------------
    def procedure(self, name: str) -> Procedure:
        return self.procedures[name]

    def main_procedure(self) -> Procedure:
        if self.main is None:
            raise ValueError("program has no PROGRAM unit")
        return self.procedures[self.main]

    def statement(self, stmt_id: int) -> Statement:
        return self._stmt_index[stmt_id]

    def loop(self, name: str) -> LoopStmt:
        """Look up a loop by its paper-style name, e.g. ``'interf/1000'``."""
        return self._loop_by_name[name]

    def all_loops(self) -> List[LoopStmt]:
        out: List[LoopStmt] = []
        for proc in self.procedures.values():
            out.extend(proc.loops())
        return out

    def loop_names(self) -> List[str]:
        return sorted(self._loop_by_name)

    def total_lines(self) -> int:
        return sum(p.line_count() for p in self.procedures.values())

    def assignments(self) -> Iterator[AssignStmt]:
        for proc in self.procedures.values():
            for stmt in proc.statements():
                if isinstance(stmt, AssignStmt):
                    yield stmt

    def __repr__(self):
        return f"Program({self.name}, procs={sorted(self.procedures)})"
