"""Resolved, structured IR statements.

The IR is fully structured: the builder has already eliminated GOTOs
(forward conditional jumps become guarded blocks, back-to-terminator jumps
become :class:`CycleStmt`).  Every statement carries a globally unique
``stmt_id``, its source ``line``, and its owning procedure name, so analyses
and the slicer can report statement sets directly as source lines.
"""

from __future__ import annotations

import itertools
from typing import Iterator, List, Optional, Sequence, Tuple

from .expressions import ArrayRef, Expression, VarRef
from .symbols import Symbol

_stmt_counter = itertools.count(1)


def _next_id() -> int:
    return next(_stmt_counter)


class Statement:
    __slots__ = ("stmt_id", "line", "label", "proc_name", "parent")

    def __init__(self, line: int = 0, label: Optional[int] = None):
        self.stmt_id = _next_id()
        self.line = line
        self.label = label
        self.proc_name = ""
        self.parent: Optional["Statement"] = None

    # Traversal ---------------------------------------------------------------
    def children_blocks(self) -> Sequence["Block"]:
        return ()

    def walk(self) -> Iterator["Statement"]:
        yield self
        for block in self.children_blocks():
            for stmt in block.statements:
                yield from stmt.walk()

    def sub_expressions(self) -> Iterator[Expression]:
        """All expressions evaluated directly by this statement (not by
        statements nested inside it)."""
        return iter(())

    def __repr__(self):
        return f"{type(self).__name__}#{self.stmt_id}@{self.line}"


class Block:
    """An ordered list of statements (a lexical scope level)."""

    __slots__ = ("statements",)

    def __init__(self, statements: Optional[List[Statement]] = None):
        self.statements = statements or []

    def walk(self) -> Iterator[Statement]:
        for stmt in self.statements:
            yield from stmt.walk()

    def __iter__(self):
        return iter(self.statements)

    def __len__(self):
        return len(self.statements)


class AssignStmt(Statement):
    """``target = value`` where target is a VarRef or ArrayRef."""

    __slots__ = ("target", "value")

    def __init__(self, target, value: Expression, line=0, label=None):
        super().__init__(line, label)
        self.target = target
        self.value = value

    @property
    def target_symbol(self) -> Symbol:
        return self.target.symbol

    @property
    def is_array_assign(self) -> bool:
        return isinstance(self.target, ArrayRef)

    def sub_expressions(self) -> Iterator[Expression]:
        yield self.value
        if isinstance(self.target, ArrayRef):
            for idx in self.target.indices:
                yield idx

    def __repr__(self):
        return f"Assign#{self.stmt_id}({self.target!r} = {self.value!r})"


class CallStmt(Statement):
    """``CALL name(args)``.  Arguments pass by reference: a bare VarRef /
    ArrayRef / array-name actual may be both read and written by the
    callee; expression actuals are read-only temporaries."""

    __slots__ = ("callee", "args")

    def __init__(self, callee: str, args: List[Expression], line=0,
                 label=None):
        super().__init__(line, label)
        self.callee = callee
        self.args = args

    def sub_expressions(self) -> Iterator[Expression]:
        return iter(self.args)

    def __repr__(self):
        return f"Call#{self.stmt_id}({self.callee})"


class LoopStmt(Statement):
    """A DO loop.  ``name`` is the paper-style ``proc/label`` identifier
    (falling back to ``proc/L<line>`` for ENDDO loops)."""

    __slots__ = ("index", "low", "high", "step", "body", "term_label", "name")

    def __init__(self, index: Symbol, low: Expression, high: Expression,
                 step: Optional[Expression], body: Block,
                 term_label: Optional[int] = None, line=0, label=None):
        super().__init__(line, label)
        self.index = index
        self.low = low
        self.high = high
        self.step = step
        self.body = body
        self.term_label = term_label
        self.name = ""

    def children_blocks(self) -> Sequence[Block]:
        return (self.body,)

    def sub_expressions(self) -> Iterator[Expression]:
        yield self.low
        yield self.high
        if self.step is not None:
            yield self.step

    def inner_loops(self) -> List["LoopStmt"]:
        return [s for s in self.body.walk() if isinstance(s, LoopStmt)]

    def contains_call(self) -> bool:
        return any(isinstance(s, CallStmt) for s in self.body.walk())

    def contains_io(self) -> bool:
        return any(isinstance(s, IoStmt) for s in self.body.walk())

    def __repr__(self):
        return f"Loop#{self.stmt_id}({self.name or self.index.name})"


class IfStmt(Statement):
    """Block IF with one or more (condition, block) arms and optional else."""

    __slots__ = ("arms", "else_block")

    def __init__(self, arms: List[Tuple[Expression, Block]],
                 else_block: Optional[Block] = None, line=0, label=None):
        super().__init__(line, label)
        self.arms = arms
        self.else_block = else_block

    def children_blocks(self) -> Sequence[Block]:
        blocks = [b for _, b in self.arms]
        if self.else_block is not None:
            blocks.append(self.else_block)
        return blocks

    def sub_expressions(self) -> Iterator[Expression]:
        for cond, _ in self.arms:
            yield cond

    def __repr__(self):
        return f"If#{self.stmt_id}"


class CycleStmt(Statement):
    """Jump to the next iteration of the enclosing loop whose terminating
    label is ``target_label`` (None = innermost)."""

    __slots__ = ("target_label",)

    def __init__(self, target_label: Optional[int] = None, line=0, label=None):
        super().__init__(line, label)
        self.target_label = target_label


class ExitStmt(Statement):
    __slots__ = ()


class ReturnStmt(Statement):
    __slots__ = ()


class StopStmt(Statement):
    __slots__ = ()


class NoopStmt(Statement):
    """A CONTINUE that survived GOTO elimination (kept for its label/line)."""
    __slots__ = ()


class IoStmt(Statement):
    """PRINT/READ.  Loops containing I/O are never parallelized
    (paper section 2.6)."""

    __slots__ = ("kind", "items")

    def __init__(self, kind: str, items: List[Expression], line=0, label=None):
        super().__init__(line, label)
        self.kind = kind
        self.items = items

    def sub_expressions(self) -> Iterator[Expression]:
        return iter(self.items)


def assign_parents(block: Block, parent: Optional[Statement] = None) -> None:
    """Set ``stmt.parent`` links throughout a statement tree."""
    for stmt in block.statements:
        stmt.parent = parent
        for child in stmt.children_blocks():
            assign_parents(child, stmt)


def enclosing_loops(stmt: Statement) -> List[LoopStmt]:
    """Loops containing ``stmt``, innermost first."""
    loops: List[LoopStmt] = []
    cur = stmt.parent
    while cur is not None:
        if isinstance(cur, LoopStmt):
            loops.append(cur)
        cur = cur.parent
    return loops
