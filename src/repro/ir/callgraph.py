"""Call graph construction and traversal orders.

The interprocedural analyses are all *region based* two-phase algorithms
(paper section 5.2): a bottom-up pass over procedures (callees before
callers) and a top-down pass (callers before callees).  Recursion is not
supported — the paper's algorithm "currently does not handle recursion;
thus the region graph is simply a DAG" — and we diagnose it loudly.
"""

from __future__ import annotations

from typing import Dict, List, Set

from .program import Program
from .statements import CallStmt


class CallGraph:
    def __init__(self, program: Program):
        self.program = program
        self.callees: Dict[str, Set[str]] = {}
        self.callers: Dict[str, Set[str]] = {}
        self.call_sites: Dict[str, List[CallStmt]] = {}   # callee -> sites
        for name, proc in program.procedures.items():
            self.callees.setdefault(name, set())
            self.callers.setdefault(name, set())
        for name, proc in program.procedures.items():
            for call in proc.call_sites():
                self.callees[name].add(call.callee)
                self.callers.setdefault(call.callee, set()).add(name)
                self.call_sites.setdefault(call.callee, []).append(call)
        self._check_acyclic()

    def _check_acyclic(self) -> None:
        state: Dict[str, int] = {}

        def visit(node: str, stack: List[str]) -> None:
            state[node] = 1
            for callee in sorted(self.callees.get(node, ())):
                if state.get(callee) == 1:
                    cycle = " -> ".join(stack + [node, callee])
                    raise ValueError(f"recursive call cycle: {cycle}")
                if state.get(callee, 0) == 0:
                    visit(callee, stack + [node])
            state[node] = 2

        for name in self.program.procedures:
            if state.get(name, 0) == 0:
                visit(name, [])

    def bottom_up_order(self) -> List[str]:
        """Procedures ordered callees-first (leaves to main)."""
        order: List[str] = []
        visited: Set[str] = set()

        def visit(node: str) -> None:
            if node in visited:
                return
            visited.add(node)
            for callee in sorted(self.callees.get(node, ())):
                visit(callee)
            order.append(node)

        for name in sorted(self.program.procedures):
            visit(name)
        return order

    def top_down_order(self) -> List[str]:
        return list(reversed(self.bottom_up_order()))

    def sites_calling(self, callee: str) -> List[CallStmt]:
        return self.call_sites.get(callee, [])

    def reachable_from_main(self) -> Set[str]:
        if self.program.main is None:
            return set(self.program.procedures)
        seen: Set[str] = set()
        work = [self.program.main]
        while work:
            node = work.pop()
            if node in seen:
                continue
            seen.add(node)
            work.extend(self.callees.get(node, ()))
        return seen
