"""Terminal visualizations standing in for the Rivet system (section 2.7)."""

from .callgraph_view import CallGraphView
from .codeview import Codeview, SourceView
from .slice_view import render_slice, slice_statistics

__all__ = ["CallGraphView", "Codeview", "SourceView", "render_slice",
           "slice_statistics"]
