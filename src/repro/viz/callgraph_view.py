"""Call-graph visualization — the hyperbolic-browser stand-in (section 2.7).

Rivet's hyperbolic graph browser is "focus-plus-context": the focus node
renders large, distant nodes shrink.  The terminal rendering keeps the
focus-plus-context idea by depth-limited expansion: nodes near the focus
are fully expanded, distant subtrees are summarized as counts.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..ir.callgraph import CallGraph
from ..ir.program import Program


class CallGraphView:
    def __init__(self, program: Program,
                 callgraph: Optional[CallGraph] = None):
        self.program = program
        self.callgraph = callgraph or CallGraph(program)

    def render(self, focus: Optional[str] = None, context_depth: int = 2
               ) -> str:
        root = focus or self.program.main or \
            next(iter(self.program.procedures))
        out: List[str] = []
        seen: Set[str] = set()

        def visit(node: str, depth: int, prefix: str) -> None:
            proc = self.program.procedures.get(node)
            size = proc.line_count() if proc else 0
            loops = len(proc.loops()) if proc else 0
            marker = "*" if node == root else " "
            out.append(f"{prefix}{marker}{node} "
                       f"[{size} lines, {loops} loops]")
            if node in seen:
                out[-1] += " (shared)"
                return
            seen.add(node)
            callees = sorted(self.callgraph.callees.get(node, ()))
            if depth >= context_depth and callees:
                total = self._subtree_size(node)
                out.append(f"{prefix}  ... {len(callees)} callee(s), "
                           f"{total} procedures in subtree")
                return
            for callee in callees:
                visit(callee, depth + 1, prefix + "  ")

        visit(root, 0, "")
        return "\n".join(out)

    def _subtree_size(self, node: str) -> int:
        seen: Set[str] = set()

        def walk(n: str) -> None:
            if n in seen:
                return
            seen.add(n)
            for c in self.callgraph.callees.get(n, ()):
                walk(c)

        walk(node)
        return len(seen)
