"""Slice rendering: annotated source with slice lines highlighted —
how the Explorer "presents the program slice ... to the programmer"
(sections 2.6 and 4.1.3)."""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..ir.program import Program
from ..ir.statements import LoopStmt
from ..slicing.slicer import SliceResult
from .codeview import SourceView


def render_slice(program: Program, result: SliceResult,
                 around_loop: Optional[LoopStmt] = None,
                 context: int = 2) -> str:
    """Annotated source with '*' on slice lines.  When ``around_loop`` is
    given, only that loop's span (plus context lines) is shown; otherwise
    the smallest span covering the slice."""
    lines_by_proc: Dict[str, Set[int]] = {}
    for proc_name, ln in result.lines():
        lines_by_proc.setdefault(proc_name, set()).add(ln)
    view = SourceView(program)
    sections: List[str] = []
    for proc_name in sorted(lines_by_proc):
        lines = lines_by_proc[proc_name]
        lo, hi = min(lines), max(lines)
        if around_loop is not None and around_loop.proc_name == proc_name:
            loop_lines = {s.line for s in around_loop.body.walk()}
            loop_lines.add(around_loop.line)
            lo = min(lo, min(loop_lines))
            hi = max(hi, max(loop_lines))
        sections.append(f"--- {proc_name} ---")
        sections.append(view.render(lo - context, hi + context,
                                    highlight_lines=lines))
    header = (f"slice: {result.line_count()} line(s)"
              + (f", {len(result.terminals)} pruned terminal(s)"
                 if result.terminals else ""))
    return header + "\n" + "\n".join(sections)


def slice_statistics(program: Program, result: SliceResult,
                     loop: LoopStmt, slicer) -> Dict[str, float]:
    """The Fig 4-8 measurements for one slice: sizes as % of loop size."""
    region = slicer.region_of_loop(loop)
    loop_lines = slicer.loop_line_count(loop)
    full = result.line_count()
    inside = result.lines_within(region)
    return {
        "loop_lines": loop_lines,
        "full_lines": full,
        "inside_lines": inside,
        "full_pct": 100.0 * full / loop_lines if loop_lines else 0.0,
        "inside_pct": 100.0 * inside / loop_lines if loop_lines else 0.0,
    }
