"""ASCII Codeview — the Rivet "bird's-eye" metaphor (paper section 2.7).

"Each line of the source is displayed as a single line segment whose length
is proportional to the textual length of the line. ... Filtered loops are
shown in gray; unfiltered sequential loops are shown in black; unfiltered
parallel loops are shown in white.  A white focus bar in the Codeview
indicates that the loop was selected as a good candidate for hand
parallelization."

Rendering scheme (one output row per source line):

* ``.`` gray   — filtered / non-loop code,
* ``#`` black  — unfiltered sequential loop line,
* ``o`` white  — parallel loop line,
* ``>`` focus  — the Guru's current candidate loop.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..ir.program import Program
from ..ir.statements import LoopStmt
from ..parallelize.plan import ProgramPlan


class Codeview:
    def __init__(self, program: Program, plan: Optional[ProgramPlan] = None,
                 width: int = 64):
        self.program = program
        self.plan = plan
        self.width = width

    def _line_ranges(self) -> Dict[int, str]:
        """line number -> glyph class"""
        glyphs: Dict[int, str] = {}
        for proc in self.program.procedures.values():
            for loop in proc.loops():
                lines = self._loop_lines(loop)
                parallel = bool(self.plan and self.plan.is_parallel(loop))
                glyph = "o" if parallel else "#"
                for ln in lines:
                    # innermost classification wins (later loops overwrite)
                    glyphs[ln] = glyph
        return glyphs

    def _loop_lines(self, loop: LoopStmt) -> Set[int]:
        lines = {loop.line}
        for stmt in loop.body.walk():
            lines.add(stmt.line)
        return lines

    def render(self, focus: Optional[LoopStmt] = None,
               filtered_loops: Optional[Set[int]] = None) -> str:
        """One row per source line: line number, glyph, proportional bar."""
        source_lines = self.program.source_text.splitlines()
        glyphs = self._line_ranges()
        focus_lines: Set[int] = set()
        if focus is not None:
            focus_lines = self._loop_lines(focus)
        filtered = filtered_loops or set()
        rows: List[str] = []
        for ln, text in enumerate(source_lines, start=1):
            stripped = text.rstrip()
            if not stripped.strip():
                rows.append("")
                continue
            glyph = glyphs.get(ln, ".")
            if ln in filtered:
                glyph = "."
            if ln in focus_lines:
                glyph = ">"
            bar_len = max(1, min(self.width,
                                 int(len(stripped) / 72 * self.width)))
            rows.append(f"{ln:5d} {glyph} {glyph * bar_len}")
        return "\n".join(rows)

    def legend(self) -> str:
        return ("legend: '.' filtered/non-loop, '#' sequential loop, "
                "'o' parallel loop, '>' focus candidate")


class SourceView:
    """Annotated source viewer: highlights slice lines and loop status."""

    def __init__(self, program: Program):
        self.program = program

    def render(self, first_line: int, last_line: int,
               highlight_lines: Optional[Set[int]] = None,
               annotations: Optional[Dict[int, str]] = None) -> str:
        lines = self.program.source_text.splitlines()
        highlight = highlight_lines or set()
        notes = annotations or {}
        out: List[str] = []
        for ln in range(max(1, first_line),
                        min(len(lines), last_line) + 1):
            marker = "*" if ln in highlight else " "
            note = f"   ! {notes[ln]}" if ln in notes else ""
            out.append(f"{ln:5d} {marker} {lines[ln - 1].rstrip()}{note}")
        return "\n".join(out)
