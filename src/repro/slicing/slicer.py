"""Demand-driven, context-sensitive interprocedural slicing (chapter 3).

Slice summaries (section 3.5.2): the summary of a reference r is a pair
⟨S, F⟩ — S the *call subslice* (statements in r's procedure and its callees
contributing to r), F the upwards-exposed formal entries r depends on.  At
a call site the callee's exposed formals are resolved with **that site's**
actuals, which is exactly what makes the slices context sensitive.

Recurrences (loop phis) are handled by collapsing strongly connected
components — "all elements in a strongly connected component have the same
value" (section 3.5.4) — and processing the condensation in reverse
topological order.  Summaries are memoized per (value, mode), and statement
sets use the hierarchical DAG representation.

Slice kinds (section 3.2.1):

* ``data``    — follow data-dependence edges only,
* ``program`` — data + control dependences,
* control slices are the immediate control dependences of a reference plus
  the program slices of the controlling expressions (:meth:`Slicer.control_slice`).

Pruning (section 3.6): *array-restricted* slices stop at array values;
*code-region-restricted* slices stop at statements outside a loop (plus
its transitive callees).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..ir.program import Procedure, Program
from ..ir.statements import (CallStmt, IfStmt, LoopStmt, Statement,
                             enclosing_loops)
from ..ir.symbols import Symbol
from ..ssa.issa import (ARG_EXPR, ASSIGN, CALL_OUT, ENTRY, FORMAL_PHI, ISSA,
                        IO_READ, LOOP_INCR_DEF, LOOP_INIT_DEF, PHI, SSAValue,
                        WEAK)
from .hierarchy import EMPTY_NODE, SliceNode, make_node, union_nodes

DATA = "data"
PROGRAM = "program"


class SliceMode:
    """Slicing configuration: kind + pruning options."""

    __slots__ = ("kind", "array_restricted", "region_stmts", "region_tag")

    def __init__(self, kind: str = PROGRAM, array_restricted: bool = False,
                 region_stmts: Optional[FrozenSet[int]] = None,
                 region_tag: str = ""):
        self.kind = kind
        self.array_restricted = array_restricted
        self.region_stmts = region_stmts
        self.region_tag = region_tag

    def key(self) -> Tuple:
        return (self.kind, self.array_restricted, self.region_tag)

    def in_region(self, stmt: Optional[Statement]) -> bool:
        if self.region_stmts is None or stmt is None:
            return True
        return stmt.stmt_id in self.region_stmts


class Summary:
    """⟨S, F⟩: call-subslice node + upwards-exposed formal entries."""

    __slots__ = ("node", "exposed")

    def __init__(self, node: SliceNode, exposed: FrozenSet[SSAValue]):
        self.node = node
        self.exposed = exposed

    def statements(self) -> FrozenSet[int]:
        return self.node.flatten()


EMPTY_SUMMARY = Summary(EMPTY_NODE, frozenset())


class SliceResult:
    """A computed slice, reported as statements and source lines."""

    def __init__(self, program: Program, stmt_ids: FrozenSet[int],
                 terminals: FrozenSet[SSAValue] = frozenset()):
        self.program = program
        self.stmt_ids = stmt_ids
        self.terminals = terminals     # pruned / exposed boundary values

    def statements(self) -> List[Statement]:
        out = []
        for sid in self.stmt_ids:
            try:
                out.append(self.program.statement(sid))
            except KeyError:
                pass
        return sorted(out, key=lambda s: (s.proc_name, s.line))

    def lines(self) -> Set[Tuple[str, int]]:
        return {(s.proc_name, s.line) for s in self.statements()}

    def line_count(self) -> int:
        return len(self.lines())

    def lines_within(self, stmt_ids: FrozenSet[int]) -> int:
        inside = {(s.proc_name, s.line) for s in self.statements()
                  if s.stmt_id in stmt_ids}
        return len(inside)

    def __repr__(self):
        return f"SliceResult({self.line_count()} lines)"


class Slicer:
    """Demand-driven slicer over a program's ISSA graph."""

    def __init__(self, program: Program, issa: Optional[ISSA] = None):
        self.program = program
        self.issa = issa or ISSA(program)
        # (value id, mode key) -> Summary
        self._memo: Dict[Tuple[int, Tuple], Summary] = {}
        self._region_cache: Dict[int, FrozenSet[int]] = {}

    # ------------------------------------------------------------- public API
    def slice_of_use(self, stmt: Statement, symbol: Symbol,
                     kind: str = PROGRAM, array_restricted: bool = False,
                     region_loop: Optional[LoopStmt] = None,
                     context: Optional[Sequence[CallStmt]] = None
                     ) -> SliceResult:
        """Slice of the value of ``symbol`` as used at ``stmt``."""
        value = self.issa.use_at(stmt, symbol)
        if value is None:
            return SliceResult(self.program, frozenset())
        return self.slice_of_value(value, kind, array_restricted,
                                   region_loop, context)

    def slice_of_value(self, value: SSAValue, kind: str = PROGRAM,
                       array_restricted: bool = False,
                       region_loop: Optional[LoopStmt] = None,
                       context: Optional[Sequence[CallStmt]] = None
                       ) -> SliceResult:
        mode = self._mode(kind, array_restricted, region_loop)
        if context is None:
            summ = self._summary(value, mode)
            return SliceResult(self.program, summ.statements(),
                               frozenset(summ.exposed))
        stmts, exposed = self._cslice(value, mode, list(context))
        return SliceResult(self.program, frozenset(stmts),
                           frozenset(exposed))

    def control_slice(self, stmt: Statement, array_restricted: bool = False,
                      region_loop: Optional[LoopStmt] = None) -> SliceResult:
        """Control slice of a statement: its immediate control dependences
        plus the program slices of the controlling expressions
        (section 3.2.1)."""
        mode = self._mode(PROGRAM, array_restricted, region_loop)
        ids: Set[int] = set()
        exposed: Set[SSAValue] = set()
        for ctrl, uses in self._control_chain(stmt):
            if mode.in_region(ctrl):
                ids.add(ctrl.stmt_id)
            for value in uses:
                summ = self._summary(value, mode)
                ids.update(summ.statements())
                exposed.update(summ.exposed)
        return SliceResult(self.program, frozenset(ids), frozenset(exposed))

    def region_of_loop(self, loop: LoopStmt) -> FrozenSet[int]:
        """Statement ids inside a loop, including procedures it transitively
        calls (the 'code region' of code-region-restricted slices, and the
        loop-size denominator of Fig 4-8)."""
        cached = self._region_cache.get(loop.stmt_id)
        if cached is not None:
            return cached
        ids: Set[int] = {loop.stmt_id}
        procs: Set[str] = set()

        def add_proc(name: str) -> None:
            if name in procs:
                return
            procs.add(name)
            proc = self.program.procedures[name]
            for s in proc.statements():
                ids.add(s.stmt_id)
                if isinstance(s, CallStmt):
                    add_proc(s.callee)

        for s in loop.body.walk():
            ids.add(s.stmt_id)
            if isinstance(s, CallStmt):
                add_proc(s.callee)
        out = frozenset(ids)
        self._region_cache[loop.stmt_id] = out
        return out

    def loop_line_count(self, loop: LoopStmt) -> int:
        region = self.region_of_loop(loop)
        lines = set()
        for sid in region:
            try:
                s = self.program.statement(sid)
            except KeyError:
                continue
            lines.add((s.proc_name, s.line))
        return len(lines)

    # -------------------------------------------------------------- internals
    def _mode(self, kind: str, array_restricted: bool,
              region_loop: Optional[LoopStmt]) -> SliceMode:
        if region_loop is None:
            return SliceMode(kind, array_restricted)
        return SliceMode(kind, array_restricted,
                         self.region_of_loop(region_loop),
                         region_tag=f"loop{region_loop.stmt_id}")

    # -- dependency edges -----------------------------------------------------
    def _deps(self, value: SSAValue, mode: SliceMode
              ) -> Tuple[List[SSAValue], List["SSAValue"]]:
        """(intraprocedural operand edges, callee-exit values) of a node
        under ``mode``.  Callee edges are handled contextually by the
        caller of this function."""
        if value.kind in (FORMAL_PHI, ENTRY):
            return [], []
        ops: List[SSAValue] = []
        callee_exits: List[SSAValue] = []
        for op in value.operands:
            if self._prunable(op, mode):
                continue
            ops.append(op)
        if value.kind == CALL_OUT:
            callee_exits = list(value.callee_exits)
        if mode.kind == PROGRAM and value.stmt is not None:
            for ctrl, uses in self._control_chain(value.stmt):
                for u in uses:
                    if not self._prunable(u, mode):
                        ops.append(u)
        return ops, callee_exits

    def _prunable(self, value: SSAValue, mode: SliceMode) -> bool:
        if mode.array_restricted and value.var is not None \
                and value.var.is_array:
            return True
        if mode.region_stmts is not None and value.stmt is not None \
                and not mode.in_region(value.stmt):
            return True
        return False

    def _own_stmts(self, value: SSAValue, mode: SliceMode) -> List[int]:
        out: List[int] = []
        if value.stmt is not None and mode.in_region(value.stmt):
            out.append(value.stmt.stmt_id)
        if mode.kind == PROGRAM and value.stmt is not None:
            for ctrl, _uses in self._control_chain(value.stmt):
                if mode.in_region(ctrl):
                    out.append(ctrl.stmt_id)
        return out

    def _control_chain(self, stmt: Statement
                       ) -> List[Tuple[Statement, List[SSAValue]]]:
        """Enclosing control statements of ``stmt`` with the SSA values
        their conditions/bounds use."""
        out: List[Tuple[Statement, List[SSAValue]]] = []
        cur = stmt.parent
        while cur is not None:
            if isinstance(cur, (IfStmt, LoopStmt)):
                uses = list(self.issa.stmt_uses.get(cur.stmt_id,
                                                    {}).values())
                out.append((cur, uses))
            cur = cur.parent
        return out

    # -- SCC-based summary computation ---------------------------------------
    def _summary(self, root: SSAValue, mode: SliceMode) -> Summary:
        key = (root.vid, mode.key())
        got = self._memo.get(key)
        if got is not None:
            return got
        self._compute_component(root, mode)
        return self._memo[key]

    def _compute_component(self, root: SSAValue, mode: SliceMode) -> None:
        """Tarjan SCC over the subgraph reachable from ``root`` (within the
        intraprocedural + context-resolved edges), computing summaries for
        every node in reverse topological order of the condensation."""
        mkey = mode.key()
        index: Dict[int, int] = {}
        lowlink: Dict[int, int] = {}
        on_stack: Set[int] = set()
        stack: List[SSAValue] = []
        counter = [0]
        edges_cache: Dict[int, List[SSAValue]] = {}

        def edges(v: SSAValue) -> List[SSAValue]:
            got = edges_cache.get(v.vid)
            if got is not None:
                return got
            ops, callee_exits = self._deps(v, mode)
            out = list(ops)
            for exit_val in callee_exits:
                # Callee summaries close over a different procedure; compute
                # them recursively (the call graph is acyclic) then resolve
                # exposed formals with THIS site's actuals.
                callee_summ = self._summary(exit_val, mode)
                for formal in callee_summ.exposed:
                    site_ops = formal.site_operands.get(
                        v.call.stmt_id if v.call else -1, [])
                    for actual in site_ops:
                        if not self._prunable(actual, mode):
                            out.append(actual)
            edges_cache[v.vid] = out
            return out

        def strongconnect(v: SSAValue) -> None:
            work = [(v, iter(edges(v)))]
            index[v.vid] = lowlink[v.vid] = counter[0]
            counter[0] += 1
            stack.append(v)
            on_stack.add(v.vid)
            while work:
                node, it = work[-1]
                advanced = False
                for succ in it:
                    skey = (succ.vid, mkey)
                    if skey in self._memo:
                        continue
                    if succ.vid not in index:
                        index[succ.vid] = lowlink[succ.vid] = counter[0]
                        counter[0] += 1
                        stack.append(succ)
                        on_stack.add(succ.vid)
                        work.append((succ, iter(edges(succ))))
                        advanced = True
                        break
                    if succ.vid in on_stack:
                        lowlink[node.vid] = min(lowlink[node.vid],
                                                index[succ.vid])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlink[parent.vid] = min(lowlink[parent.vid],
                                              lowlink[node.vid])
                if lowlink[node.vid] == index[node.vid]:
                    component: List[SSAValue] = []
                    while True:
                        w = stack.pop()
                        on_stack.discard(w.vid)
                        component.append(w)
                        if w is node:
                            break
                    self._finalize_component(component, mode, edges)

        strongconnect(root)

    def _finalize_component(self, component: List[SSAValue],
                            mode: SliceMode, edges) -> None:
        """All members of an SCC share one summary (section 3.5.4)."""
        mkey = mode.key()
        member_ids = {v.vid for v in component}
        own: Set[int] = set()
        children: List[SliceNode] = []
        exposed: Set[SSAValue] = set()
        for v in component:
            own.update(self._own_stmts(v, mode))
            if v.kind == FORMAL_PHI:
                exposed.add(v)
            if v.kind == CALL_OUT:
                for exit_val in v.callee_exits:
                    callee_summ = self._summary(exit_val, mode)
                    children.append(callee_summ.node)
            for succ in edges(v):
                if succ.vid in member_ids:
                    continue
                skey = (succ.vid, mkey)
                summ = self._memo.get(skey)
                if summ is None:
                    # Successor finished earlier in this Tarjan run or is
                    # trivially terminal.
                    summ = self._summary(succ, mode)
                children.append(summ.node)
                exposed.update(summ.exposed)
        node = make_node(sorted(own), children)
        result = Summary(node, frozenset(exposed))
        for v in component:
            self._memo[(v.vid, mkey)] = result

    # -- context-specific slices (Cslice, section 3.5.3) -----------------------
    def _cslice(self, value: SSAValue, mode: SliceMode,
                context: List[CallStmt]) -> Tuple[Set[int], Set[SSAValue]]:
        summ = self._summary(value, mode)
        stmts: Set[int] = set(summ.statements())
        exposed: Set[SSAValue] = set()
        if not context:
            return stmts, set(summ.exposed)
        top = context[-1]
        rest = context[:-1]
        for formal in summ.exposed:
            site_ops = formal.site_operands.get(top.stmt_id)
            if site_ops is None:
                exposed.add(formal)
                continue
            for actual in site_ops:
                if self._prunable(actual, mode):
                    continue
                sub_stmts, sub_exposed = self._cslice(actual, mode, rest)
                stmts.update(sub_stmts)
                exposed.update(sub_exposed)
        return stmts, exposed
