"""Hierarchical slice representation (paper section 3.5.4).

"We represent a set of statements by a collection of subsets of statements
plus additional individual statements. ... a union operator between two
nodes can be performed by simply creating a new node that points to the
operands."  Strongly-connected components are collapsed by the slicer
before nodes are created, so the graph here is a DAG.
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

_node_ids = itertools.count(1)

EMPTY_FROZEN: FrozenSet[int] = frozenset()


class SliceNode:
    """A DAG node: its own statement ids plus child subsets."""

    __slots__ = ("node_id", "own", "children", "_flat")

    def __init__(self, own: Iterable[int] = (),
                 children: Iterable["SliceNode"] = ()):
        self.node_id = next(_node_ids)
        self.own: Tuple[int, ...] = tuple(own)
        self.children: Tuple[SliceNode, ...] = tuple(children)
        self._flat: Optional[FrozenSet[int]] = None

    def flatten(self) -> FrozenSet[int]:
        """All statement ids in this node's transitive closure (memoized)."""
        if self._flat is not None:
            return self._flat
        # Iterative DFS with per-node memoization.
        out: Set[int] = set()
        seen: Set[int] = set()
        stack: List[SliceNode] = [self]
        while stack:
            node = stack.pop()
            if node.node_id in seen:
                continue
            seen.add(node.node_id)
            if node._flat is not None:
                out.update(node._flat)
                continue
            out.update(node.own)
            stack.extend(node.children)
        self._flat = frozenset(out)
        return self._flat

    def node_count(self) -> int:
        """Number of distinct DAG nodes reachable (a sharing metric)."""
        seen: Set[int] = set()
        stack: List[SliceNode] = [self]
        while stack:
            node = stack.pop()
            if node.node_id in seen:
                continue
            seen.add(node.node_id)
            stack.extend(node.children)
        return len(seen)

    def __repr__(self):
        return f"SliceNode#{self.node_id}(own={len(self.own)})"


EMPTY_NODE = SliceNode()


def make_node(own: Iterable[int] = (),
              children: Iterable[SliceNode] = ()) -> SliceNode:
    own_t = tuple(own)
    kids = tuple(c for c in children if c is not EMPTY_NODE)
    if not own_t:
        if not kids:
            return EMPTY_NODE
        if len(kids) == 1:
            return kids[0]
    return SliceNode(own_t, kids)


def union_nodes(nodes: Iterable[SliceNode]) -> SliceNode:
    return make_node((), nodes)
