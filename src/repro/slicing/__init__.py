"""Interprocedural program slicing for interactive parallelization (ch. 3)."""

from .hierarchy import EMPTY_NODE, SliceNode, make_node, union_nodes
from .slicer import (DATA, PROGRAM, SliceMode, SliceResult, Slicer, Summary)

__all__ = [
    "EMPTY_NODE", "SliceNode", "make_node", "union_nodes",
    "DATA", "PROGRAM", "SliceMode", "SliceResult", "Slicer", "Summary",
]
