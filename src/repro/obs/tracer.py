"""Structured tracing core: nested spans, zero-cost-ish when disabled.

The paper's thesis is that parallelization decisions should be driven by
measurements (loop coverage, granularity, dyndep evidence — Ch. 2/4).
This module applies the same discipline to the pipeline itself: every
phase (parse, IR build, engine execution, profiling, dynamic dependence
analysis, Guru ranking, slicing, job execution) can report a *span* —
a named, tagged interval with wall time and op counts — into the
currently active :class:`Tracer`.

Design contract
---------------

* **Disabled tracing must be near-free.**  The default active tracer is
  :data:`NULL_TRACER`, whose :meth:`~NullTracer.span` returns one shared
  no-op context manager.  Instrumented code pays one thread-local read
  and two no-op calls per *phase* (never per op / per iteration), which
  is far below the < 5% ops/sec budget of ``scripts/perf_check.py``.

* **Tracing must never perturb results.**  Spans observe; they do not
  feed back.  ``tests/test_obs.py`` asserts byte-identical artifacts for
  traced vs. untraced runs of the whole pipeline.

* **Spans cross process boundaries.**  A tracer serializes a *trace
  context* (:meth:`Tracer.export_context`); a pool worker builds a child
  tracer from it (:meth:`Tracer.from_context`), records spans locally,
  and ships them back as plain dicts (:meth:`Tracer.to_dicts`) for the
  parent to :meth:`~Tracer.adopt`.  Parent/child linkage survives
  because span ids embed the producing process id.

Activation is thread-local (``activate()``/``get_tracer()``), so
concurrent HTTP handler threads and the batch scheduler can trace
independent jobs without cross-talk.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from typing import Any, Dict, Iterator, List, Optional, Sequence

__all__ = [
    "Span", "Tracer", "NullTracer", "NULL_TRACER",
    "get_tracer", "activate", "set_tracer",
]

class _AtomicCounter:
    """Explicitly locked monotonic counter.  ``itertools.count`` happens
    to be atomic under CPython's GIL, but id uniqueness is a correctness
    property (Chrome-trace nesting corrupts on collision), so it gets a
    real lock rather than an implementation accident."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0

    def next(self) -> int:
        with self._lock:
            self._value += 1
            return self._value


_ids = _AtomicCounter()
_trace_ids = _AtomicCounter()


def _new_span_id() -> str:
    """Process-unique, cross-process-collision-free span id: the pid
    disambiguates across processes, the atomic counter within one.  No
    timestamp component — two spans opened in the same millisecond must
    still get distinct ids."""
    return f"{os.getpid():x}.{_ids.next():x}"


def _new_trace_id() -> str:
    # The millisecond timestamp is for human readability only;
    # uniqueness comes from pid + the atomic counter.
    return f"t{os.getpid():x}.{int(time.time() * 1e3):x}." \
           f"{_trace_ids.next():x}"


class Span:
    """One named, tagged interval.  Use as a context manager::

        with tracer.span("instrument.dyndep", loop="interf/1000") as sp:
            ...
            sp.tag(carried=3)
    """

    __slots__ = ("tracer", "name", "tags", "trace_id", "span_id",
                 "parent_id", "start_wall", "duration_s", "pid", "tid",
                 "seq", "_t0")

    def __init__(self, tracer: "Tracer", name: str,
                 tags: Optional[Dict[str, Any]] = None):
        self.tracer = tracer
        self.name = name
        self.tags: Dict[str, Any] = dict(tags) if tags else {}
        self.trace_id = tracer.trace_id
        self.span_id = _new_span_id()
        self.parent_id: Optional[str] = None
        self.start_wall = 0.0
        self.duration_s = 0.0
        self.pid = os.getpid()
        self.tid = 0
        self.seq = 0
        self._t0 = 0.0

    # -- context manager protocol -----------------------------------------
    def __enter__(self) -> "Span":
        stack = self.tracer._stack()
        self.parent_id = stack[-1].span_id if stack \
            else self.tracer.root_parent_id
        stack.append(self)
        self.tid = threading.get_ident() & 0xFFFFFFFF
        self.seq = self.tracer._next_seq()
        self.start_wall = time.time()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        self.duration_s = time.perf_counter() - self._t0
        stack = self.tracer._stack()
        # pop through self: tolerate leaked children on exceptions
        while stack:
            if stack.pop() is self:
                break
        self.tracer._finish(self)
        return False

    # -- tagging -----------------------------------------------------------
    def tag(self, **tags) -> "Span":
        """Attach (JSON-serializable) key/value tags; returns self."""
        self.tags.update(tags)
        return self

    # -- (de)serialization --------------------------------------------------
    def to_dict(self) -> Dict:
        return {"name": self.name,
                "trace_id": self.trace_id,
                "span_id": self.span_id,
                "parent_id": self.parent_id,
                "start_wall": self.start_wall,
                "duration_s": self.duration_s,
                "pid": self.pid,
                "tid": self.tid,
                "seq": self.seq,
                "tags": dict(self.tags)}

    @classmethod
    def from_dict(cls, data: Dict, tracer: "Tracer") -> "Span":
        span = cls.__new__(cls)
        span.tracer = tracer
        span.name = data["name"]
        span.tags = dict(data.get("tags") or {})
        span.trace_id = data.get("trace_id", tracer.trace_id)
        span.span_id = data["span_id"]
        span.parent_id = data.get("parent_id")
        span.start_wall = data.get("start_wall", 0.0)
        span.duration_s = data.get("duration_s", 0.0)
        span.pid = data.get("pid", 0)
        span.tid = data.get("tid", 0)
        span.seq = data.get("seq", 0)
        span._t0 = 0.0
        return span

    def __repr__(self):
        return (f"Span({self.name} {self.duration_s * 1e3:.3f}ms "
                f"tags={self.tags})")


class Tracer:
    """Collects finished spans; thread-safe, with per-thread span stacks."""

    enabled = True

    def __init__(self, trace_id: Optional[str] = None,
                 parent_id: Optional[str] = None):
        self.trace_id = trace_id or _new_trace_id()
        #: Parent span id (in another process/tracer) that this tracer's
        #: root spans hang off — the reattachment hook for pool workers.
        self.root_parent_id = parent_id
        self._local = threading.local()
        self._lock = threading.Lock()
        self._finished: List[Span] = []
        self._seq = itertools.count(1)

    # -- internals ----------------------------------------------------------
    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _next_seq(self) -> int:
        return next(self._seq)

    def _finish(self, span: Span) -> None:
        with self._lock:
            self._finished.append(span)

    # -- recording -----------------------------------------------------------
    def span(self, name: str, **tags) -> Span:
        """A new span, entered via ``with``; nests under the thread's
        currently open span (or the tracer's root parent)."""
        return Span(self, name, tags)

    def event(self, name: str, **tags) -> None:
        """Record an *instant* span (zero duration) — for point-in-time
        facts like ``deadline_exceeded`` or ``pool_recycled`` that have
        no meaningful extent but belong in the trace timeline."""
        span = Span(self, name, tags)
        span.tags.setdefault("event", True)
        current = self.current()
        span.parent_id = current.span_id if current is not None \
            else self.root_parent_id
        span.tid = threading.get_ident() & 0xFFFFFFFF
        span.seq = self._next_seq()
        span.start_wall = time.time()
        span.duration_s = 0.0
        self._finish(span)

    def current(self) -> Optional[Span]:
        stack = self._stack()
        return stack[-1] if stack else None

    def add_tag(self, **tags) -> None:
        """Tag the currently open span, if any (no-op otherwise)."""
        span = self.current()
        if span is not None:
            span.tags.update(tags)

    # -- queries --------------------------------------------------------------
    def finished_spans(self) -> List[Span]:
        """All finished spans, in start order (seq-tied within a process,
        wall-clock across processes)."""
        with self._lock:
            spans = list(self._finished)
        return sorted(spans, key=lambda s: (s.start_wall, s.pid, s.seq))

    def to_dicts(self) -> List[Dict]:
        return [s.to_dict() for s in self.finished_spans()]

    def clear(self) -> None:
        with self._lock:
            self._finished.clear()

    # -- cross-process propagation ---------------------------------------------
    def export_context(self) -> Dict:
        """Serialized trace context for a child process: the child's root
        spans will parent onto this tracer's currently open span."""
        current = self.current()
        return {"trace_id": self.trace_id,
                "parent_id": current.span_id if current is not None
                else self.root_parent_id}

    @classmethod
    def from_context(cls, context: Optional[Dict]) -> "Tracer":
        if not context:
            return cls()
        return cls(trace_id=context.get("trace_id"),
                   parent_id=context.get("parent_id"))

    def adopt(self, span_dicts: Sequence[Dict]) -> None:
        """Reattach spans recorded by another tracer (typically shipped
        back from a pool worker as plain dicts)."""
        spans = [Span.from_dict(d, self) for d in span_dicts]
        with self._lock:
            self._finished.extend(spans)

    def __repr__(self):
        return (f"Tracer({self.trace_id}, "
                f"{len(self._finished)} finished spans)")


class _NullSpan:
    """Shared, stateless no-op span: the disabled-tracing fast path."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def tag(self, **tags) -> "_NullSpan":
        return self


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Drop-in no-op tracer; the default when nothing is activated."""

    enabled = False
    trace_id = "disabled"
    root_parent_id = None

    def span(self, name: str, **tags) -> _NullSpan:    # noqa: ARG002
        return _NULL_SPAN

    def event(self, name: str, **tags) -> None:        # noqa: ARG002
        pass

    def current(self) -> None:
        return None

    def add_tag(self, **tags) -> None:
        pass

    def finished_spans(self) -> List[Span]:
        return []

    def to_dicts(self) -> List[Dict]:
        return []

    def clear(self) -> None:
        pass

    def export_context(self) -> None:
        return None

    @staticmethod
    def from_context(context):                          # noqa: ARG004
        return NULL_TRACER

    def adopt(self, span_dicts) -> None:                # noqa: ARG002
        pass

    def __repr__(self):
        return "NullTracer()"


#: The process-wide disabled tracer (shared; allocation-free spans).
NULL_TRACER = NullTracer()

_active = threading.local()


def get_tracer():
    """The thread's active tracer (:data:`NULL_TRACER` when tracing is
    off).  This is the only call instrumented code pays when disabled."""
    return getattr(_active, "tracer", None) or NULL_TRACER


def set_tracer(tracer) -> None:
    """Set (or with ``None`` clear) the thread's active tracer."""
    _active.tracer = tracer


class _Activation:
    """``with activate(tracer):`` — install a tracer for the dynamic
    extent of the block, restoring the previous one after."""

    __slots__ = ("tracer", "_prev")

    def __init__(self, tracer):
        self.tracer = tracer
        self._prev = None

    def __enter__(self):
        self._prev = getattr(_active, "tracer", None)
        _active.tracer = self.tracer
        return self.tracer

    def __exit__(self, *exc) -> bool:
        _active.tracer = self._prev
        return False


def activate(tracer) -> _Activation:
    return _Activation(tracer)
