"""Span exporters: Chrome ``trace_event`` JSON and a terminal tree view.

Chrome format reference: every span becomes one *complete* event
(``"ph": "X"``) with microsecond ``ts``/``dur``, so the file loads
directly into ``chrome://tracing`` / Perfetto.  The tree view is what
``repro trace <workload>`` prints: phase nesting, wall time, and tags.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

from .tracer import Span

__all__ = ["to_chrome", "render_tree", "span_index", "phase_totals"]

#: Canonical pipeline phase names (the span taxonomy documented in
#: DESIGN.md).  Instrumentation sites elsewhere must use these names so
#: dashboards and tests can rely on them.
PHASES = ("parse", "build", "execute", "codegen", "parallelize",
          "instrument.profile", "instrument.dyndep", "guru", "slice",
          "parallel_exec", "parallel.exec", "parallel.merge", "snapshot",
          "execute_request", "job", "submit",
          "analyze", "incr.cone", "incr.reuse")


def _as_dicts(spans: Sequence[Union[Span, Dict]]) -> List[Dict]:
    return [s.to_dict() if isinstance(s, Span) else dict(s)
            for s in spans]


def to_chrome(spans: Sequence[Union[Span, Dict]], *,
              process_name: str = "repro") -> Dict:
    """Spans as a Chrome ``trace_event`` JSON object (version-stable:
    ``{"traceEvents": [...], "displayTimeUnit": "ms"}``)."""
    events: List[Dict] = []
    pids = []
    shard_lanes: Dict = {}           # (pid, tid) -> shard tag
    for s in _as_dicts(spans):
        pid = int(s.get("pid") or 0)
        tid = int(s.get("tid") or 0)
        if pid not in pids:
            pids.append(pid)
        args = {str(k): v for k, v in (s.get("tags") or {}).items()}
        args["span_id"] = s["span_id"]
        if s.get("parent_id"):
            args["parent_id"] = s["parent_id"]
        if "shard" in args and (pid, tid) not in shard_lanes:
            shard_lanes[(pid, tid)] = args["shard"]
        events.append({
            "name": s["name"],
            "cat": "repro",
            "ph": "X",
            "ts": int(s.get("start_wall", 0.0) * 1e6),
            "dur": max(1, int(s.get("duration_s", 0.0) * 1e6)),
            "pid": pid,
            "tid": tid,
            "args": args,
        })
    # name the processes (parent first, then pool workers)
    for rank, pid in enumerate(pids):
        label = process_name if rank == 0 else f"{process_name}-worker"
        events.append({"name": "process_name", "ph": "M", "pid": pid,
                       "tid": 0, "args": {"name": label}})
    # name shard-tagged lanes so per-shard load reads off the timeline
    for (pid, tid), shard in sorted(shard_lanes.items()):
        events.append({"name": "thread_name", "ph": "M", "pid": pid,
                       "tid": tid, "args": {"name": f"shard-{shard}"}})
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def span_index(spans: Sequence[Union[Span, Dict]]) -> Dict[str, Dict]:
    """``span_id -> span dict`` for linkage checks and tree building."""
    return {s["span_id"]: s for s in _as_dicts(spans)}


def _fmt_tags(tags: Dict) -> str:
    if not tags:
        return ""
    inner = ", ".join(f"{k}={v}" for k, v in sorted(tags.items()))
    return f"  [{inner}]"


def render_tree(spans: Sequence[Union[Span, Dict]], *,
                min_ms: float = 0.0) -> List[str]:
    """A human-readable span tree, one line per span::

        execute_request                 812.41 ms  [target=mdg]
        ├─ build                          9.12 ms
        │  └─ parse                       6.03 ms
        ├─ profile                      201.55 ms  [loops=9]
        ...
    """
    items = _as_dicts(spans)
    by_id = {s["span_id"]: s for s in items}
    children: Dict[Optional[str], List[Dict]] = {}
    for s in items:
        parent = s.get("parent_id")
        if parent not in by_id:
            parent = None                 # orphan/foreign parent -> root
        children.setdefault(parent, []).append(s)
    for group in children.values():
        group.sort(key=lambda s: (s.get("start_wall", 0.0),
                                  s.get("pid", 0), s.get("seq", 0)))

    lines: List[str] = []

    def emit(span: Dict, prefix: str, tail: str, child_prefix: str) -> None:
        ms = span.get("duration_s", 0.0) * 1e3
        if ms < min_ms:
            return
        label = f"{prefix}{tail}{span['name']}"
        lines.append(f"{label:<44s}{ms:10.2f} ms"
                     f"{_fmt_tags(span.get('tags') or {})}")
        kids = children.get(span["span_id"], [])
        for i, kid in enumerate(kids):
            last = i == len(kids) - 1
            emit(kid, prefix + child_prefix,
                 "└─ " if last else "├─ ",
                 "   " if last else "│  ")

    for root in children.get(None, []):
        emit(root, "", "", "")
    return lines


def phase_totals(spans: Sequence[Union[Span, Dict]]) -> Dict[str, Dict]:
    """Aggregate per-phase wall time: ``name -> {count, total_s, max_s}``
    (the summary block under the tree view and the input for the
    service's per-phase histograms)."""
    out: Dict[str, Dict] = {}
    for s in _as_dicts(spans):
        agg = out.setdefault(s["name"],
                             {"count": 0, "total_s": 0.0, "max_s": 0.0})
        dur = s.get("duration_s", 0.0)
        agg["count"] += 1
        agg["total_s"] += dur
        agg["max_s"] = max(agg["max_s"], dur)
    for agg in out.values():
        agg["total_s"] = round(agg["total_s"], 6)
        agg["max_s"] = round(agg["max_s"], 6)
    return out
