"""Observability layer: structured tracing + profiling for the pipeline.

``tracer`` holds the span model and thread-local activation;
``export`` renders finished spans as Chrome ``trace_event`` JSON or a
terminal tree.  See the "Observability" section of DESIGN.md for the
span taxonomy, the cross-process propagation protocol, and the
overhead contract.
"""

from .export import (PHASES, phase_totals, render_tree, span_index,
                     to_chrome)
from .tracer import (NULL_TRACER, NullTracer, Span, Tracer, activate,
                     get_tracer, set_tracer)

__all__ = [
    "Span", "Tracer", "NullTracer", "NULL_TRACER",
    "get_tracer", "activate", "set_tracer",
    "PHASES", "to_chrome", "render_tree", "span_index", "phase_totals",
]
