"""The Parallelization Guru (paper section 2.6).

"It presents to the programmer a list of loops to parallelize.  The list
contains all the sequential loops that have no I/O and that are not
dynamically nested under a parallel loop; the loops are sorted in
decreasing order of their execution time ...  Attached to each loop is the
information on whether they contain any loop-carried dynamic dependences
found by the Dynamic Dependence Analyzer and the number of static data
dependences found by the parallelizing compiler."

Importance cutoffs (section 4.3.2): coverage > 2 % and granularity >
0.05 ms — "these cut-off numbers are parameterized and can be changed by
the user".
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..ir.program import Program
from ..ir.statements import LoopStmt
from ..parallelize.plan import DEP, LoopPlan, ProgramPlan
from ..runtime.dyndep import DynamicDependenceAnalyzer
from ..runtime.machine import Machine
from ..runtime.profiler import LoopProfiler
from .metrics import loops_under_parallel


class LoopReport:
    """One row of the Guru's loop list."""

    __slots__ = ("loop", "plan", "coverage", "granularity_ms",
                 "dynamic_deps", "static_deps", "important", "executed",
                 "under_parallel")

    def __init__(self, loop: LoopStmt, plan: LoopPlan):
        self.loop = loop
        self.plan = plan
        self.coverage = 0.0
        self.granularity_ms = 0.0
        self.dynamic_deps = 0
        self.static_deps = 0
        self.important = False
        self.executed = False
        self.under_parallel = False

    @property
    def name(self) -> str:
        return self.loop.name

    @property
    def parallel(self) -> bool:
        return self.plan.parallel

    @property
    def interprocedural(self) -> bool:
        return self.loop.contains_call()

    def __repr__(self):
        tag = "par" if self.parallel else "seq"
        return (f"LoopReport({self.name} {tag} cov={self.coverage:.1%} "
                f"gran={self.granularity_ms:.3f}ms dyn={self.dynamic_deps} "
                f"static={self.static_deps})")


class ParallelizationGuru:
    """Integrates static plans with dynamic profiles into a strategy."""

    def __init__(self, program: Program, plan: ProgramPlan,
                 profiler: LoopProfiler,
                 dyndep: Optional[DynamicDependenceAnalyzer],
                 machine: Machine,
                 coverage_cutoff: float = 0.02,
                 granularity_cutoff_ms: float = 0.05):
        self.program = program
        self.plan = plan
        self.profiler = profiler
        self.dyndep = dyndep
        self.machine = machine
        self.coverage_cutoff = coverage_cutoff
        self.granularity_cutoff_ms = granularity_cutoff_ms
        self.reports: Dict[int, LoopReport] = {}
        self._build()

    def _build(self) -> None:
        under = loops_under_parallel(self.program, self.plan)
        for proc in self.program.procedures.values():
            for loop in proc.loops():
                lp = self.plan.loops.get(loop.stmt_id)
                if lp is None:
                    continue
                report = LoopReport(loop, lp)
                prof = self.profiler.profile(loop)
                if prof is not None:
                    report.executed = True
                    report.coverage = self.profiler.coverage_of(loop)
                    report.granularity_ms = self.profiler.granularity_ms(
                        loop, self.machine)
                if self.dyndep is not None:
                    report.dynamic_deps = self.dyndep.dependence_count(loop)
                report.static_deps = len(lp.dependent_vars())
                report.under_parallel = loop.stmt_id in under
                report.important = (
                    report.executed and not lp.parallel
                    and not lp.contains_io
                    and not report.under_parallel
                    and report.coverage > self.coverage_cutoff
                    and report.granularity_ms > self.granularity_cutoff_ms)
                self.reports[loop.stmt_id] = report

    # -- queries -----------------------------------------------------------
    def all_reports(self) -> List[LoopReport]:
        return sorted(self.reports.values(),
                      key=lambda r: -r.coverage)

    def executed_reports(self) -> List[LoopReport]:
        return [r for r in self.all_reports() if r.executed]

    def sequential_reports(self) -> List[LoopReport]:
        return [r for r in self.executed_reports() if not r.parallel]

    def targets(self) -> List[LoopReport]:
        """The ranked list the Guru walks the user through: important
        sequential loops, highest coverage first."""
        return [r for r in self.all_reports() if r.important]

    def targets_without_dynamic_deps(self) -> List[LoopReport]:
        return [r for r in self.targets() if r.dynamic_deps == 0]

    def report_for(self, loop: LoopStmt) -> Optional[LoopReport]:
        return self.reports.get(loop.stmt_id)

    def codeview_filter(self, *, min_coverage: float = 0.0,
                        min_granularity_ms: float = 0.0,
                        max_depth: Optional[int] = None) -> set:
        """Source lines of loops the Codeview should gray out — the
        section-2.7 'sliders' ("a set of sliders to determine if loops
        should be filtered from the code view according to their loop
        depth, granularity and execution time")."""
        from ..ir.statements import enclosing_loops
        filtered: set = set()
        for report in self.reports.values():
            loop = report.loop
            depth = len(enclosing_loops(loop)) + 1
            drop = (report.coverage < min_coverage
                    or report.granularity_ms < min_granularity_ms
                    or (max_depth is not None and depth > max_depth))
            if drop:
                filtered.add(loop.line)
                for stmt in loop.body.walk():
                    filtered.add(stmt.line)
        # never filter lines that belong to a surviving loop
        for report in self.reports.values():
            loop = report.loop
            depth = len(enclosing_loops(loop)) + 1
            keep = (report.coverage >= min_coverage
                    and report.granularity_ms >= min_granularity_ms
                    and (max_depth is None or depth <= max_depth))
            if keep:
                filtered.discard(loop.line)
                for stmt in loop.body.walk():
                    filtered.discard(stmt.line)
        return filtered

    def strategy_lines(self) -> List[str]:
        """A textual strategy summary for the user."""
        out = []
        targets = self.targets()
        out.append(f"{len(targets)} important sequential loop(s) found "
                   f"(coverage > {self.coverage_cutoff:.0%}, granularity > "
                   f"{self.granularity_cutoff_ms} ms):")
        for r in targets:
            hint = ("no dynamic dependence observed — likely parallelizable"
                    if r.dynamic_deps == 0 else
                    f"{r.dynamic_deps} dynamic dependence(s) observed")
            out.append(f"  {r.name}: coverage {r.coverage:.1%}, "
                       f"granularity {r.granularity_ms:.3f} ms, "
                       f"{r.static_deps} static dependence(s); {hint}")
        return out
