"""The Assertion Checker (paper section 2.8).

"If the user asserts that two references are independent, the Explorer
checks the information against the Dynamic Dependence Analyzer to determine
if any true dependence has been observed for the user-supplied input set.
If the user asserts that a global array needs to be privatized in a
procedure, the Explorer checks if a similar assertion is provided for all
other called procedures that access the same array.  If it is not, it
issues a warning and privatizes the array for the programmer
automatically."
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..ir.program import Program
from ..ir.statements import CallStmt, LoopStmt
from ..parallelize.parallelizer import Assertion
from ..runtime.dyndep import DynamicDependenceAnalyzer


class CheckOutcome:
    """Result of checking one assertion."""

    __slots__ = ("assertion", "accepted", "warnings", "errors",
                 "auto_added")

    def __init__(self, assertion: Assertion):
        self.assertion = assertion
        self.accepted = True
        self.warnings: List[str] = []
        self.errors: List[str] = []
        self.auto_added: List[Assertion] = []

    def __repr__(self):
        tag = "OK" if self.accepted else "REJECTED"
        return f"CheckOutcome({self.assertion!r}: {tag})"


class AssertionChecker:
    def __init__(self, program: Program,
                 dyndep: Optional[DynamicDependenceAnalyzer] = None):
        self.program = program
        self.dyndep = dyndep

    def check(self, assertions: List[Assertion]) -> List[CheckOutcome]:
        outcomes = [self._check_one(a, assertions) for a in assertions]
        return outcomes

    def checked_assertions(self, assertions: List[Assertion]
                           ) -> Tuple[List[Assertion], List[CheckOutcome]]:
        """Run the checker; return the (possibly augmented) assertion list
        of all accepted + auto-added assertions, plus the outcomes."""
        outcomes = self.check(assertions)
        final: List[Assertion] = []
        for o in outcomes:
            if o.accepted:
                final.append(o.assertion)
                final.extend(o.auto_added)
        return final, outcomes

    # ------------------------------------------------------------------
    def _check_one(self, assertion: Assertion,
                   all_assertions: List[Assertion]) -> CheckOutcome:
        outcome = CheckOutcome(assertion)
        try:
            loop = self.program.loop(assertion.loop_name)
        except KeyError:
            outcome.accepted = False
            outcome.errors.append(
                f"unknown loop {assertion.loop_name!r}")
            return outcome

        if assertion.kind == "independent":
            self._check_against_dyndep(assertion, loop, outcome)
        if assertion.kind in ("privatizable", "independent") \
                and assertion.var_name:
            self._check_callee_consistency(assertion, loop, outcome,
                                           all_assertions)
        return outcome

    def _buffer_names_for(self, var_name: str, loop: LoopStmt) -> Set[str]:
        """Runtime buffer names that could hold this variable."""
        names: Set[str] = set()
        for proc in self.program.procedures.values():
            sym = proc.symbols.lookup(var_name)
            if sym is None:
                continue
            if sym.is_common:
                names.add(f"/{sym.common_block}/")
            else:
                names.add(f"{proc.name}::{var_name}")
        return names

    def _check_against_dyndep(self, assertion: Assertion, loop: LoopStmt,
                              outcome: CheckOutcome) -> None:
        if self.dyndep is None:
            return
        buffers = self._buffer_names_for(assertion.var_name, loop)
        for (lid, bname), count in self.dyndep.carried_by_var.items():
            if lid == loop.stmt_id and bname in buffers and count > 0:
                outcome.accepted = False
                outcome.errors.append(
                    f"dynamic dependence observed on {assertion.var_name} "
                    f"in {loop.name} ({count} instance(s)) — independence "
                    f"assertion contradicts the execution")
                return

    def _check_callee_consistency(self, assertion: Assertion,
                                  loop: LoopStmt, outcome: CheckOutcome,
                                  all_assertions: List[Assertion]) -> None:
        """A privatization assertion on a COMMON array must hold in every
        procedure the loop calls that accesses the same storage; missing
        ones are warned about and added automatically."""
        proc = self.program.procedures[loop.proc_name]
        sym = proc.symbols.lookup(assertion.var_name)
        if sym is None or not sym.is_common:
            return
        accessors = self._callee_accessors(loop, sym.common_block)
        for callee_name, member_name in accessors:
            if member_name == assertion.var_name:
                continue
            covered = any(a.var_name == member_name
                          and a.loop_name == assertion.loop_name
                          for a in all_assertions)
            if not covered:
                outcome.warnings.append(
                    f"procedure {callee_name} accesses /{sym.common_block}/"
                    f" member {member_name}; privatizing it automatically")
                outcome.auto_added.append(Assertion(
                    assertion.loop_name, member_name, "privatizable"))

    def _callee_accessors(self, loop: LoopStmt, block: str
                          ) -> List[Tuple[str, str]]:
        out: List[Tuple[str, str]] = []
        seen: Set[str] = set()

        def visit(proc_name: str) -> None:
            if proc_name in seen:
                return
            seen.add(proc_name)
            proc = self.program.procedures.get(proc_name)
            if proc is None:
                return
            if block in proc.common_blocks:
                view = self.program.commons[block].views.get(proc_name)
                if view:
                    for member in view.symbols:
                        out.append((proc_name, member.name))
            for call in proc.call_sites():
                visit(call.callee)

        for stmt in loop.body.walk():
            if isinstance(stmt, CallStmt):
                visit(stmt.callee)
        return out
