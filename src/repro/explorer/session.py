"""The SUIF Explorer session — the chapter-2/4 workflow in one object.

"In parallelizing a program, SUIF Explorer first invokes the compiler to
parallelize the code.  Then, the Explorer instruments the parallelized code
using the dynamic tools and gathers profile data of an execution.  The
Parallelization Guru module analyzes the static and dynamic information to
identify target loops. ... Finally, the demand-driven slicing algorithm is
invoked to help users decide the parallelizability" (section 2.3.1).

A scripted (non-GUI) session:

>>> session = ExplorerSession(program, inputs=...)
>>> session.run_automatic()          # compiler + analyzers + simulation
>>> session.guru.targets()           # ranked important sequential loops
>>> session.slices_for(loop)         # pruned slices per unresolved dep
>>> session.apply_assertions([...])  # checker + re-parallelize + re-run
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.liveness import FULL
from ..ir.program import Program
from ..ir.statements import LoopStmt
from ..parallelize.parallelizer import Assertion, Parallelizer
from ..parallelize.plan import DEP, ProgramPlan, VarPlan
from ..runtime.dyndep import (DynamicDependenceAnalyzer,
                              analyze_dependences, reduction_stmt_ids)
from ..runtime.machine import ALPHASERVER_8400, Machine
from ..runtime.parallel_exec import (ParallelExecutionResult,
                                     execute_parallel)
from ..runtime.profiler import LoopProfiler, profile_program
from ..slicing.slicer import SliceResult, Slicer
from .assertions import AssertionChecker, CheckOutcome
from .guru import LoopReport, ParallelizationGuru
from .metrics import parallel_coverage, parallel_granularity_ms


class DependenceSlices:
    """The slices the Explorer shows for one unresolved dependence."""

    __slots__ = ("var", "program_slice", "control_slice",
                 "program_slice_cr", "control_slice_cr",
                 "program_slice_ar", "control_slice_ar")

    def __init__(self, var: VarPlan, program_slice: SliceResult,
                 control_slice: SliceResult,
                 program_slice_cr: SliceResult,
                 control_slice_cr: SliceResult,
                 program_slice_ar: SliceResult,
                 control_slice_ar: SliceResult):
        self.var = var
        self.program_slice = program_slice
        self.control_slice = control_slice
        self.program_slice_cr = program_slice_cr
        self.control_slice_cr = control_slice_cr
        self.program_slice_ar = program_slice_ar
        self.control_slice_ar = control_slice_ar


def references_to(loop: LoopStmt, var: VarPlan) -> List[Tuple]:
    """(stmt, symbol) pairs whose slices the Explorer presents for a
    dependence on ``var``.

    Following section 3.2.2, for array references the interesting
    slices are those of the *index expressions* ("the program slices
    of the array index expressions specify the locations accessed") —
    Fig 4-3 presents the slices of the references to K, not to RL.
    Scalar dependences slice the scalar itself."""
    from ..ir.expressions import ArrayRef, VarRef
    from ..ir.statements import AssignStmt
    symbols = {id(s) for s in var.symbols}
    refs: List[Tuple] = []

    def add_array_ref(stmt, node):
        added = False
        for idx in node.indices:
            for sub in idx.walk():
                if isinstance(sub, VarRef) and not sub.symbol.is_const:
                    refs.append((stmt, sub.symbol))
                    added = True
        if not added:
            refs.append((stmt, node.symbol))

    for stmt in loop.body.walk():
        if isinstance(stmt, AssignStmt) and \
                id(stmt.target.symbol) in symbols:
            if isinstance(stmt.target, ArrayRef):
                add_array_ref(stmt, stmt.target)
            else:
                refs.append((stmt, stmt.target.symbol))
        for expr in stmt.sub_expressions():
            for node in expr.walk():
                if isinstance(node, (VarRef, ArrayRef)) and \
                        id(node.symbol) in symbols:
                    if isinstance(node, ArrayRef):
                        add_array_ref(stmt, node)
                    else:
                        refs.append((stmt, node.symbol))
    return refs[:8]      # the Explorer shows the few key references


def union_slices(slicer: Slicer, program: Program, refs, loop,
                 region_loop, array_restricted, kind) -> SliceResult:
    ids = set()
    for stmt, symbol in refs:
        if kind == "control":
            res = slicer.control_slice(
                stmt, array_restricted=array_restricted,
                region_loop=region_loop)
        else:
            res = slicer.slice_of_use(
                stmt, symbol, kind="program",
                array_restricted=array_restricted,
                region_loop=region_loop)
        ids.update(res.stmt_ids)
    return SliceResult(program, frozenset(ids))


def dependence_slices(program: Program, slicer: Slicer, loop: LoopStmt,
                      loop_plan, var: Optional[str] = None
                      ) -> List[DependenceSlices]:
    """Per unresolved dependence of one loop, the program and control
    slices at the pruning levels of Fig 4-8 (full / code-region /
    code-region+array).  Session-free core shared by
    :meth:`ExplorerSession.slices_for` / :meth:`ExplorerSession.slice_at`
    and the incremental analyzer's demand-slice cache; ``var`` narrows
    the query to one variable (by display or symbol name)."""
    out: List[DependenceSlices] = []
    for vp in loop_plan.dependent_vars():
        if var is not None and vp.display_name != var and \
                var not in {s.name for s in vp.symbols}:
            continue
        refs = references_to(loop, vp)
        if not refs:
            continue
        out.append(DependenceSlices(
            vp,
            union_slices(slicer, program, refs, loop, None, False,
                         "program"),
            union_slices(slicer, program, refs, loop, None, False,
                         "control"),
            union_slices(slicer, program, refs, loop, loop, False,
                         "program"),
            union_slices(slicer, program, refs, loop, loop, False,
                         "control"),
            union_slices(slicer, program, refs, loop, loop, True,
                         "program"),
            union_slices(slicer, program, refs, loop, loop, True,
                         "control")))
    return out


class ExplorerSession:
    def __init__(self, program: Program, *,
                 machine: Machine = ALPHASERVER_8400,
                 inputs: Sequence[float] = (),
                 use_liveness: bool = True,
                 liveness_variant: str = FULL,
                 max_ops: int = 500_000_000,
                 engine: str = "compiled",
                 proc_cache_source: Optional[str] = None):
        self.program = program
        self.machine = machine
        self.inputs = inputs
        self.use_liveness = use_liveness
        self.liveness_variant = liveness_variant
        self.max_ops = max_ops
        self.engine = engine
        #: Source text backing ``program``; when set (and a ``proc/``
        #: store is registered) the static analyses run demand-driven
        #: against the shared per-procedure summary cache, so repeat
        #: jobs over the same procedures skip the body walks.
        self.proc_cache_source = proc_cache_source

        self.parallelizer: Optional[Parallelizer] = None
        self.plan: Optional[ProgramPlan] = None
        self.profiler: Optional[LoopProfiler] = None
        self.dyndep: Optional[DynamicDependenceAnalyzer] = None
        self.guru: Optional[ParallelizationGuru] = None
        self.result: Optional[ParallelExecutionResult] = None
        self.assertions: List[Assertion] = []
        self._slicer: Optional[Slicer] = None
        #: Which execution substrate each instrumented analysis actually
        #: ran on (e.g. ``{"profile": "compiled/profile", "dyndep":
        #: "compiled/dyndep"}``) — filled by :meth:`run_automatic` so
        #: logs and service traces can tell the fast path from the
        #: generic observer path.
        self.engine_labels: Dict[str, str] = {}

    # -- phase 1: automatic parallelization + execution analysis -------------
    def run_automatic(self) -> ParallelExecutionResult:
        from ..obs import get_tracer
        tracer = get_tracer()
        with tracer.span("parallelize", program=self.program.name) as sp:
            self.parallelizer = self._build_parallelizer()
            self.plan = self.parallelizer.plan()
            sp.tag(parallel_loops=len(self.plan.parallel_loops()))
        from ..runtime.compile_engine import engine_label
        self.profiler = profile_program(self.program, self.inputs,
                                        max_ops=self.max_ops,
                                        engine=self.engine)
        self.engine_labels["profile"] = engine_label(
            self.profiler.interpreter)
        self.dyndep = analyze_dependences(
            self.program, self.inputs,
            skip_stmt_ids=reduction_stmt_ids(self.program),
            max_ops=self.max_ops, engine=self.engine)
        self.engine_labels["dyndep"] = engine_label(
            self.dyndep.interpreter)
        with tracer.span("guru") as sp:
            self.guru = ParallelizationGuru(self.program, self.plan,
                                            self.profiler, self.dyndep,
                                            self.machine)
            sp.tag(targets=len(self.guru.targets()))
        with tracer.span("parallel_exec",
                         machine=self.machine.name) as sp:
            self.result = execute_parallel(self.program, self.plan,
                                           self.machine,
                                           inputs=self.inputs,
                                           max_ops=self.max_ops,
                                           engine=self.engine)
            sp.tag(speedup=round(self.result.speedup, 4))
        return self.result

    def _build_parallelizer(self) -> Parallelizer:
        """An eager parallelizer, unless cross-job summary reuse is
        available: with a ``proc_cache_source`` and a registered proc
        store, a *lazy* parallelizer wired to the shared per-procedure
        ⟨R,E,W,M⟩-summary and after-context caches plans the same rows
        while skipping already-cached body walks.  Assertions mutate the
        planning inputs, so asserted sessions always analyze fresh."""
        if self.proc_cache_source is not None and not self.assertions:
            from ..analysis.incremental import attach_summary_cache
            lazy = Parallelizer(self.program,
                                use_liveness=self.use_liveness,
                                liveness_variant=self.liveness_variant,
                                lazy=True)
            attached = attach_summary_cache(
                lazy, self.proc_cache_source,
                options={"use_liveness": self.use_liveness,
                         "liveness_variant": self.liveness_variant})
            if attached is not None:
                return lazy
        return Parallelizer(self.program, use_liveness=self.use_liveness,
                            liveness_variant=self.liveness_variant,
                            assertions=self.assertions)

    def _require_run(self) -> None:
        """Guard for the phase-2 queries that need phase-1 products."""
        if self.plan is None or self.profiler is None:
            raise RuntimeError(
                "run_automatic() first: this session has no plan/profile "
                "yet — call session.run_automatic() before querying it")

    # -- metrics ----------------------------------------------------------
    def coverage(self) -> float:
        self._require_run()
        return parallel_coverage(self.program, self.plan, self.profiler)

    def granularity_ms(self) -> float:
        self._require_run()
        return parallel_granularity_ms(self.program, self.plan,
                                       self.profiler, self.machine)

    # -- real execution ----------------------------------------------------
    def parallel_execute(self, workers: int = 2, **runner_kwargs):
        """Execute the current plan on actual cores (the par_backend).

        Needs a plan; builds one with the session's settings if
        :meth:`run_automatic` has not run yet.  Returns a
        :class:`~repro.runtime.par_backend.ParallelRunResult` whose
        outputs, COMMON memory, and op count are bit-identical to the
        sequential transpiled engine.
        """
        from ..runtime.par_backend import ParallelRunner
        if self.plan is None:
            self.parallelizer = Parallelizer(
                self.program, use_liveness=self.use_liveness,
                liveness_variant=self.liveness_variant,
                assertions=self.assertions)
            self.plan = self.parallelizer.plan()
        runner = ParallelRunner(self.program, self.plan,
                                workers=workers, **runner_kwargs)
        return runner.execute(self.inputs, max_ops=self.max_ops)

    # -- phase 2: slicing assistance --------------------------------------------
    @property
    def slicer(self) -> Slicer:
        if self._slicer is None:
            self._slicer = Slicer(self.program)
        return self._slicer

    def slices_for(self, loop: LoopStmt) -> List[DependenceSlices]:
        """Per unresolved dependence of a loop, the program and control
        slices at the pruning levels of Fig 4-8 (full / code-region /
        code-region+array)."""
        from ..obs import get_tracer
        self._require_run()
        with get_tracer().span("slice", loop=loop.name) as sp:
            out = dependence_slices(self.program, self.slicer, loop,
                                    self.plan.loops[loop.stmt_id])
            sp.tag(vars=len(out))
        return out

    def slice_at(self, loop, var: Optional[str] = None
                 ) -> List[DependenceSlices]:
        """Demand-driven slicing from a query point (paper section 3.2:
        "the demand-driven slicing algorithm is invoked" at the user's
        point of interest).  ``loop`` is a :class:`LoopStmt` or a loop
        name; ``var`` optionally narrows to one dependence.  Unlike
        :meth:`slices_for` this does not require :meth:`run_automatic`:
        without a plan it lazily analyzes just the loop's procedure cone."""
        from ..obs import get_tracer
        if isinstance(loop, str):
            try:
                loop = self.program.loop(loop)
            except KeyError:
                raise ValueError(
                    f"unknown loop {loop!r}; choose from "
                    f"{self.program.loop_names()}") from None
        if self.plan is not None and loop.stmt_id in self.plan.loops:
            loop_plan = self.plan.loops[loop.stmt_id]
        else:
            par = Parallelizer(
                self.program, use_liveness=self.use_liveness,
                liveness_variant=self.liveness_variant,
                assertions=self.assertions, lazy=True)
            loop_plan = par.plan_for([loop.proc_name]).loops[loop.stmt_id]
        with get_tracer().span("slice", loop=loop.name) as sp:
            out = dependence_slices(self.program, self.slicer, loop,
                                    loop_plan, var=var)
            sp.tag(vars=len(out))
        return out

    # -- phase 3: user feedback ---------------------------------------------
    def apply_assertions(self, assertions: List[Assertion]
                         ) -> Tuple[List[CheckOutcome],
                                    ParallelExecutionResult]:
        """Check the assertions, annotate, re-parallelize, re-simulate."""
        checker = AssertionChecker(self.program, self.dyndep)
        final, outcomes = checker.checked_assertions(assertions)
        self.assertions.extend(final)
        result = self.run_automatic()
        return outcomes, result

    # -- reporting -----------------------------------------------------------
    def summary_lines(self) -> List[str]:
        r = self.result
        out = [
            f"program: {self.program.name} "
            f"({self.program.total_lines()} lines)",
            f"machine: {self.machine.name} ({self.machine.processors} "
            f"processors)",
            f"coverage: {self.coverage():.1%}",
            f"granularity: {self.granularity_ms():.3f} ms",
            f"speedup: {r.speedup:.2f}x" if r else "not executed",
        ]
        if self.assertions:
            out.append(f"user assertions: {len(self.assertions)}")
        return out
