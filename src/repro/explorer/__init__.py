"""The interactive Explorer: Guru, metrics, assertion checker, session."""

from .assertions import AssertionChecker, CheckOutcome
from .guru import LoopReport, ParallelizationGuru
from .metrics import (loops_under_parallel, outermost_parallel_dynamic,
                      parallel_coverage, parallel_granularity_ms)
from .session import DependenceSlices, ExplorerSession

__all__ = [
    "AssertionChecker", "CheckOutcome",
    "LoopReport", "ParallelizationGuru",
    "loops_under_parallel", "outermost_parallel_dynamic",
    "parallel_coverage", "parallel_granularity_ms",
    "DependenceSlices", "ExplorerSession",
]
