"""The Parallelization Guru's two quantitative metrics (paper section 2.6).

* **Parallelism coverage** — "the percentage of total execution time spent
  in the parallel regions"; by Amdahl's law it bounds the speedup.
* **Parallelism granularity** — "the average length of computation between
  synchronizations in the parallel regions"; fine-grain parallel loops can
  lose performance to spawn/synchronization overheads.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..ir.program import Program
from ..ir.statements import CallStmt, LoopStmt
from ..parallelize.plan import ProgramPlan
from ..runtime.machine import Machine
from ..runtime.profiler import LoopProfiler


def parallel_coverage(program: Program, plan: ProgramPlan,
                      profiler: LoopProfiler) -> float:
    """Fraction of execution ops spent inside (outermost) parallel regions."""
    if not profiler.total_ops:
        return 0.0
    covered = 0
    for loop in outermost_parallel_dynamic(program, plan):
        prof = profiler.profile(loop)
        if prof is not None:
            covered += prof.total_ops
    return min(1.0, covered / profiler.total_ops)


def parallel_granularity_ms(program: Program, plan: ProgramPlan,
                            profiler: LoopProfiler,
                            machine: Machine) -> float:
    """Average work per parallel-region invocation, in milliseconds."""
    total_ops = 0
    invocations = 0
    for loop in outermost_parallel_dynamic(program, plan):
        prof = profiler.profile(loop)
        if prof is not None:
            total_ops += prof.total_ops
            invocations += prof.invocations
    if not invocations:
        return 0.0
    return machine.seconds(total_ops / invocations) * 1e3


def outermost_parallel_dynamic(program: Program, plan: ProgramPlan
                               ) -> List[LoopStmt]:
    """Parallel loops that actually run parallel: not nested (lexically or
    through calls) under another parallel loop."""
    nested = loops_under_parallel(program, plan)
    return [loop for loop in plan.parallel_loops()
            if loop.stmt_id not in nested]


def loops_under_parallel(program: Program, plan: ProgramPlan) -> Set[int]:
    """Ids of loops dynamically nested under some parallel loop (including
    loops of procedures called from parallel loop bodies)."""
    nested: Set[int] = set()

    def mark_proc(name: str, seen: Set[str]) -> None:
        if name in seen:
            return
        seen.add(name)
        proc = program.procedures.get(name)
        if proc is None:
            return
        for loop in proc.loops():
            nested.add(loop.stmt_id)
        for call in proc.call_sites():
            mark_proc(call.callee, seen)

    def mark_body(loop: LoopStmt) -> None:
        seen: Set[str] = set()
        for stmt in loop.body.walk():
            if isinstance(stmt, LoopStmt):
                nested.add(stmt.stmt_id)
            elif isinstance(stmt, CallStmt):
                mark_proc(stmt.callee, seen)

    for loop in plan.parallel_loops():
        mark_body(loop)
    return nested
