"""Array sections: finite unions of integer polyhedra.

"The accessed region of an array is represented as a set of such polyhedra"
(paper section 5.2.1).  A :class:`Section` is that set.  Dimension ``k`` of
an array is bound to the reserved variable ``dim(k)`` (``"_d0"``, ``"_d1"``,
...); any other variables appearing in a system are symbolic context
variables (loop-invariant scalars, loop indices not yet projected away).

The operations here mirror exactly what the analyses need:

* ``union`` / ``intersect`` / ``subtract`` — set algebra on regions,
* ``project_away`` — the *closure* operator that removes a loop index,
* ``is_empty`` / ``contains`` — decision procedures (conservative over Z),
* ``rename`` / ``substitute`` — parameter mapping across call sites.

``subtract`` is exact over the rationals for polyhedral operands; when a
result would explode past ``MAX_DISJUNCTS`` the *subtrahend is ignored*
for that disjunct, which over-approximates the difference — sound wherever
sections describe may-information (exposed reads), and callers that need
under-approximation (must-writes) never subtract.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Sequence, Tuple

from .linexpr import LinExpr
from .system import Constraint, System

MAX_DISJUNCTS = 40

_DIM_PREFIX = "_d"


def dim(k: int) -> str:
    """Reserved variable name for array dimension ``k`` (0-based)."""
    return f"{_DIM_PREFIX}{k}"


def is_dim(name: str) -> bool:
    return name.startswith(_DIM_PREFIX) and name[len(_DIM_PREFIX):].isdigit()


class Section:
    """A union of :class:`System` polyhedra describing array elements."""

    __slots__ = ("systems",)

    def __init__(self, systems: Iterable[System] = ()):
        kept: List[System] = []
        seen = set()
        for s in systems:
            k = s.key()
            if k not in seen:
                seen.add(k)
                kept.append(s)
        self.systems: Tuple[System, ...] = tuple(kept)

    # -- constructors -------------------------------------------------------
    @staticmethod
    def empty() -> "Section":
        return Section()

    @staticmethod
    def universe() -> "Section":
        """The whole array (every index value) — the conservative section
        used for non-affine subscripts."""
        return Section([System.universe()])

    @staticmethod
    def from_system(system: System) -> "Section":
        return Section([system])

    @staticmethod
    def point(indices: Sequence[LinExpr]) -> "Section":
        """The single element whose subscripts are the given affine exprs."""
        cons = [Constraint.eq(LinExpr.var(dim(k)), e)
                for k, e in enumerate(indices)]
        return Section([System(cons)])

    # -- predicates ----------------------------------------------------------
    def is_empty(self) -> bool:
        return all(s.is_empty() for s in self.systems)

    def is_universe(self) -> bool:
        return any(not s.constraints for s in self.systems)

    def contains(self, other: "Section") -> bool:
        """Conservative containment: every disjunct of ``other`` must be
        contained in a single disjunct of ``self`` (or be empty).  May
        return False for true containments split across disjuncts — the
        safe direction for all callers."""
        for o in other.systems:
            if o.is_empty():
                continue
            if not any(s.contains(o) for s in self.systems):
                return False
        return True

    def intersects(self, other: "Section") -> bool:
        return not self.intersect(other).is_empty()

    # -- algebra -------------------------------------------------------------
    def union(self, other: "Section") -> "Section":
        merged = list(self.systems) + list(other.systems)
        if len(merged) > MAX_DISJUNCTS:
            merged = _coalesce(merged)
        if len(merged) > MAX_DISJUNCTS:
            # Over-approximate to the whole array — sound for may-info.
            return Section.universe()
        return Section(merged)

    def intersect(self, other: "Section") -> "Section":
        out: List[System] = []
        for a in self.systems:
            for b in other.systems:
                c = a.intersect(b)
                if not c.is_empty():
                    out.append(c)
        return Section(out)

    def subtract(self, other: "Section") -> "Section":
        """Set difference ``self - other`` (over-approximated on blowup)."""
        current = [s for s in self.systems if not s.is_empty()]
        for b in other.systems:
            if not b.constraints:           # subtracting the universe
                return Section.empty()
            nxt: List[System] = []
            for a in current:
                pieces = _subtract_one(a, b)
                if len(nxt) + len(pieces) > MAX_DISJUNCTS:
                    nxt.append(a)           # give up on this subtrahend
                else:
                    nxt.extend(pieces)
            current = nxt
        return Section(current)

    def project_away(self, variables: Sequence[str]) -> "Section":
        """Closure: existentially eliminate loop-index variables."""
        return Section(s.project_away(variables) for s in self.systems)

    def rename(self, mapping: Mapping[str, str]) -> "Section":
        return Section(s.rename(mapping) for s in self.systems)

    def substitute(self, var: str, repl: LinExpr) -> "Section":
        return Section(s.substitute(var, repl) for s in self.systems)

    def constrain(self, *constraints: Constraint) -> "Section":
        return Section(s.and_also(*constraints) for s in self.systems)

    # -- introspection ---------------------------------------------------------
    def free_variables(self) -> Tuple[str, ...]:
        """Non-dimension variables appearing in the section."""
        names = set()
        for s in self.systems:
            for v in s.variables():
                if not is_dim(v):
                    names.add(v)
        return tuple(sorted(names))

    def key(self) -> Tuple:
        return tuple(sorted(s.key() for s in self.systems))

    def __eq__(self, other) -> bool:
        return isinstance(other, Section) and self.key() == other.key()

    def __hash__(self) -> int:
        return hash(self.key())

    def __repr__(self) -> str:
        if not self.systems:
            return "Section(EMPTY)"
        if self.is_universe():
            return "Section(ALL)"
        return "Section[" + " U ".join(map(repr, self.systems)) + "]"


def _subtract_one(a: System, b: System) -> List[System]:
    """``a - b`` for single polyhedra, as a disjoint union of polyhedra.

    Standard construction: for constraints c1..cn of b,
    ``a - b = U_i  (a & c1 & ... & c_{i-1} & !ci)``.
    """
    out: List[System] = []
    prefix: List[Constraint] = []
    for c in b.constraints:
        for neg in c.negate():
            cand = a.and_also(*prefix, neg)
            if not cand.is_empty():
                out.append(cand)
        prefix.append(c)
    if not b.constraints:
        return []
    return out


def _coalesce(systems: List[System]) -> List[System]:
    """Cheap coalescing: drop systems contained in another."""
    kept: List[System] = []
    for s in systems:
        if s.is_empty():
            continue
        if any(other.contains(s) for other in kept):
            continue
        kept = [k for k in kept if not s.contains(k)]
        kept.append(s)
    return kept


def range_section(low: LinExpr | int, high: LinExpr | int,
                  dimension: int = 0) -> Section:
    """The 1-D section ``low <= dim <= high`` (Fortran-style inclusive)."""
    v = LinExpr.var(dim(dimension))
    lo = low if isinstance(low, LinExpr) else LinExpr.constant(low)
    hi = high if isinstance(high, LinExpr) else LinExpr.constant(high)
    return Section([System([Constraint.ge(v, lo), Constraint.le(v, hi)])])
