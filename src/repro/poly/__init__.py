"""Polyhedral machinery: linear expressions, inequality systems, sections.

This package implements the array-access representation of the SUIF
parallelizer — "array regions are represented as sets of systems of linear
inequalities, and general mathematical algorithms are used to precisely
capture the data accesses in a program" (paper section 2.4).
"""

from .linexpr import LinExpr, linexpr_sum
from .system import Constraint, System, bounds_system
from .sections import Section, dim, is_dim, range_section

__all__ = [
    "LinExpr", "linexpr_sum",
    "Constraint", "System", "bounds_system",
    "Section", "dim", "is_dim", "range_section",
]
