"""Linear expressions over named integer variables.

The array-section machinery of the SUIF parallelizer (paper section 2.4,
5.2.1) represents array accesses as sets of systems of *linear inequalities*
over loop index variables and symbolic constants.  This module provides the
base affine-expression type those systems are built from.

A :class:`LinExpr` is ``sum(coeff_i * var_i) + const`` with exact rational
coefficients (:class:`fractions.Fraction`), so Fourier-Motzkin elimination
never loses precision to floating point.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, Iterable, Mapping, Tuple, Union

Number = Union[int, Fraction]


def _as_fraction(value: Number) -> Fraction:
    if isinstance(value, Fraction):
        return value
    if isinstance(value, int):
        return Fraction(value)
    raise TypeError(f"expected int or Fraction, got {type(value)!r}")


class LinExpr:
    """An affine expression ``c0 + c1*x1 + ... + cn*xn``.

    Immutable.  Variables are plain strings; zero-coefficient terms are
    dropped eagerly so two equal expressions always compare equal.
    """

    __slots__ = ("coeffs", "const")

    def __init__(self, coeffs: Mapping[str, Number] | None = None,
                 const: Number = 0):
        clean: Dict[str, Fraction] = {}
        if coeffs:
            for var, c in coeffs.items():
                f = _as_fraction(c)
                if f != 0:
                    clean[var] = f
        self.coeffs: Dict[str, Fraction] = clean
        self.const: Fraction = _as_fraction(const)

    # -- constructors -----------------------------------------------------
    @staticmethod
    def var(name: str, coeff: Number = 1) -> "LinExpr":
        """The expression ``coeff * name``."""
        return LinExpr({name: coeff})

    @staticmethod
    def constant(value: Number) -> "LinExpr":
        return LinExpr({}, value)

    # -- queries -----------------------------------------------------------
    def variables(self) -> Tuple[str, ...]:
        return tuple(sorted(self.coeffs))

    def coeff(self, var: str) -> Fraction:
        return self.coeffs.get(var, Fraction(0))

    def is_constant(self) -> bool:
        return not self.coeffs

    def references(self, var: str) -> bool:
        return var in self.coeffs

    # -- arithmetic ----------------------------------------------------------
    def __add__(self, other: "LinExpr | Number") -> "LinExpr":
        if isinstance(other, (int, Fraction)):
            return LinExpr(self.coeffs, self.const + _as_fraction(other))
        merged = dict(self.coeffs)
        for var, c in other.coeffs.items():
            merged[var] = merged.get(var, Fraction(0)) + c
        return LinExpr(merged, self.const + other.const)

    __radd__ = __add__

    def __neg__(self) -> "LinExpr":
        return LinExpr({v: -c for v, c in self.coeffs.items()}, -self.const)

    def __sub__(self, other: "LinExpr | Number") -> "LinExpr":
        if isinstance(other, (int, Fraction)):
            return self + (-_as_fraction(other))
        return self + (-other)

    def __rsub__(self, other: Number) -> "LinExpr":
        return (-self) + _as_fraction(other)

    def __mul__(self, scalar: Number) -> "LinExpr":
        s = _as_fraction(scalar)
        return LinExpr({v: c * s for v, c in self.coeffs.items()},
                       self.const * s)

    __rmul__ = __mul__

    def substitute(self, var: str, replacement: "LinExpr") -> "LinExpr":
        """Replace ``var`` by an affine expression."""
        c = self.coeffs.get(var)
        if c is None:
            return self
        rest = LinExpr({v: k for v, k in self.coeffs.items() if v != var},
                       self.const)
        return rest + replacement * c

    def rename(self, mapping: Mapping[str, str]) -> "LinExpr":
        """Rename variables; unmapped names pass through unchanged."""
        return LinExpr({mapping.get(v, v): c for v, c in self.coeffs.items()},
                       self.const)

    def scale_to_integer(self) -> "LinExpr":
        """Multiply by the LCM of denominators so all coefficients are ints."""
        denoms = [self.const.denominator]
        denoms.extend(c.denominator for c in self.coeffs.values())
        lcm = 1
        for d in denoms:
            g = _gcd(lcm, d)
            lcm = lcm // g * d
        return self * lcm

    # -- plumbing -----------------------------------------------------------
    def key(self) -> Tuple:
        # (numerator, denominator) int pairs: hashing plain ints is far
        # cheaper than Fraction.__hash__ (which computes modular inverses)
        return (tuple(sorted((v, c.numerator, c.denominator)
                             for v, c in self.coeffs.items())),
                self.const.numerator, self.const.denominator)

    def __eq__(self, other) -> bool:
        return isinstance(other, LinExpr) and self.key() == other.key()

    def __hash__(self) -> int:
        return hash(self.key())

    def __repr__(self) -> str:
        parts = []
        for var in sorted(self.coeffs):
            c = self.coeffs[var]
            if c == 1:
                parts.append(f"+{var}")
            elif c == -1:
                parts.append(f"-{var}")
            else:
                parts.append(f"{'+' if c > 0 else ''}{c}*{var}")
        if self.const != 0 or not parts:
            parts.append(f"{'+' if self.const > 0 else ''}{self.const}")
        text = "".join(parts)
        return text[1:] if text.startswith("+") else text


def _gcd(a: int, b: int) -> int:
    while b:
        a, b = b, a % b
    return abs(a)


def linexpr_sum(exprs: Iterable[LinExpr]) -> LinExpr:
    total = LinExpr()
    for e in exprs:
        total = total + e
    return total
