"""Systems of linear constraints (integer polyhedra).

A :class:`System` is a conjunction of affine constraints ``expr >= 0`` and
``expr == 0`` over named integer variables.  Array sections in the paper
(sections 5.2.1, 6.2.1) are sets of such systems: "the denoted index tuples
can also be viewed as a set of integral points within a convex polyhedron".

Emptiness and projection are delegated to Fourier-Motzkin elimination
(:mod:`repro.poly.fourier_motzkin`); containment is decided via emptiness of
``A and not(c)`` per constraint ``c``.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, List, Mapping, Optional, Sequence, Tuple

from .linexpr import LinExpr


class Constraint:
    """A single affine constraint: ``expr >= 0`` or ``expr == 0``."""

    __slots__ = ("expr", "is_equality", "_key_memo")

    GE = ">="
    EQ = "=="

    def __init__(self, expr: LinExpr, is_equality: bool = False):
        self.expr = expr
        self.is_equality = is_equality
        self._key_memo = None

    # Convenience builders --------------------------------------------------
    @staticmethod
    def ge(lhs: LinExpr, rhs: LinExpr | int = 0) -> "Constraint":
        """lhs >= rhs"""
        return Constraint(lhs - rhs, False)

    @staticmethod
    def le(lhs: LinExpr, rhs: LinExpr | int = 0) -> "Constraint":
        """lhs <= rhs"""
        return Constraint((rhs - lhs) if isinstance(rhs, LinExpr)
                          else (LinExpr.constant(rhs) - lhs), False)

    @staticmethod
    def eq(lhs: LinExpr, rhs: LinExpr | int = 0) -> "Constraint":
        """lhs == rhs"""
        return Constraint(lhs - rhs, True)

    @staticmethod
    def lt(lhs: LinExpr, rhs: LinExpr | int = 0) -> "Constraint":
        """lhs < rhs, i.e. lhs <= rhs - 1 over the integers."""
        rhs_e = rhs if isinstance(rhs, LinExpr) else LinExpr.constant(rhs)
        return Constraint(rhs_e - lhs - 1, False)

    def negate(self) -> List["Constraint"]:
        """Integer negation.  ``not(e >= 0)`` is ``-e - 1 >= 0``;
        ``not(e == 0)`` is the *disjunction* ``e >= 1 or -e >= 1`` and is
        returned as two constraints the caller must treat as alternatives."""
        if self.is_equality:
            return [Constraint(self.expr - 1), Constraint(-self.expr - 1)]
        return [Constraint(-self.expr - 1)]

    def variables(self) -> Tuple[str, ...]:
        return self.expr.variables()

    def rename(self, mapping: Mapping[str, str]) -> "Constraint":
        return Constraint(self.expr.rename(mapping), self.is_equality)

    def substitute(self, var: str, repl: LinExpr) -> "Constraint":
        return Constraint(self.expr.substitute(var, repl), self.is_equality)

    def is_trivially_true(self) -> bool:
        if not self.expr.is_constant():
            return False
        if self.is_equality:
            return self.expr.const == 0
        return self.expr.const >= 0

    def is_trivially_false(self) -> bool:
        if not self.expr.is_constant():
            return False
        if self.is_equality:
            return self.expr.const != 0
        return self.expr.const < 0

    def key(self) -> Tuple:
        if self._key_memo is None:
            self._key_memo = (self.expr.key(), self.is_equality)
        return self._key_memo

    def __eq__(self, other) -> bool:
        return isinstance(other, Constraint) and self.key() == other.key()

    def __hash__(self) -> int:
        return hash(self.key())

    def __repr__(self) -> str:
        op = "==" if self.is_equality else ">="
        return f"{self.expr!r} {op} 0"


class System:
    """A conjunction of constraints — one convex integer polyhedron."""

    __slots__ = ("constraints", "_empty_memo", "_key_memo")

    def __init__(self, constraints: Iterable[Constraint] = ()):
        # Drop trivially-true constraints; dedupe while preserving order.
        seen = set()
        kept: List[Constraint] = []
        for c in constraints:
            if c.is_trivially_true():
                continue
            k = c.key()
            if k not in seen:
                seen.add(k)
                kept.append(c)
        self.constraints: Tuple[Constraint, ...] = tuple(kept)
        self._empty_memo = None
        self._key_memo = None

    @staticmethod
    def universe() -> "System":
        return System()

    def variables(self) -> Tuple[str, ...]:
        names = set()
        for c in self.constraints:
            names.update(c.variables())
        return tuple(sorted(names))

    def and_also(self, *constraints: Constraint) -> "System":
        return System(self.constraints + tuple(constraints))

    def intersect(self, other: "System") -> "System":
        return System(self.constraints + other.constraints)

    def rename(self, mapping: Mapping[str, str]) -> "System":
        return System(c.rename(mapping) for c in self.constraints)

    def substitute(self, var: str, repl: LinExpr) -> "System":
        return System(c.substitute(var, repl) for c in self.constraints)

    # -- decision procedures -----------------------------------------------
    def is_empty(self) -> bool:
        """True if the system has no rational solutions (conservative for
        integer emptiness: a rationally-empty system is integrally empty;
        the converse may not hold, which errs on the safe side for
        dependence testing).  Memoized: systems are immutable."""
        if self._empty_memo is not None:
            return self._empty_memo
        from .fourier_motzkin import system_is_empty
        result = False
        for c in self.constraints:
            if c.is_trivially_false():
                result = True
                break
        else:
            result = system_is_empty(self)
        self._empty_memo = result
        return result

    def project_away(self, variables: Sequence[str]) -> "System":
        """Eliminate the named variables (existential projection)."""
        from .fourier_motzkin import project
        return project(self, variables)

    def contains(self, other: "System") -> bool:
        """True if every point of ``other`` satisfies ``self``.

        Decided by checking that ``other AND not(c)`` is empty for each
        constraint ``c`` of self (sound and complete over the rationals,
        conservative over the integers)."""
        # cheap sufficient check: a superset of constraints is contained
        mine = set(c.key() for c in self.constraints)
        theirs = set(c.key() for c in other.constraints)
        if mine <= theirs:
            return True
        for c in self.constraints:
            if c.key() in theirs:
                continue
            for neg in c.negate():
                if not other.and_also(neg).is_empty():
                    return False
        return True

    def sample_point(self, bound: int = 12) -> Optional[Mapping[str, int]]:
        """Search a small integer box for a satisfying assignment.  Used by
        tests as an independent oracle, not by the analyses."""
        names = self.variables()
        if not names:
            return {} if not self.is_empty() else None
        if len(names) > 4:
            return None  # too expensive; oracle only used on small systems

        rng = range(-bound, bound + 1)

        def satisfied(assign: Mapping[str, int]) -> bool:
            for c in self.constraints:
                val = c.expr.const
                for v, coef in c.expr.coeffs.items():
                    val += coef * assign[v]
                if c.is_equality:
                    if val != 0:
                        return False
                elif val < 0:
                    return False
            return True

        def rec(i: int, assign: dict) -> Optional[Mapping[str, int]]:
            if i == len(names):
                return dict(assign) if satisfied(assign) else None
            for val in rng:
                assign[names[i]] = val
                got = rec(i + 1, assign)
                if got is not None:
                    return got
            return None

        return rec(0, {})

    def key(self) -> Tuple:
        if self._key_memo is None:
            self._key_memo = tuple(sorted(c.key()
                                          for c in self.constraints))
        return self._key_memo

    def __eq__(self, other) -> bool:
        return isinstance(other, System) and self.key() == other.key()

    def __hash__(self) -> int:
        return hash(self.key())

    def __repr__(self) -> str:
        if not self.constraints:
            return "System(TRUE)"
        return "System{" + ", ".join(map(repr, self.constraints)) + "}"


def bounds_system(var: str, low: LinExpr | int, high: LinExpr | int) -> System:
    """The system ``low <= var <= high``."""
    v = LinExpr.var(var)
    lo = low if isinstance(low, LinExpr) else LinExpr.constant(low)
    hi = high if isinstance(high, LinExpr) else LinExpr.constant(high)
    return System([Constraint.ge(v, lo), Constraint.le(v, hi)])
