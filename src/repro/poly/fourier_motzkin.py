"""Fourier-Motzkin elimination over the rationals.

This is the "potentially exponential" engine the paper leans on for all
array-section operations (section 5.2.3: "operations on array summaries use
the potentially exponential Fourier-Motzkin method").  Sizes here are tiny
(a handful of loop indices and symbolic constants), so the classical
algorithm with redundancy pruning is plenty.

Equalities are removed first by Gaussian substitution, which both speeds up
elimination and keeps it exact.
"""

from __future__ import annotations

from fractions import Fraction
from typing import List, Sequence, Tuple

from .linexpr import LinExpr
from .system import Constraint, System

# Safety valve: beyond this many inequalities we conservatively keep the
# variable unconstrained (the projection becomes an over-approximation,
# which is sound for may-information and handled by callers for must-).
MAX_CONSTRAINTS = 600


def _split(system: System) -> Tuple[List[Constraint], List[Constraint]]:
    eqs = [c for c in system.constraints if c.is_equality]
    ineqs = [c for c in system.constraints if not c.is_equality]
    return eqs, ineqs


def _solve_equalities(system: System, protect: Sequence[str] = ()
                      ) -> System | None:
    """Use equalities to substitute variables away (Gaussian elimination).

    Returns an equivalent system whose equalities involve only variables in
    ``protect`` (or constants), or ``None`` if a contradiction was found.
    Variables in ``protect`` are never chosen as substitution targets.
    """
    protected = set(protect)
    current = system
    changed = True
    while changed:
        changed = False
        eqs, _ = _split(current)
        for eq in eqs:
            # pick a variable to solve for
            pivot = None
            for var in eq.expr.coeffs:
                if var not in protected:
                    pivot = var
                    break
            if pivot is None:
                if eq.expr.is_constant() and eq.expr.const != 0:
                    return None
                continue
            coef = eq.expr.coeffs[pivot]
            # pivot = -(rest)/coef
            rest = LinExpr({v: c for v, c in eq.expr.coeffs.items()
                            if v != pivot}, eq.expr.const)
            replacement = rest * Fraction(-1, 1) * (Fraction(1, 1) / coef)
            new_constraints = []
            for c in current.constraints:
                if c is eq:
                    continue
                new_constraints.append(c.substitute(pivot, replacement))
            current = System(new_constraints)
            changed = True
            break
        else:
            break
    # check remaining constant equalities
    for c in current.constraints:
        if c.is_trivially_false():
            return None
    return current


def eliminate_variable(ineqs: List[Constraint], var: str) -> List[Constraint]:
    """One Fourier-Motzkin step: eliminate ``var`` from inequalities."""
    lower: List[LinExpr] = []   # var >= expr  (normalized)
    upper: List[LinExpr] = []   # var <= expr
    free: List[Constraint] = []
    for c in ineqs:
        coef = c.expr.coeff(var)
        if coef == 0:
            free.append(c)
            continue
        # c.expr = coef*var + rest >= 0
        rest = LinExpr({v: k for v, k in c.expr.coeffs.items() if v != var},
                       c.expr.const)
        if coef > 0:
            # var >= -rest/coef
            lower.append(rest * (Fraction(-1) / coef))
        else:
            # var <= rest/(-coef)
            upper.append(rest * (Fraction(1) / (-coef)))
    result = list(free)
    for lo in lower:
        for hi in upper:
            # lo <= var <= hi  =>  hi - lo >= 0
            result.append(Constraint(hi - lo))
    return _prune(result)


def _prune(constraints: List[Constraint]) -> List[Constraint]:
    """Drop trivially-true and syntactically duplicate constraints, and
    inequalities dominated by another with the same linear part."""
    best: dict = {}
    order: List[Tuple] = []
    for c in constraints:
        if c.is_trivially_true():
            continue
        lin = tuple(sorted(c.expr.coeffs.items()))
        key = (lin, c.is_equality)
        prev = best.get(key)
        if prev is None:
            best[key] = c
            order.append(key)
        elif not c.is_equality:
            # same linear part: expr+c1 >= 0 dominated by expr+c2 >= 0, c2<c1
            if c.expr.const < prev.expr.const:
                best[key] = c
    return [best[k] for k in order]


def project(system: System, variables: Sequence[str]) -> System:
    """Existentially project away ``variables``."""
    # Equality substitution may only eliminate the variables being
    # projected — every other variable must survive into the result.
    keep = [v for v in system.variables() if v not in set(variables)]
    solved = _solve_equalities(system, protect=keep)
    if solved is None:
        # Contradictory system: projection of the empty set is empty.
        return System([Constraint(LinExpr.constant(-1))])
    remaining = set(variables)
    # Substitution may already have removed some of them.
    _, ineqs = _split(solved)
    eqs, _ = _split(solved)
    constraints = list(solved.constraints)
    for var in list(remaining):
        present = any(c.expr.references(var) for c in constraints)
        if not present:
            remaining.discard(var)
    for var in sorted(remaining):
        # separate equalities mentioning var: substitute through one of them
        eq_with = [c for c in constraints
                   if c.is_equality and c.expr.references(var)]
        if eq_with:
            eq = eq_with[0]
            coef = eq.expr.coeffs[var]
            rest = LinExpr({v: k for v, k in eq.expr.coeffs.items()
                            if v != var}, eq.expr.const)
            repl = rest * (Fraction(-1) / coef)
            constraints = [c.substitute(var, repl) for c in constraints
                           if c is not eq]
            constraints = _prune(constraints)
            continue
        ineqs_all = [c for c in constraints if not c.is_equality]
        eqs_all = [c for c in constraints if c.is_equality]
        new_ineqs = eliminate_variable(ineqs_all, var)
        if len(new_ineqs) > MAX_CONSTRAINTS:
            # over-approximate: drop every constraint that mentions var
            new_ineqs = [c for c in ineqs_all if not c.expr.references(var)]
        constraints = eqs_all + new_ineqs
    return System(constraints)


def system_is_empty(system: System) -> bool:
    """Decide rational emptiness by eliminating every variable."""
    solved = _solve_equalities(system)
    if solved is None:
        return True
    _, ineqs = _split(solved)
    eqs, _ = _split(solved)
    # Any surviving equality here mentions only protected vars — none were
    # protected, so it must be constant; _solve_equalities checked those.
    ineqs = _prune(ineqs)
    variables = sorted({v for c in ineqs for v in c.variables()})
    for var in variables:
        ineqs = eliminate_variable(ineqs, var)
        if len(ineqs) > MAX_CONSTRAINTS:
            # Over-approximate (treat as non-empty): sound for dependence
            # testing where non-empty means "assume a dependence".
            return False
        for c in ineqs:
            if c.is_trivially_false():
                return True
    for c in ineqs:
        if c.is_trivially_false():
            return True
    return False
