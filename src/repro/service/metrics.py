"""Service observability: thread-safe counters, gauges, and phase timers.

Every component of the analysis service (artifact store, batch scheduler,
HTTP server) reports into one :class:`ServiceMetrics` instance, so a
single ``GET /metrics`` answer tells an operator the cache hit-rate, the
queue depth, how many jobs were served, and where the latency goes
(per-phase timers).  Everything is stdlib + a single lock; the service is
I/O- and fork-bound, so the lock is never contended enough to matter.
"""

from __future__ import annotations

import bisect
import threading
import time
from typing import Dict, Optional, Sequence

#: Log-ish latency bucket bounds (seconds) for the per-phase histograms.
HIST_BOUNDS = (0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25,
               0.5, 1.0, 2.5, 5.0, 10.0)


class _Histogram:
    """Fixed-bucket latency histogram (Prometheus-style cumulative-free
    counts: one count per bucket, plus count/sum for means)."""

    __slots__ = ("bounds", "counts", "count", "sum_s")

    def __init__(self, bounds: Sequence[float] = HIST_BOUNDS):
        self.bounds = tuple(bounds)
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum_s = 0.0

    def observe(self, seconds: float) -> None:
        self.counts[bisect.bisect_left(self.bounds, seconds)] += 1
        self.count += 1
        self.sum_s += seconds

    def to_dict(self) -> Dict:
        buckets = {f"le_{b:g}": c
                   for b, c in zip(self.bounds, self.counts)}
        buckets["inf"] = self.counts[-1]
        mean = self.sum_s / self.count if self.count else 0.0
        return {"buckets": buckets, "count": self.count,
                "sum_s": round(self.sum_s, 6),
                "mean_s": round(mean, 6)}


class _Timer:
    """Aggregated latency accounting for one named phase."""

    __slots__ = ("count", "total_s", "max_s")

    def __init__(self):
        self.count = 0
        self.total_s = 0.0
        self.max_s = 0.0

    def observe(self, seconds: float) -> None:
        self.count += 1
        self.total_s += seconds
        self.max_s = max(self.max_s, seconds)

    def to_dict(self) -> Dict:
        mean = self.total_s / self.count if self.count else 0.0
        return {"count": self.count,
                "total_s": round(self.total_s, 6),
                "mean_s": round(mean, 6),
                "max_s": round(self.max_s, 6)}


class ServiceMetrics:
    """Counters / gauges / timers shared by the whole service."""

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, float] = {}
        self._timers: Dict[str, _Timer] = {}
        self._histograms: Dict[str, _Histogram] = {}
        self._started = time.time()

    # -- writers -----------------------------------------------------------
    def incr(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def incr_failure(self, kind: str) -> None:
        """Count one failure into both the total and its taxonomy bucket
        (``failures_total`` + ``failures_<kind>``), so ``GET /metrics``
        breaks outages down by cause (crash / deadline / budget /
        transient / shutdown / error)."""
        with self._lock:
            self._counters["failures_total"] = \
                self._counters.get("failures_total", 0) + 1
            key = f"failures_{kind}"
            self._counters[key] = self._counters.get(key, 0) + 1

    def incr_shed(self, reason: str) -> None:
        """Count one load-shed admission rejection into both the total
        and its taxonomy bucket (``shed_total`` + ``shed_<reason>``), so
        429s are attributable (queue_full / draining / ...)."""
        with self._lock:
            self._counters["shed_total"] = \
                self._counters.get("shed_total", 0) + 1
            key = f"shed_{reason}"
            self._counters[key] = self._counters.get(key, 0) + 1

    def gauge(self, name: str, value: float) -> None:
        with self._lock:
            self._gauges[name] = value

    def adjust_gauge(self, name: str, delta: float) -> None:
        with self._lock:
            self._gauges[name] = self._gauges.get(name, 0.0) + delta

    def observe(self, phase: str, seconds: float) -> None:
        with self._lock:
            timer = self._timers.get(phase)
            if timer is None:
                timer = self._timers[phase] = _Timer()
            timer.observe(seconds)

    def observe_histogram(self, name: str, seconds: float) -> None:
        """Record a latency sample into the named bucketed histogram
        (per-phase span durations land here via the scheduler)."""
        with self._lock:
            hist = self._histograms.get(name)
            if hist is None:
                hist = self._histograms[name] = _Histogram()
            hist.observe(seconds)

    def record_phases(self, span_dicts) -> None:
        """Fold a trace (a list of span dicts) into per-phase latency
        histograms: span ``name`` -> histogram ``phase_<name>``."""
        for span in span_dicts:
            name = span.get("name")
            if name:
                self.observe_histogram(f"phase_{name}",
                                       float(span.get("duration_s", 0.0)))

    def time_phase(self, phase: str) -> "_PhaseContext":
        """``with metrics.time_phase("execute"): ...``"""
        return _PhaseContext(self, phase)

    # -- readers -----------------------------------------------------------
    def counter(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def timer_mean(self, phase: str) -> float:
        with self._lock:
            timer = self._timers.get(phase)
            if timer is None or not timer.count:
                return 0.0
            return timer.total_s / timer.count

    def snapshot(self) -> Dict:
        """One *consistent* cut of every counter, gauge, timer, and
        histogram: all dicts are copied under the single metrics lock, so
        a snapshot taken while shard threads hammer ``incr`` can never
        pair a ``failures_total`` with taxonomy buckets from a different
        instant (the buckets always sum to the total)."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            timers = {k: t.to_dict() for k, t in self._timers.items()}
            histograms = {k: h.to_dict()
                          for k, h in self._histograms.items()}
        hits = counters.get("cache_hits", 0)
        misses = counters.get("cache_misses", 0)
        looked = hits + misses
        return {
            "uptime_s": round(time.time() - self._started, 3),
            "counters": counters,
            "gauges": gauges,
            "timers": timers,
            "histograms": histograms,
            "cache_hit_rate": round(hits / looked, 4) if looked else 0.0,
        }


class _PhaseContext:
    __slots__ = ("metrics", "phase", "_t0")

    def __init__(self, metrics: ServiceMetrics, phase: str):
        self.metrics = metrics
        self.phase = phase
        self._t0: Optional[float] = None

    def __enter__(self) -> "_PhaseContext":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.metrics.observe(self.phase, time.perf_counter() - self._t0)


#: Default metrics sink for components constructed without an explicit one.
NULL_METRICS = ServiceMetrics()
