"""Asyncio HTTP front end for the analysis service.

The ThreadingHTTPServer in :mod:`.server` spends one OS thread per
connection; at high fan-in the thread churn (create/teardown, GIL
handoffs, kernel scheduling) dominates the microseconds a warm cache
hit actually needs.  This front end serves the *same JSON API* from a
single event loop over stdlib ``asyncio`` streams:

* keep-alive HTTP/1.1 with explicit ``Content-Length`` framing,
* fast GETs answered directly on the loop (they only touch in-memory,
  thread-safe state),
* POSTs and artifact reads bounced to a small thread pool so scheduler
  submission (hashing, claim-file I/O, inline execution) can never
  stall the accept loop,
* **streaming job progress**: ``GET /jobs/<id>/events`` with
  ``Accept: text/event-stream`` holds the connection open and pushes
  each lifecycle event (submitted/queued/running/done/failed) as a
  Server-Sent-Events frame the moment it lands; without the header the
  route answers the same JSON snapshot the threaded server does,
* 429 responses carry ``Retry-After`` (admission control/load shed).

The back end is unchanged and shared: :class:`AnalysisService` routes,
scheduler (sharded or single), artifact store, metrics.
"""

from __future__ import annotations

import asyncio
import json
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, Optional, Tuple

from .server import _MAX_BODY, AnalysisService

_MAX_HEAD = 64 * 1024            # request-line + headers cap


def _parse_head(head: bytes) -> Tuple[str, str, Dict[str, str]]:
    """(method, target, lowercased-header dict) from a raw head block."""
    lines = head.decode("latin-1").split("\r\n")
    try:
        method, target, _version = lines[0].split(" ", 2)
    except ValueError:
        raise ValueError(f"malformed request line {lines[0]!r}") from None
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    return method.upper(), target, headers


class AsyncAnalysisServer:
    """An asyncio-streams HTTP server bound to an :class:`AnalysisService`.

    API mirror of :class:`.server.AnalysisServer`: ``port=0`` binds an
    ephemeral port, :meth:`start` serves from a background thread (the
    event loop runs there), :meth:`serve_forever` blocks, ``with``
    starts and stops."""

    def __init__(self, service: Optional[AnalysisService] = None, *,
                 host: str = "127.0.0.1", port: int = 0,
                 quiet: bool = True, sse_poll_s: float = 0.02,
                 post_threads: int = 32, **service_kwargs):
        self.service = service if service is not None else \
            AnalysisService(**service_kwargs)
        self.quiet = quiet
        self.sse_poll_s = sse_poll_s
        self._host_req = host
        self._port_req = port
        self._addr: Optional[Tuple[str, int]] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server = None
        self._stop_async: Optional[asyncio.Event] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._executor = ThreadPoolExecutor(
            max_workers=post_threads, thread_name_prefix="aserver-post")

    # -- addresses ---------------------------------------------------------
    @property
    def host(self) -> str:
        return self._addr[0] if self._addr else self._host_req

    @property
    def port(self) -> int:
        return self._addr[1] if self._addr else self._port_req

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- lifecycle ---------------------------------------------------------
    async def _serve(self) -> None:
        self._stop_async = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_conn, self._host_req, self._port_req,
            limit=_MAX_HEAD)
        self._addr = self._server.sockets[0].getsockname()[:2]
        self._started.set()
        async with self._server:
            await self._stop_async.wait()
        # Reap connection handlers still in flight (held-open SSE
        # streams, slow clients) so the loop can close cleanly.
        current = asyncio.current_task()
        tasks = [t for t in asyncio.all_tasks() if t is not current]
        for task in tasks:
            task.cancel()
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)

    def _run_loop(self) -> None:
        loop = asyncio.new_event_loop()
        self._loop = loop
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(self._serve())
        finally:
            asyncio.set_event_loop(None)
            loop.close()

    def start(self) -> "AsyncAnalysisServer":
        self._thread = threading.Thread(
            target=self._run_loop, name="async-analysis-server",
            daemon=True)
        self._thread.start()
        if not self._started.wait(timeout=10):
            raise RuntimeError("async server failed to bind")
        return self

    def serve_forever(self) -> None:
        self._run_loop()

    def stop(self) -> None:
        loop, stop = self._loop, self._stop_async
        if loop is not None and stop is not None and loop.is_running():
            loop.call_soon_threadsafe(stop.set)
        if self._thread is not None:
            self._thread.join(timeout=5)
        self._executor.shutdown(wait=False)
        self.service.close()

    def __enter__(self) -> "AsyncAnalysisServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- connection handling -----------------------------------------------
    async def _handle_conn(self, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                try:
                    head = await reader.readuntil(b"\r\n\r\n")
                except (asyncio.IncompleteReadError, ConnectionError):
                    return                   # client went away / EOF
                except asyncio.LimitOverrunError:
                    await self._reply(writer, 431,
                                      {"error": "headers too large"},
                                      keep=False)
                    return
                try:
                    method, target, headers = _parse_head(head)
                except ValueError as exc:
                    await self._reply(writer, 400, {"error": str(exc)},
                                      keep=False)
                    return
                length = int(headers.get("content-length") or 0)
                if length > _MAX_BODY:
                    await self._reply(writer, 413,
                                      {"error": "request body too large"},
                                      keep=False)
                    return
                body = await reader.readexactly(length) if length else b""
                keep = headers.get("connection", "").lower() != "close"
                self.service.metrics.incr("http_requests")
                if method == "GET" and self._wants_sse(target, headers):
                    await self._stream_events(writer, target)
                    return                   # SSE connections end here
                status, payload = await self._dispatch(method, target,
                                                       body)
                await self._reply(writer, status, payload, keep=keep)
                if not keep:
                    return
        except asyncio.CancelledError:
            return                           # server shutdown: end cleanly
        except Exception:                    # noqa: BLE001
            self.service.metrics.incr("http_conn_errors")
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (Exception, asyncio.CancelledError):  # noqa: BLE001
                pass

    async def _dispatch(self, method: str, target: str,
                        body: bytes) -> Tuple[int, Dict]:
        loop = asyncio.get_event_loop()
        try:
            if method == "GET":
                with self.service.metrics.time_phase("http_get"):
                    path = target.partition("?")[0]
                    if path.startswith("/artifacts/"):
                        # disk read: keep it off the accept loop
                        return await loop.run_in_executor(
                            self._executor, self.service.handle_get,
                            target)
                    return self.service.handle_get(target)
            if method == "POST":
                try:
                    parsed = json.loads(body.decode("utf-8") or "{}")
                    if not isinstance(parsed, dict):
                        raise ValueError("body must be a JSON object")
                except (ValueError, UnicodeDecodeError) as exc:
                    return 400, {"error": f"bad JSON body: {exc}"}
                with self.service.metrics.time_phase("http_post"):
                    # submission hashes, reads the store, and touches
                    # claim files — never on the event loop
                    return await loop.run_in_executor(
                        self._executor, self.service.handle_post,
                        target.partition("?")[0], parsed)
            return 405, {"error": f"method {method} not allowed"}
        except asyncio.CancelledError:
            raise
        except Exception as exc:             # noqa: BLE001
            return 500, {"error": f"{type(exc).__name__}: {exc}"}

    # -- responses ---------------------------------------------------------
    async def _reply(self, writer: asyncio.StreamWriter, status: int,
                     payload: Dict, keep: bool = True) -> None:
        data = json.dumps(payload).encode("utf-8")
        reason = {200: "OK", 202: "Accepted", 400: "Bad Request",
                  404: "Not Found", 405: "Method Not Allowed",
                  413: "Payload Too Large", 429: "Too Many Requests",
                  431: "Request Header Fields Too Large",
                  500: "Internal Server Error"}.get(status, "Status")
        head = [f"HTTP/1.1 {status} {reason}",
                "Content-Type: application/json",
                f"Content-Length: {len(data)}"]
        if status == 429 and "retry_after_s" in payload:
            head.append(
                f"Retry-After: {max(1, int(payload['retry_after_s']))}")
        head.append("Connection: keep-alive" if keep
                    else "Connection: close")
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1")
                     + data)
        await writer.drain()

    # -- server-sent events --------------------------------------------------
    @staticmethod
    def _wants_sse(target: str, headers: Dict[str, str]) -> bool:
        path = target.partition("?")[0]
        parts = [p for p in path.split("/") if p]
        return (len(parts) == 3 and parts[0] == "jobs"
                and parts[2] == "events"
                and "text/event-stream" in headers.get("accept", ""))

    async def _stream_events(self, writer: asyncio.StreamWriter,
                             target: str) -> None:
        path, _, query = target.partition("?")
        parts = [p for p in path.split("/") if p]
        job = self.service.scheduler.job(parts[1])
        if job is None:
            await self._reply(writer, 404,
                              {"error": f"no job {parts[1]!r}"},
                              keep=False)
            return
        seq = 0
        for pair in query.split("&"):
            if pair.startswith("after="):
                try:
                    seq = int(pair[6:])
                except ValueError:
                    await self._reply(
                        writer, 400,
                        {"error": "after= must be an integer"},
                        keep=False)
                    return
        writer.write(b"HTTP/1.1 200 OK\r\n"
                     b"Content-Type: text/event-stream\r\n"
                     b"Cache-Control: no-cache\r\n"
                     b"Connection: close\r\n\r\n")
        await writer.drain()
        self.service.metrics.incr("sse_streams")
        while True:
            events = job.events_after(seq)
            for event in events:
                seq = event["seq"]
                writer.write(b"data: " + json.dumps(event).encode("utf-8")
                             + b"\n\n")
            if events:
                await writer.drain()
            # Terminal transitions append their event *before* flipping
            # state, so finished + drained-to-seq means nothing more can
            # arrive.
            if job.finished and not job.events_after(seq):
                break
            await asyncio.sleep(self.sse_poll_s)
        writer.write(b"event: end\ndata: {}\n\n")
        await writer.drain()
