"""Stdlib-only HTTP serving layer: many clients, one warm cache.

A ``ThreadingHTTPServer`` JSON API in front of the batch scheduler and
artifact store::

    POST /jobs              {"workload": "mdg", "options": {...}}
                            -> 202 {"job": {...}}   (dedupes / cache-serves)
    GET  /jobs              -> {"jobs": [...]}
    GET  /jobs/<id>         -> {"job": {...}, "artifact_ready": bool}
    GET  /artifacts/<key>   -> the analysis artifact JSON
    GET  /corpus            -> {"workloads": [{name, description, ...}]}
    GET  /trace/<job_id>    -> {"job_id": ..., "spans": [...]} per-job trace
    GET  /metrics           -> counters / gauges / timers / histograms
    GET  /healthz           -> {"ok": true}

The handler threads only touch thread-safe components (scheduler,
store, metrics), so concurrent clients share one warm cache; analysis
itself runs in the scheduler's worker processes, never in a handler.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Tuple

from ..obs import Tracer
from .artifacts import ArtifactStore, canonical_json
from .faults import FaultPlan
from .jobs import AnalysisRequest, validate_options
from .metrics import ServiceMetrics
from .scheduler import BatchScheduler, QueueFull, ShardedScheduler

_MAX_BODY = 4 * 1024 * 1024      # 4 MiB request-body cap


class AnalysisService:
    """The shared state behind the HTTP handlers."""

    def __init__(self, *, cache_dir: Optional[str] = None,
                 workers: Optional[int] = None,
                 inline: bool = False,
                 store: Optional[ArtifactStore] = None,
                 scheduler: Optional[BatchScheduler] = None,
                 metrics: Optional[ServiceMetrics] = None,
                 trace: bool = True,
                 inject: Optional[str] = None,
                 default_deadline_s: Optional[float] = None,
                 max_jobs: int = 1024,
                 allow_faults: Optional[bool] = None,
                 shards: int = 0,
                 max_queue: Optional[int] = None):
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        self.store = store if store is not None else \
            ArtifactStore(cache_dir, metrics=self.metrics)
        # Per-job tracing defaults on: the cost is a dozen spans per job
        # (microseconds against seconds of analysis) and it is what makes
        # GET /trace/<job_id> and the per-phase histograms useful.
        tracer = Tracer() if trace else None
        if scheduler is not None:
            self.scheduler = scheduler
        elif shards >= 1:
            self.scheduler = ShardedScheduler(
                self.store, shards=shards, metrics=self.metrics,
                workers=workers, inline=inline, tracer=tracer,
                fault_plan=FaultPlan.parse(inject),
                default_deadline_s=default_deadline_s,
                max_jobs=max_jobs, max_queue=max_queue)
        else:
            self.scheduler = BatchScheduler(
                self.store, metrics=self.metrics,
                workers=workers, inline=inline, tracer=tracer,
                fault_plan=FaultPlan.parse(inject),
                default_deadline_s=default_deadline_s,
                max_jobs=max_jobs, max_queue=max_queue)
        #: Whether POST /jobs accepts ``options["fault"]`` chaos
        #: directives.  Default: only when injection was enabled
        #: (``--inject`` / a scheduler with a fault plan) — a production
        #: server 400s them at the boundary.
        if allow_faults is None:
            allow_faults = self.scheduler.fault_plan is not None
        self.allow_faults = bool(allow_faults)

    # -- routes ------------------------------------------------------------
    def handle_get(self, path: str) -> Tuple[int, Dict]:
        path, _, query = path.partition("?")
        parts = [p for p in path.split("/") if p]
        if parts == ["healthz"]:
            return 200, {"ok": True}
        if parts == ["metrics"]:
            snap = self.metrics.snapshot()
            snap["store"] = self.store.stats()
            if hasattr(self.scheduler, "shard_stats"):
                snap["shards"] = self.scheduler.shard_stats()
            return 200, snap
        if parts == ["corpus"]:
            return 200, {"workloads": _corpus_listing(),
                         "synth": _synth_listing()}
        if parts == ["jobs"]:
            return 200, {"jobs": [j.to_dict()
                                  for j in self.scheduler.jobs()]}
        if len(parts) == 2 and parts[0] == "jobs":
            job = self.scheduler.job(parts[1])
            if job is None:
                return 404, {"error": f"no job {parts[1]!r}"}
            return 200, {"job": job.to_dict(),
                         "artifact_ready": job.state == "done"}
        if len(parts) == 3 and parts[0] == "jobs" and parts[2] == "events":
            # JSON snapshot of the progress stream; the asyncio front
            # end also serves this path as live SSE.  ``?after=N``
            # resumes past already-seen sequence numbers.
            job = self.scheduler.job(parts[1])
            if job is None:
                return 404, {"error": f"no job {parts[1]!r}"}
            after = 0
            for pair in query.split("&"):
                if pair.startswith("after="):
                    try:
                        after = int(pair[6:])
                    except ValueError:
                        return 400, {"error": "after= must be an integer"}
            return 200, {"job_id": job.id,
                         "events": job.events_after(after),
                         "finished": job.finished}
        if len(parts) == 2 and parts[0] == "trace":
            job = self.scheduler.job(parts[1])
            if job is None:
                return 404, {"error": f"no job {parts[1]!r}"}
            spans = self.scheduler.trace(parts[1])
            if spans is None:
                return 404, {"error": f"no trace for job {parts[1]!r} "
                                      "(cached/deduped jobs and disabled "
                                      "tracing record no spans)"}
            return 200, {"job_id": parts[1], "spans": spans}
        if len(parts) == 2 and parts[0] == "artifacts":
            artifact = self.store.get(parts[1])
            if artifact is None:
                return 404, {"error": f"no artifact {parts[1]!r}"}
            # canonical key order: the process that computed the
            # artifact serves the same bytes as one that loaded it
            # from the shared disk tree
            return 200, json.loads(canonical_json(artifact))
        return 404, {"error": f"no route GET {path!r}"}

    def handle_post(self, path: str, body: Dict) -> Tuple[int, Dict]:
        parts = [p for p in path.split("/") if p]
        if parts == ["jobs"]:
            try:
                options = validate_options(body.get("options"),
                                           allow_faults=self.allow_faults)
                request = AnalysisRequest(
                    body.get("workload"), source=body.get("source"),
                    program_name=body.get("program_name"),
                    inputs=body.get("inputs"),
                    options=options)
                job = self.scheduler.submit(request)
            except QueueFull as exc:
                # Load shed: the transport layer maps ``retry_after_s``
                # to a ``Retry-After`` header alongside the 429.
                return 429, {"error": str(exc),
                             "retry_after_s": exc.retry_after_s}
            except (KeyError, ValueError, TypeError) as exc:
                return 400, {"error": str(exc)}
            return 202, {"job": job.to_dict()}
        return 404, {"error": f"no route POST {path!r}"}

    def close(self) -> None:
        self.scheduler.shutdown()


def _corpus_listing() -> list:
    from ..workloads import ALL
    return [{"name": w.name,
             "description": w.description,
             "lines": w.line_count(),
             "inputs": list(w.inputs),
             "assertions": len(w.user_assertions),
             "tags": list(w.tags)}
            for _, w in sorted(ALL.items())]


def _synth_listing() -> Dict:
    """Advertise the generated-workload namespace: profiles and the name
    scheme clients may POST as ``workload`` (resolved lazily per job; no
    generation happens to serve this listing)."""
    from ..workloads.synth import GENERATOR_VERSION, SPECS
    return {"name_format": "synth/s<seed>-<profile>",
            "generator_version": GENERATOR_VERSION,
            "profiles": [{"profile": p, "description": s.description}
                         for p, s in sorted(SPECS.items())]}


class _Handler(BaseHTTPRequestHandler):
    service: AnalysisService = None      # set by make_server
    quiet = True
    protocol_version = "HTTP/1.1"

    # -- plumbing ----------------------------------------------------------
    def log_message(self, fmt, *args):   # noqa: A003
        if not self.quiet:
            BaseHTTPRequestHandler.log_message(self, fmt, *args)

    def _reply(self, status: int, payload: Dict) -> None:
        data = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        if status == 429 and "retry_after_s" in payload:
            self.send_header("Retry-After",
                             str(max(1, int(payload["retry_after_s"]))))
        self.end_headers()
        self.wfile.write(data)

    # -- verbs -------------------------------------------------------------
    def do_GET(self) -> None:            # noqa: N802
        self.service.metrics.incr("http_requests")
        with self.service.metrics.time_phase("http_get"):
            try:
                status, payload = self.service.handle_get(self.path)
            except Exception as exc:     # noqa: BLE001
                status, payload = 500, {"error": f"{type(exc).__name__}: "
                                                 f"{exc}"}
        self._reply(status, payload)

    def do_POST(self) -> None:           # noqa: N802
        self.service.metrics.incr("http_requests")
        length = int(self.headers.get("Content-Length") or 0)
        if length > _MAX_BODY:
            self._reply(413, {"error": "request body too large"})
            return
        raw = self.rfile.read(length) if length else b"{}"
        try:
            body = json.loads(raw.decode("utf-8") or "{}")
            if not isinstance(body, dict):
                raise ValueError("body must be a JSON object")
        except (ValueError, UnicodeDecodeError) as exc:
            self._reply(400, {"error": f"bad JSON body: {exc}"})
            return
        with self.service.metrics.time_phase("http_post"):
            try:
                status, payload = self.service.handle_post(
                    self.path.split("?", 1)[0], body)
            except Exception as exc:     # noqa: BLE001
                status, payload = 500, {"error": f"{type(exc).__name__}: "
                                                 f"{exc}"}
        self._reply(status, payload)


class AnalysisServer:
    """A ThreadingHTTPServer bound to an :class:`AnalysisService`.

    ``port=0`` binds an ephemeral port (tests, smoke script); use
    :meth:`start` for a background thread or :meth:`serve_forever` to
    block (the ``repro serve`` CLI)."""

    def __init__(self, service: Optional[AnalysisService] = None, *,
                 host: str = "127.0.0.1", port: int = 0,
                 quiet: bool = True, **service_kwargs):
        self.service = service if service is not None else \
            AnalysisService(**service_kwargs)
        handler = type("BoundHandler", (_Handler,),
                       {"service": self.service, "quiet": quiet})
        self.httpd = ThreadingHTTPServer((host, port), handler)
        self.httpd.daemon_threads = True
        self._thread: Optional[threading.Thread] = None

    @property
    def host(self) -> str:
        return self.httpd.server_address[0]

    @property
    def port(self) -> int:
        return self.httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "AnalysisServer":
        self._thread = threading.Thread(target=self.httpd.serve_forever,
                                        name="analysis-server", daemon=True)
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        self.httpd.serve_forever()

    def stop(self) -> None:
        self.httpd.shutdown()
        self.httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
        self.service.close()

    def __enter__(self) -> "AnalysisServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
