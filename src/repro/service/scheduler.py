"""Process-pool batch scheduler for analysis requests.

Astrée-style observation (Monniaux, cs/0701191): static-analysis
pipelines fan out cleanly across workers when each unit of work is a
pure function of its inputs and results merge deterministically.  Each
:class:`~repro.service.jobs.AnalysisRequest` here is exactly that, so the
scheduler can:

* fan requests across a ``concurrent.futures.ProcessPoolExecutor``,
* **dedupe** identical in-flight requests (same content key → same Job),
* serve repeats straight from the :class:`ArtifactStore`,
* **retry** jobs whose worker process died (``BrokenProcessPool``) on a
  rebuilt pool — with jittered exponential backoff, up to
  ``max_retries`` attempts,
* stay **deterministic**: a batch produces artifacts bit-identical to
  running the same requests sequentially in one process, regardless of
  worker count or completion order (results are keyed, not ordered).

Robustness layer (the parts that make "heavy traffic" survivable):

* **Deadlines** — ``options["deadline_s"]`` (or the scheduler-wide
  ``default_deadline_s``) bounds a job's wall time across all attempts.
  A watchdog thread fails over-deadline jobs with reason exactly
  ``"deadline exceeded"``, frees their in-flight slot (an identical
  resubmit runs fresh), and terminates the stuck worker; sibling jobs
  caught in the resulting pool breakage are retried on the rebuilt pool.
  Deadlines use ``time.monotonic()`` throughout — wall-clock steps
  cannot shrink or stretch a budget.  (Inline execution cannot be
  preempted, so deadlines bind only in pool mode.)
* **Single-flight pool rebuild** — a worker death breaks *every*
  in-flight future at once; a generation counter ensures only the first
  observer discards and rebuilds the pool, and the survivors are
  redispatched against the one fresh pool instead of triggering a
  rebuild storm.
* **Circuit breaker** — after ``breaker_threshold`` consecutive pool
  breakages the scheduler stops feeding the pool and runs jobs inline
  (degraded but alive — process-killing/-stalling fault directives are
  neutralized outside pool workers, so an injected crash/hang cannot
  take out the serving process the fallback exists to protect); after
  ``breaker_cooldown_s`` it half-opens and admits a *single* probe
  dispatch, closing on a pooled success while everyone else keeps
  falling back inline.
* **Bounded retention** — finished jobs beyond ``max_jobs`` are evicted
  oldest-first (``GET /jobs/<id>`` then 404s), mirroring the bounded
  ``_traces`` LRU, so a long-lived service cannot leak its job registry.
* **Fault injection** — a seeded :class:`~repro.service.faults.FaultPlan`
  can stamp chaos directives onto a fraction of submissions
  (``repro serve --inject``); directives are non-semantic options
  (excluded from the content key), so an injected job dedupes, caches,
  and corrupts under the same address as its clean twin.  Every failure
  path above increments a taxonomy metrics counter and emits a tracer
  event.

``inline=True`` bypasses the pool and executes synchronously in-process —
the reference behaviour the determinism tests compare against, and the
sensible mode on single-core hosts.
"""

from __future__ import annotations

import random
import threading
import time
from collections import OrderedDict
from concurrent.futures import (BrokenExecutor, CancelledError,
                                ProcessPoolExecutor)
from typing import Dict, List, Optional, Sequence, Union

from ..obs import NULL_TRACER, Tracer, activate
from ..runtime.interpreter import OpsBudgetExceeded
from .artifacts import ArtifactStore, canonical_json
from .faults import FaultPlan, TransientFault, mark_worker_process
from .jobs import AnalysisRequest, Job, execute_request, semantic_options
from .metrics import NULL_METRICS, ServiceMetrics


class QueueFull(Exception):
    """Admission control rejected a submission: the scheduler's bounded
    in-flight queue is at capacity.  ``retry_after_s`` is the suggested
    client backoff (the HTTP layer maps this to 429 + ``Retry-After``)."""

    def __init__(self, depth: int, limit: int, retry_after_s: float):
        super().__init__(
            f"queue full ({depth}/{limit} in flight); "
            f"retry in {retry_after_s:g}s")
        self.depth = depth
        self.limit = limit
        self.retry_after_s = retry_after_s


def _stats_delta(before: Dict, after: Dict) -> Dict:
    return {k: after[k] - before.get(k, 0) for k in after}


# -- content-key memo ---------------------------------------------------------
# ``AnalysisRequest.key()`` re-resolves and re-hashes the (multi-KB)
# source text on every call; on the warm path a POST then spends more
# time hashing than serving the cache hit.  Corpus-named workloads are
# memoizable: within one process the corpus is fixed, so (workload name,
# inputs, semantic options) fully determines the resolved source and
# therefore the key.  Inline-source requests take the full hash.

_KEY_MEMO_CAP = 4096
_key_memo: "OrderedDict[tuple, str]" = OrderedDict()
_key_memo_lock = threading.Lock()


def request_key(request: AnalysisRequest) -> str:
    """Content key of a request (memoized for workload-named requests)."""
    if request.workload is None:
        return request.key()
    inputs = (None if request.inputs is None
              else tuple(request.inputs))
    memo_key = (request.workload, inputs,
                canonical_json(semantic_options(request.options)))
    with _key_memo_lock:
        got = _key_memo.get(memo_key)
        if got is not None:
            _key_memo.move_to_end(memo_key)
            return got
    key = request.key()          # may raise KeyError (unknown workload)
    with _key_memo_lock:
        _key_memo[memo_key] = key
        while len(_key_memo) > _KEY_MEMO_CAP:
            _key_memo.popitem(last=False)
    return key


_worker_codegen_root: Optional[str] = None
_worker_proc_root: Optional[str] = None


def _ensure_codegen_store(root: Optional[str]) -> None:
    """Point this process's transpiler at the scheduler's persistent
    codegen cache (worker processes have their own module globals, so
    the registration the scheduler did does not carry over the fork)."""
    global _worker_codegen_root
    if root and root != _worker_codegen_root:
        from ..runtime.transpile import set_codegen_store
        set_codegen_store(ArtifactStore(root))
        _worker_codegen_root = root


def _ensure_proc_store(root: Optional[str]) -> None:
    """Same registration dance for the per-procedure analysis cache."""
    global _worker_proc_root
    if root and root != _worker_proc_root:
        from ..analysis.incremental import set_proc_store
        set_proc_store(ArtifactStore(root))
        _worker_proc_root = root


def _pool_worker(request_dict: Dict,
                 trace_context: Optional[Dict] = None,
                 codegen_root: Optional[str] = None,
                 proc_root: Optional[str] = None) -> Dict:
    """Top-level (picklable) worker entry point.

    Returns an envelope ``{artifact, spans, codegen, proc}``: spans are
    only populated when a trace context was shipped (the worker then
    builds a child tracer whose root parents onto the scheduler's
    ``submit`` span), while ``codegen`` and ``proc`` carry this
    request's cache hit/miss deltas (transpiled-kernel and
    per-procedure analysis caches) for the scheduler's metrics."""
    # This process is sacrificial: process-killing fault directives are
    # allowed to execute here (and *only* here — inline execution in the
    # scheduler/server process neutralizes them).
    mark_worker_process()
    _ensure_codegen_store(codegen_root)
    _ensure_proc_store(proc_root)
    from ..analysis.incremental import proc_cache_stats
    from ..runtime.transpile import codegen_cache_stats
    before = codegen_cache_stats()
    proc_before = proc_cache_stats()
    request = AnalysisRequest.from_dict(request_dict)
    spans = None
    if trace_context is None:
        artifact = execute_request(request)
    else:
        tracer = Tracer.from_context(trace_context)
        with activate(tracer):
            with tracer.span("job", target=request.describe()):
                artifact = execute_request(request)
        spans = tracer.to_dicts()
    return {"artifact": artifact, "spans": spans,
            "codegen": _stats_delta(before, codegen_cache_stats()),
            "proc": _stats_delta(proc_before, proc_cache_stats())}


class BatchScheduler:
    """Submit/queue/run/done-or-failed job management over a process pool."""

    def __init__(self, store: Optional[ArtifactStore] = None, *,
                 metrics: ServiceMetrics = NULL_METRICS,
                 workers: Optional[int] = None,
                 max_retries: int = 2,
                 inline: bool = False,
                 tracer=None,
                 max_traces: int = 256,
                 max_jobs: int = 1024,
                 default_deadline_s: Optional[float] = None,
                 fault_plan: Union[FaultPlan, str, None] = None,
                 breaker_threshold: int = 3,
                 breaker_cooldown_s: float = 30.0,
                 retry_backoff_s: float = 0.05,
                 watchdog_interval_s: float = 0.02,
                 max_queue: Optional[int] = None,
                 shard: Optional[int] = None,
                 claim_poll_s: float = 0.02):
        self.store = store if store is not None else ArtifactStore(None)
        self.metrics = metrics
        # persistent codegen and per-procedure analysis caches ride in
        # subtrees of the job store; workers point at the same roots via
        # _ensure_codegen_store / _ensure_proc_store
        self.codegen_root: Optional[str] = None
        self.proc_root: Optional[str] = None
        if self.store.root is not None:
            from ..analysis.incremental import set_proc_store
            from ..runtime.transpile import set_codegen_store
            self.codegen_root = str(self.store.root / "codegen")
            set_codegen_store(ArtifactStore(self.codegen_root))
            self.proc_root = str(self.store.root / "proc")
            set_proc_store(ArtifactStore(self.proc_root))
        self.workers = workers
        self.max_retries = max_retries
        self.inline = inline
        #: Span sink; NULL_TRACER keeps every trace path zero-cost-ish.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.max_traces = max(1, max_traces)
        self.max_jobs = max(1, max_jobs)
        self.default_deadline_s = default_deadline_s
        if isinstance(fault_plan, str):
            fault_plan = FaultPlan.parse(fault_plan)
        self.fault_plan = fault_plan
        self.breaker_threshold = max(1, breaker_threshold)
        self.breaker_cooldown_s = breaker_cooldown_s
        self.retry_backoff_s = retry_backoff_s
        self.watchdog_interval_s = watchdog_interval_s
        #: Admission cap on new (non-dedupe, non-cached) work in flight;
        #: None = unbounded.  Dedupes and cache hits are always admitted.
        self.max_queue = max_queue
        #: Shard ordinal when owned by a :class:`ShardedScheduler`
        #: (stamps jobs, span tags, and the queue-depth gauge name).
        self.shard = shard
        self.claim_poll_s = claim_poll_s
        self._rng = random.Random(0x5EED)        # retry jitter only
        self._lock = threading.Lock()
        self._pool: Optional[ProcessPoolExecutor] = None
        self._generation = 0                     # bumps on every rebuild
        self._jobs: Dict[str, Job] = {}          # job id -> Job (insertion order)
        self._inflight: Dict[str, Job] = {}      # artifact key -> Job
        self._futures: Dict[str, object] = {}    # job id -> Future
        self._timers: Dict[str, threading.Timer] = {}   # job id -> retry timer
        self._traces: "OrderedDict[str, List[Dict]]" = OrderedDict()
        self._breaker_failures = 0               # consecutive pool breakages
        self._breaker_open_until: Optional[float] = None   # monotonic
        self._probing = False                    # half-open probe in flight
        self._watchdog: Optional[threading.Thread] = None
        self._watchdog_stop = threading.Event()
        #: Keys whose cross-process compute claim this scheduler holds
        #: (released when the owning job settles).
        self._claimed: set = set()
        #: job id -> Job parked waiting on another process's claim.
        self._remote_waits: Dict[str, Job] = {}
        self._claim_waiter: Optional[threading.Thread] = None
        self._claim_waiter_stop = threading.Event()
        self._shutdown = False

    # -- pool lifecycle ----------------------------------------------------
    def _get_pool(self):
        """The live pool and its generation (building one if needed)."""
        with self._lock:
            if self._shutdown:
                raise RuntimeError("scheduler is shut down")
            if self._pool is None:
                self._pool = ProcessPoolExecutor(max_workers=self.workers)
            return self._pool, self._generation

    def _recycle_pool(self, observed_gen: int,
                      count_breaker: bool = True) -> bool:
        """Discard a broken pool — **single-flight**.

        Every in-flight future breaks at once when a worker dies, and
        each completion callback lands here; only the first caller still
        observing ``observed_gen`` discards the pool and bumps the
        generation.  The rest see a newer generation and return without
        touching the (already fresh) pool — no rebuild storm.

        ``count_breaker=False`` is the deadline-kill path: a deliberate
        worker termination proves nothing about pool health, so it must
        not push the circuit breaker toward open."""
        with self._lock:
            if observed_gen != self._generation or self._pool is None:
                return False
            pool, self._pool = self._pool, None
            self._generation += 1
            gen = self._generation
            self._probing = False        # a probe's breakage settles it
            opened = False
            if count_breaker:
                self._breaker_failures += 1
                if self._breaker_failures >= self.breaker_threshold:
                    opened = self._breaker_open_until is None
                    self._breaker_open_until = (time.monotonic()
                                                + self.breaker_cooldown_s)
        pool.shutdown(wait=False)
        self.metrics.incr("pool_rebuilds")
        self.tracer.event("pool_recycled", generation=gen)
        if opened:
            self.metrics.incr("breaker_opened")
            self.tracer.event("breaker_open",
                              failures=self.breaker_threshold)
        return True

    def _pool_allowed(self) -> bool:
        """Circuit-breaker gate: False while the breaker is open.

        After the cooldown the gate half-opens and admits **exactly
        one** probe dispatch (``_probing`` is set until that probe's
        future settles); concurrent dispatches keep taking the inline
        fallback, so a traffic burst at cooldown expiry cannot storm a
        possibly-still-bad pool.  A pooled success closes the breaker,
        another breakage re-arms the cooldown, and either way the probe
        flag is cleared when the probe settles."""
        now = time.monotonic()
        with self._lock:
            if self._breaker_open_until is None:
                return True
            if now < self._breaker_open_until:
                return False
            if self._probing:
                return False                     # someone is probing
            self._probing = True                 # this dispatch probes
            return True

    def _terminate_pool_processes(self, gen: Optional[int]) -> None:
        """Kill the worker processes of generation ``gen`` (deadline
        enforcement: a hung worker never returns, so it must die).  The
        resulting ``BrokenProcessPool`` on sibling futures routes them
        through the single-flight recycle + retry path."""
        with self._lock:
            pool = self._pool if gen == self._generation else None
        if pool is None:
            return
        procs = list(getattr(pool, "_processes", {}).values())
        for proc in procs:
            try:
                proc.terminate()
            except Exception:                   # noqa: BLE001
                pass
        self.metrics.incr("workers_terminated", len(procs))

    def shutdown(self, wait: bool = True) -> None:
        self._watchdog_stop.set()
        self._claim_waiter_stop.set()
        with self._lock:
            self._shutdown = True
            self._probing = False
            pool, self._pool = self._pool, None
            timers = dict(self._timers)
            self._timers.clear()
            waits = list(self._remote_waits.values())
            self._remote_waits.clear()
            watchdog = self._watchdog
            claim_waiter = self._claim_waiter
        for timer in timers.values():
            timer.cancel()
        for job_id in timers:
            job = self.job(job_id)
            if job is not None and not job.finished:
                self._fail(job, "scheduler shutdown", "shutdown")
        for job in waits:
            if not job.finished:
                self._fail(job, "scheduler shutdown", "shutdown")
        if pool is not None:
            pool.shutdown(wait=wait)
        if watchdog is not None and watchdog.is_alive():
            watchdog.join(timeout=1.0)
        if claim_waiter is not None and claim_waiter.is_alive():
            claim_waiter.join(timeout=1.0)
        # Claims this process still holds would read as live (our pid)
        # to other processes until the TTL: release them explicitly.
        with self._lock:
            claimed, self._claimed = set(self._claimed), set()
        for key in claimed:
            self.store.release(key)

    def __enter__(self) -> "BatchScheduler":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    # -- watchdog ----------------------------------------------------------
    def _ensure_watchdog(self) -> None:
        with self._lock:
            if self._watchdog is not None or self._shutdown:
                return
            self._watchdog = threading.Thread(
                target=self._watchdog_loop, name="scheduler-watchdog",
                daemon=True)
            thread = self._watchdog
        thread.start()

    def _watchdog_loop(self) -> None:
        while not self._watchdog_stop.wait(self.watchdog_interval_s):
            try:
                self._reap_deadlines()
            except Exception:                   # noqa: BLE001
                # The watchdog must outlive any single bad job.
                self.metrics.incr("watchdog_errors")

    def _reap_deadlines(self) -> None:
        now = time.monotonic()
        with self._lock:
            expired = [job for job in self._inflight.values()
                       if job.deadline_at is not None
                       and not job.finished and now >= job.deadline_at]
        for job in expired:
            self._expire(job)

    def _expire(self, job: Job) -> None:
        """Deadline enforcement for one job: fail it (reason exactly
        ``"deadline exceeded"``), free its in-flight slot so an identical
        resubmit runs fresh, and reclaim its worker."""
        with self._lock:
            future = self._futures.get(job.id)
        # Fail *first*: completion callbacks observe job.finished and
        # stand down, so a racing worker result cannot resurrect the job.
        if not self._fail(job, "deadline exceeded", "deadline"):
            return                               # lost the race: job done
        self.metrics.incr("jobs_deadline_exceeded")
        self.tracer.event("deadline_exceeded", job=job.id,
                          target=job.request.describe(),
                          deadline_s=job.deadline_s)
        if future is not None and not future.cancel() and \
                not future.done():
            # Already running on a worker: the only way to reclaim the
            # slot is to kill the worker (pool siblings get retried).
            # Proactively recycle so the *next* submit lands on a fresh
            # pool instead of burning a retry on the corpse — without
            # charging the circuit breaker for a deliberate kill.
            self._terminate_pool_processes(job.generation)
            self._recycle_pool(job.generation, count_breaker=False)

    # -- submission --------------------------------------------------------
    def submit(self, request: AnalysisRequest, *,
               key: Optional[str] = None) -> Job:
        """Submit a request; returns a (possibly shared or already-done)
        Job.  Identical in-flight requests dedupe onto one Job; identical
        finished requests are served from the artifact store; a key
        claimed by another server process parks the job on a remote wait
        instead of recomputing.  Raises :class:`QueueFull` when admission
        control rejects *new* work (``max_queue``); dedupes and cache
        hits are always admitted.  ``key=`` skips re-hashing when the
        caller (shard router) already computed the content key."""
        with self.tracer.span("submit",
                              target=request.describe()) as sp:
            if self.shard is not None:
                sp.tag(shard=self.shard)
            if self.fault_plan is not None and \
                    not request.options.get("fault"):
                directive = self.fault_plan.draw()
                if directive is not None:
                    request.options["fault"] = directive
                    self.metrics.incr("faults_injected")
                    sp.tag(fault=directive.split(":", 1)[0])
            if key is None:
                key = request_key(request)  # may raise KeyError
            deadline_s = request.options.get("deadline_s",
                                             self.default_deadline_s)
            cached = self.store.get(key)
            with self._lock:
                existing = self._inflight.get(key)
                if existing is not None:
                    self.metrics.incr("jobs_deduped")
                    sp.tag(cache="dedup", job=existing.id)
                    return existing
                if cached is None and self.max_queue is not None and \
                        len(self._inflight) >= self.max_queue:
                    depth = len(self._inflight)
                    shed = True
                else:
                    shed = False
                    job = Job(request, key, deadline_s=deadline_s)
                    job.shard = self.shard
                    self._jobs[job.id] = job
                    if cached is None:
                        self._inflight[key] = job
                        job.mark_queued()
                    self._gc_finished_locked()
            if shed:
                # Suggest waiting out roughly one mean job latency; a
                # cold scheduler has no sample yet, so fall back to 1s.
                mean = self.metrics.timer_mean("job_latency")
                retry_after_s = round(max(0.1, mean or 1.0), 2)
                self.metrics.incr_shed("queue_full")
                self.tracer.event("shed", reason="queue_full",
                                  depth=depth, limit=self.max_queue)
                sp.tag(cache="shed")
                raise QueueFull(depth, self.max_queue, retry_after_s)
            self.metrics.incr("jobs_submitted")
            sp.tag(cache="hit" if cached is not None else "miss",
                   job=job.id)
            if cached is not None:
                job.mark_done(cached=True)
                self.metrics.incr("jobs_served_cached")
                return job
            self._update_queue_gauge()
            if not self.store.claim(key):
                # Another live server process owns this key's compute:
                # park the job; the claim waiter settles it when the
                # artifact lands (or adopts the compute if the claim
                # goes stale).
                self._enter_remote_wait(job, sp)
                return job
            with self._lock:
                self._claimed.add(key)
            # Finished-while-claiming: the previous owner may have
            # stored + released between our store.get and our claim.
            cached = self.store.get(key)
            if cached is not None:
                self._release_claim(key)
                with self._lock:
                    self._inflight.pop(key, None)
                job.mark_done(cached=True)
                self.metrics.incr("jobs_served_cached")
                self._update_queue_gauge()
                sp.tag(cache="hit")
                return job
            if self.inline:
                self._run_inline(job)
            else:
                if job.deadline_s is not None:
                    self._ensure_watchdog()
                self._dispatch(job)
            return job

    # -- cross-process single-flight (remote waits) ------------------------
    def _enter_remote_wait(self, job: Job, sp) -> None:
        """Park a job whose key another live process is computing; the
        claim-waiter thread settles it from the shared store."""
        self.metrics.incr("jobs_remote_waited")
        sp.tag(cache="remote_wait")
        self.tracer.event("remote_wait", job=job.id, key=job.key[:12])
        if job.deadline_s is not None:
            # The wait burns the job's wall budget just like running
            # would; the watchdog frees the slot if the owner wedges.
            job.deadline_at = time.monotonic() + job.deadline_s
            self._ensure_watchdog()
        with self._lock:
            self._remote_waits[job.id] = job
        self._ensure_claim_waiter()

    def _ensure_claim_waiter(self) -> None:
        with self._lock:
            if self._claim_waiter is not None or self._shutdown:
                return
            self._claim_waiter = threading.Thread(
                target=self._claim_waiter_loop,
                name="scheduler-claim-waiter", daemon=True)
            thread = self._claim_waiter
        thread.start()

    def _claim_waiter_loop(self) -> None:
        while not self._claim_waiter_stop.wait(self.claim_poll_s):
            try:
                self._poll_remote_waits()
            except Exception:                   # noqa: BLE001
                self.metrics.incr("claim_waiter_errors")

    def _poll_remote_waits(self) -> None:
        with self._lock:
            waiting = list(self._remote_waits.values())
        for job in waiting:
            if job.finished:        # deadline-expired or shut down
                with self._lock:
                    self._remote_waits.pop(job.id, None)
                continue
            # ``in`` probes path existence without charging a cache
            # miss per poll tick; the real ``get`` runs once, on hit.
            if job.key in self.store:
                artifact = self.store.get(job.key)
                if artifact is not None:
                    self._finish_remote(job)
                    continue
                # corrupt entry was quarantined mid-read: fall through
                # and try to adopt the compute ourselves
            if not self.store.claim(job.key):
                continue            # owner still live: keep waiting
            with self._lock:
                self._claimed.add(job.key)
                self._remote_waits.pop(job.id, None)
            artifact = self.store.get(job.key)
            if artifact is not None:    # owner finished as we claimed
                self._release_claim(job.key)
                self._finish_remote(job)
                continue
            # Stale claim broken (owner died) — adopt the computation.
            self.metrics.incr("jobs_claim_adopted")
            self.tracer.event("claim_adopted", job=job.id,
                              key=job.key[:12])
            if self.inline:
                self._run_inline(job)
            else:
                if job.deadline_s is not None:
                    self._ensure_watchdog()
                self._dispatch(job)

    def _finish_remote(self, job: Job) -> None:
        """Settle a remote-wait job whose artifact another process
        computed and stored."""
        with self._lock:
            if job.finished:
                return
            self._remote_waits.pop(job.id, None)
            self._inflight.pop(job.key, None)
            job.mark_done(cached=True)
        self.metrics.incr("jobs_completed")
        self.metrics.incr("jobs_remote_served")
        self._update_queue_gauge()

    def _release_claim(self, key: str) -> None:
        with self._lock:
            held = key in self._claimed
            self._claimed.discard(key)
        if held:
            self.store.release(key)

    def batch(self, requests: Sequence[AnalysisRequest],
              timeout: Optional[float] = None) -> List[Optional[Dict]]:
        """Submit all requests, wait, and return their artifacts in
        request order (None for failed jobs)."""
        jobs = [self.submit(r) for r in requests]
        self.wait(jobs, timeout=timeout)
        return [self.artifact(job) for job in jobs]

    def _gc_finished_locked(self) -> None:
        """Evict the oldest *finished* jobs past ``max_jobs`` (lock
        held).  Unfinished jobs are never evicted, so the registry can
        transiently exceed the cap under a flood of live work."""
        if len(self._jobs) <= self.max_jobs:
            return
        evictable = [j for j in self._jobs.values() if j.finished]
        excess = len(self._jobs) - self.max_jobs
        for job in evictable[:excess]:
            del self._jobs[job.id]
            self._traces.pop(job.id, None)
            self.metrics.incr("jobs_evicted")

    # -- execution ---------------------------------------------------------
    def _count_codegen(self, delta: Optional[Dict]) -> None:
        if not delta:
            return
        if delta.get("hit"):
            self.metrics.incr("codegen_cache_hit", delta["hit"])
        if delta.get("miss"):
            self.metrics.incr("codegen_cache_miss", delta["miss"])

    def _count_proc(self, delta: Optional[Dict]) -> None:
        if not delta:
            return
        if delta.get("hit"):
            self.metrics.incr("proc_cache_hit", delta["hit"])
        if delta.get("miss"):
            self.metrics.incr("proc_cache_miss", delta["miss"])

    def _run_inline(self, job: Job) -> None:
        from ..analysis.incremental import proc_cache_stats
        from ..runtime.transpile import codegen_cache_stats
        job.mark_running()
        job_tracer: Optional[Tracer] = None
        if self.tracer.enabled:
            job_tracer = Tracer.from_context(self.tracer.export_context())
        cg_before = codegen_cache_stats()
        proc_before = proc_cache_stats()
        try:
            with self.metrics.time_phase("execute"):
                if job_tracer is not None:
                    with activate(job_tracer), \
                            job_tracer.span("job", job=job.id,
                                            target=job.request.describe()):
                        artifact = execute_request(job.request)
                else:
                    artifact = execute_request(job.request)
        except Exception as exc:               # noqa: BLE001
            self._count_codegen(_stats_delta(cg_before,
                                             codegen_cache_stats()))
            self._count_proc(_stats_delta(proc_before, proc_cache_stats()))
            if job_tracer is not None:
                self._record_trace(job, job_tracer.to_dicts())
            self._finish_failed(job, exc)
        else:
            self._count_codegen(_stats_delta(cg_before,
                                             codegen_cache_stats()))
            self._count_proc(_stats_delta(proc_before, proc_cache_stats()))
            if job_tracer is not None:
                self._record_trace(job, job_tracer.to_dicts())
            self._finish_done(job, artifact)

    def _dispatch(self, job: Job) -> None:
        if job.finished:
            return
        if not self._pool_allowed():
            # Breaker open: degrade to inline execution — slower, but
            # the service keeps answering while the pool is poisoned.
            self.metrics.incr("jobs_inline_fallback")
            self.tracer.event("inline_fallback", job=job.id)
            self._run_inline(job)
            return
        job.mark_running()
        trace_ctx = (self.tracer.export_context()
                     if self.tracer.enabled else None)
        gen = None
        try:
            pool, gen = self._get_pool()
            job.generation = gen
            future = pool.submit(_pool_worker, job.request.to_dict(),
                                 trace_ctx, self.codegen_root,
                                 self.proc_root)
        except (BrokenExecutor, RuntimeError) as exc:
            self._handle_crash(job, exc, gen)
            return
        with self._lock:
            self._futures[job.id] = future
        traced = trace_ctx is not None
        future.add_done_callback(
            lambda f, j=job, g=gen, t=traced: self._on_done(j, f, g, t))

    def _on_done(self, job: Job, future, gen: Optional[int] = None,
                 traced: bool = False) -> None:
        with self._lock:
            self._futures.pop(job.id, None)
            # Any pooled future settling settles the half-open probe
            # (while probing, this is the only job the pool was fed).
            self._probing = False
        if job.finished:        # deadline watchdog / pool-wide breakage
            return              # already settled this job
        try:
            exc = future.exception()
        except CancelledError:
            return              # deadline-cancelled before it started
        if exc is None:
            result = future.result()
            if traced:
                self._record_trace(job, result.get("spans") or [])
            self._count_codegen(result.get("codegen"))
            self._count_proc(result.get("proc"))
            self._finish_done(job, result["artifact"], pooled=True)
        elif isinstance(exc, BrokenExecutor):
            self.metrics.incr("futures_broken")
            self._handle_crash(job, exc, gen)
        elif isinstance(exc, TransientFault) and \
                job.attempts <= self.max_retries:
            self.metrics.incr("transient_faults")
            self.metrics.incr("jobs_retried")
            self.tracer.event("transient_retry", job=job.id,
                              attempt=job.attempts)
            self._schedule_retry(job)
        else:
            self._finish_failed(job, exc)

    def _handle_crash(self, job: Job, exc: Exception,
                      gen: Optional[int]) -> None:
        """A worker process died (or the pool was unusable): recycle the
        pool exactly once and route this job to backoff-retry."""
        if gen is not None and self._recycle_pool(gen):
            self.metrics.incr("worker_crashes")
        if job.finished:
            return
        if self._shutdown:
            self._fail(job, "scheduler shutdown", "shutdown")
            return
        if job.attempts <= self.max_retries:
            self.metrics.incr("jobs_retried")
            self._schedule_retry(job)
        else:
            self._fail(job, f"{type(exc).__name__}: {exc}", "crash")

    def _schedule_retry(self, job: Job) -> None:
        """Redispatch after a jittered exponential backoff — retries
        from a mass pool breakage spread out instead of thundering onto
        the fresh pool in lockstep."""
        delay = self.retry_backoff_s * (2 ** max(0, job.attempts - 1))
        delay *= 0.5 + self._rng.random()        # jitter in [0.5, 1.5)
        with self._lock:
            if self._shutdown:
                shutdown = True
            else:
                shutdown = False
                timer = threading.Timer(delay, self._redispatch, [job])
                timer.daemon = True
                self._timers[job.id] = timer
        if shutdown:
            self._fail(job, "scheduler shutdown", "shutdown")
            return
        self.metrics.observe("retry_backoff", delay)
        timer.start()

    def _redispatch(self, job: Job) -> None:
        with self._lock:
            self._timers.pop(job.id, None)
            shutdown = self._shutdown
        if job.finished:
            return
        if shutdown:
            self._fail(job, "scheduler shutdown", "shutdown")
            return
        self._dispatch(job)

    # -- settlement --------------------------------------------------------
    def _finish_done(self, job: Job, artifact: Dict,
                     pooled: bool = False) -> None:
        self.store.put(job.key, artifact)
        if str(job.request.options.get("fault") or "") == \
                "corrupt-artifact":
            # Applied post-store so the *next* read exercises the
            # store's quarantine-and-recompute path.
            self.store.corrupt_on_disk(job.key)
        # put-then-release ordering: a remote waiter that sees the claim
        # gone is guaranteed to find the artifact already on disk.
        self._release_claim(job.key)
        closed = False
        with self._lock:
            if job.finished:
                return
            self._inflight.pop(job.key, None)
            self._futures.pop(job.id, None)
            job.mark_done()
            if pooled:
                # A pooled success proves the pool is healthy again.
                self._breaker_failures = 0
                if self._breaker_open_until is not None:
                    self._breaker_open_until = None
                    closed = True
        if closed:
            self.metrics.incr("breaker_closed")
            self.tracer.event("breaker_closed")
        self.metrics.incr("jobs_completed")
        # This process actually ran the pipeline for this key (vs served
        # cached / deduped / remote-waited) — the single-flight audits
        # sum this across server processes and assert "exactly once".
        self.metrics.incr("artifacts_computed")
        if job.duration_s is not None:
            # monotonic pair — immune to wall-clock steps (NTP, DST)
            self.metrics.observe("job_latency", job.duration_s)
        self._update_queue_gauge()

    def _finish_failed(self, job: Job, exc: Exception) -> None:
        kind = "error"
        if isinstance(exc, OpsBudgetExceeded):
            kind = "budget"
        elif isinstance(exc, TransientFault):
            kind = "transient"
        elif isinstance(exc, BrokenExecutor):
            kind = "crash"
        self._fail(job, f"{type(exc).__name__}: {exc}", kind)

    def _fail(self, job: Job, reason: str, kind: str) -> bool:
        """Settle a job as failed (idempotent; False if it already
        finished).  Frees the in-flight slot so an identical resubmit
        creates a fresh job instead of deduping onto a corpse."""
        with self._lock:
            if job.finished:
                return False
            self._inflight.pop(job.key, None)
            self._futures.pop(job.id, None)
            self._remote_waits.pop(job.id, None)
            timer = self._timers.pop(job.id, None)
            job.mark_failed(reason, kind=kind)
        if timer is not None:
            timer.cancel()
        # Free the cross-process claim so another process (or a local
        # resubmit) can take over the computation.
        self._release_claim(job.key)
        self.metrics.incr("jobs_failed")
        self.metrics.incr_failure(kind)
        self.tracer.event("job_failed", job=job.id, kind=kind)
        self._update_queue_gauge()
        return True

    def _update_queue_gauge(self) -> None:
        with self._lock:
            depth = len(self._inflight)
        # Per-shard gauge names: N shard schedulers share one metrics
        # sink, so a single "queue_depth" would be clobbered racily.
        name = ("queue_depth" if self.shard is None
                else f"queue_depth_shard_{self.shard}")
        self.metrics.gauge(name, depth)

    def queue_depth(self) -> int:
        with self._lock:
            return len(self._inflight)

    # -- traces ------------------------------------------------------------
    def _record_trace(self, job: Job, spans: List[Dict]) -> None:
        """Keep a bounded per-job trace, reattach the spans onto the
        scheduler's own tracer, and fold them into per-phase metrics."""
        if not spans:
            return
        with self._lock:
            self._traces[job.id] = list(spans)
            while len(self._traces) > self.max_traces:
                self._traces.popitem(last=False)
        self.tracer.adopt(spans)
        self.metrics.record_phases(spans)

    def trace(self, job_id: str) -> Optional[List[Dict]]:
        """The recorded spans for one job, or None if not traced/evicted."""
        with self._lock:
            spans = self._traces.get(job_id)
            return list(spans) if spans is not None else None

    # -- queries -----------------------------------------------------------
    def job(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> List[Job]:
        with self._lock:
            return sorted(self._jobs.values(), key=lambda j: j.id)

    def artifact(self, job: Job) -> Optional[Dict]:
        if job.state != "done":
            return None
        return self.store.get(job.key)

    def wait(self, jobs: Sequence[Job],
             timeout: Optional[float] = None) -> bool:
        """Block until every job finished; False on timeout.  Monotonic
        throughout — an NTP step cannot corrupt the deadline."""
        deadline = None if timeout is None \
            else time.monotonic() + timeout
        for job in jobs:
            remain = None
            if deadline is not None:
                remain = max(0.0, deadline - time.monotonic())
            if not job.wait(remain):
                return False
        return True


def shard_of(key: str, nshards: int) -> int:
    """Shard placement by content key: the leading 64 bits of the
    sha256 are uniform, so a plain modulus balances shards and keeps
    every request for one key on one shard (per-shard dedupe and
    single-flight then compose to global dedupe)."""
    return int(key[:16], 16) % nshards


class ShardedScheduler:
    """N independent :class:`BatchScheduler` pools routed by content key.

    Each shard owns its own process pool, in-flight table, breaker, and
    watchdog; a request's sha256 content key picks its shard, so
    identical requests always meet in the same in-flight table (dedupe
    stays exact) while unrelated traffic stops contending on one
    scheduler lock and one pool queue.  The artifact store (and its
    cross-process claim tree) is shared by all shards."""

    def __init__(self, store: Optional[ArtifactStore] = None, *,
                 shards: int = 2,
                 workers: Optional[int] = None,
                 metrics: ServiceMetrics = NULL_METRICS,
                 fault_plan: Union[FaultPlan, str, None] = None,
                 **scheduler_kwargs):
        if shards < 1:
            raise ValueError("shards must be >= 1")
        self.store = store if store is not None else ArtifactStore(None)
        self.metrics = metrics
        self.nshards = shards
        if workers is None:
            # Split the host's cores across the shard pools instead of
            # oversubscribing cpu_count() workers per shard.
            import os as _os
            workers = max(1, (_os.cpu_count() or 2) // shards)
        if isinstance(fault_plan, str):
            fault_plan = FaultPlan.parse(fault_plan)
        #: One shared (seeded) fault plan: draws follow submission
        #: order, so single-threaded chaos harnesses stay deterministic
        #: regardless of which shard each request routes to.
        self.fault_plan = fault_plan
        self.shards = [
            BatchScheduler(self.store, metrics=metrics, workers=workers,
                           fault_plan=fault_plan, shard=i,
                           **scheduler_kwargs)
            for i in range(shards)
        ]
        self.inline = self.shards[0].inline
        self.default_deadline_s = self.shards[0].default_deadline_s
        self.max_jobs = self.shards[0].max_jobs

    # -- routing -----------------------------------------------------------
    def shard_for(self, key: str) -> BatchScheduler:
        return self.shards[shard_of(key, self.nshards)]

    def submit(self, request: AnalysisRequest, *,
               key: Optional[str] = None) -> Job:
        if key is None:
            key = request_key(request)
        return self.shard_for(key).submit(request, key=key)

    def batch(self, requests: Sequence[AnalysisRequest],
              timeout: Optional[float] = None) -> List[Optional[Dict]]:
        jobs = [self.submit(r) for r in requests]
        self.wait(jobs, timeout=timeout)
        return [self.artifact(job) for job in jobs]

    # -- fan-in queries ----------------------------------------------------
    def job(self, job_id: str) -> Optional[Job]:
        for shard in self.shards:
            job = shard.job(job_id)
            if job is not None:
                return job
        return None

    def jobs(self) -> List[Job]:
        out: List[Job] = []
        for shard in self.shards:
            out.extend(shard.jobs())
        return sorted(out, key=lambda j: j.id)

    def trace(self, job_id: str) -> Optional[List[Dict]]:
        for shard in self.shards:
            spans = shard.trace(job_id)
            if spans is not None:
                return spans
        return None

    def artifact(self, job: Job) -> Optional[Dict]:
        if job.state != "done":
            return None
        return self.store.get(job.key)

    def wait(self, jobs: Sequence[Job],
             timeout: Optional[float] = None) -> bool:
        deadline = None if timeout is None \
            else time.monotonic() + timeout
        for job in jobs:
            remain = None
            if deadline is not None:
                remain = max(0.0, deadline - time.monotonic())
            if not job.wait(remain):
                return False
        return True

    def queue_depth(self) -> int:
        return sum(shard.queue_depth() for shard in self.shards)

    def shard_stats(self) -> List[Dict]:
        """Per-shard occupancy for ``GET /metrics`` (each depth read
        under that shard's lock)."""
        return [{"shard": i,
                 "queue_depth": shard.queue_depth(),
                 "jobs": len(shard.jobs()),
                 "workers": shard.workers}
                for i, shard in enumerate(self.shards)]

    # -- lifecycle ---------------------------------------------------------
    def shutdown(self, wait: bool = True) -> None:
        for shard in self.shards:
            shard.shutdown(wait=wait)

    def __enter__(self) -> "ShardedScheduler":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()


def run_sequential(requests: Sequence[AnalysisRequest]) -> List[Dict]:
    """The sequential reference: execute each request in this process.
    Batch results must be bit-identical to this (determinism contract)."""
    return [execute_request(r) for r in requests]
