"""Process-pool batch scheduler for analysis requests.

Astrée-style observation (Monniaux, cs/0701191): static-analysis
pipelines fan out cleanly across workers when each unit of work is a
pure function of its inputs and results merge deterministically.  Each
:class:`~repro.service.jobs.AnalysisRequest` here is exactly that, so the
scheduler can:

* fan requests across a ``concurrent.futures.ProcessPoolExecutor``,
* **dedupe** identical in-flight requests (same content key → same Job),
* serve repeats straight from the :class:`ArtifactStore`,
* **retry** jobs whose worker process died (``BrokenProcessPool``) on a
  rebuilt pool, up to ``max_retries`` attempts,
* stay **deterministic**: a batch produces artifacts bit-identical to
  running the same requests sequentially in one process, regardless of
  worker count or completion order (results are keyed, not ordered).

``inline=True`` bypasses the pool and executes synchronously in-process —
the reference behaviour the determinism tests compare against, and the
sensible mode on single-core hosts.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from typing import Dict, List, Optional, Sequence

from ..obs import NULL_TRACER, Tracer, activate
from .artifacts import ArtifactStore
from .jobs import AnalysisRequest, Job, execute_request
from .metrics import NULL_METRICS, ServiceMetrics


def _pool_worker(request_dict: Dict,
                 trace_context: Optional[Dict] = None) -> Dict:
    """Top-level (picklable) worker entry point.

    Without a trace context this returns the bare artifact (the zero-cost
    path).  With one, the worker builds a child tracer whose root spans
    parent onto the scheduler's ``submit`` span, runs the request under
    it, and ships the spans back for the parent to reattach."""
    request = AnalysisRequest.from_dict(request_dict)
    if trace_context is None:
        return execute_request(request)
    tracer = Tracer.from_context(trace_context)
    with activate(tracer):
        with tracer.span("job", target=request.describe()):
            artifact = execute_request(request)
    return {"artifact": artifact, "spans": tracer.to_dicts()}


class BatchScheduler:
    """Submit/queue/run/done-or-failed job management over a process pool."""

    def __init__(self, store: Optional[ArtifactStore] = None, *,
                 metrics: ServiceMetrics = NULL_METRICS,
                 workers: Optional[int] = None,
                 max_retries: int = 2,
                 inline: bool = False,
                 tracer=None,
                 max_traces: int = 256):
        self.store = store if store is not None else ArtifactStore(None)
        self.metrics = metrics
        self.workers = workers
        self.max_retries = max_retries
        self.inline = inline
        #: Span sink; NULL_TRACER keeps every trace path zero-cost-ish.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.max_traces = max(1, max_traces)
        self._lock = threading.Lock()
        self._pool: Optional[ProcessPoolExecutor] = None
        self._jobs: Dict[str, Job] = {}          # job id -> Job
        self._inflight: Dict[str, Job] = {}      # artifact key -> Job
        self._traces: "OrderedDict[str, List[Dict]]" = OrderedDict()
        self._shutdown = False

    # -- pool lifecycle ----------------------------------------------------
    def _get_pool(self) -> ProcessPoolExecutor:
        with self._lock:
            if self._shutdown:
                raise RuntimeError("scheduler is shut down")
            if self._pool is None:
                self._pool = ProcessPoolExecutor(max_workers=self.workers)
            return self._pool

    def _discard_pool(self) -> None:
        """Drop a broken pool so the next dispatch builds a fresh one."""
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=False)

    def shutdown(self, wait: bool = True) -> None:
        with self._lock:
            self._shutdown = True
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=wait)

    def __enter__(self) -> "BatchScheduler":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    # -- submission --------------------------------------------------------
    def submit(self, request: AnalysisRequest) -> Job:
        """Submit a request; returns a (possibly shared or already-done)
        Job.  Identical in-flight requests dedupe onto one Job; identical
        finished requests are served from the artifact store."""
        with self.tracer.span("submit",
                              target=request.describe()) as sp:
            key = request.key()  # resolves the corpus; may raise KeyError
            cached = self.store.get(key)
            with self._lock:
                existing = self._inflight.get(key)
                if existing is not None:
                    self.metrics.incr("jobs_deduped")
                    sp.tag(cache="dedup", job=existing.id)
                    return existing
                job = Job(request, key)
                self._jobs[job.id] = job
                if cached is None:
                    self._inflight[key] = job
                    job.mark_queued()
            self.metrics.incr("jobs_submitted")
            sp.tag(cache="hit" if cached is not None else "miss",
                   job=job.id)
            if cached is not None:
                job.mark_done(cached=True)
                self.metrics.incr("jobs_served_cached")
                return job
            self._update_queue_gauge()
            if self.inline:
                self._run_inline(job)
            else:
                self._dispatch(job)
            return job

    def batch(self, requests: Sequence[AnalysisRequest],
              timeout: Optional[float] = None) -> List[Optional[Dict]]:
        """Submit all requests, wait, and return their artifacts in
        request order (None for failed jobs)."""
        jobs = [self.submit(r) for r in requests]
        self.wait(jobs, timeout=timeout)
        return [self.artifact(job) for job in jobs]

    # -- execution ---------------------------------------------------------
    def _run_inline(self, job: Job) -> None:
        job.mark_running()
        job_tracer: Optional[Tracer] = None
        if self.tracer.enabled:
            job_tracer = Tracer.from_context(self.tracer.export_context())
        try:
            with self.metrics.time_phase("execute"):
                if job_tracer is not None:
                    with activate(job_tracer), \
                            job_tracer.span("job", job=job.id,
                                            target=job.request.describe()):
                        artifact = execute_request(job.request)
                else:
                    artifact = execute_request(job.request)
        except Exception as exc:               # noqa: BLE001
            if job_tracer is not None:
                self._record_trace(job, job_tracer.to_dicts())
            self._finish_failed(job, exc)
        else:
            if job_tracer is not None:
                self._record_trace(job, job_tracer.to_dicts())
            self._finish_done(job, artifact)

    def _dispatch(self, job: Job) -> None:
        job.mark_running()
        trace_ctx = (self.tracer.export_context()
                     if self.tracer.enabled else None)
        try:
            pool = self._get_pool()
            future = pool.submit(_pool_worker, job.request.to_dict(),
                                 trace_ctx)
        except (BrokenExecutor, RuntimeError) as exc:
            self._handle_crash(job, exc)
            return
        traced = trace_ctx is not None
        future.add_done_callback(
            lambda f, j=job, t=traced: self._on_done(j, f, t))

    def _on_done(self, job: Job, future, traced: bool = False) -> None:
        if job.finished:        # a pool-wide breakage already handled it
            return
        exc = future.exception()
        if exc is None:
            result = future.result()
            if traced:
                self._record_trace(job, result.get("spans") or [])
                artifact = result["artifact"]
            else:
                artifact = result
            self._finish_done(job, artifact)
        elif isinstance(exc, BrokenExecutor):
            self._handle_crash(job, exc)
        else:
            self._finish_failed(job, exc)

    def _handle_crash(self, job: Job, exc: Exception) -> None:
        """A worker process died mid-job: rebuild the pool and retry."""
        self._discard_pool()
        self.metrics.incr("worker_crashes")
        if job.attempts <= self.max_retries and not self._shutdown:
            self.metrics.incr("jobs_retried")
            self._dispatch(job)
        else:
            self._finish_failed(job, exc)

    def _finish_done(self, job: Job, artifact: Dict) -> None:
        self.store.put(job.key, artifact)
        with self._lock:
            self._inflight.pop(job.key, None)
        job.mark_done()
        self.metrics.incr("jobs_completed")
        if job.started_at is not None:
            self.metrics.observe("job_latency",
                                 job.finished_at - job.started_at)
        self._update_queue_gauge()

    def _finish_failed(self, job: Job, exc: Exception) -> None:
        with self._lock:
            self._inflight.pop(job.key, None)
        job.mark_failed(f"{type(exc).__name__}: {exc}")
        self.metrics.incr("jobs_failed")
        self._update_queue_gauge()

    def _update_queue_gauge(self) -> None:
        with self._lock:
            depth = len(self._inflight)
        self.metrics.gauge("queue_depth", depth)

    # -- traces ------------------------------------------------------------
    def _record_trace(self, job: Job, spans: List[Dict]) -> None:
        """Keep a bounded per-job trace, reattach the spans onto the
        scheduler's own tracer, and fold them into per-phase metrics."""
        if not spans:
            return
        with self._lock:
            self._traces[job.id] = list(spans)
            while len(self._traces) > self.max_traces:
                self._traces.popitem(last=False)
        self.tracer.adopt(spans)
        self.metrics.record_phases(spans)

    def trace(self, job_id: str) -> Optional[List[Dict]]:
        """The recorded spans for one job, or None if not traced/evicted."""
        with self._lock:
            spans = self._traces.get(job_id)
            return list(spans) if spans is not None else None

    # -- queries -----------------------------------------------------------
    def job(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> List[Job]:
        with self._lock:
            return sorted(self._jobs.values(), key=lambda j: j.id)

    def artifact(self, job: Job) -> Optional[Dict]:
        if job.state != "done":
            return None
        return self.store.get(job.key)

    def wait(self, jobs: Sequence[Job],
             timeout: Optional[float] = None) -> bool:
        """Block until every job finished; False on timeout."""
        import time as _time
        deadline = None if timeout is None else _time.time() + timeout
        for job in jobs:
            remain = None
            if deadline is not None:
                remain = max(0.0, deadline - _time.time())
            if not job.wait(remain):
                return False
        return True


def run_sequential(requests: Sequence[AnalysisRequest]) -> List[Dict]:
    """The sequential reference: execute each request in this process.
    Batch results must be bit-identical to this (determinism contract)."""
    return [execute_request(r) for r in requests]
