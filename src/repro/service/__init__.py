"""The analysis service: cache, scheduler, and HTTP serving layers.

Turns the library into a multi-client Explorer service: a
content-addressed :class:`ArtifactStore` memoizes every analysis
product, a :class:`BatchScheduler` fans requests across a process pool
(deduped, crash-retried, deterministic), and :class:`AnalysisServer`
exposes it all over a stdlib-only JSON HTTP API so many clients share
one warm cache.
"""

from .artifacts import (SCHEMA_VERSION, ArtifactStore, artifact_key,
                        canonical_json)
from .faults import (DIRECTIVE_KINDS, FAULT_KINDS, FaultPlan,
                     TransientFault, apply_request_fault,
                     in_worker_process, mark_worker_process)
from .jobs import (DONE, FAILED, MAX_OPS_CAP, MAX_SLICE_TARGETS,
                   NON_SEMANTIC_OPTIONS, QUEUED, RUNNING, STATES,
                   SUBMITTED, AnalysisRequest, Job, execute_request,
                   semantic_options, session_snapshot, validate_options)
from .metrics import ServiceMetrics
from .scheduler import (BatchScheduler, QueueFull, ShardedScheduler,
                        request_key, run_sequential, shard_of)
from .server import AnalysisServer, AnalysisService
from .aserver import AsyncAnalysisServer

__all__ = [
    "SCHEMA_VERSION", "ArtifactStore", "artifact_key", "canonical_json",
    "DIRECTIVE_KINDS", "FAULT_KINDS", "FaultPlan", "TransientFault",
    "apply_request_fault", "in_worker_process", "mark_worker_process",
    "SUBMITTED", "QUEUED", "RUNNING", "DONE", "FAILED", "STATES",
    "MAX_OPS_CAP", "MAX_SLICE_TARGETS", "NON_SEMANTIC_OPTIONS",
    "AnalysisRequest", "Job", "execute_request", "semantic_options",
    "session_snapshot", "validate_options",
    "ServiceMetrics",
    "BatchScheduler", "QueueFull", "ShardedScheduler", "request_key",
    "run_sequential", "shard_of",
    "AnalysisServer", "AnalysisService", "AsyncAnalysisServer",
]
