"""Content-addressed, versioned artifact store for analysis results.

The Explorer is interactive: the same programs are re-analyzed over and
over while a user works (paper Ch. 2/4), and many concurrent clients ask
for the same corpus entries.  Every analysis artifact (parallelization
plan, loop profile, dyndep summary, Guru report, slices, simulated
parallel execution) is therefore keyed by a *content address*::

    key = sha256(schema version + program source + program name
                 + inputs + analysis options)

so a cache entry can never be served stale: any change to the workload
source text, its inputs, the analysis options, or the artifact schema
version produces a different key.  Explicit invalidation exists for
operators, but correctness never depends on it.

Storage is two-level: a bounded in-memory LRU in front of a JSON-file
tree on disk (``<root>/<key[:2]>/<key>.json``).  Disk entries are written
atomically (tmp + ``os.replace``); a truncated or corrupt file is treated
as a miss and quarantined (unlinked) rather than crashing the service.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
from collections import OrderedDict
from pathlib import Path
from typing import Dict, Iterable, List, Optional

from .metrics import NULL_METRICS, ServiceMetrics

#: A claim whose owner pid cannot be shown dead is still broken after
#: this many seconds — covers pid recycling and wedged owners.
CLAIM_TTL_S = 600.0
#: An empty/unparseable claim younger than this is assumed to be a
#: just-created file whose owner has not finished writing it yet.
CLAIM_GRACE_S = 5.0

#: Bump whenever the artifact payload layout changes — old cache entries
#: then miss (different key) instead of being misread.
#: v2: demand-driven slicing (``slices`` populated on request instead of
#: precomputed per Guru target) + the ``proc/`` per-procedure namespace.
SCHEMA_VERSION = 2


def canonical_json(obj) -> str:
    """The byte-stable encoding used both for hashing and for the
    batch-vs-sequential bit-identity checks."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"),
                      ensure_ascii=True)


def artifact_key(source: str, program_name: str, inputs, options: Dict,
                 schema_version: int = SCHEMA_VERSION) -> str:
    """Content address of one analysis request."""
    payload = canonical_json({
        "schema": schema_version,
        "source": source,
        "program": program_name,
        "inputs": [float(x) for x in inputs],
        "options": options,
    })
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class ArtifactStore:
    """Two-level (memory LRU + disk JSON) content-addressed store."""

    def __init__(self, root: Optional[str] = None, *,
                 memory_capacity: int = 128,
                 metrics: ServiceMetrics = NULL_METRICS):
        self.root = Path(root) if root is not None else None
        self.memory_capacity = max(0, memory_capacity)
        self.metrics = metrics
        self._lock = threading.Lock()
        self._memory: "OrderedDict[str, Dict]" = OrderedDict()
        #: Per-key write-version counters (guarded by ``_lock``).  Disk
        #: reads happen outside the lock; the version lets ``get`` detect
        #: that a concurrent ``put``/``invalidate``/``corrupt_on_disk``
        #: touched the key mid-read, so a stale snapshot never overwrites
        #: the fresher entry in the memory LRU.
        self._versions: Dict[str, int] = {}
        self._tmp_seq = 0
        if self.root is not None:
            self.root.mkdir(parents=True, exist_ok=True)

    # -- paths -------------------------------------------------------------
    def _path(self, key: str) -> Optional[Path]:
        if self.root is None:
            return None
        return self.root / key[:2] / f"{key}.json"

    # -- core API ----------------------------------------------------------
    def get(self, key: str) -> Optional[Dict]:
        """The stored artifact for ``key``, or None on miss/corruption."""
        with self._lock:
            hit = self._memory.get(key)
            if hit is not None:
                self._memory.move_to_end(key)
                self.metrics.incr("cache_hits")
                self.metrics.incr("cache_hits_memory")
                return hit
            version = self._versions.get(key, 0)
        artifact = self._read_disk(key)
        if artifact is None:
            self.metrics.incr("cache_misses")
            return None
        with self._lock:
            # Fill the LRU only if no writer touched the key while the
            # disk read ran lock-free; a concurrent put (e.g. rewriting a
            # quarantined entry) must not be shadowed by our stale bytes.
            # The fresher value is already (or about to be) in memory.
            if self._versions.get(key, 0) == version:
                self._remember(key, artifact)
            else:
                artifact = self._memory.get(key, artifact)
        self.metrics.incr("cache_hits")
        self.metrics.incr("cache_hits_disk")
        return artifact

    def put(self, key: str, artifact: Dict) -> None:
        path = self._path(key)
        if path is not None:
            path.parent.mkdir(parents=True, exist_ok=True)
            with self._lock:
                self._tmp_seq += 1
                seq = self._tmp_seq
            # Unique tmp name per write: two concurrent puts of the same
            # key must not interleave bytes into one shared tmp file.
            tmp = path.with_suffix(f".{os.getpid()}.{seq}.tmp")
            envelope = {"key": key, "schema": SCHEMA_VERSION,
                        "artifact": artifact}
            tmp.write_text(canonical_json(envelope))
            os.replace(tmp, path)
        with self._lock:
            self._versions[key] = self._versions.get(key, 0) + 1
            self._remember(key, artifact)
        self.metrics.incr("cache_stores")

    def invalidate(self, key: str) -> bool:
        """Drop one entry from both levels; True if anything was dropped."""
        dropped = False
        with self._lock:
            self._versions[key] = self._versions.get(key, 0) + 1
            if self._memory.pop(key, None) is not None:
                dropped = True
        path = self._path(key)
        if path is not None and path.exists():
            path.unlink()
            dropped = True
        if dropped:
            self.metrics.incr("cache_invalidations")
        return dropped

    def clear(self) -> None:
        with self._lock:
            for key in self._memory:
                self._versions[key] = self._versions.get(key, 0) + 1
            self._memory.clear()
        if self.root is not None:
            for path in self.root.glob("*/*.json"):
                path.unlink()

    def clear_memory(self) -> None:
        """Drop the LRU only (used by tests to force disk reads)."""
        with self._lock:
            self._memory.clear()

    def corrupt_on_disk(self, key: str) -> bool:
        """Fault-injection hook: overwrite the on-disk entry with
        truncated JSON and drop it from the memory LRU, so the next read
        exercises the quarantine-and-recompute path.  True if a disk
        entry existed to corrupt."""
        with self._lock:
            self._versions[key] = self._versions.get(key, 0) + 1
            self._memory.pop(key, None)
        path = self._path(key)
        if path is None or not path.exists():
            return False
        path.write_text('{"key": "corrupt', encoding="utf-8")
        self.metrics.incr("faults_corrupted")
        return True

    # -- cross-process single-flight claims --------------------------------
    # A *claim* is an O_CREAT|O_EXCL lock file next to the artifact
    # (``<root>/<key[:2]>/<key>.claim``) that marks one OS process as the
    # computer of that key.  Two server processes sharing a cache dir use
    # it so a key is computed exactly once: the loser polls the store
    # until the winner ``put``s the artifact and releases the claim.
    # Claims from dead pids (or older than CLAIM_TTL_S) are *broken*:
    # quarantined by rename — never trusted, never served — and the
    # breaker takes over the computation.

    def _claim_path(self, key: str) -> Optional[Path]:
        if self.root is None:
            return None
        return self.root / key[:2] / f"{key}.claim"

    def claim(self, key: str) -> bool:
        """Try to acquire the compute claim for ``key``.

        True: this process now owns the claim and must compute the
        artifact, then ``put`` it and ``release`` the claim (in that
        order).  False: another *live* process holds the claim — poll
        :meth:`get` until the artifact appears or the claim goes stale.
        Memory-only stores have no shared tree to protect, so the claim
        trivially succeeds."""
        path = self._claim_path(key)
        if path is None:
            return True
        path.parent.mkdir(parents=True, exist_ok=True)
        for _ in range(4):
            try:
                fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                info = self._read_claim(path)
                stale = self._claim_is_stale(path, info)
                if stale is None:       # vanished: owner released mid-probe
                    continue
                if not stale:
                    return False
                if self._quarantine_claim(path):
                    continue            # broken: retry the acquire
                return False            # someone else broke+reacquired first
            with os.fdopen(fd, "w") as fh:
                fh.write(canonical_json({
                    "pid": os.getpid(),
                    "acquired_at": time.time(),
                }))
            self.metrics.incr("claims_acquired")
            return True
        return False

    def release(self, key: str) -> None:
        """Drop this process's claim on ``key``.  A claim that was broken
        (quarantined) by another process is not ours any more and is left
        alone."""
        path = self._claim_path(key)
        if path is None:
            return
        info = self._read_claim(path)
        if info is not None and info.get("pid") not in (None, os.getpid()):
            return
        try:
            path.unlink()
        except OSError:
            pass

    def claim_info(self, key: str) -> Optional[Dict]:
        """The live claim record for ``key`` ({"pid", "acquired_at"}), or
        None when unclaimed/unreadable."""
        path = self._claim_path(key)
        if path is None:
            return None
        return self._read_claim(path)

    @staticmethod
    def _read_claim(path: Path) -> Optional[Dict]:
        try:
            info = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        return info if isinstance(info, dict) else None

    def _claim_is_stale(self, path: Path,
                        info: Optional[Dict]) -> Optional[bool]:
        """True = break it, False = live, None = claim file vanished."""
        try:
            age = time.time() - path.stat().st_mtime
        except OSError:
            return None
        pid = info.get("pid") if info else None
        if not isinstance(pid, int):
            # partial write in progress, or garbage: give the owner a
            # grace window to finish writing, then treat as abandoned
            return age > CLAIM_GRACE_S
        if pid == os.getpid():
            return False        # another thread of this process: live
        if age > CLAIM_TTL_S:
            return True
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            return True         # owner died mid-compute
        except PermissionError:
            pass                # exists but not ours to signal: live
        except OSError:
            pass
        return False

    def _quarantine_claim(self, path: Path) -> bool:
        """Atomically move a stale claim aside (never unlink-in-place:
        the rename loses any race with a concurrent breaker exactly
        once, so two breakers cannot both think they freed the slot)."""
        with self._lock:
            self._tmp_seq += 1
            seq = self._tmp_seq
        target = path.with_suffix(f".claim.stale.{os.getpid()}.{seq}")
        try:
            os.rename(path, target)
        except OSError:
            return False
        self.metrics.incr("claims_stale_broken")
        return True

    # -- introspection -----------------------------------------------------
    def keys(self) -> List[str]:
        seen = set()
        with self._lock:
            seen.update(self._memory)
        if self.root is not None:
            for path in self.root.glob("*/*.json"):
                seen.add(path.stem)
        return sorted(seen)

    def __len__(self) -> int:
        return len(self.keys())

    def __contains__(self, key: str) -> bool:
        with self._lock:
            if key in self._memory:
                return True
        path = self._path(key)
        return path is not None and path.exists()

    def stats(self) -> Dict:
        with self._lock:
            in_memory = len(self._memory)
        on_disk = 0
        if self.root is not None:
            on_disk = sum(1 for _ in self.root.glob("*/*.json"))
        return {"memory_entries": in_memory,
                "memory_capacity": self.memory_capacity,
                "disk_entries": on_disk,
                "root": str(self.root) if self.root else None}

    # -- internals ---------------------------------------------------------
    def _remember(self, key: str, artifact: Dict) -> None:
        """Insert into the LRU (lock held by the caller)."""
        if self.memory_capacity <= 0:
            return
        self._memory[key] = artifact
        self._memory.move_to_end(key)
        while len(self._memory) > self.memory_capacity:
            self._memory.popitem(last=False)
            self.metrics.incr("cache_evictions")

    def _read_disk(self, key: str) -> Optional[Dict]:
        path = self._path(key)
        if path is None or not path.exists():
            return None
        try:
            envelope = json.loads(path.read_text())
            if envelope.get("schema") != SCHEMA_VERSION or \
                    envelope.get("key") != key:
                raise ValueError("schema/key mismatch")
            return envelope["artifact"]
        except (OSError, ValueError, KeyError, TypeError):
            # Truncated write, bit rot, or foreign layout: quarantine the
            # file and recompute instead of crashing the service.
            try:
                path.unlink()
            except OSError:
                pass
            self.metrics.incr("cache_corrupt")
            return None
