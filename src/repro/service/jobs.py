"""The job model of the analysis service.

An :class:`AnalysisRequest` names *what* to analyze (a corpus workload or
raw mini-Fortran source), with which inputs and analysis options; its
:meth:`~AnalysisRequest.key` is the content address under which the
result artifact is cached (see :mod:`repro.service.artifacts`).

:func:`execute_request` is the pure worker function: request in, a fully
JSON-serializable artifact out.  It runs the complete Explorer pipeline
(parallelizer plan → loop profile → dynamic dependences → Guru report →
slices of the Guru's targets → simulated parallel execution → optional
user assertions) and flattens every product into plain dicts with a
deterministic encoding, so a process-pool batch is bit-identical to a
sequential run of the same requests.

A :class:`Job` tracks one request through the scheduler lifecycle::

    submitted -> queued -> running -> done | failed

with retry accounting for worker crashes.
"""

from __future__ import annotations

import itertools
import threading
import time
from typing import Dict, List, Optional, Sequence

from .artifacts import SCHEMA_VERSION, artifact_key

# -- job states --------------------------------------------------------------
SUBMITTED = "submitted"
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"

#: All states, in lifecycle order.
STATES = (SUBMITTED, QUEUED, RUNNING, DONE, FAILED)

#: How many Guru targets the ``slice: "targets"`` shorthand expands to
#: (slicing every loop of every request would swamp the payload).
MAX_SLICE_TARGETS = 4

#: Server-boundary cap on explicit ``options["slice"]`` query points.
MAX_SLICE_QUERIES = 16

_DEFAULT_OPTIONS = {
    "engine": "compiled",
    "machine": "alphaserver",
    "use_liveness": True,
    "assertions": False,
}

#: Server-boundary ceiling for ``options["max_ops"]`` — a request may
#: lower its op budget but never raise it past the engine default, so a
#: single pathological job cannot monopolize a pool slot indefinitely.
MAX_OPS_CAP = 500_000_000

#: Server-boundary ceiling for ``options["workers"]`` — real parallel
#: execution spawns this many OS processes per job, so the cap bounds a
#: request's process fan-out the same way :data:`MAX_OPS_CAP` bounds its
#: op budget.
MAX_WORKERS_CAP = 16

#: Options that direct *how* a job is run (chaos directives), not *what*
#: is computed.  They are excluded from the content address and from the
#: options recorded in the artifact, so an injected job shares its cache
#: key — and its artifact bytes — with its clean twin.
NON_SEMANTIC_OPTIONS = ("fault",)


def semantic_options(options: Dict) -> Dict:
    """``options`` minus the :data:`NON_SEMANTIC_OPTIONS` entries."""
    return {k: v for k, v in options.items()
            if k not in NON_SEMANTIC_OPTIONS}


def validate_options(options, *, allow_faults: bool = False) -> Optional[Dict]:
    """Validate and normalize request options at the service boundary.

    Raises :class:`ValueError` with a client-actionable message for bad
    shapes/values; returns a sanitized copy (``max_ops`` coerced to int
    and capped at :data:`MAX_OPS_CAP`, ``deadline_s`` coerced to float).
    ``None`` passes through (defaults apply).

    ``options["fault"]`` is rejected unless ``allow_faults`` is set —
    a production server that never enabled injection must 400 a chaos
    directive at the boundary, not let an arbitrary client crash its
    workers (the directives are additionally neutralized outside pool
    workers, but the front door stays shut regardless).  When allowed,
    the directive's kind is validated so typos are 400s, not failed
    jobs.
    """
    if options is None:
        return None
    if not isinstance(options, dict):
        raise ValueError("options must be a JSON object")
    out = dict(options)
    if out.get("fault"):
        if not allow_faults:
            raise ValueError(
                "fault injection is not enabled on this server "
                "(start it with --inject / allow_faults=True)")
        from .faults import DIRECTIVE_KINDS
        kind = str(out["fault"]).partition(":")[0]
        if kind not in DIRECTIVE_KINDS:
            raise ValueError(f"unknown fault directive kind {kind!r}; "
                             f"choose from {DIRECTIVE_KINDS}")
    engine = out.get("engine")
    if engine is not None:
        from ..runtime.interpreter import (COMPILED_ENGINE_NAMES,
                                           TRANSPILED_ENGINE_NAMES,
                                           TREE_ENGINE_NAMES)
        names = (COMPILED_ENGINE_NAMES + TRANSPILED_ENGINE_NAMES
                 + TREE_ENGINE_NAMES)
        if engine not in names:
            raise ValueError(f"unknown engine {engine!r}; choose from "
                             f"{sorted(names)}")
    machine = out.get("machine")
    if machine is not None:
        from ..runtime.machine import MACHINES
        if machine not in MACHINES:
            raise ValueError(f"unknown machine {machine!r}; choose from "
                             f"{sorted(MACHINES)}")
    if "max_ops" in out:
        try:
            max_ops = int(out["max_ops"])
        except (TypeError, ValueError):
            raise ValueError("max_ops must be an integer") from None
        if max_ops <= 0:
            raise ValueError("max_ops must be positive")
        out["max_ops"] = min(max_ops, MAX_OPS_CAP)
    if "deadline_s" in out:
        try:
            deadline = float(out["deadline_s"])
        except (TypeError, ValueError):
            raise ValueError("deadline_s must be a number") from None
        if not deadline > 0:
            raise ValueError("deadline_s must be positive")
        out["deadline_s"] = deadline
    if "parallel_execute" in out:
        flag = out["parallel_execute"]
        if not isinstance(flag, (bool, int)) or isinstance(flag, float):
            raise ValueError("parallel_execute must be a boolean")
        out["parallel_execute"] = bool(flag)
    if "workers" in out:
        try:
            workers = int(out["workers"])
        except (TypeError, ValueError):
            raise ValueError("workers must be an integer") from None
        if workers <= 0:
            raise ValueError("workers must be positive")
        out["workers"] = min(workers, MAX_WORKERS_CAP)
    if "analysis_only" in out:
        flag = out["analysis_only"]
        if not isinstance(flag, (bool, int)) or isinstance(flag, float):
            raise ValueError("analysis_only must be a boolean")
        out["analysis_only"] = bool(flag)
        if out["analysis_only"]:
            if out.get("parallel_execute"):
                raise ValueError("analysis_only jobs cannot request "
                                 "parallel_execute (no program run)")
            if out.get("assertions"):
                raise ValueError("analysis_only jobs cannot check "
                                 "assertions (no execution to compare)")
    if "slice" in out:
        val = out["slice"]
        if isinstance(val, str):
            val = [val]
        if not isinstance(val, list) or \
                not all(isinstance(x, str) for x in val):
            raise ValueError("slice must be a loop name or a list of "
                             "loop names (or 'targets')")
        if len(val) > MAX_SLICE_QUERIES:
            raise ValueError(f"slice accepts at most "
                             f"{MAX_SLICE_QUERIES} query points")
        out["slice"] = list(val)
    return out


class AnalysisRequest:
    """One unit of analysis work, content-addressable."""

    __slots__ = ("workload", "source", "program_name", "inputs", "options")

    def __init__(self, workload: Optional[str] = None, *,
                 source: Optional[str] = None,
                 program_name: Optional[str] = None,
                 inputs: Optional[Sequence[float]] = None,
                 options: Optional[Dict] = None):
        if (workload is None) == (source is None):
            raise ValueError(
                "exactly one of workload= or source= is required")
        self.workload = workload
        self.source = source
        self.program_name = program_name
        self.inputs = None if inputs is None else [float(x) for x in inputs]
        merged = dict(_DEFAULT_OPTIONS)
        merged.update(options or {})
        self.options = merged

    # -- resolution --------------------------------------------------------
    def resolved(self) -> "AnalysisRequest":
        """A copy with source/name/inputs materialized from the corpus, so
        the content address covers the *actual* source text (editing a
        workload module invalidates its cache entries)."""
        if self.workload is None:
            out = AnalysisRequest(
                source=self.source,
                program_name=self.program_name or "program",
                inputs=self.inputs or [], options=self.options)
            return out
        from ..workloads import get
        w = get(self.workload)
        inputs = self.inputs if self.inputs is not None else list(w.inputs)
        return AnalysisRequest(source=w.source, program_name=w.name,
                               inputs=inputs, options=self.options)

    def key(self) -> str:
        """Content address — hashes **semantic** options only: a chaos
        directive stamped into ``options["fault"]`` changes how a job is
        *run*, not what it computes, so an injected job dedupes, caches,
        and corrupts under the same key as its clean twin."""
        r = self.resolved()
        return artifact_key(r.source, r.program_name, r.inputs,
                            semantic_options(r.options))

    # -- (de)serialization for process-pool transfer and the HTTP API ------
    def to_dict(self) -> Dict:
        return {"workload": self.workload, "source": self.source,
                "program_name": self.program_name, "inputs": self.inputs,
                "options": dict(self.options)}

    @classmethod
    def from_dict(cls, data: Dict) -> "AnalysisRequest":
        return cls(data.get("workload"), source=data.get("source"),
                   program_name=data.get("program_name"),
                   inputs=data.get("inputs"),
                   options=data.get("options"))

    def describe(self) -> str:
        return self.workload or self.program_name or "<source>"

    def __repr__(self):
        return f"AnalysisRequest({self.describe()})"


# -- executing a request ------------------------------------------------------

def execute_request(request: AnalysisRequest) -> Dict:
    """Run the full Explorer pipeline for one request.

    Pure in the sense that matters for caching and batching: output is a
    function of the request content only, and every field is plain JSON.
    """
    from ..obs import get_tracer
    from .faults import apply_request_fault
    apply_request_fault(request.options)
    tracer = get_tracer()
    with tracer.span("execute_request",
                     target=request.describe()) as root:
        r = request.resolved()
        from ..ir import build_program
        from ..runtime.machine import MACHINES
        from ..explorer.session import ExplorerSession

        machine_name = r.options.get("machine", "alphaserver")
        try:
            machine = MACHINES[machine_name]
        except KeyError:
            raise ValueError(f"unknown machine {machine_name!r}; choose "
                             f"from {sorted(MACHINES)}") from None
        program = build_program(r.source, r.program_name)

        if r.options.get("analysis_only"):
            # Static pipeline only, served from the per-procedure
            # incremental cache: no execution, profiling, dyndep, or
            # Guru ranking — the interactive edit/re-analyze fast path.
            from ..analysis.incremental import IncrementalAnalyzer
            slice_names = r.options.get("slice") or ()
            if "targets" in slice_names:
                raise ValueError("slice 'targets' needs Guru ranking; "
                                 "drop analysis_only or name the loops")
            analyzer = IncrementalAnalyzer(program, r.source,
                                           options=r.options)
            artifact = analyzer.analysis_artifact(slice_names=slice_names)
            artifact["request"] = {"program": r.program_name,
                                   "workload": request.workload,
                                   "inputs": r.inputs,
                                   "options": semantic_options(r.options),
                                   "schema": SCHEMA_VERSION}
            root.tag(analysis_only=True,
                     procedures=len(program.procedures))
            return artifact

        max_ops = min(int(r.options.get("max_ops", MAX_OPS_CAP)),
                      MAX_OPS_CAP)
        session = ExplorerSession(
            program, inputs=r.inputs, machine=machine,
            use_liveness=bool(r.options.get("use_liveness", True)),
            max_ops=max_ops,
            engine=r.options.get("engine", "compiled"),
            # cross-job reuse: execution/profiling jobs consult the same
            # per-procedure summary cache the analysis_only path fills
            proc_cache_source=r.source)
        session.run_automatic()

        outcomes = []
        if r.options.get("assertions") and request.workload is not None:
            from ..workloads import get
            w = get(request.workload)
            if w.user_assertions:
                checked, _result = session.apply_assertions(
                    w.user_assertions)
                outcomes = [{"assertion": str(o.assertion),
                             "accepted": o.accepted,
                             "warnings": list(o.warnings),
                             "errors": list(o.errors)} for o in checked]

        parallel_run = None
        if r.options.get("parallel_execute"):
            workers = min(int(r.options.get("workers", 2)),
                          MAX_WORKERS_CAP)
            parallel_run = session.parallel_execute(workers=workers)

        if not outcomes:
            # Warm the per-procedure incremental cache from this full
            # run (assertions mutate the plan, so asserted plans stay
            # out of the shared per-proc namespace).
            from ..analysis.incremental import store_plan_rows
            par = session.parallelizer
            store_plan_rows(
                program, r.source, r.options, session.plan,
                dataflow=par.dataflow if par is not None else None,
                after_summaries=(par._full_liveness_analysis._after_proc
                                 if par is not None else None))

        slice_names = list(r.options.get("slice") or ())
        if "targets" in slice_names:
            slice_names.remove("targets")
            targets = [rep.name for rep
                       in session.guru.targets()[:MAX_SLICE_TARGETS]]
            slice_names.extend(n for n in targets if n not in slice_names)
        with tracer.span("snapshot"):
            artifact = session_snapshot(session, slice_targets=slice_names)
        if parallel_run is not None:
            # wall times are nondeterministic, so the artifact records
            # only the bit-stable facts of the real run
            artifact["parallel_execution"] = {
                "workers": parallel_run.workers,
                "ops": parallel_run.ops,
                "dispatches": parallel_run.dispatches,
                "declined": parallel_run.declined,
                "offloaded": parallel_run.offloaded,
                "rejects": dict(parallel_run.rejects),
                "outputs": [float(v) for v in parallel_run.outputs],
                "matches_simulated":
                    parallel_run.outputs == session.result.outputs,
            }
        # Record semantic options only: the artifact must be bit-identical
        # to its clean twin's (they share a content key), so a transient
        # chaos directive must not leak into the cached payload.
        artifact["request"] = {"program": r.program_name,
                               "workload": request.workload,
                               "inputs": r.inputs,
                               "options": semantic_options(r.options),
                               "schema": SCHEMA_VERSION}
        if outcomes:
            artifact["assertion_outcomes"] = outcomes
        root.tag(ops=session.profiler.total_ops,
                 engine=r.options.get("engine", "compiled"),
                 profile_engine=session.engine_labels.get("profile"),
                 dyndep_engine=session.engine_labels.get("dyndep"))
    return artifact


def session_snapshot(session,
                     slice_targets: Optional[Sequence[str]] = None) -> Dict:
    """Flatten a finished :class:`ExplorerSession` into plain JSON dicts:
    plan, profiles, dyndep summary, Guru report, and the simulated
    parallel-execution result.

    Slicing is demand-driven: ``slices`` holds per-variable slice sizes
    only for the loops named in ``slice_targets`` (the service ``slice``
    option / :meth:`ExplorerSession.slice_at`), not precomputed for
    every Guru target."""
    program = session.program
    names = {loop.stmt_id: loop.name for loop in program.all_loops()}

    plan: Dict[str, Dict] = {}
    for loop in program.all_loops():
        lp = session.plan.loops.get(loop.stmt_id)
        if lp is None:
            continue
        plan[loop.name] = {
            "parallel": lp.parallel,
            "contains_io": lp.contains_io,
            "blockers": sorted(lp.blockers),
            "vars": {vp.display_name: {"status": vp.status,
                                       "reason": vp.reason or ""}
                     for vp in lp.vars.values()},
        }

    profiles = {}
    for prof in session.profiler.executed_loops():
        profiles[prof.name] = {"total_ops": prof.total_ops,
                               "invocations": prof.invocations,
                               "iterations": prof.iterations}

    dyndep = {
        "carried": {names.get(lid, str(lid)): count
                    for lid, count in session.dyndep.carried.items()},
        "witnesses": {names.get(lid, str(lid)): sorted(pairs)
                      for lid, pairs in session.dyndep.witnesses.items()},
    }

    guru_rows = {}
    for report in session.guru.all_reports():
        guru_rows[report.name] = {
            "parallel": report.parallel,
            "executed": report.executed,
            "important": report.important,
            "under_parallel": report.under_parallel,
            "interprocedural": report.interprocedural,
            "coverage": report.coverage,
            "granularity_ms": report.granularity_ms,
            "dynamic_deps": report.dynamic_deps,
            "static_deps": report.static_deps,
        }

    slices: Dict[str, Dict] = {}
    for name in slice_targets or ():
        per_var: Dict[str, Dict] = {}
        for ds in session.slice_at(name):
            per_var[ds.var.display_name] = {
                "program": ds.program_slice.line_count(),
                "control": ds.control_slice.line_count(),
                "program_cr": ds.program_slice_cr.line_count(),
                "control_cr": ds.control_slice_cr.line_count(),
                "program_ar": ds.program_slice_ar.line_count(),
                "control_ar": ds.control_slice_ar.line_count(),
            }
        slices[name] = per_var

    result = session.result
    return {
        "program": {"name": program.name,
                    "lines": program.total_lines(),
                    "loops": len(program.all_loops()),
                    "procedures": sorted(program.procedures)},
        "plan": plan,
        "profiles": profiles,
        "total_ops": session.profiler.total_ops,
        "dyndep": dyndep,
        "guru": {"rows": guru_rows,
                 "targets": [r.name for r in session.guru.targets()],
                 "strategy": session.guru.strategy_lines()},
        "slices": slices,
        "metrics": {"coverage": session.coverage(),
                    "granularity_ms": session.granularity_ms()},
        "execution": {"speedup": result.speedup,
                      "coverage": result.coverage,
                      "granularity_ms": result.granularity_ms(),
                      "seq_ops": result.seq_ops,
                      "par_ops": result.par_ops,
                      "processors": result.machine.processors,
                      "machine": result.machine.name,
                      "outputs": [float(v) for v in result.outputs]},
        "summary": session.summary_lines(),
    }


def _maybe_inject_fault(options: Dict) -> None:
    """Back-compat alias: the crash hook grew into the full fault
    harness in :mod:`repro.service.faults`."""
    from .faults import apply_request_fault
    apply_request_fault(options)


# -- the job record -----------------------------------------------------------

_job_counter = itertools.count(1)


class Job:
    """One request moving through the scheduler lifecycle."""

    __slots__ = ("id", "request", "key", "state", "error", "attempts",
                 "created_at", "started_at", "finished_at", "cached",
                 "started_mono", "finished_mono",
                 "done_event", "deadline_s", "deadline_at", "generation",
                 "failure_kind", "shard", "events", "_events_lock")

    def __init__(self, request: AnalysisRequest, key: str,
                 deadline_s: Optional[float] = None):
        self.id = f"job-{next(_job_counter):06d}"
        self.request = request
        self.key = key
        self.state = SUBMITTED
        #: Worker-pool shard this job was routed to (None = unsharded).
        self.shard: Optional[int] = None
        #: Seq-numbered lifecycle events for the streaming API.  Guarded
        #: by ``_events_lock`` — HTTP/SSE threads read while scheduler
        #: threads append.
        self.events: List[Dict] = []
        self._events_lock = threading.Lock()
        self.error: Optional[str] = None
        self.attempts = 0
        #: Wall-clock timestamps, for display only (an NTP step moves
        #: them).  Durations come from the ``*_mono`` monotonic pair.
        self.created_at = time.time()
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self.started_mono: Optional[float] = None
        self.finished_mono: Optional[float] = None
        self.cached = False          # served straight from the store
        self.done_event = threading.Event()
        #: Wall-budget for this job (None = no deadline).  The watchdog
        #: compares against ``deadline_at``, a *monotonic* instant set
        #: when the job first starts running — NTP steps can't shrink or
        #: stretch a job's allowance.
        self.deadline_s = deadline_s
        self.deadline_at: Optional[float] = None
        #: Pool generation the job was last dispatched on (crash
        #: forensics / single-flight rebuild bookkeeping).
        self.generation: Optional[int] = None
        #: Failure taxonomy bucket ("error", "crash", "deadline",
        #: "budget", "transient", "shutdown"); None until failed.
        self.failure_kind: Optional[str] = None
        self._event("submitted", at=self.created_at)

    # -- progress events ----------------------------------------------------
    def _event(self, name: str, at: Optional[float] = None,
               **extra) -> None:
        # Transitions that already read the wall clock pass it in, so an
        # event's timestamp always equals its transition's timestamp.
        if at is None:
            at = time.time()
        with self._events_lock:
            entry = {"seq": len(self.events) + 1, "event": name,
                     "at": at}
            entry.update(extra)
            self.events.append(entry)

    def events_after(self, seq: int = 0) -> List[Dict]:
        """Events with a sequence number greater than ``seq``.  Terminal
        transitions append their event *before* flipping ``state``, so a
        reader that observes ``finished`` is guaranteed to collect the
        terminal event on its final call."""
        with self._events_lock:
            return [dict(e) for e in self.events if e["seq"] > seq]

    # -- transitions (scheduler holds its lock around these) ----------------
    def mark_queued(self) -> None:
        self._event("queued")
        self.state = QUEUED

    def mark_running(self) -> None:
        self.attempts += 1
        if self.started_at is None:
            self.started_at = time.time()
            self.started_mono = time.monotonic()
        if self.deadline_s is not None and self.deadline_at is None:
            self.deadline_at = time.monotonic() + self.deadline_s
        self._event("running", at=self.started_at,
                    attempt=self.attempts)
        self.state = RUNNING

    def mark_done(self, *, cached: bool = False) -> None:
        # Order matters for lock-free readers (HTTP threads poll
        # ``state`` without the scheduler lock): timestamps and the
        # terminal event must be in place before ``state`` says "done",
        # so state=="done" implies finished_at is set and the terminal
        # event is visible.
        self.cached = cached
        self.finished_at = time.time()
        self.finished_mono = time.monotonic()
        self._event("done", at=self.finished_at, cached=cached)
        self.state = DONE
        self.done_event.set()

    def mark_failed(self, error: str, kind: str = "error") -> None:
        self.error = error
        self.failure_kind = kind
        self.finished_at = time.time()
        self.finished_mono = time.monotonic()
        self._event("failed", at=self.finished_at, error=error,
                    kind=kind)
        self.state = FAILED
        self.done_event.set()

    # -- queries -----------------------------------------------------------
    @property
    def finished(self) -> bool:
        return self.state in (DONE, FAILED)

    @property
    def duration_s(self) -> Optional[float]:
        """Run duration from the monotonic clock — immune to wall-clock
        (NTP) steps that would make ``finished_at - started_at`` negative
        or inflated.  None until the job has both started and finished."""
        if self.started_mono is None or self.finished_mono is None:
            return None
        return self.finished_mono - self.started_mono

    def wait(self, timeout: Optional[float] = None) -> bool:
        return self.done_event.wait(timeout)

    def to_dict(self) -> Dict:
        return {
            "id": self.id,
            "target": self.request.describe(),
            "key": self.key,
            "state": self.state,
            "error": self.error,
            "attempts": self.attempts,
            "cached": self.cached,
            "shard": self.shard,
            "deadline_s": self.deadline_s,
            "failure_kind": self.failure_kind,
            "created_at": self.created_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "duration_s": self.duration_s,
        }

    def __repr__(self):
        return f"Job({self.id} {self.request.describe()} {self.state})"
