"""Seeded fault-injection harness for the analysis service.

Production hardening is only believable if every failure mode can be
reproduced on demand.  This module supplies two layers:

**Per-request fault directives** ride in ``options["fault"]`` and are
executed worker-side by :func:`apply_request_fault` just before the
analysis pipeline runs (``corrupt-artifact`` is the one exception — it
is applied scheduler-side *after* the artifact is stored)::

    crash-once:<marker>            hard-kill the worker (os._exit) on the
                                   first execution; retries find the
                                   marker file and proceed
    crash                          hard-kill on *every* execution
    transient-once:<marker>        raise TransientFault once, succeed on
                                   retry
    transient                      raise TransientFault every time
    hang:<seconds>                 sleep inside the worker (deadline bait)
    hang-once:<marker>:<seconds>   sleep only on the first execution
    slow-start:<seconds>           sleep, then complete normally
    corrupt-artifact               after the artifact is stored, garbage
                                   its on-disk entry (exercises the
                                   store's quarantine path)

One-shot markers are claimed atomically (``O_CREAT | O_EXCL``) so the
"exactly once" contract holds even if the directive races across worker
processes.

**A seeded chaos plan** (:class:`FaultPlan`) draws a directive for a
fraction of submissions, for ``repro serve --inject`` and soak tests::

    FaultPlan.parse("crash=0.2,hang=0.05,seed=7")

Every drawn fault is a *recoverable* one-shot (unique marker file per
draw), so an injected service degrades — retries, deadline kills,
recomputes — but never wedges.
"""

from __future__ import annotations

import itertools
import os
import tempfile
import time
from typing import Dict, Optional

__all__ = ["FAULT_KINDS", "FaultPlan", "TransientFault",
           "apply_request_fault"]

#: Chaos-plan fault kinds, in the (fixed) order the single uniform draw
#: scans them — keeping the order fixed keeps a seeded plan's fault
#: sequence reproducible.
FAULT_KINDS = ("crash", "transient", "hang", "slow-start",
               "corrupt-artifact")

#: Exit status used for injected hard worker kills (distinctive in logs).
CRASH_EXIT_STATUS = 17


class TransientFault(RuntimeError):
    """An injected, retry-worthy failure (network blip stand-in)."""


def _claim_once(marker: str) -> bool:
    """Atomically claim a one-shot marker file: True exactly once."""
    try:
        fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return False
    except OSError:
        # Unwritable marker path: treat as already claimed rather than
        # crashing the worker with an unrelated error.
        return False
    os.close(fd)
    return True


def apply_request_fault(options: Dict) -> None:
    """Execute the ``options["fault"]`` directive, if any.

    Runs in the worker process, before the analysis pipeline.  Raises
    :class:`ValueError` for unknown directives (surfacing typos as clean
    400s/failed jobs instead of silently skipping the fault).
    """
    fault = options.get("fault")
    if not fault:
        return
    spec = str(fault)
    kind, _, rest = spec.partition(":")
    if kind == "crash-once":
        if _claim_once(rest):
            os._exit(CRASH_EXIT_STATUS)      # simulate a hard worker crash
    elif kind == "crash":
        os._exit(CRASH_EXIT_STATUS)
    elif kind == "transient-once":
        if _claim_once(rest):
            raise TransientFault("injected transient fault (once)")
    elif kind == "transient":
        raise TransientFault("injected transient fault")
    elif kind == "hang":
        time.sleep(float(rest))
    elif kind == "hang-once":
        marker, _, seconds = rest.rpartition(":")
        if _claim_once(marker):
            time.sleep(float(seconds))
    elif kind == "slow-start":
        time.sleep(float(rest))
    elif kind == "corrupt-artifact":
        pass          # applied scheduler-side, after the artifact store
    else:
        raise ValueError(f"unknown fault directive {spec!r}")


class FaultPlan:
    """Seeded, rate-based chaos: a directive for a fraction of jobs.

    ``rates`` maps a :data:`FAULT_KINDS` entry to a probability in
    [0, 1].  :meth:`draw` makes one uniform draw per job and scans the
    kinds in fixed order, so two plans with the same spec produce the
    same fault sequence — chaos runs are replayable.
    """

    def __init__(self, rates: Dict[str, float], *, seed: int = 0,
                 hang_s: float = 30.0, slow_s: float = 0.25):
        import random
        for kind in rates:
            if kind not in FAULT_KINDS:
                raise ValueError(f"unknown fault kind {kind!r}; choose "
                                 f"from {FAULT_KINDS}")
        total = sum(rates.values())
        if any(r < 0 for r in rates.values()) or total > 1.0:
            raise ValueError("fault rates must be >= 0 and sum to <= 1")
        self.rates = dict(rates)
        self.seed = seed
        self.hang_s = float(hang_s)
        self.slow_s = float(slow_s)
        self._rng = random.Random(seed)
        self._counter = itertools.count(1)
        self._dir: Optional[str] = None
        self.drawn = 0           # directives handed out (observability)

    # -- construction --------------------------------------------------------
    @classmethod
    def parse(cls, spec: Optional[str]) -> Optional["FaultPlan"]:
        """``"crash=0.2,hang=0.05,seed=7,hang_s=1.5"`` → a plan.

        Returns None for an empty/None spec so callers can pass the CLI
        flag straight through.
        """
        if not spec:
            return None
        rates: Dict[str, float] = {}
        kwargs: Dict[str, float] = {}
        for part in str(spec).split(","):
            part = part.strip()
            if not part:
                continue
            if "=" not in part:
                raise ValueError(
                    f"bad fault spec part {part!r} (want kind=rate)")
            name, _, value = part.partition("=")
            name = name.strip()
            if name == "seed":
                kwargs["seed"] = int(value)
            elif name == "hang_s":
                kwargs["hang_s"] = float(value)
            elif name == "slow_s":
                kwargs["slow_s"] = float(value)
            else:
                rates[name] = float(value)
        return cls(rates, **kwargs)

    # -- drawing -------------------------------------------------------------
    def _marker(self) -> str:
        if self._dir is None:
            self._dir = tempfile.mkdtemp(prefix="repro-faults-")
        return os.path.join(self._dir, f"fault-{next(self._counter):05d}")

    def draw(self) -> Optional[str]:
        """A fault directive for the next job, or None (the common case)."""
        u = self._rng.random()
        acc = 0.0
        for kind in FAULT_KINDS:
            acc += self.rates.get(kind, 0.0)
            if u < acc:
                self.drawn += 1
                return self._directive(kind)
        return None

    def _directive(self, kind: str) -> str:
        if kind == "crash":
            return f"crash-once:{self._marker()}"
        if kind == "transient":
            return f"transient-once:{self._marker()}"
        if kind == "hang":
            return f"hang-once:{self._marker()}:{self.hang_s}"
        if kind == "slow-start":
            return f"slow-start:{self.slow_s}"
        return "corrupt-artifact"

    def __repr__(self):
        parts = ",".join(f"{k}={v:g}" for k, v in sorted(self.rates.items()))
        return f"FaultPlan({parts},seed={self.seed})"
