"""Seeded fault-injection harness for the analysis service.

Production hardening is only believable if every failure mode can be
reproduced on demand.  This module supplies two layers:

**Per-request fault directives** ride in ``options["fault"]`` and are
executed worker-side by :func:`apply_request_fault` just before the
analysis pipeline runs (``corrupt-artifact`` is the one exception — it
is applied scheduler-side *after* the artifact is stored)::

    crash-once:<marker>            hard-kill the worker (os._exit) on the
                                   first execution; retries find the
                                   marker file and proceed
    crash                          hard-kill on *every* execution
    transient-once:<marker>        raise TransientFault once, succeed on
                                   retry
    transient                      raise TransientFault every time
    hang:<seconds>                 sleep inside the worker (deadline bait)
    hang-once:<marker>:<seconds>   sleep only on the first execution
    slow-start:<seconds>           sleep, then complete normally
    corrupt-artifact               after the artifact is stored, garbage
                                   its on-disk entry (exercises the
                                   store's quarantine path)

One-shot markers are claimed atomically (``O_CREAT | O_EXCL``) so the
"exactly once" contract holds even if the directive races across worker
processes.

Process-killing and process-stalling directives (``crash``,
``crash-once``, ``hang``, ``hang-once``, ``slow-start``) only *execute*
inside a sacrificial pool worker — :func:`mark_worker_process` is called
by the scheduler's worker entry point, and anywhere else (inline mode,
the breaker-open inline fallback, the sequential reference runner)
:func:`apply_request_fault` **neutralizes** them instead of killing or
stalling the serving process.  A chaos plan must degrade the service,
never take out the very process the circuit breaker just promised to
keep alive.  Neutralized one-shot directives still claim their marker:
the fault is "consumed" at first execution regardless of venue.

**A seeded chaos plan** (:class:`FaultPlan`) draws a directive for a
fraction of submissions, for ``repro serve --inject`` and soak tests::

    FaultPlan.parse("crash=0.2,hang=0.05,seed=7")

Every drawn fault is a *recoverable* one-shot (unique marker file per
draw), so an injected service degrades — retries, deadline kills,
recomputes — but never wedges.
"""

from __future__ import annotations

import itertools
import os
import tempfile
import time
from typing import Dict, Optional

__all__ = ["DIRECTIVE_KINDS", "FAULT_KINDS", "FaultPlan",
           "TransientFault", "apply_request_fault",
           "in_worker_process", "mark_worker_process"]

#: Chaos-plan fault kinds, in the (fixed) order the single uniform draw
#: scans them — keeping the order fixed keeps a seeded plan's fault
#: sequence reproducible.
FAULT_KINDS = ("crash", "transient", "hang", "slow-start",
               "corrupt-artifact")

#: Every valid per-request directive kind (the ``options["fault"]``
#: vocabulary) — the server boundary validates against this so a typo'd
#: directive is a 400, not a failed job.
DIRECTIVE_KINDS = ("crash", "crash-once", "transient", "transient-once",
                   "hang", "hang-once", "slow-start", "corrupt-artifact")

#: Directive kinds that kill or stall the *hosting process* — these are
#: only allowed to execute inside a sacrificial pool worker and are
#: neutralized anywhere else (see :func:`apply_request_fault`).
_PROCESS_UNSAFE_KINDS = ("crash", "crash-once", "hang", "hang-once",
                         "slow-start")

#: Exit status used for injected hard worker kills (distinctive in logs).
CRASH_EXIT_STATUS = 17

#: Set in pool-worker processes only (see :func:`mark_worker_process`);
#: an env var rather than a module global so it survives re-imports and
#: is inherited correctly under both fork and spawn start methods.
_WORKER_ENV = "REPRO_FAULT_WORKER"


def mark_worker_process() -> None:
    """Declare the current process a sacrificial pool worker.

    Called by the scheduler's worker entry point (``_pool_worker``).
    Only marked processes execute process-killing/-stalling fault
    directives; everywhere else they are neutralized."""
    os.environ[_WORKER_ENV] = "1"


def in_worker_process() -> bool:
    """True inside a process marked by :func:`mark_worker_process`."""
    return os.environ.get(_WORKER_ENV) == "1"


class TransientFault(RuntimeError):
    """An injected, retry-worthy failure (network blip stand-in)."""


def _claim_once(marker: str) -> bool:
    """Atomically claim a one-shot marker file: True exactly once."""
    try:
        fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return False
    except OSError:
        # Unwritable marker path: treat as already claimed rather than
        # crashing the worker with an unrelated error.
        return False
    os.close(fd)
    return True


def apply_request_fault(options: Dict) -> None:
    """Execute the ``options["fault"]`` directive, if any.

    Runs before the analysis pipeline, normally inside a pool worker.
    Raises :class:`ValueError` for unknown directives (surfacing typos
    as clean 400s/failed jobs instead of silently skipping the fault).

    Process-killing/-stalling directives (:data:`_PROCESS_UNSAFE_KINDS`)
    only execute in a process marked by :func:`mark_worker_process`.
    Anywhere else — inline mode, the circuit breaker's inline fallback,
    the sequential reference runner — they are *neutralized*: one-shot
    markers are still claimed (the fault is consumed), a tracer event
    records the suppression, and the job proceeds normally.  ``crash``
    would otherwise ``os._exit`` the scheduler/server process and
    ``hang`` would stall its serving thread unpreemptably — exactly the
    "degraded but alive" promise the inline fallback exists to keep.
    """
    fault = options.get("fault")
    if not fault:
        return
    spec = str(fault)
    kind, _, rest = spec.partition(":")
    if kind not in DIRECTIVE_KINDS:
        raise ValueError(f"unknown fault directive {spec!r}")
    if kind in _PROCESS_UNSAFE_KINDS and not in_worker_process():
        if kind == "crash-once":
            _claim_once(rest)
        elif kind == "hang-once":
            marker, _, _seconds = rest.rpartition(":")
            _claim_once(marker)
        from ..obs import get_tracer
        get_tracer().event("fault_neutralized", kind=kind)
        return
    if kind == "crash-once":
        if _claim_once(rest):
            os._exit(CRASH_EXIT_STATUS)      # simulate a hard worker crash
    elif kind == "crash":
        os._exit(CRASH_EXIT_STATUS)
    elif kind == "transient-once":
        if _claim_once(rest):
            raise TransientFault("injected transient fault (once)")
    elif kind == "transient":
        raise TransientFault("injected transient fault")
    elif kind == "hang":
        time.sleep(float(rest))
    elif kind == "hang-once":
        marker, _, seconds = rest.rpartition(":")
        if _claim_once(marker):
            time.sleep(float(seconds))
    elif kind == "slow-start":
        time.sleep(float(rest))
    elif kind == "corrupt-artifact":
        pass          # applied scheduler-side, after the artifact store


class FaultPlan:
    """Seeded, rate-based chaos: a directive for a fraction of jobs.

    ``rates`` maps a :data:`FAULT_KINDS` entry to a probability in
    [0, 1].  :meth:`draw` makes one uniform draw per job and scans the
    kinds in fixed order, so two plans with the same spec produce the
    same fault sequence — chaos runs are replayable.
    """

    def __init__(self, rates: Dict[str, float], *, seed: int = 0,
                 hang_s: float = 30.0, slow_s: float = 0.25):
        import random
        for kind in rates:
            if kind not in FAULT_KINDS:
                raise ValueError(f"unknown fault kind {kind!r}; choose "
                                 f"from {FAULT_KINDS}")
        total = sum(rates.values())
        if any(r < 0 for r in rates.values()) or total > 1.0:
            raise ValueError("fault rates must be >= 0 and sum to <= 1")
        self.rates = dict(rates)
        self.seed = seed
        self.hang_s = float(hang_s)
        self.slow_s = float(slow_s)
        self._rng = random.Random(seed)
        self._counter = itertools.count(1)
        self._dir: Optional[str] = None
        self.drawn = 0           # directives handed out (observability)

    # -- construction --------------------------------------------------------
    @classmethod
    def parse(cls, spec: Optional[str]) -> Optional["FaultPlan"]:
        """``"crash=0.2,hang=0.05,seed=7,hang_s=1.5"`` → a plan.

        Returns None for an empty/None spec so callers can pass the CLI
        flag straight through.
        """
        if not spec:
            return None
        rates: Dict[str, float] = {}
        kwargs: Dict[str, float] = {}
        for part in str(spec).split(","):
            part = part.strip()
            if not part:
                continue
            if "=" not in part:
                raise ValueError(
                    f"bad fault spec part {part!r} (want kind=rate)")
            name, _, value = part.partition("=")
            name = name.strip()
            if name == "seed":
                kwargs["seed"] = int(value)
            elif name == "hang_s":
                kwargs["hang_s"] = float(value)
            elif name == "slow_s":
                kwargs["slow_s"] = float(value)
            else:
                rates[name] = float(value)
        return cls(rates, **kwargs)

    # -- drawing -------------------------------------------------------------
    def _marker(self) -> str:
        if self._dir is None:
            self._dir = tempfile.mkdtemp(prefix="repro-faults-")
        return os.path.join(self._dir, f"fault-{next(self._counter):05d}")

    def draw(self) -> Optional[str]:
        """A fault directive for the next job, or None (the common case)."""
        u = self._rng.random()
        acc = 0.0
        for kind in FAULT_KINDS:
            acc += self.rates.get(kind, 0.0)
            if u < acc:
                self.drawn += 1
                return self._directive(kind)
        return None

    def _directive(self, kind: str) -> str:
        if kind == "crash":
            return f"crash-once:{self._marker()}"
        if kind == "transient":
            return f"transient-once:{self._marker()}"
        if kind == "hang":
            return f"hang-once:{self._marker()}:{self.hang_s}"
        if kind == "slow-start":
            return f"slow-start:{self.slow_s}"
        return "corrupt-artifact"

    def __repr__(self):
        parts = ",".join(f"{k}={v:g}" for k, v in sorted(self.rates.items()))
        return f"FaultPlan({parts},seed={self.seed})"
