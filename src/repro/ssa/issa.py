"""Interprocedural SSA form (paper section 3.4).

Differences from textbook SSA, following the paper:

* arrays are single variables with **weak updates**: an element store
  defines a new version whose operands include the previous version
  ("our algorithm does not distinguish between different elements in an
  array ... we handle assignments to array elements in the same way we
  handle weak assignments in C"),
* Fortran parameter passing is modeled copy-in/copy-out (section 3.4.2):
  each formal's entry definition is a **formal phi** whose operands are
  the actuals at every call site (tagged by site — the key to
  context-sensitive slicing), and every variable a callee may modify gets
  a **call-out** definition at the call site whose operands are the
  pre-call version plus the callee's exit version (the *return edge*),
* COMMON members are threaded through every procedure on the call paths
  that reach them; procedures that access a block only via callees get a
  hidden whole-block pseudo-variable.  Members of the same block from
  different procedures are connected when their storage ranges overlap
  (the alias handling of section 3.4.2).
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..ir.callgraph import CallGraph
from ..ir.cfg import (BRANCH, Cfg, CfgItem, LOOP_INCR, LOOP_INIT, LOOP_TEST,
                      STMT)
from ..ir.expressions import ArrayRef, Const, Expression, VarRef
from ..ir.program import Procedure, Program
from ..ir.statements import (AssignStmt, CallStmt, IoStmt, LoopStmt,
                             Statement)
from ..ir.symbols import Dimension, Symbol
from .cfg_dom import Dominance

_vid = itertools.count(1)

# SSAValue kinds
ENTRY = "entry"            # program-entry value (main) / untracked input
FORMAL_PHI = "formal_phi"  # callee entry value, operands per call site
ASSIGN = "assign"
WEAK = "weak"              # array element store / weak update
PHI = "phi"
CALL_OUT = "call_out"      # version after a call site
LOOP_INIT_DEF = "loop_init"
LOOP_INCR_DEF = "loop_incr"
IO_READ = "io_read"
ARG_EXPR = "arg_expr"      # pseudo-value: expression actual at a call


class SSAValue:
    __slots__ = ("vid", "var", "kind", "stmt", "proc_name", "operands",
                 "site_operands", "call", "callee_exits")

    def __init__(self, var: Symbol, kind: str, stmt: Optional[Statement],
                 proc_name: str):
        self.vid = next(_vid)
        self.var = var
        self.kind = kind
        self.stmt = stmt
        self.proc_name = proc_name
        self.operands: List["SSAValue"] = []
        # FORMAL_PHI: call-site stmt_id -> operand values from that site
        self.site_operands: Dict[int, List["SSAValue"]] = {}
        self.call: Optional[CallStmt] = None          # for CALL_OUT
        self.callee_exits: List["SSAValue"] = []      # for CALL_OUT

    def all_site_operands(self) -> List["SSAValue"]:
        out: List[SSAValue] = []
        for ops in self.site_operands.values():
            out.extend(ops)
        return out

    def __repr__(self):
        name = self.var.name if self.var is not None else "?"
        return f"SSA({name}.{self.vid}:{self.kind})"


class ModRefInfo:
    """Transitive may-modify / may-reference keys per procedure.

    Keys: ``("f", position)`` for formals, ``("cm", block)`` for COMMON
    blocks (block granularity)."""

    def __init__(self, program: Program, callgraph: CallGraph):
        self.program = program
        self.mod: Dict[str, Set[Tuple]] = {}
        self.ref: Dict[str, Set[Tuple]] = {}
        for name in callgraph.bottom_up_order():
            self._analyze(program.procedures[name])

    def _key_of(self, sym: Symbol, proc: Procedure) -> Optional[Tuple]:
        if sym.is_common:
            return ("cm", sym.common_block)
        if sym.is_formal:
            pos = next((k for k, f in enumerate(proc.formals) if f is sym),
                       None)
            return ("f", pos) if pos is not None else None
        return None

    def _analyze(self, proc: Procedure) -> None:
        mod: Set[Tuple] = set()
        ref: Set[Tuple] = set()
        for stmt in proc.statements():
            if isinstance(stmt, AssignStmt):
                k = self._key_of(stmt.target.symbol, proc)
                if k:
                    mod.add(k)
            if isinstance(stmt, IoStmt) and stmt.kind == "read":
                for item in stmt.items:
                    if isinstance(item, (VarRef, ArrayRef)):
                        k = self._key_of(item.symbol, proc)
                        if k:
                            mod.add(k)
            for expr in stmt.sub_expressions():
                for node in expr.walk():
                    if isinstance(node, (VarRef, ArrayRef)):
                        k = self._key_of(node.symbol, proc)
                        if k:
                            ref.add(k)
            if isinstance(stmt, CallStmt):
                callee = self.program.procedures[stmt.callee]
                for key in self.mod.get(stmt.callee, ()):
                    mapped = self._map_key(key, stmt, proc)
                    mod.update(mapped)
                for key in self.ref.get(stmt.callee, ()):
                    ref.update(self._map_key(key, stmt, proc))
        self.mod[proc.name] = mod
        self.ref[proc.name] = ref

    def _map_key(self, key: Tuple, call: CallStmt, caller: Procedure
                 ) -> List[Tuple]:
        if key[0] == "cm":
            return [key]
        pos = key[1]
        if pos is None or pos >= len(call.args):
            return []
        actual = call.args[pos]
        if isinstance(actual, (VarRef, ArrayRef)):
            k = self._key_of(actual.symbol, caller)
            return [k] if k else []
        return []

    # -- call-site resolution -------------------------------------------------
    def symbols_at_call(self, call: CallStmt, caller: Procedure,
                        tracked: Dict[str, List[Symbol]],
                        which: str) -> List[Symbol]:
        """Caller symbols the call may modify ('mod') or reference ('ref')."""
        keys = (self.mod if which == "mod" else self.ref).get(call.callee,
                                                              set())
        out: List[Symbol] = []
        seen: Set[int] = set()
        caller_syms = tracked.get(caller.name, [])
        for key in keys:
            if key[0] == "cm":
                for sym in caller_syms:
                    if sym.is_common and sym.common_block == key[1] \
                            and id(sym) not in seen:
                        seen.add(id(sym))
                        out.append(sym)
            else:
                pos = key[1]
                if pos is not None and pos < len(call.args):
                    actual = call.args[pos]
                    if isinstance(actual, (VarRef, ArrayRef)) \
                            and id(actual.symbol) not in seen:
                        seen.add(id(actual.symbol))
                        out.append(actual.symbol)
        return out


class ISSA:
    """The whole-program interprocedural SSA graph."""

    def __init__(self, program: Program,
                 callgraph: Optional[CallGraph] = None):
        self.program = program
        self.callgraph = callgraph or CallGraph(program)
        self.modref = ModRefInfo(program, self.callgraph)
        self.values: List[SSAValue] = []
        # stmt_id -> {symbol id: version used}
        self.stmt_uses: Dict[int, Dict[int, SSAValue]] = {}
        self.stmt_defs: Dict[int, List[SSAValue]] = {}
        self.entry_defs: Dict[str, Dict[int, SSAValue]] = {}
        self.exit_versions: Dict[str, Dict[int, SSAValue]] = {}
        self.tracked: Dict[str, List[Symbol]] = {}
        self._pseudo_blocks: Dict[Tuple[str, str], Symbol] = {}
        # caller versions immediately before each call, per symbol id
        self._pre_call: Dict[int, Dict[int, SSAValue]] = {}

        self._compute_tracked()
        for name in self.callgraph.bottom_up_order():
            self._build_proc(program.procedures[name])
        self._link_interprocedural()

    # -- tracked variable sets --------------------------------------------------
    def _blocks_accessed(self, proc_name: str, acc: Dict[str, Set[str]]
                         ) -> Set[str]:
        if proc_name in acc:
            return acc[proc_name]
        acc[proc_name] = set()
        proc = self.program.procedures[proc_name]
        blocks = set(proc.common_blocks)
        for call in proc.call_sites():
            blocks |= self._blocks_accessed(call.callee, acc)
        acc[proc_name] = blocks
        return blocks

    def _compute_tracked(self) -> None:
        acc: Dict[str, Set[str]] = {}
        for name, proc in self.program.procedures.items():
            syms: List[Symbol] = [s for s in proc.symbols if not s.is_const]
            declared_blocks = set(proc.common_blocks)
            for block in sorted(self._blocks_accessed(name, acc)):
                if block in declared_blocks:
                    continue
                pseudo = Symbol(f"__blk_{block}", dims=[
                    Dimension(Const(1), Const(max(1, self.program.commons[
                        block].size)))], storage="common",
                    common_block=block, common_offset=0, proc_name=name)
                self._pseudo_blocks[(name, block)] = pseudo
                syms.append(pseudo)
            self.tracked[name] = syms

    def _overlapping(self, sym: Symbol, other_proc: str) -> List[Symbol]:
        """Symbols of ``other_proc`` aliasing ``sym`` through its COMMON
        block (storage-range overlap)."""
        if not sym.is_common:
            return []
        lo = sym.common_offset
        hi = lo + (sym.constant_size() or 1)
        out = []
        for cand in self.tracked.get(other_proc, []):
            if not cand.is_common or cand.common_block != sym.common_block:
                continue
            clo = cand.common_offset
            chi = clo + (cand.constant_size() or 1)
            if clo < hi and lo < chi:
                out.append(cand)
        return out

    # -- per-procedure SSA ---------------------------------------------------
    def _build_proc(self, proc: Procedure) -> None:
        cfg = Cfg(proc)
        dom = Dominance(cfg)
        tracked = self.tracked[proc.name]
        by_id = {id(s): s for s in tracked}

        # definition sites per symbol
        def_blocks: Dict[int, List] = {id(s): [] for s in tracked}
        for bb in cfg.blocks:
            for item in bb.items:
                for sym in self._item_def_symbols(item, proc):
                    if id(sym) in def_blocks:
                        def_blocks[id(sym)].append(bb)

        # phi placement (non-pruned minimal SSA)
        phis: Dict[int, Dict[int, SSAValue]] = {bb.block_id: {}
                                                for bb in cfg.blocks}
        for sid, blocks in def_blocks.items():
            if not blocks:
                continue
            sym = by_id[sid]
            for bb in dom.iterated_frontier(blocks):
                val = self._new_value(sym, PHI, None, proc.name)
                phis[bb.block_id][sid] = val

        # entry definitions
        entry_defs: Dict[int, SSAValue] = {}
        for sym in tracked:
            kind = FORMAL_PHI if (sym.is_formal or sym.is_common) else ENTRY
            if proc.kind == "program":
                kind = ENTRY
            entry_defs[id(sym)] = self._new_value(sym, kind, None, proc.name)
        self.entry_defs[proc.name] = entry_defs

        stacks: Dict[int, List[SSAValue]] = {
            sid: [val] for sid, val in entry_defs.items()}

        exit_snapshot: Dict[int, SSAValue] = {}

        def current(sym: Symbol) -> SSAValue:
            stack = stacks.get(id(sym))
            if stack:
                return stack[-1]
            # untracked (e.g. local of another proc) — shouldn't happen
            val = self._new_value(sym, ENTRY, None, proc.name)
            stacks[id(sym)] = [val]
            return val

        def rename(bb) -> None:
            pushed: List[int] = []
            for sid, phi in phis[bb.block_id].items():
                stacks.setdefault(sid, []).append(phi)
                pushed.append(sid)
            for item in bb.items:
                pushed.extend(self._rename_item(item, proc, current, stacks,
                                                by_id))
            if bb is cfg.exit:
                for sid in stacks:
                    if stacks[sid]:
                        exit_snapshot[sid] = stacks[sid][-1]
            for succ in bb.succs:
                for sid, phi in phis[succ.block_id].items():
                    stack = stacks.get(sid)
                    if stack:
                        if stack[-1] not in phi.operands:
                            phi.operands.append(stack[-1])
            for child in dom.children.get(bb.block_id, []):
                rename(child)
            for sid in pushed:
                stacks[sid].pop()

        rename(cfg.entry)
        if not exit_snapshot:
            exit_snapshot = {sid: stacks[sid][0] if stacks[sid] else
                             entry_defs[sid] for sid in entry_defs}
        self.exit_versions[proc.name] = exit_snapshot

    def _item_def_symbols(self, item: CfgItem, proc: Procedure
                          ) -> List[Symbol]:
        out = [sym for sym, _ in item.defs()]
        if item.kind == STMT and isinstance(item.stmt, CallStmt):
            out.extend(self.modref.symbols_at_call(item.stmt, proc,
                                                   self.tracked, "mod"))
        return out

    def _rename_item(self, item: CfgItem, proc: Procedure, current,
                     stacks, by_id) -> List[int]:
        pushed: List[int] = []
        stmt = item.stmt
        uses_map = self.stmt_uses.setdefault(stmt.stmt_id, {})
        for sym in item.uses():
            if sym.is_const:
                continue
            uses_map[id(sym)] = current(sym)

        def define(sym: Symbol, kind: str) -> SSAValue:
            val = self._new_value(sym, kind, stmt, proc.name)
            stacks.setdefault(id(sym), []).append(val)
            pushed.append(id(sym))
            self.stmt_defs.setdefault(stmt.stmt_id, []).append(val)
            return val

        if item.kind == STMT and isinstance(stmt, CallStmt):
            # snapshot pre-call versions for interprocedural linking
            snap: Dict[int, SSAValue] = {}
            for sym in self.tracked[proc.name]:
                stack = stacks.get(id(sym))
                if stack:
                    snap[id(sym)] = stack[-1]
            self._pre_call[stmt.stmt_id] = snap
            for sym in self.modref.symbols_at_call(stmt, proc, self.tracked,
                                                   "mod"):
                old = current(sym)
                val = define(sym, CALL_OUT)
                val.call = stmt
                val.operands.append(old)
            # referenced-by-callee variables count as uses at the call
            for sym in self.modref.symbols_at_call(stmt, proc, self.tracked,
                                                   "ref"):
                uses_map.setdefault(id(sym), snap.get(id(sym)) or
                                    current(sym))
            return pushed

        if item.kind == STMT and isinstance(stmt, AssignStmt):
            target = stmt.target
            operand_vals = [v for v in uses_map.values()]
            if isinstance(target, VarRef):
                val = define(target.symbol, ASSIGN)
                val.operands = list(dict.fromkeys(operand_vals))
            else:
                old = current(target.symbol)
                val = define(target.symbol, WEAK)
                val.operands = [old] + [v for v in
                                        dict.fromkeys(operand_vals)
                                        if v is not old]
            return pushed

        if item.kind == STMT and isinstance(stmt, IoStmt) \
                and stmt.kind == "read":
            for sym, strong in item.defs():
                old = None if strong else current(sym)
                val = define(sym, IO_READ)
                if old is not None:
                    val.operands.append(old)
            return pushed

        if item.kind == LOOP_INIT:
            val = define(stmt.index, LOOP_INIT_DEF)
            val.operands = list(dict.fromkeys(uses_map.values()))
            return pushed
        if item.kind == LOOP_INCR:
            old = current(stmt.index)
            val = define(stmt.index, LOOP_INCR_DEF)
            val.operands = [old]
            return pushed
        # LOOP_TEST / BRANCH / plain statements define nothing
        return pushed

    def _new_value(self, var: Symbol, kind: str, stmt: Optional[Statement],
                   proc_name: str) -> SSAValue:
        val = SSAValue(var, kind, stmt, proc_name)
        self.values.append(val)
        return val

    # -- interprocedural linking ----------------------------------------------
    def _link_interprocedural(self) -> None:
        for caller_name, caller in self.program.procedures.items():
            for call in caller.call_sites():
                self._link_call(call, caller)

    def _actual_value_at(self, call: CallStmt, caller: Procedure,
                         pos: int) -> Optional[SSAValue]:
        snap = self._pre_call.get(call.stmt_id, {})
        actual = call.args[pos]
        if isinstance(actual, (VarRef, ArrayRef)):
            got = snap.get(id(actual.symbol))
            if got is not None:
                return got
            entry = self.entry_defs[caller.name].get(id(actual.symbol))
            return entry
        # expression actual: synthesize a pseudo-value over its uses
        val = self._new_value(Symbol(f"__arg{pos}", proc_name=caller.name),
                              ARG_EXPR, call, caller.name)
        uses = self.stmt_uses.get(call.stmt_id, {})
        for node in actual.walk():
            if isinstance(node, (VarRef, ArrayRef)):
                got = uses.get(id(node.symbol)) or \
                    snap.get(id(node.symbol))
                if got is not None and got not in val.operands:
                    val.operands.append(got)
        return val

    def _link_call(self, call: CallStmt, caller: Procedure) -> None:
        callee = self.program.procedures[call.callee]
        snap = self._pre_call.get(call.stmt_id, {})
        entry = self.entry_defs[call.callee]
        # formal phis gain this site's actuals
        for pos, formal in enumerate(callee.formals):
            if pos >= len(call.args):
                continue
            phi = entry.get(id(formal))
            if phi is None or phi.kind != FORMAL_PHI:
                continue
            actual_val = self._actual_value_at(call, caller, pos)
            if actual_val is not None:
                phi.site_operands.setdefault(call.stmt_id,
                                             []).append(actual_val)
        # common members: connect overlapping caller symbols
        for sym in self.tracked[call.callee]:
            if not sym.is_common:
                continue
            phi = entry.get(id(sym))
            if phi is None or phi.kind != FORMAL_PHI:
                continue
            for caller_sym in self._overlapping(sym, caller.name):
                val = snap.get(id(caller_sym)) or \
                    self.entry_defs[caller.name].get(id(caller_sym))
                if val is not None:
                    phi.site_operands.setdefault(call.stmt_id,
                                                 []).append(val)
        # call-out defs: attach callee exit versions
        exit_v = self.exit_versions[call.callee]
        for val in self.stmt_defs.get(call.stmt_id, []):
            if val.kind != CALL_OUT:
                continue
            sym = val.var
            # the actual may have been passed by reference to a formal...
            for pos, formal in enumerate(callee.formals):
                if pos >= len(call.args):
                    continue
                actual = call.args[pos]
                if isinstance(actual, (VarRef, ArrayRef)) and \
                        actual.symbol is sym:
                    ev = exit_v.get(id(formal))
                    if ev is not None and ev not in val.callee_exits:
                        val.callee_exits.append(ev)
            # ...and/or be visible to the callee through its COMMON block
            if sym.is_common:
                for callee_sym in self._overlapping(sym, call.callee):
                    ev = exit_v.get(id(callee_sym))
                    if ev is not None and ev not in val.callee_exits:
                        val.callee_exits.append(ev)

    # -- public queries -----------------------------------------------------------
    def use_at(self, stmt: Statement, symbol: Symbol) -> Optional[SSAValue]:
        """The SSA version of ``symbol`` used by ``stmt``."""
        return self.stmt_uses.get(stmt.stmt_id, {}).get(id(symbol))

    def defs_at(self, stmt: Statement) -> List[SSAValue]:
        return self.stmt_defs.get(stmt.stmt_id, [])
