"""Interprocedural SSA form (paper section 3.4)."""

from .cfg_dom import Dominance
from .issa import (ARG_EXPR, ASSIGN, CALL_OUT, ENTRY, FORMAL_PHI, IO_READ,
                   ISSA, LOOP_INCR_DEF, LOOP_INIT_DEF, ModRefInfo, PHI,
                   SSAValue, WEAK)

__all__ = [
    "Dominance", "ISSA", "ModRefInfo", "SSAValue",
    "ARG_EXPR", "ASSIGN", "CALL_OUT", "ENTRY", "FORMAL_PHI", "IO_READ",
    "LOOP_INCR_DEF", "LOOP_INIT_DEF", "PHI", "WEAK",
]
