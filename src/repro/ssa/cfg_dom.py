"""Dominator trees and dominance frontiers over :class:`repro.ir.cfg.Cfg`.

Cooper–Harvey–Kennedy "engineered" dominance algorithm; used for minimal
phi placement when building the interprocedural SSA form of chapter 3
("we compute the minimal SSA form for the whole program using the concept
of iterated dominance frontiers").
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..ir.cfg import BasicBlock, Cfg


class Dominance:
    def __init__(self, cfg: Cfg):
        self.cfg = cfg
        self.rpo = cfg.reverse_post_order()
        self.order: Dict[int, int] = {bb.block_id: k
                                      for k, bb in enumerate(self.rpo)}
        self.idom: Dict[int, Optional[BasicBlock]] = {}
        self._compute_idoms()
        self.frontier: Dict[int, Set[BasicBlock]] = {}
        self._compute_frontiers()
        self.children: Dict[int, List[BasicBlock]] = {}
        for bb in self.rpo:
            parent = self.idom.get(bb.block_id)
            if parent is not None and parent is not bb:
                self.children.setdefault(parent.block_id, []).append(bb)

    # -- immediate dominators (CHK algorithm) --------------------------------
    def _compute_idoms(self) -> None:
        entry = self.cfg.entry
        self.idom[entry.block_id] = entry
        changed = True
        while changed:
            changed = False
            for bb in self.rpo:
                if bb is entry:
                    continue
                processed = [p for p in bb.preds
                             if p.block_id in self.idom]
                if not processed:
                    continue
                new_idom = processed[0]
                for p in processed[1:]:
                    new_idom = self._intersect(p, new_idom)
                if self.idom.get(bb.block_id) is not new_idom:
                    self.idom[bb.block_id] = new_idom
                    changed = True

    def _intersect(self, a: BasicBlock, b: BasicBlock) -> BasicBlock:
        while a is not b:
            while self.order[a.block_id] > self.order[b.block_id]:
                a = self.idom[a.block_id]
            while self.order[b.block_id] > self.order[a.block_id]:
                b = self.idom[b.block_id]
        return a

    # -- dominance frontiers ---------------------------------------------------
    def _compute_frontiers(self) -> None:
        for bb in self.rpo:
            self.frontier[bb.block_id] = set()
        for bb in self.rpo:
            if len(bb.preds) < 2:
                continue
            target = self.idom.get(bb.block_id)
            for pred in bb.preds:
                runner = pred
                while runner is not None and runner is not target \
                        and runner.block_id in self.idom:
                    self.frontier[runner.block_id].add(bb)
                    nxt = self.idom[runner.block_id]
                    if nxt is runner:
                        break
                    runner = nxt

    # -- queries -----------------------------------------------------------
    def dominates(self, a: BasicBlock, b: BasicBlock) -> bool:
        runner: Optional[BasicBlock] = b
        while runner is not None:
            if runner is a:
                return True
            nxt = self.idom.get(runner.block_id)
            if nxt is runner:
                return runner is a
            runner = nxt
        return False

    def iterated_frontier(self, blocks: List[BasicBlock]
                          ) -> Set[BasicBlock]:
        """DF+ of a set of blocks (phi placement sites)."""
        result: Set[int] = set()
        out: List[BasicBlock] = []
        work = list(blocks)
        while work:
            bb = work.pop()
            for f in self.frontier.get(bb.block_id, ()):
                if f.block_id not in result:
                    result.add(f.block_id)
                    out.append(f)
                    work.append(f)
        return set(out)
