"""Automatic parallelization: planning, transforms, data decomposition."""

from .decomposition import (SplitReport, find_splittable_blocks,
                            split_common_blocks, split_pass)
from .parallelizer import Assertion, Parallelizer
from .plan import (DEP, INDUCTION, PARALLEL, PRIVATE, PRIVATE_FINAL,
                   PRIVATE_USER, REDUCTION, LoopPlan, ProgramPlan, VarPlan)
from .transforms import (ContractionResult, annotate_source,
                         contract_array, contract_in_program,
                         contraction_candidates, loop_directives,
                         lower_array_reduction, lower_scalar_reduction)

__all__ = [
    "Assertion", "Parallelizer",
    "DEP", "INDUCTION", "PARALLEL", "PRIVATE", "PRIVATE_FINAL",
    "PRIVATE_USER", "REDUCTION", "LoopPlan", "ProgramPlan", "VarPlan",
    "SplitReport", "find_splittable_blocks", "split_common_blocks",
    "split_pass",
    "ContractionResult", "annotate_source", "contract_array",
    "contract_in_program", "contraction_candidates", "loop_directives",
    "lower_array_reduction", "lower_scalar_reduction",
]
