"""Plan datatypes produced by the parallelizer.

A :class:`LoopPlan` records, per loop, how every written location was
classified — the same vocabulary Fig 4-9 of the paper uses (parallel
arrays, privatizable arrays/scalars, reduction arrays/scalars) plus
induction variables — and whether the loop as a whole is parallelizable.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..ir.statements import LoopStmt
from ..ir.symbols import Symbol

# classification statuses
PARALLEL = "parallel"          # accesses carry no loop-carried dependence
PRIVATE = "private"            # privatizable; dead at exit, no finalization
PRIVATE_FINAL = "private_final"  # privatizable with last-iteration finalization
PRIVATE_USER = "private_user"  # privatized on a user assertion
REDUCTION = "reduction"
INDUCTION = "induction"
DEP = "dep"                    # unresolved dependence — blocks the loop

_OK = {PARALLEL, PRIVATE, PRIVATE_FINAL, PRIVATE_USER, REDUCTION, INDUCTION}


class VarPlan:
    """Classification of one abstract location within one loop."""

    __slots__ = ("key", "symbols", "status", "reduction_ops", "reason")

    def __init__(self, key: Tuple, symbols: Set[Symbol], status: str,
                 reduction_ops: Optional[Set[str]] = None, reason: str = ""):
        self.key = key
        self.symbols = symbols
        self.status = status
        self.reduction_ops = reduction_ops or set()
        self.reason = reason

    @property
    def ok(self) -> bool:
        return self.status in _OK

    @property
    def is_scalar(self) -> bool:
        return all(not s.is_array for s in self.symbols) and bool(self.symbols)

    @property
    def display_name(self) -> str:
        names = sorted({s.name for s in self.symbols})
        return "/".join(names) if names else str(self.key)

    def __repr__(self):
        return f"VarPlan({self.display_name}: {self.status})"


class LoopPlan:
    """Parallelization verdict for one loop."""

    __slots__ = ("loop", "vars", "contains_io", "blockers",
                 "assertions_used", "parallel")

    def __init__(self, loop: LoopStmt):
        self.loop = loop
        self.vars: Dict[Tuple, VarPlan] = {}
        self.contains_io = False
        self.blockers: List[str] = []
        self.assertions_used: List[str] = []
        self.parallel = False

    def finalize(self) -> None:
        if self.contains_io:
            self.blockers.append("loop performs I/O")
        for vp in self.vars.values():
            if not vp.ok:
                self.blockers.append(
                    f"{vp.display_name}: {vp.reason or 'data dependence'}")
        self.parallel = not self.blockers

    # -- reporting helpers ----------------------------------------------------
    def classified(self, *statuses: str) -> List[VarPlan]:
        return [v for v in self.vars.values() if v.status in statuses]

    def count(self, status: str, scalar: Optional[bool] = None) -> int:
        n = 0
        for v in self.vars.values():
            if v.status != status:
                continue
            if scalar is None or v.is_scalar == scalar:
                n += 1
        return n

    def dependent_vars(self) -> List[VarPlan]:
        return [v for v in self.vars.values() if v.status == DEP]

    def __repr__(self):
        tag = "PARALLEL" if self.parallel else "sequential"
        return f"LoopPlan({self.loop.name}: {tag})"


class ProgramPlan:
    """All loop plans for a program plus the outermost-parallel strategy."""

    def __init__(self, program):
        self.program = program
        self.loops: Dict[int, LoopPlan] = {}

    def plan_for(self, loop: LoopStmt) -> LoopPlan:
        return self.loops[loop.stmt_id]

    def plan_by_name(self, name: str) -> LoopPlan:
        return self.loops[self.program.loop(name).stmt_id]

    def is_parallel(self, loop: LoopStmt) -> bool:
        plan = self.loops.get(loop.stmt_id)
        return plan is not None and plan.parallel

    def parallel_loops(self) -> List[LoopStmt]:
        return [p.loop for p in self.loops.values() if p.parallel]

    def sequential_loops(self) -> List[LoopStmt]:
        return [p.loop for p in self.loops.values() if not p.parallel]

    def outermost_parallel(self) -> List[LoopStmt]:
        """Parallel loops not lexically nested inside another parallel loop
        of the same procedure (the runtime additionally suppresses loops
        dynamically nested under a parallel loop across calls)."""
        from ..ir.statements import enclosing_loops
        out = []
        for plan in self.loops.values():
            if not plan.parallel:
                continue
            if any(self.is_parallel(outer)
                   for outer in enclosing_loops(plan.loop)):
                continue
            out.append(plan.loop)
        return out

    def summary_counts(self) -> Dict[str, int]:
        out = {"loops": len(self.loops), "parallel": 0, "sequential": 0}
        for plan in self.loops.values():
            out["parallel" if plan.parallel else "sequential"] += 1
        return out
