"""Program transformations: privatization annotation, parallel-reduction
lowering (section 6.3), and array contraction (section 5.6).

Privatization and reduction lowering are expressed as source annotations /
generated SPMD pseudo-code (our simulated machine consumes the *plan*, not
rewritten code, so the lowering shown here is the artifact a user reads —
mirroring the paper's section 6.3 code listings).  Array contraction is a
real IR transformation: it rewrites the program in place and changes what
the interpreter allocates and touches, which is how the cache-footprint
effect of Fig 5-12 is actually simulated.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..analysis.access import LocKey, location_key
from ..analysis.dependence import loop_carried_conflict
from ..analysis.liveness import LivenessResult
from ..analysis.region_analysis import ArrayDataFlow
from ..ir.expressions import ArrayRef, Const, VarRef
from ..ir.program import Procedure, Program
from ..ir.statements import AssignStmt, LoopStmt, Statement
from ..ir.symbols import Symbol
from .plan import (PRIVATE, PRIVATE_FINAL, PRIVATE_USER, REDUCTION,
                   LoopPlan, ProgramPlan)


# ---------------------------------------------------------------------------
# Directive annotation (what the recompiled source looks like)
# ---------------------------------------------------------------------------

def loop_directives(plan: LoopPlan) -> List[str]:
    """OpenMP-flavoured directives for a parallel loop plan ("the
    directives used in the SUIF Explorer are similar to OpenMP
    directives", section 2.9)."""
    if not plan.parallel:
        return []
    clauses: List[str] = []
    private = sorted({v.display_name for v in plan.classified(
        PRIVATE, PRIVATE_FINAL, PRIVATE_USER)})
    if private:
        clauses.append(f"PRIVATE({', '.join(private)})")
    for vp in plan.classified(REDUCTION):
        for op in sorted(vp.reduction_ops):
            clauses.append(f"REDUCTION({op}: {vp.display_name})")
    head = "C$PAR PARALLEL DO"
    if clauses:
        head += " " + " ".join(clauses)
    return [head]


def annotate_source(program: Program, plan: ProgramPlan) -> str:
    """The input source with parallelization directives inserted above
    every (outermost) parallel loop."""
    directives: Dict[int, List[str]] = {}
    for loop in plan.outermost_parallel():
        lp = plan.loops[loop.stmt_id]
        directives.setdefault(loop.line, []).extend(loop_directives(lp))
    out: List[str] = []
    for ln, text in enumerate(program.source_text.splitlines(), start=1):
        for d in directives.get(ln, ()):
            indent = len(text) - len(text.lstrip())
            out.append(" " * indent + d)
        out.append(text)
    return "\n".join(out)


# ---------------------------------------------------------------------------
# Parallel reduction lowering (section 6.3) — generated SPMD pseudo-code
# ---------------------------------------------------------------------------

def lower_scalar_reduction(var: str, op: str, processors: str = "P") -> str:
    """The section 6.3.1 SPMD form for a scalar reduction."""
    identity = {"+": "0", "*": "1", "min": "+HUGE", "max": "-HUGE"}[op]
    combine = {"+": f"{var} = {var} + priv_{var}",
               "*": f"{var} = {var} * priv_{var}",
               "min": f"{var} = min({var}, priv_{var})",
               "max": f"{var} = max({var}, priv_{var})"}[op]
    return "\n".join([
        f"/* initialization of the private copy */",
        f"priv_{var} = {identity};",
        f"for (i = max(n*pid/{processors}, 0); "
        f"i < min(n*(pid+1)/{processors}, n); i++)",
        f"    priv_{var} = priv_{var} {op if op in '+*' else ','} ...;",
        f"/* finalization */",
        f"lock();",
        f"{combine};",
        f"unlock();",
    ])


def lower_array_reduction(var: str, op: str, elems: str = "m",
                          strategy: str = "staggered",
                          sections: int = 4) -> str:
    """Array-reduction lowering under the section 6.3 strategies."""
    ident = {"+": "0", "*": "1", "min": "+HUGE", "max": "-HUGE"}[op]
    lines = [
        f"/* strategy: {strategy} */",
        f"for (j = 0; j < {elems}; j++) priv_{var}[j] = {ident};",
        f"for (i in my iterations)",
        f"    priv_{var}[f(i)] = priv_{var}[f(i)] {op} ...;",
    ]
    if strategy == "naive":
        lines += [
            "lock();",
            f"for (j = 0; j < {elems}; j++) "
            f"{var}[j] = {var}[j] {op} priv_{var}[j];",
            "unlock();",
        ]
    elif strategy == "minimized":
        lines += [
            "/* only the touched region [lo, hi) is initialized and",
            "   finalized (section 6.3.3) */",
            "lock();",
            f"for (j = lo; j < hi; j++) "
            f"{var}[j] = {var}[j] {op} priv_{var}[j];",
            "unlock();",
        ]
    elif strategy == "staggered":
        lines += [
            f"/* array split into {sections} sections, one lock each;",
            f"   processor p starts at section p (section 6.3.4) */",
            f"for (s = pid; s < pid + {sections}; s++) {{",
            f"    k = s % {sections};",
            f"    lock(sect[k]);",
            f"    combine section k of priv_{var} into {var};",
            f"    unlock(sect[k]);",
            f"}}",
        ]
    elif strategy == "atomic":
        lines = [
            "/* no private copies: lock each individual update",
            "   (section 6.3.5) */",
            f"LOCK(ind[i]);",
            f"{var}[ind[i]] = {var}[ind[i]] {op} ...;",
            f"UNLOCK(ind[i]);",
        ]
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Array contraction (section 5.6) — real IR rewriting
# ---------------------------------------------------------------------------

class ContractionResult:
    def __init__(self):
        self.contracted: List[Tuple[str, str, int]] = []  # (proc, var, dims)
        self.skipped: List[Tuple[str, str]] = []

    def count(self) -> int:
        return len(self.contracted)


def contractible_dims(loop: LoopStmt, sym: Symbol, proc: Procedure
                      ) -> Optional[List[int]]:
    """Dimensions of ``sym`` that are always subscripted with exactly the
    index of ``loop`` in every reference inside the loop.  Those carry no
    data within one iteration and can be dropped when the array is
    contracted with respect to the loop."""
    dims: Optional[Set[int]] = None
    found = False
    for stmt in loop.body.walk():
        for expr in list(stmt.sub_expressions()) + (
                [stmt.target] if isinstance(stmt, AssignStmt) else []):
            for node in expr.walk():
                if isinstance(node, ArrayRef) and node.symbol is sym:
                    found = True
                    here = {k for k, e in enumerate(node.indices)
                            if isinstance(e, VarRef)
                            and e.symbol is loop.index}
                    dims = here if dims is None else dims & here
    if not found or not dims:
        return None
    return sorted(dims)


def contraction_candidates(loop: LoopStmt, proc: Procedure,
                           dataflow: ArrayDataFlow,
                           liveness: LivenessResult,
                           symbolic) -> List[Tuple[Symbol, List[int]]]:
    """Arrays eligible for contraction in a loop: no upwards-exposed reads
    in the loop, no loop-carried dependences, and not live at loop exit
    (section 5.6)."""
    body = dataflow.loop_body_summary.get(loop.stmt_id)
    if body is None:
        return []
    psym = symbolic.result(proc)
    out: List[Tuple[Symbol, List[int]]] = []
    for sym in proc.symbols.arrays():
        if sym.is_common or sym.is_formal:
            continue            # contraction targets loop temporaries
        key = location_key(sym)
        vs = body.vars.get(key)
        if vs is None or not vs.writes_anything():
            continue
        if not vs.exposed.is_empty():
            continue
        if loop_carried_conflict(vs, loop, psym):
            continue
        if not liveness.is_dead_at_exit(loop, key):
            continue
        dims = contractible_dims(loop, sym, proc)
        if dims:
            out.append((sym, dims))
    return out


def contract_array(program: Program, proc: Procedure, sym: Symbol,
                   drop_dims: Sequence[int]) -> None:
    """Rewrite every reference to ``sym`` in ``proc`` dropping the given
    dimensions, and shrink the declaration.  The array must be local."""
    drop = set(drop_dims)
    keep = [k for k in range(sym.rank) if k not in drop]

    for stmt in proc.statements():
        _rewrite_stmt_refs(stmt, sym, keep)
    sym.dims = [sym.dims[k] for k in keep]


def _rewrite_stmt_refs(stmt: Statement, sym: Symbol, keep: List[int]
                       ) -> None:
    def rewrite(expr):
        if isinstance(expr, ArrayRef) and expr.symbol is sym:
            if not keep:
                return VarRef(sym)      # contracted all the way to a scalar
            expr.indices = [rewrite(expr.indices[k]) for k in keep]
            return expr
        if isinstance(expr, ArrayRef):
            expr.indices = [rewrite(e) for e in expr.indices]
            return expr
        from ..ir.expressions import BinaryOp, Intrinsic, UnaryOp
        if isinstance(expr, BinaryOp):
            expr.left = rewrite(expr.left)
            expr.right = rewrite(expr.right)
            return expr
        if isinstance(expr, UnaryOp):
            expr.operand = rewrite(expr.operand)
            return expr
        if isinstance(expr, Intrinsic):
            expr.args = [rewrite(a) for a in expr.args]
            return expr
        return expr

    if isinstance(stmt, AssignStmt):
        stmt.target = rewrite(stmt.target)
        stmt.value = rewrite(stmt.value)
        return
    from ..ir.statements import CallStmt, IfStmt, IoStmt, LoopStmt
    if isinstance(stmt, CallStmt):
        stmt.args = [rewrite(a) for a in stmt.args]
    elif isinstance(stmt, IfStmt):
        stmt.arms = [(rewrite(c), b) for c, b in stmt.arms]
    elif isinstance(stmt, LoopStmt):
        stmt.low = rewrite(stmt.low)
        stmt.high = rewrite(stmt.high)
        if stmt.step is not None:
            stmt.step = rewrite(stmt.step)
    elif isinstance(stmt, IoStmt):
        stmt.items = [rewrite(i) for i in stmt.items]


def contract_in_program(program: Program, *, loops: Optional[
        Sequence[LoopStmt]] = None) -> ContractionResult:
    """Run the full contraction pass: analyze, pick candidates, rewrite.

    Returns the contraction log.  The program must be re-analyzed after
    this transformation (summaries refer to the old shapes)."""
    from ..analysis.liveness import ArrayLiveness
    from ..analysis.symbolic import SymbolicAnalysis

    result = ContractionResult()
    # Iterate: dropping one dimension (w.r.t. an outer loop) can make the
    # remaining dimension contractible w.r.t. an inner loop (flo88's t
    # goes 2-D -> 1-D -> scalar, Fig 5-11c).
    for _round in range(3):
        symbolic = SymbolicAnalysis(program)
        dataflow = ArrayDataFlow(program, symbolic)
        liveness = ArrayLiveness(dataflow).result
        targets = loops if loops is not None else program.all_loops()
        done: Set[int] = set()
        changed = False
        for loop in targets:
            proc = program.procedures[loop.proc_name]
            for sym, dims in contraction_candidates(loop, proc, dataflow,
                                                    liveness, symbolic):
                if id(sym) in done or not sym.dims:
                    continue
                done.add(id(sym))
                contract_array(program, proc, sym, dims)
                result.contracted.append((proc.name, sym.name, len(dims)))
                changed = True
        if not changed:
            break
    return result
