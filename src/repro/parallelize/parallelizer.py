"""The automatic interprocedural parallelizer (paper section 2.4).

For every loop the parallelizer classifies each written location using the
polyhedral body summary:

1. no loop-carried conflict                     → *parallel*,
2. basic induction variable                     → *induction*,
3. exposed reads never fed by earlier iterations → *privatizable*
   (requiring either deadness-at-exit from the liveness analysis or an
   iteration-invariant must-write region for last-iteration finalization —
   exactly the two finalization regimes of sections 5.1.1/5.4),
4. conflicts confined to commutative-update regions → *reduction*
   (chapter 6; disabled with ``use_reductions=False`` for the Fig 6-4
   ablation),
5. otherwise                                    → unresolved *dependence*.

A loop is parallel iff it performs no I/O and every written location lands
in classes 1–4 (or is covered by a user assertion).  Only outermost
parallel loops execute in parallel at run time.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..analysis.access import LocKey, location_key
from ..analysis.dependence import (flow_into_exposed, loop_carried_conflict,
                                   reduction_conflicts_plain)
from ..analysis.liveness import FULL, ArrayLiveness, LivenessResult
from ..analysis.region_analysis import ArrayDataFlow
from ..analysis.summaries import VarSummary
from ..analysis.symbolic import ProcSymbolic, SymbolicAnalysis
from ..ir.callgraph import CallGraph
from ..ir.expressions import ArrayRef, VarRef
from ..ir.program import Program
from ..ir.statements import (AssignStmt, CallStmt, IoStmt, LoopStmt,
                             Statement)
from ..ir.symbols import Symbol
from .plan import (DEP, INDUCTION, PARALLEL, PRIVATE, PRIVATE_FINAL,
                   PRIVATE_USER, REDUCTION, LoopPlan, ProgramPlan, VarPlan)


class Assertion:
    """A user assertion fed back through the Explorer (section 2.8).

    kinds: ``"privatizable"`` (variable has no cross-iteration value flow),
    ``"independent"`` (accesses to the variable carry no dependence),
    ``"parallel"`` (assert the whole loop parallel — var_name ignored).
    """

    __slots__ = ("loop_name", "var_name", "kind")

    def __init__(self, loop_name: str, var_name: str = "", kind: str =
                 "privatizable"):
        if kind not in ("privatizable", "independent", "parallel"):
            raise ValueError(f"unknown assertion kind {kind!r}")
        self.loop_name = loop_name
        self.var_name = var_name.lower()
        self.kind = kind

    def __repr__(self):
        return f"Assertion({self.loop_name}, {self.var_name}, {self.kind})"


class Parallelizer:
    """Drive all static analyses and produce a :class:`ProgramPlan`."""

    def __init__(self, program: Program, *,
                 use_reductions: bool = True,
                 use_liveness: bool = True,
                 liveness_variant: str = FULL,
                 assertions: Iterable[Assertion] = (),
                 dataflow: Optional[ArrayDataFlow] = None,
                 lazy: bool = False):
        self.program = program
        self.use_reductions = use_reductions
        self.use_liveness = use_liveness
        self.lazy = lazy
        self.symbolic = (dataflow.symbolic if dataflow
                         else SymbolicAnalysis(program))
        self.dataflow = dataflow or ArrayDataFlow(program, self.symbolic,
                                                  lazy=lazy)
        # Scalar liveness is part of the base analysis suite (Fig 5-6's
        # "base" column) and is always available; the chapter-5 *array*
        # liveness is what `use_liveness` ablates.
        self._full_liveness_analysis = ArrayLiveness(self.dataflow, FULL,
                                                     lazy=lazy)
        self._full_liveness = self._full_liveness_analysis.result
        self._variant_analysis: Optional[ArrayLiveness] = None
        self.liveness: Optional[LivenessResult] = None
        if use_liveness:
            self._variant_analysis = (
                self._full_liveness_analysis if liveness_variant == FULL
                else ArrayLiveness(self.dataflow, liveness_variant,
                                   lazy=lazy))
            self.liveness = self._variant_analysis.result
        self.assertions = list(assertions)
        self._member_groups_cache: Dict[str, List] = {}
        self._current_liveness_key: Tuple = (None, None)

    # -- public API ------------------------------------------------------------
    def plan(self) -> ProgramPlan:
        return self.plan_for(self.program.procedures)

    def plan_for(self, proc_names: Iterable[str]) -> ProgramPlan:
        """Plan only the named procedures' loops — the demand-driven entry
        point for the incremental analyzer.  With ``lazy=True`` the
        underlying analyses pull in exactly each procedure's dependency
        cone; results are identical to slicing the full :meth:`plan`."""
        result = ProgramPlan(self.program)
        for name in proc_names:
            proc = self.program.procedures[name]
            self._ensure_proc_ready(name)
            psym = self.symbolic.result(proc)
            for loop in proc.loops():
                result.loops[loop.stmt_id] = self._plan_loop(loop, psym)
        return result

    def _ensure_proc_ready(self, name: str) -> None:
        """Force the lazy analyses for one procedure before planning it."""
        if not self.lazy:
            return
        # planning reads loop_body_summary, so a real walk is required
        self.dataflow.ensure_walked(name)
        self._full_liveness_analysis.ensure_proc(name)
        if self._variant_analysis is not None and \
                self._variant_analysis is not self._full_liveness_analysis:
            self._variant_analysis.ensure_proc(name)

    # -- per-loop classification -------------------------------------------------
    def _plan_loop(self, loop: LoopStmt, psym: ProcSymbolic) -> LoopPlan:
        plan = LoopPlan(loop)
        plan.contains_io = loop.contains_io()
        from ..ir.statements import ExitStmt, ReturnStmt, StopStmt
        if any(isinstance(s, (ExitStmt, ReturnStmt, StopStmt))
               for s in loop.body.walk()):
            plan.blockers.append("loop may exit early")
        body = self.dataflow.loop_body_summary.get(loop.stmt_id)
        if body is None:
            plan.finalize()
            return plan

        loop_asserts = {a.var_name: a for a in self.assertions
                        if a.loop_name == loop.name and a.kind != "parallel"}
        force_parallel = any(a.loop_name == loop.name and a.kind == "parallel"
                             for a in self.assertions)

        symbols_by_key = self._symbols_by_key(loop)
        control_keys = self._loop_control_keys(loop)

        for key, vs in body.items():
            if not vs.writes_anything():
                continue
            if key in control_keys:
                continue
            for sub_key, sub_vs, syms, span in self._refine_location(
                    key, vs, symbols_by_key):
                if not sub_vs.writes_anything():
                    continue
                assertion = self._assertion_for(loop_asserts, syms, sub_key)
                vp = self._classify(sub_key, sub_vs, loop, psym, syms,
                                    assertion, base_key=key, span=span)
                plan.vars[sub_key] = vp
                if assertion is not None and vp.status in (PRIVATE_USER,
                                                           PARALLEL):
                    plan.assertions_used.append(
                        f"{assertion.kind}:{assertion.var_name}")
        if force_parallel:
            for vp in plan.vars.values():
                if not vp.ok:
                    vp.status = PRIVATE_USER
                    vp.reason = "asserted parallel loop"
            plan.assertions_used.append("parallel:<loop>")
        plan.finalize()
        return plan

    def _refine_location(self, key: LocKey, vs: VarSummary,
                         symbols_by_key: Dict[LocKey, Set[Symbol]]):
        """Split a COMMON-block location into per-member-group locations.

        The analysis works on whole blocks (canonical flat coordinates),
        but users and the paper's tables reason per variable.  Members
        whose storage ranges overlap across views stay in one group (they
        genuinely alias); disjoint members classify independently."""
        syms = symbols_by_key.get(key, set())
        if key[0] != "cm":
            yield key, vs, syms, None
            return
        groups = self._member_groups(key[1])
        if len(groups) <= 1:
            yield key, vs, syms, None
            return
        for gidx, (span, names) in enumerate(groups):
            sub = VarSummary(
                read=vs.read.intersect(span),
                exposed=vs.exposed.intersect(span),
                may_write=vs.may_write.intersect(span),
                must_write=vs.must_write.intersect(span),
                reductions={op: sec.intersect(span)
                            for op, sec in vs.reductions.items()},
                names={n for n in vs.names if n in names} or set(names))
            gsyms = {s for s in syms if s.name in names}
            yield (key[0], key[1], gidx), sub, gsyms, span

    def _member_groups(self, block_name: str):
        """Union-find of a block's members (across all views) by storage
        overlap; returns [(span section, member-name set)] sorted by
        offset."""
        cached = self._member_groups_cache.get(block_name)
        if cached is not None:
            return cached
        from ..poly import Constraint, LinExpr, Section, System, dim
        block = self.program.commons.get(block_name)
        members = []
        if block is not None:
            for view in block.views.values():
                for sym in view.symbols:
                    lo = sym.common_offset
                    hi = lo + (sym.constant_size() or 1) - 1
                    members.append((lo, hi, sym.name))
        members.sort()
        groups: List[List] = []
        for lo, hi, name in members:
            if groups and lo <= groups[-1][1]:
                groups[-1][1] = max(groups[-1][1], hi)
                groups[-1][2].add(name)
            else:
                groups.append([lo, hi, {name}])
        out = []
        v = LinExpr.var(dim(0))
        for lo, hi, names in groups:
            span = Section([System([
                Constraint.ge(v, LinExpr.constant(lo)),
                Constraint.le(v, LinExpr.constant(hi))])])
            out.append((span, frozenset(names)))
        self._member_groups_cache[block_name] = out
        return out

    def _assertion_for(self, loop_asserts: Dict[str, Assertion],
                       syms: Set[Symbol], key: LocKey
                       ) -> Optional[Assertion]:
        for sym in syms:
            got = loop_asserts.get(sym.name)
            if got is not None:
                return got
        if len(key) >= 3:
            return loop_asserts.get(str(key[2]).lower())
        return None

    def _classify(self, key: LocKey, vs: VarSummary, loop: LoopStmt,
                  psym: ProcSymbolic, syms: Set[Symbol],
                  assertion: Optional[Assertion],
                  base_key: Optional[LocKey] = None,
                  span=None) -> VarPlan:
        self._current_liveness_key = (base_key or key, span)
        scalar = bool(syms) and all(not s.is_array for s in syms)
        induction_syms = psym.induction.get(loop.stmt_id, {})
        red_ops = {op for op, sec in vs.reductions.items()
                   if not sec.is_empty()}

        # Induction variables take precedence over the syntactic reduction
        # reading of `k = k + 1` — the compiler rewrites them in closed form.
        if scalar and any(s in induction_syms for s in syms):
            return VarPlan(key, syms, INDUCTION)

        auto = self._classify_auto(key, vs, loop, psym, syms, red_ops)
        if auto.ok or assertion is None:
            return auto
        # the analysis could not resolve it — apply the user's word
        if assertion.kind == "independent":
            return VarPlan(key, syms, PARALLEL,
                           reason="user asserted independent")
        return VarPlan(key, syms, PRIVATE_USER,
                       reason="user asserted privatizable")

    def _classify_auto(self, key: LocKey, vs: VarSummary, loop: LoopStmt,
                       psym: ProcSymbolic, syms: Set[Symbol],
                       red_ops: Set[str]) -> VarPlan:
        if not red_ops:
            if not loop_carried_conflict(vs, loop, psym):
                return VarPlan(key, syms, PARALLEL)
            if not flow_into_exposed(vs, loop, psym):
                return self._privatize(key, vs, loop, psym, syms)
            return VarPlan(key, syms, DEP,
                           reason="loop-carried flow dependence")

        # Reduction candidate.
        if not self.use_reductions:
            return VarPlan(key, syms, DEP,
                           reason="commutative updates (reduction "
                                  "recognition disabled)")
        plain_conflict = loop_carried_conflict(vs, loop, psym)
        if plain_conflict or reduction_conflicts_plain(vs, loop, psym):
            # Mixed reduction and plain accesses that collide.
            if not flow_into_exposed(vs, loop, psym) and not plain_conflict:
                return self._privatize(key, vs, loop, psym, syms)
            return VarPlan(key, syms, DEP,
                           reason="reduction region conflicts with other "
                                  "accesses")
        return VarPlan(key, syms, REDUCTION, reduction_ops=red_ops)

    def _privatize(self, key: LocKey, vs: VarSummary, loop: LoopStmt,
                   psym: ProcSymbolic, syms: Set[Symbol]) -> VarPlan:
        """Privatizable access pattern; decide the finalization regime."""
        # Private copies start uninitialized: any upwards-exposed read
        # (a value flowing in from outside the loop) defeats automatic
        # privatization — the reason hydro's dkrc(1) and flo88's
        # IL/IE-bounded temporaries need the user (sections 4.2.3, 4.4.1).
        if not vs.exposed.is_empty():
            return VarPlan(key, syms, DEP,
                           reason="upwards-exposed reads reach the loop "
                                  "(private copies would be uninitialized)")
        scalar = bool(syms) and all(not s.is_array for s in syms)
        liveness = self.liveness if self.liveness is not None else (
            self._full_liveness if scalar else None)
        if liveness is not None and self._dead_at_exit(loop, liveness):
            return VarPlan(key, syms, PRIVATE,
                           reason="dead at loop exit")
        if self._iteration_invariant_must(vs, loop, psym):
            return VarPlan(key, syms, PRIVATE_FINAL,
                           reason="every iteration writes the same region")
        return VarPlan(key, syms, DEP,
                       reason="privatizable but may be live at exit "
                              "(finalization not provable)")

    def _dead_at_exit(self, loop: LoopStmt,
                      liveness: LivenessResult) -> bool:
        """Deadness query for the current location, restricted to the
        member-group span when the location was refined."""
        base_key, span = self._current_liveness_key
        per_loop = liveness.live_written_after.get(loop.stmt_id, {})
        sec = per_loop.get(base_key)
        if sec is None:
            return True
        if span is None:
            return sec.is_empty()
        return sec.intersect(span).is_empty()

    def _iteration_invariant_must(self, vs: VarSummary, loop: LoopStmt,
                                  psym: ProcSymbolic) -> bool:
        """Every iteration must-writes exactly the same region: the must
        section mentions no iteration-variant term and covers all writes."""
        if vs.must_write.is_empty():
            return False
        for system in vs.must_write.systems:
            for name in system.variables():
                if name.startswith("_"):
                    continue
                if psym.is_variant(name, loop):
                    return False
        return vs.must_write.contains(vs.may_write)

    # -- helpers ---------------------------------------------------------------
    def _symbols_by_key(self, loop: LoopStmt) -> Dict[LocKey, Set[Symbol]]:
        """Map abstract locations to the IR symbols that access them inside
        the loop (for reporting and scalar/array classification).  Walks
        through calls one level deep — enough for display purposes."""
        out: Dict[LocKey, Set[Symbol]] = {}

        def scan_stmt(stmt: Statement, program: Program, depth: int) -> None:
            for expr in stmt.sub_expressions():
                for node in expr.walk():
                    if isinstance(node, (VarRef, ArrayRef)):
                        out.setdefault(location_key(node.symbol),
                                       set()).add(node.symbol)
            if isinstance(stmt, AssignStmt):
                out.setdefault(location_key(stmt.target.symbol),
                               set()).add(stmt.target.symbol)
            if isinstance(stmt, CallStmt) and depth < 3:
                callee = program.procedures.get(stmt.callee)
                if callee is not None:
                    for s in callee.statements():
                        scan_stmt(s, program, depth + 1)

        for stmt in loop.body.walk():
            scan_stmt(stmt, self.program, 0)
        return out

    def _loop_control_keys(self, loop: LoopStmt) -> Set[LocKey]:
        keys = {location_key(loop.index)}
        for inner in loop.inner_loops():
            keys.add(location_key(inner.index))
        return keys
