"""Memory-performance advisor — the paper's future-work direction
("SUIF Explorer for Optimizing Memory Performance", section 7.5.1),
covering the two problems diagnosed manually in section 4.2.4 / Fig 4-6:

* **poor spatial locality**: Fortran arrays are column-major, so an
  innermost loop whose index subscripts a *non-first* dimension walks
  memory with a large stride ("the inner loop accesses the data by row,
  which is not contiguous in Fortran"); the classic fix is a loop
  interchange or an array transpose,
* **conflicting data decompositions**: two parallel loops that distribute
  the same array along *different* dimensions force data reshuffling
  between them ("the loops vsetuv/85 and vqterm/85 are parallel, but the
  data are distributed across the processors by column and by row,
  respectively").

The advisor reports both, with the transformation a compiler expert would
apply.  It is diagnostic (the paper applied these fixes by hand too).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..ir.expressions import ArrayRef, VarRef
from ..ir.program import Program
from ..ir.statements import AssignStmt, LoopStmt, enclosing_loops
from ..ir.symbols import Symbol
from .plan import ProgramPlan


class Advisory:
    __slots__ = ("kind", "loop_names", "array", "detail")

    def __init__(self, kind: str, loop_names: List[str], array: str,
                 detail: str):
        self.kind = kind              # "locality" | "decomposition"
        self.loop_names = loop_names
        self.array = array
        self.detail = detail

    def __repr__(self):
        return f"Advisory({self.kind}, {self.array}, {self.loop_names})"


def _subscript_dims(loop: LoopStmt, sym_filter=None
                    ) -> Dict[Symbol, Set[int]]:
    """For each array referenced in the loop, the set of dimensions whose
    subscript mentions the loop's own index."""
    out: Dict[Symbol, Set[int]] = {}
    for stmt in loop.body.walk():
        exprs = list(stmt.sub_expressions())
        if isinstance(stmt, AssignStmt):
            exprs.append(stmt.target)
        for expr in exprs:
            for node in expr.walk():
                if not isinstance(node, ArrayRef) or not node.indices:
                    continue
                if sym_filter is not None and not sym_filter(node.symbol):
                    continue
                for k, idx in enumerate(node.indices):
                    for ref in idx.walk():
                        if isinstance(ref, VarRef) and \
                                ref.symbol is loop.index:
                            out.setdefault(node.symbol, set()).add(k)
    return out


def locality_advisories(program: Program) -> List[Advisory]:
    """Innermost loops whose index walks a non-first dimension of a
    multi-dimensional array (stride >= extent of dim 0)."""
    advisories: List[Advisory] = []
    for proc in program.procedures.values():
        for loop in proc.loops():
            if loop.inner_loops():
                continue                       # only innermost loops
            dims = _subscript_dims(loop,
                                   lambda s: s.rank >= 2)
            bad = [(sym, ds) for sym, ds in dims.items()
                   if 0 not in ds and ds]
            for sym, ds in bad:
                outer = enclosing_loops(loop)
                fix = "array transpose"
                for o in outer:
                    odims = _subscript_dims(o, lambda s: s is sym)
                    if 0 in odims.get(sym, ()):
                        fix = (f"loop interchange with {o.name} "
                               f"(its index walks dimension 0)")
                        break
                advisories.append(Advisory(
                    "locality", [loop.name], sym.name,
                    f"innermost loop {loop.name} subscripts only "
                    f"dimension(s) {sorted(d + 1 for d in ds)} of "
                    f"{sym.name} — non-contiguous column-major access; "
                    f"suggested fix: {fix}"))
    return advisories


def decomposition_advisories(program: Program, plan: ProgramPlan
                             ) -> List[Advisory]:
    """Pairs of parallel loops that distribute the same array along
    different dimensions (Fig 4-6's vsetuv/vqterm conflict)."""
    def storage_key(sym: Symbol):
        # unify COMMON views across procedures: they are the same data
        if sym.is_common:
            return ("cm", sym.common_block, sym.common_offset)
        return ("v", id(sym))

    distribution: Dict[Tuple, List[Tuple[str, int, str]]] = {}
    for loop in plan.outermost_parallel():
        dims = _subscript_dims(loop, lambda s: s.rank >= 2)
        for sym, ds in dims.items():
            if len(ds) == 1:
                distribution.setdefault(storage_key(sym), []).append(
                    (loop.name, next(iter(ds)), sym.name))
    advisories: List[Advisory] = []
    for uses in distribution.values():
        by_dim: Dict[int, List[str]] = {}
        for lname, d, _ in uses:
            by_dim.setdefault(d, []).append(lname)
        if len(by_dim) > 1:
            name = uses[0][2]
            parts = ", ".join(
                f"dim {d + 1} in {sorted(set(ls))}"
                for d, ls in sorted(by_dim.items()))
            advisories.append(Advisory(
                "decomposition", sorted({l for l, _, _ in uses}),
                name,
                f"{name} is distributed along conflicting dimensions "
                f"({parts}) — data reshuffling between the loops; "
                f"suggested fix: transpose one use or align the "
                f"distributions"))
    return advisories


def advise(program: Program, plan: Optional[ProgramPlan] = None
           ) -> List[Advisory]:
    """Full advisory report for a (possibly parallelized) program."""
    out = locality_advisories(program)
    if plan is not None:
        out.extend(decomposition_advisories(program, plan))
    return out


def report_lines(advisories: List[Advisory]) -> List[str]:
    if not advisories:
        return ["no memory-performance advisories"]
    return [f"[{a.kind}] {a.detail}" for a in advisories]
