"""Data decomposition support: COMMON-block live-range splitting
(paper section 5.5).

"A common block variable in the Fortran program may have different shapes.
The aliases among different shapes often result in false interferences.
Liveness analysis can eliminate such interference and allow the data
decomposition algorithm to obtain better results.  Specifically, we use
the liveness information to split up the Fortran common block variable
into disjoint variables."

Detection (the paper's criterion): the live ranges of two overlapping
members are disjoint if no code region writes into their overlap and
leaves that data live at the region's end.  When every overlapping pair of
a block is splittable, the block's views can be separated into per-shape
blocks; the transform below rewrites the IR accordingly (each view gets
its own storage), which shrinks the runtime footprint of loops touching
only one live range — the mechanism for the Fig 5-10 speedups.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..analysis.access import LocKey
from ..analysis.liveness import ArrayLiveness, LivenessResult
from ..analysis.region_analysis import ArrayDataFlow
from ..ir.program import Program
from ..ir.symbols import CommonBlock, CommonView, Symbol
from ..poly import Constraint, LinExpr, Section, System, dim


class SplitReport:
    def __init__(self):
        # block -> list of (member_a, member_b) pairs proven disjoint
        self.splittable_pairs: Dict[str, List[Tuple[str, str]]] = {}
        self.split_blocks: List[str] = []

    def total_splits(self) -> int:
        return len(self.split_blocks)


def _member_span(sym: Symbol) -> Section:
    lo = sym.common_offset
    hi = lo + (sym.constant_size() or 1) - 1
    v = LinExpr.var(dim(0))
    return Section([System([Constraint.ge(v, LinExpr.constant(lo)),
                            Constraint.le(v, LinExpr.constant(hi))])])


def view_signature(program: Program, sym: Symbol) -> Tuple:
    """The shape signature of the COMMON view ``sym`` belongs to — procs
    declaring identical member layouts share a signature (and a live
    range, if the analysis proves the ranges disjoint)."""
    view = program.commons[sym.common_block].views[sym.proc_name]
    return tuple((m.name, m.common_offset, m.constant_size())
                 for m in view.symbols)


def attributed_key_fn(program: Program):
    """A location-key function that keeps each view of a COMMON block as a
    separate abstract location, attributing every access to the shape it
    went through."""
    def key_fn(sym: Symbol):
        from ..analysis.access import location_key
        if sym.is_common:
            return ("cm", sym.common_block, view_signature(program, sym))
        return location_key(sym)
    return key_fn


def find_splittable_blocks(program: Program,
                           dataflow: Optional[ArrayDataFlow] = None,
                           liveness: Optional[LivenessResult] = None
                           ) -> SplitReport:
    """Identify COMMON blocks whose differently-shaped views have provably
    disjoint live ranges (the paper's section 5.5 criterion).

    Runs a *view-attributed* data-flow + liveness pass: each view is its
    own location, so "data written through view A is exposed to a read
    through view B after region r" is a direct sections query:
    ``W_A(r) ∩ E_B(after r) ∩ overlap``.  Any such flow, in either
    direction, forbids the split.  (The passed-in dataflow/liveness are
    ignored; the attributed pass is built here.)"""
    from ..analysis.liveness import ArrayLiveness
    adf = ArrayDataFlow(program, key_fn=attributed_key_fn(program))
    alv = ArrayLiveness(adf, "full")
    report = SplitReport()
    for bname, block in program.commons.items():
        pairs = [(a, b) for a, b in block.overlapping_pairs()
                 if _shapes_differ(a, b)]
        if not pairs:
            continue
        ok_pairs: List[Tuple[str, str]] = []
        all_ok = True
        checked = set()
        for a, b in pairs:
            sig_pair = frozenset((view_signature(program, a),
                                  view_signature(program, b)))
            if sig_pair in checked:
                continue
            checked.add(sig_pair)
            overlap = _member_span(a).intersect(_member_span(b))
            key_a = ("cm", bname, view_signature(program, a))
            key_b = ("cm", bname, view_signature(program, b))
            if _cross_flow(adf, alv, key_a, key_b, overlap) or \
                    _cross_flow(adf, alv, key_b, key_a, overlap):
                all_ok = False
            else:
                ok_pairs.append((f"{a.proc_name}::{a.name}",
                                 f"{b.proc_name}::{b.name}"))
        if ok_pairs:
            report.splittable_pairs[bname] = ok_pairs
        if all_ok and ok_pairs:
            report.split_blocks.append(bname)
    return report


def _shapes_differ(a: Symbol, b: Symbol) -> bool:
    if a.rank != b.rank:
        return True
    for da, db in zip(a.dims, b.dims):
        if da.constant_extent() != db.constant_extent():
            return True
    return False


def _cross_flow(dataflow: ArrayDataFlow, liveness, key_a, key_b,
                overlap: Section) -> bool:
    """Is data written through view A in some loop region still exposed to
    view-B reads after that region (within the storage overlap)?"""
    for loop_id, loop_sum in dataflow.loop_summary.items():
        vs_a = loop_sum.vars.get(key_a)
        if vs_a is None or not vs_a.writes_anything():
            continue
        after = liveness.result.exposed_after.get(loop_id)
        if after is None:
            continue
        exposed_b = after.get(key_b).exposed
        if exposed_b.is_empty():
            continue
        written = vs_a.may_write.union(vs_a.reduction_region())
        if not written.intersect(exposed_b).intersect(overlap).is_empty():
            return True
    return False


def split_common_blocks(program: Program, blocks: List[str]) -> None:
    """Give each procedure view of the named blocks its own storage by
    renaming the block per view shape.  Views with identical member
    layouts keep sharing (they are the same live range)."""
    for bname in blocks:
        block = program.commons.get(bname)
        if block is None:
            continue
        groups: Dict[Tuple, List[CommonView]] = {}
        for view in block.views.values():
            sig = tuple((s.name, s.constant_size()) for s in view.symbols)
            groups.setdefault(sig, []).append(view)
        if len(groups) <= 1:
            continue
        del program.commons[bname]
        for k, (sig, views) in enumerate(sorted(groups.items(),
                                                key=lambda kv: kv[0])):
            new_name = f"{bname}_{k}"
            new_block = CommonBlock(new_name)
            for view in views:
                for sym in view.symbols:
                    sym.common_block = new_name
                new_block.add_view(view)
                proc = program.procedures[view.proc_name]
                proc.common_blocks[:] = [new_name if b == bname else b
                                         for b in proc.common_blocks]
            program.commons[new_name] = new_block


def split_pass(program: Program) -> SplitReport:
    """Analyze + split in one call; re-analyze the program afterwards."""
    report = find_splittable_blocks(program)
    split_common_blocks(program, report.split_blocks)
    return report
