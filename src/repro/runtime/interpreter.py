"""Deterministic op-counting interpreter for the structured IR.

The interpreter is the substrate for every dynamic component of the
Explorer: the Loop Profile Analyzer instruments loop entry/exit, the
Dynamic Dependence Analyzer instruments loads and stores, and the parallel
machine simulator consumes per-iteration operation counts.

"Time" is a deterministic operation count: every expression node and
statement costs a fixed number of abstract operations.  Machine models
translate operations into seconds.
"""

from __future__ import annotations

import math

from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..ir.expressions import (ArrayRef, BinaryOp, Const, Expression,
                              Intrinsic, StrConst, UnaryOp, VarRef)
from ..ir.program import Procedure, Program
from ..ir.statements import (AssignStmt, Block, CallStmt, CycleStmt,
                             ExitStmt, IfStmt, IoStmt, LoopStmt, NoopStmt,
                             ReturnStmt, Statement, StopStmt)
from ..ir.symbols import Symbol, INT
from .values import ArrayView, Buffer


class RuntimeErrorInProgram(Exception):
    pass


class OpsBudgetExceeded(RuntimeErrorInProgram):
    """The operation budget (``max_ops``) was exhausted.

    Raised identically by the tree-walking interpreter and the
    closure-compiled engine (same type, same message for the same
    ``max_ops``), so budget exhaustion is a *deterministic, structured*
    outcome the service layer can classify — not a raw exception string
    that differs per engine.  Subclasses :class:`RuntimeErrorInProgram`
    for backward compatibility with existing ``except`` clauses.

    The exception must survive a pickle round-trip (worker process →
    scheduler), hence the explicit :meth:`__reduce__`.
    """

    def __init__(self, message: str = "operation budget exceeded",
                 ops: Optional[int] = None,
                 max_ops: Optional[int] = None):
        super().__init__(message)
        self.ops = ops
        self.max_ops = max_ops

    def __reduce__(self):
        return (self.__class__, (self.args[0], self.ops, self.max_ops))


def budget_error(ops: int, max_ops: int) -> OpsBudgetExceeded:
    """The one way both engines build a budget error.  The message
    deliberately includes only ``max_ops`` (identical across engines for
    the same request), never the instantaneous op count (the engines
    check the budget at different granularities, so ``ops`` at raise
    time is engine-dependent — it is kept on the exception object for
    diagnostics only)."""
    return OpsBudgetExceeded(
        f"operation budget exceeded (max_ops={max_ops})", ops, max_ops)


class _Cycle(Exception):
    def __init__(self, target_label):
        self.target_label = target_label


class _Exit(Exception):
    pass


class _Return(Exception):
    pass


class _Stop(Exception):
    pass


class Observer:
    """Hook interface; every callback is optional (no-op by default)."""

    def on_loop_enter(self, loop: LoopStmt) -> None: ...
    def on_loop_iteration(self, loop: LoopStmt, index_value: int) -> None: ...
    def on_loop_exit(self, loop: LoopStmt) -> None: ...
    def on_read(self, buffer: Buffer, offset: int, stmt: Statement) -> None: ...
    def on_write(self, buffer: Buffer, offset: int, stmt: Statement) -> None: ...
    def on_call(self, call: CallStmt) -> None: ...


class Frame:
    """One procedure activation: scalar values + array views."""

    __slots__ = ("proc", "scalars", "arrays")

    def __init__(self, proc: Procedure):
        self.proc = proc
        self.scalars: Dict[Symbol, float] = {}
        self.arrays: Dict[Symbol, ArrayView] = {}


class Interpreter:
    """Execute a program; deterministic and instrumentable.

    Parameters
    ----------
    program:
        The IR program.
    inputs:
        Values consumed by ``READ`` statements, in order.
    observers:
        Instrumentation hooks.
    max_ops:
        Abort knob against runaway loops.
    """

    def __init__(self, program: Program, inputs: Sequence[float] = (),
                 observers: Sequence[Observer] = (),
                 max_ops: int = 500_000_000):
        self.program = program
        self.inputs = list(inputs)
        self._input_pos = 0
        self.observers = list(observers)
        self.ops = 0
        self.max_ops = max_ops
        self.outputs: List[float] = []
        self.current_stmt: Optional[Statement] = None
        self.commons: Dict[str, Buffer] = {}
        self._frames: List[Frame] = []
        for name, block in program.commons.items():
            self.commons[name] = Buffer(f"/{name}/", block.size)

    # -- public -----------------------------------------------------------
    def run(self) -> "Interpreter":
        from ..obs import get_tracer
        with get_tracer().span("execute", engine="tree",
                               program=self.program.name) as sp:
            main = self.program.main_procedure()
            frame = self._make_frame(main, [])
            try:
                self._exec_block(main.body, frame)
            except _Stop:
                pass
            except _Return:
                pass
            sp.tag(ops=self.ops, observers=len(self.observers))
        return self

    # -- frames ------------------------------------------------------------
    def _make_frame(self, proc: Procedure, bound_args: List) -> Frame:
        frame = Frame(proc)
        self._frames.append(frame)
        # formals first
        for formal, value in zip(proc.formals, bound_args):
            if isinstance(value, ArrayView):
                frame.arrays[formal] = value
            else:
                frame.scalars[formal] = value
        # commons
        for block_name in proc.common_blocks:
            buffer = self.commons[block_name]
            view = self.program.commons[block_name].views[proc.name]
            for sym in view.symbols:
                if sym.is_array:
                    dims = [self._dim_bounds(d, frame) for d in sym.dims]
                    frame.arrays[sym] = ArrayView(
                        buffer, sym.common_offset,
                        [lo for lo, _ in dims],
                        [(hi - lo + 1) if hi is not None else None
                         for lo, hi in dims])
                else:
                    frame.arrays[sym] = ArrayView(buffer, sym.common_offset,
                                                  [1], [1])
        # locals
        for sym in proc.symbols:
            if sym in frame.arrays or sym in frame.scalars or sym.is_const:
                continue
            if sym.is_formal:
                if sym.is_array and sym not in frame.arrays:
                    raise RuntimeErrorInProgram(
                        f"array formal {sym.name} of {proc.name} not bound")
                frame.scalars.setdefault(sym, 0)
                continue
            if sym.is_array:
                dims = [self._dim_bounds(d, frame) for d in sym.dims]
                size = 1
                for lo, hi in dims:
                    if hi is None:
                        raise RuntimeErrorInProgram(
                            f"local array {sym.name} has assumed size")
                    size *= hi - lo + 1
                buffer = Buffer(f"{proc.name}::{sym.name}", size)
                frame.arrays[sym] = ArrayView(
                    buffer, 0, [lo for lo, _ in dims],
                    [hi - lo + 1 for lo, hi in dims])
            else:
                frame.scalars[sym] = 0
        return frame

    def _dim_bounds(self, dimension, frame: Frame
                    ) -> Tuple[int, Optional[int]]:
        low = int(self._eval(dimension.low, frame))
        high = (int(self._eval(dimension.high, frame))
                if dimension.high is not None else None)
        return low, high

    # -- statements -----------------------------------------------------------
    def _exec_block(self, block: Block, frame: Frame) -> None:
        for stmt in block.statements:
            self._exec_stmt(stmt, frame)

    def _exec_stmt(self, stmt: Statement, frame: Frame) -> None:
        self.ops += 1
        self.current_stmt = stmt
        if self.ops > self.max_ops:
            raise budget_error(self.ops, self.max_ops)
        if isinstance(stmt, AssignStmt):
            value = self._eval(stmt.value, frame)
            self._store(stmt.target, value, frame, stmt)
            return
        if isinstance(stmt, IfStmt):
            for cond, body in stmt.arms:
                if self._truthy(self._eval(cond, frame)):
                    self._exec_block(body, frame)
                    return
            if stmt.else_block is not None:
                self._exec_block(stmt.else_block, frame)
            return
        if isinstance(stmt, LoopStmt):
            self._exec_loop(stmt, frame)
            return
        if isinstance(stmt, CallStmt):
            self._exec_call(stmt, frame)
            return
        if isinstance(stmt, IoStmt):
            self._exec_io(stmt, frame)
            return
        if isinstance(stmt, NoopStmt):
            return
        if isinstance(stmt, CycleStmt):
            raise _Cycle(stmt.target_label)
        if isinstance(stmt, ExitStmt):
            raise _Exit()
        if isinstance(stmt, ReturnStmt):
            raise _Return()
        if isinstance(stmt, StopStmt):
            raise _Stop()
        raise RuntimeErrorInProgram(f"cannot execute {stmt!r}")

    def _exec_loop(self, loop: LoopStmt, frame: Frame) -> None:
        low = int(self._eval(loop.low, frame))
        high = int(self._eval(loop.high, frame))
        step = int(self._eval(loop.step, frame)) if loop.step is not None \
            else 1
        if step == 0:
            raise RuntimeErrorInProgram(f"zero step in {loop.name}")
        for obs in self.observers:
            obs.on_loop_enter(loop)
        i = low
        try:
            while (step > 0 and i <= high) or (step < 0 and i >= high):
                frame.scalars[loop.index] = i
                for obs in self.observers:
                    obs.on_loop_iteration(loop, i)
                try:
                    self._exec_block(loop.body, frame)
                except _Cycle as cyc:
                    if cyc.target_label is not None and \
                            cyc.target_label != loop.term_label:
                        raise
                i += step
                self.ops += 1
        except _Exit:
            pass
        finally:
            frame.scalars[loop.index] = i
            for obs in self.observers:
                obs.on_loop_exit(loop)

    def _exec_call(self, call: CallStmt, frame: Frame) -> None:
        callee = self.program.procedures[call.callee]
        for obs in self.observers:
            obs.on_call(call)
        bound: List = []
        copy_back: List[Tuple[int, Symbol]] = []   # (arg position, caller sym)
        for pos, (actual, formal) in enumerate(zip(call.args,
                                                   callee.formals)):
            if isinstance(actual, ArrayRef):
                view = frame.arrays.get(actual.symbol)
                if view is None:
                    raise RuntimeErrorInProgram(
                        f"array {actual.symbol.name} unbound")
                if actual.indices:
                    idx = [int(self._eval(e, frame)) for e in actual.indices]
                    if formal.is_array:
                        bound.append(view.subview_at(idx))
                    else:
                        # scalar formal bound to array element: copy-in/out
                        bound.append(view.load(idx))
                        copy_back.append((pos, actual.symbol))
                else:
                    bound.append(view)
            elif isinstance(actual, VarRef) and not formal.is_array:
                bound.append(frame.scalars.get(actual.symbol, 0))
                copy_back.append((pos, actual.symbol))
            else:
                bound.append(self._eval(actual, frame))
        callee_frame = self._make_frame(callee, bound)
        self.ops += 5      # call overhead
        try:
            self._exec_block(callee.body, callee_frame)
        except _Return:
            pass
        finally:
            # copy-out for by-reference scalars
            for pos, caller_sym in copy_back:
                formal = callee.formals[pos]
                value = callee_frame.scalars.get(formal, 0)
                actual = call.args[pos]
                if isinstance(actual, VarRef):
                    frame.scalars[caller_sym] = self._coerce(caller_sym,
                                                             value)
                elif isinstance(actual, ArrayRef) and actual.indices:
                    idx = [int(self._eval(e, frame)) for e in actual.indices]
                    frame.arrays[caller_sym].store(idx, value)
            self._frames.pop()

    def _exec_io(self, stmt: IoStmt, frame: Frame) -> None:
        if stmt.kind == "print":
            for item in stmt.items:
                self.outputs.append(self._eval(item, frame))
            return
        for item in stmt.items:
            if self._input_pos >= len(self.inputs):
                raise RuntimeErrorInProgram("READ past end of inputs")
            value = self.inputs[self._input_pos]
            self._input_pos += 1
            self._store(item, value, frame, stmt)

    # -- expressions -----------------------------------------------------------
    def _eval(self, expr: Expression, frame: Frame):
        self.ops += 1
        if isinstance(expr, Const):
            return expr.value
        if isinstance(expr, StrConst):
            return expr.value
        if isinstance(expr, VarRef):
            sym = expr.symbol
            if sym.is_const:
                return sym.const_value
            if sym in frame.arrays and not sym.is_array:
                # common scalar accessed via its buffer view
                view = frame.arrays[sym]
                for obs in self.observers:
                    obs.on_read(view.buffer, view.offset, self.current_stmt)
                return view.buffer.data[view.offset]
            return frame.scalars.get(sym, 0)
        if isinstance(expr, ArrayRef):
            view = frame.arrays.get(expr.symbol)
            if view is None:
                raise RuntimeErrorInProgram(f"array {expr.symbol.name} "
                                            f"unbound in {frame.proc.name}")
            idx = [int(self._eval(e, frame)) for e in expr.indices]
            off = view.flat_index(idx)
            for obs in self.observers:
                obs.on_read(view.buffer, off, self.current_stmt)
            return view.buffer.data[off]
        if isinstance(expr, BinaryOp):
            left = self._eval(expr.left, frame)
            if expr.op == "and":
                return bool(left) and bool(self._eval(expr.right, frame))
            if expr.op == "or":
                return bool(left) or bool(self._eval(expr.right, frame))
            right = self._eval(expr.right, frame)
            return _binop(expr.op, left, right)
        if isinstance(expr, UnaryOp):
            inner = self._eval(expr.operand, frame)
            if expr.op == "-":
                return -inner
            if expr.op == "not":
                return not bool(inner)
        if isinstance(expr, Intrinsic):
            args = [self._eval(a, frame) for a in expr.args]
            return _intrinsic(expr.name, args)
        raise RuntimeErrorInProgram(f"cannot evaluate {expr!r}")

    def _store(self, target, value, frame: Frame, stmt: Statement) -> None:
        if isinstance(target, VarRef):
            sym = target.symbol
            if sym in frame.arrays and not sym.is_array:
                view = frame.arrays[sym]
                for obs in self.observers:
                    obs.on_write(view.buffer, view.offset, stmt)
                view.buffer.data[view.offset] = value
                return
            frame.scalars[sym] = self._coerce(sym, value)
            return
        if isinstance(target, ArrayRef):
            view = frame.arrays.get(target.symbol)
            if view is None:
                raise RuntimeErrorInProgram(
                    f"array {target.symbol.name} unbound")
            idx = [int(self._eval(e, frame)) for e in target.indices]
            off = view.flat_index(idx)
            for obs in self.observers:
                obs.on_write(view.buffer, off, stmt)
            view.buffer.data[off] = value
            return
        raise RuntimeErrorInProgram(f"invalid store target {target!r}")

    @staticmethod
    def _coerce(sym: Symbol, value):
        if sym.type == INT:
            return int(value)
        return float(value)

    @staticmethod
    def _truthy(value) -> bool:
        return bool(value)


def _fortran_div(a, b):
    """Fortran ``/``: truncating division on integer operands."""
    if isinstance(a, (int, np.integer)) and isinstance(b, (int,
                                                           np.integer)):
        if b == 0:
            raise RuntimeErrorInProgram("integer division by zero")
        q = abs(a) // abs(b)
        return int(q if (a >= 0) == (b >= 0) else -q)
    return a / b


def _sign(a, b):
    return abs(a) if b >= 0 else -abs(a)


#: Binary operator dispatch, shared by the tree-walking interpreter and the
#: closure-compiling engine (``compile_engine.py``).  ``and``/``or`` are NOT
#: here: they short-circuit and each engine sequences them itself.
BINOPS: Dict[str, Callable] = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": _fortran_div,
    "**": lambda a, b: a ** b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "==": lambda a, b: a == b,
    "/=": lambda a, b: a != b,
}

#: Intrinsic dispatch (callable over the evaluated argument list), shared by
#: both execution engines.
INTRINSICS: Dict[str, Callable[[List], object]] = {
    "min": lambda args: min(args),
    "max": lambda args: max(args),
    "abs": lambda args: abs(args[0]),
    "mod": lambda args: args[0] % args[1],
    "sqrt": lambda args: math.sqrt(args[0]),
    "exp": lambda args: math.exp(args[0]),
    "log": lambda args: math.log(args[0]),
    "sin": lambda args: math.sin(args[0]),
    "cos": lambda args: math.cos(args[0]),
    "float": lambda args: float(args[0]),
    "int": lambda args: int(args[0]),
    "sign": lambda args: _sign(args[0], args[1]),
}


def _binop(op: str, a, b):
    fn = BINOPS.get(op)
    if fn is None:
        raise RuntimeErrorInProgram(f"unknown operator {op}")
    return fn(a, b)


def _intrinsic(name: str, args: List):
    fn = INTRINSICS.get(name)
    if fn is None:
        raise RuntimeErrorInProgram(f"unknown intrinsic {name}")
    return fn(args)


#: Engine selector aliases accepted by :func:`run_program` and friends.
TREE_ENGINE_NAMES = ("tree", "interp", "interpreter", "oracle")
COMPILED_ENGINE_NAMES = ("compiled", "closure")
TRANSPILED_ENGINE_NAMES = ("transpiled", "codegen")


def run_program(program: Program, inputs: Sequence[float] = (),
                observers: Sequence[Observer] = (),
                max_ops: int = 500_000_000, engine: str = "compiled"):
    """Execute ``program`` and return the finished engine.

    ``engine`` selects the execution substrate:

    * ``"compiled"`` (default) — the closure-compiling engine
      (:mod:`repro.runtime.compile_engine`): one compile pass lowers the IR
      to nested Python closures with precomputed frame slots and
      observer-specialized fast paths,
    * ``"transpiled"`` — the code-generating engine
      (:mod:`repro.runtime.transpile`): the program is emitted as plain
      Python source, compiled by CPython, and cached; observer
      configurations the generator cannot express fall back to
      ``"compiled"`` transparently,
    * ``"tree"`` — this module's tree-walking :class:`Interpreter`, kept as
      the reference oracle (exact op-count and output parity is enforced by
      the differential tests).
    """
    if engine in COMPILED_ENGINE_NAMES:
        from .compile_engine import CompiledEngine
        return CompiledEngine(program, inputs, observers, max_ops).run()
    if engine in TRANSPILED_ENGINE_NAMES:
        from .transpile import TranspiledEngine
        return TranspiledEngine(program, inputs, observers, max_ops).run()
    if engine in TREE_ENGINE_NAMES:
        return Interpreter(program, inputs, observers, max_ops).run()
    raise ValueError(
        f"unknown engine {engine!r}; expected one of "
        f"{COMPILED_ENGINE_NAMES + TRANSPILED_ENGINE_NAMES + TREE_ENGINE_NAMES}")
