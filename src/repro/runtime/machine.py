"""Simulated multiprocessor models (substitute for the paper's testbeds).

The paper measures on a Digital AlphaServer 8400 (8×300 MHz 21164, 4 MB
board cache per CPU), a 4-processor SGI Challenge, and SGI Origin 2000s
(Fig 6-1).  None of that hardware is available, so speedups here come from
a deterministic cost model over the interpreter's operation counts:

* sequential time  = ops / ops_per_second,
* a parallel loop costs
  ``spawn + max_p(chunk_ops(p)) * mem_factor + reduction overheads``,
* ``mem_factor ≥ 1`` grows when the per-processor working-set footprint
  exceeds the cache (this is what array contraction improves) and with a
  small per-processor bus-contention term (this is why 8-processor
  speedups trail 4-processor efficiency, as in Fig 4-10).

The model's constants are chosen so the *shapes* of the paper's results
hold; absolute times are meaningless and never compared.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass(frozen=True)
class Machine:
    """A shared-memory multiprocessor model."""

    name: str
    processors: int
    clock_mhz: int
    ops_per_second: float           # scalar execution rate
    cache_bytes: int                # per-processor cache (elements * 8)
    spawn_ops: float                # parallel-loop fork/join cost, in ops
    lock_ops: float                 # acquire+release of one lock, in ops
    mem_penalty_max: float          # mem_factor when footprint >> cache
    bus_contention: float           # per-extra-processor contention factor
    bus_ops_per_miss: float = 2.0   # shared-bus cost per cache-missing access
    description: str = ""

    def miss_ratio(self, footprint_bytes: float) -> float:
        """Fraction of memory accesses missing a single cache when a
        region's working set is ``footprint_bytes``."""
        if footprint_bytes <= self.cache_bytes:
            return 0.0
        return min(1.0, (footprint_bytes - self.cache_bytes)
                   / footprint_bytes)

    def bandwidth_floor_ops(self, accesses: float,
                            footprint_bytes: float) -> float:
        """Serialized shared-memory traffic: a lower bound on any parallel
        region's elapsed time.  This is what keeps memory-bound codes
        (arc3d before loop interchange, flo88 before array contraction)
        from scaling, and what array contraction removes by shrinking the
        working set into the cache."""
        return accesses * self.miss_ratio(footprint_bytes) \
            * self.bus_ops_per_miss

    def seconds(self, ops: float) -> float:
        return ops / self.ops_per_second

    def mem_factor(self, footprint_bytes: float, processors: int) -> float:
        """Memory-system slowdown for a parallel region.

        ``footprint_bytes`` is the region's total touched data; each of
        ``processors`` caches holds roughly 1/P of it under a blocked
        schedule."""
        if processors <= 0:
            processors = 1
        per_proc = footprint_bytes / processors
        if per_proc <= self.cache_bytes:
            ratio = 0.0
        else:
            ratio = min(1.0, (per_proc - self.cache_bytes) / per_proc)
        factor = 1.0 + ratio * (self.mem_penalty_max - 1.0)
        factor *= 1.0 + self.bus_contention * max(0, processors - 1)
        return factor

    def uni_mem_factor(self, footprint_bytes: float) -> float:
        """Uniprocessor cache effect (array contraction helps here too)."""
        if footprint_bytes <= self.cache_bytes:
            return 1.0
        ratio = min(1.0, (footprint_bytes - self.cache_bytes)
                    / footprint_bytes)
        return 1.0 + 0.5 * ratio * (self.mem_penalty_max - 1.0)


# The three machines of the paper's evaluation (Fig 6-1 and chapter 4).
ALPHASERVER_8400 = Machine(
    name="Digital AlphaServer 8400",
    processors=8,
    clock_mhz=300,
    ops_per_second=6.0e7,
    cache_bytes=4 * 1024 * 1024,
    spawn_ops=250.0,
    lock_ops=30.0,
    mem_penalty_max=3.0,
    bus_contention=0.012,
    bus_ops_per_miss=2.0,
    description="8x 300MHz Alpha 21164, bus-based, 4MB external cache/CPU")

SGI_CHALLENGE = Machine(
    name="SGI Challenge",
    processors=4,
    clock_mhz=200,
    ops_per_second=4.0e7,
    cache_bytes=1 * 1024 * 1024,
    spawn_ops=300.0,
    lock_ops=40.0,
    mem_penalty_max=3.5,
    bus_contention=0.02,
    bus_ops_per_miss=2.5,
    description="4x 200MHz R4400, bus-based shared memory")

SGI_ORIGIN = Machine(
    name="SGI Origin 2000",
    processors=32,
    clock_mhz=195,
    ops_per_second=4.0e7,
    cache_bytes=4 * 1024 * 1024,
    spawn_ops=350.0,
    lock_ops=25.0,
    mem_penalty_max=4.0,
    bus_contention=0.004,
    bus_ops_per_miss=2.5,
    description="32x 195MHz R10000, ccNUMA, 4MB L2/CPU")

MACHINES: Dict[str, Machine] = {
    "alphaserver": ALPHASERVER_8400,
    "challenge": SGI_CHALLENGE,
    "origin": SGI_ORIGIN,
}


def with_processors(machine: Machine, processors: int) -> Machine:
    """The same machine restricted/extended to a processor count."""
    return Machine(
        name=machine.name, processors=processors,
        clock_mhz=machine.clock_mhz, ops_per_second=machine.ops_per_second,
        cache_bytes=machine.cache_bytes, spawn_ops=machine.spawn_ops,
        lock_ops=machine.lock_ops, mem_penalty_max=machine.mem_penalty_max,
        bus_contention=machine.bus_contention,
        bus_ops_per_miss=machine.bus_ops_per_miss,
        description=machine.description)
