"""Dynamic substrate: execution engines, analyzers, machine simulation.

Two execution engines share one semantics: the closure-compiling
:class:`CompiledEngine` (default, fast) and the tree-walking
:class:`Interpreter` (the reference oracle).  Every entry point taking an
``engine=`` keyword accepts ``"compiled"`` or ``"tree"``.
"""

from .compile_engine import (CompiledEngine, CompiledProgram,
                             compile_closures, engine_label, make_engine,
                             select_variant, VARIANT_DYNDEP, VARIANT_FULL,
                             VARIANT_LOOPS, VARIANT_NONE, VARIANT_PROFILE)
from .dyndep import (DynamicDependenceAnalyzer, analyze_dependences,
                     reduction_stmt_ids)
from .interpreter import (BINOPS, INTRINSICS, Interpreter, Observer,
                          OpsBudgetExceeded, RuntimeErrorInProgram,
                          budget_error, run_program)
from .machine import (ALPHASERVER_8400, MACHINES, SGI_CHALLENGE, SGI_ORIGIN,
                      Machine, with_processors)
from .parallel_exec import (ATOMIC, MINIMIZED, NAIVE, STAGGERED, TREE,
                            ParallelExecutionResult, ParallelExecutor,
                            execute_parallel)
from .profiler import LoopProfile, LoopProfiler, profile_program
from .transpile import compile_program, transpile_to_python
from .values import ArrayView, Buffer

__all__ = [
    "CompiledEngine", "CompiledProgram", "compile_closures", "engine_label",
    "make_engine", "select_variant", "VARIANT_DYNDEP", "VARIANT_FULL",
    "VARIANT_LOOPS", "VARIANT_NONE", "VARIANT_PROFILE",
    "DynamicDependenceAnalyzer", "analyze_dependences", "reduction_stmt_ids",
    "BINOPS", "INTRINSICS",
    "Interpreter", "Observer", "OpsBudgetExceeded", "RuntimeErrorInProgram",
    "budget_error", "run_program",
    "ALPHASERVER_8400", "MACHINES", "SGI_CHALLENGE", "SGI_ORIGIN", "Machine",
    "with_processors",
    "ATOMIC", "MINIMIZED", "NAIVE", "STAGGERED", "TREE",
    "ParallelExecutionResult",
    "ParallelExecutor", "execute_parallel",
    "LoopProfile", "LoopProfiler", "profile_program",
    "compile_program", "transpile_to_python",
    "ArrayView", "Buffer",
]
