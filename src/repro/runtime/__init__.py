"""Dynamic substrate: execution engines, analyzers, machine simulation.

Three execution engines share one semantics, ordered by speed:

* :class:`TranspiledEngine` (``"transpiled"``) — generates plain Python
  source from the IR and runs it, the fastest substrate; instrumentation
  is injected at codegen time and unsupported observer configurations
  fall back to the closure engine automatically,
* :class:`CompiledEngine` (``"compiled"``, the default) — lowers the IR
  to nested Python closures,
* :class:`Interpreter` (``"tree"``) — the tree-walking reference oracle.

All three produce bit-identical outputs, op counts, COMMON memory and
analyzer state, and raise the same :class:`OpsBudgetExceeded` on budget
exhaustion.  Every entry point taking an ``engine=`` keyword accepts
``"transpiled"``, ``"compiled"`` or ``"tree"``;
:func:`~repro.runtime.compile_engine.engine_label` reports what actually
ran (e.g. ``"transpiled/profile"`` or a fallback's ``"compiled/full"``).
"""

from .compile_engine import (CompiledEngine, CompiledProgram,
                             compile_closures, engine_label, make_engine,
                             select_variant, VARIANT_DYNDEP, VARIANT_FULL,
                             VARIANT_LOOPS, VARIANT_NONE, VARIANT_PROFILE)
from .dyndep import (DynamicDependenceAnalyzer, analyze_dependences,
                     reduction_stmt_ids)
from .interpreter import (BINOPS, INTRINSICS, Interpreter, Observer,
                          OpsBudgetExceeded, RuntimeErrorInProgram,
                          budget_error, run_program)
from .machine import (ALPHASERVER_8400, MACHINES, SGI_CHALLENGE, SGI_ORIGIN,
                      Machine, with_processors)
from .parallel_exec import (ATOMIC, MINIMIZED, NAIVE, STAGGERED, TREE,
                            ParallelExecutionResult, ParallelExecutor,
                            execute_parallel)
from .profiler import LoopProfile, LoopProfiler, profile_program
from .transpile import (TranspiledEngine, codegen_cache_stats,
                        compile_program, reset_codegen_cache,
                        set_codegen_store, transpile_to_python)
from .values import ArrayView, Buffer

__all__ = [
    "CompiledEngine", "CompiledProgram", "compile_closures", "engine_label",
    "make_engine", "select_variant", "VARIANT_DYNDEP", "VARIANT_FULL",
    "VARIANT_LOOPS", "VARIANT_NONE", "VARIANT_PROFILE",
    "DynamicDependenceAnalyzer", "analyze_dependences", "reduction_stmt_ids",
    "BINOPS", "INTRINSICS",
    "Interpreter", "Observer", "OpsBudgetExceeded", "RuntimeErrorInProgram",
    "budget_error", "run_program",
    "ALPHASERVER_8400", "MACHINES", "SGI_CHALLENGE", "SGI_ORIGIN", "Machine",
    "with_processors",
    "ATOMIC", "MINIMIZED", "NAIVE", "STAGGERED", "TREE",
    "ParallelExecutionResult",
    "ParallelExecutor", "execute_parallel",
    "LoopProfile", "LoopProfiler", "profile_program",
    "TranspiledEngine", "codegen_cache_stats", "compile_program",
    "reset_codegen_cache", "set_codegen_store", "transpile_to_python",
    "ArrayView", "Buffer",
]
