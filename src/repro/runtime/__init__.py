"""Dynamic substrate: interpreter, execution analyzers, machine simulation."""

from .dyndep import (DynamicDependenceAnalyzer, analyze_dependences,
                     reduction_stmt_ids)
from .interpreter import (Interpreter, Observer, RuntimeErrorInProgram,
                          run_program)
from .machine import (ALPHASERVER_8400, MACHINES, SGI_CHALLENGE, SGI_ORIGIN,
                      Machine, with_processors)
from .parallel_exec import (ATOMIC, MINIMIZED, NAIVE, STAGGERED, TREE,
                            ParallelExecutionResult, ParallelExecutor,
                            execute_parallel)
from .profiler import LoopProfile, LoopProfiler, profile_program
from .transpile import compile_program, transpile_to_python
from .values import ArrayView, Buffer

__all__ = [
    "DynamicDependenceAnalyzer", "analyze_dependences", "reduction_stmt_ids",
    "Interpreter", "Observer", "RuntimeErrorInProgram", "run_program",
    "ALPHASERVER_8400", "MACHINES", "SGI_CHALLENGE", "SGI_ORIGIN", "Machine",
    "with_processors",
    "ATOMIC", "MINIMIZED", "NAIVE", "STAGGERED", "TREE",
    "ParallelExecutionResult",
    "ParallelExecutor", "execute_parallel",
    "LoopProfile", "LoopProfiler", "profile_program",
    "compile_program", "transpile_to_python",
    "ArrayView", "Buffer",
]
