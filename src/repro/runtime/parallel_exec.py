"""Simulated multiprocessor execution (the speedup substrate).

One instrumented run collects per-region measurements (iteration costs,
touched footprint, access counts, reduction statistics); the cost model
then prices those regions for any processor count, so a processor sweep
(Fig 5-12) needs a single execution.

Model summary:

* only outermost parallel loops execute in parallel; a parallel loop
  encountered while another parallel region is active runs sequentially
  (the paper's dynamic-nesting rule, sections 2.6/4.5),
* the run-time system suppresses parallelism for loops whose measured
  work would be swamped by spawn overhead ("runs the loop sequentially if
  it is considered too fine-grained", section 4.5),
* a parallel region costs
  ``spawn + max(max_p(chunk ops) * mem_factor, bandwidth floor)
  + private finalization + reduction init/finalization``
  following the implementation analysis of section 6.3; the reduction
  lowering strategy is selectable (:data:`NAIVE`, :data:`MINIMIZED`,
  :data:`STAGGERED`, :data:`ATOMIC`),
* the bandwidth floor charges serialized bus traffic for regions whose
  working set misses the cache — the mechanism that keeps memory-bound
  codes (arc3d, pre-contraction flo88) from scaling and that array
  contraction (section 5.6) removes by shrinking the working set.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..ir.program import Program
from ..ir.statements import LoopStmt, Statement
from ..parallelize.plan import (PRIVATE, PRIVATE_FINAL, PRIVATE_USER,
                                REDUCTION, ProgramPlan, VarPlan)
from .interpreter import Interpreter, Observer
from .machine import Machine, with_processors
from .values import Buffer

# Reduction lowering strategies (paper section 6.3)
NAIVE = "naive"            # private copies; serialized whole-array final
MINIMIZED = "minimized"    # private copies over the touched region only
STAGGERED = "staggered"    # minimized + staggered parallel finalization
ATOMIC = "atomic"          # lock around each individual update
TREE = "tree"              # minimized + log2(P) tree combining (6.3.1)

_ELEM_OPS = 2.0            # ops to initialize/accumulate one array element


class RegionStats:
    """Measurements from one dynamic execution of a parallel region."""

    __slots__ = ("loop", "seq_ops", "iter_costs", "buffers",
                 "red_updates", "red_touched", "accesses")

    def __init__(self, loop: LoopStmt, ops_at_enter: int):
        self.loop = loop
        self.seq_ops = ops_at_enter          # entry marker, fixed on exit
        self.iter_costs: List[int] = []
        self.buffers: Dict[int, int] = {}    # buffer id -> byte size
        self.red_updates = 0
        self.red_touched: Set[Tuple[int, int]] = set()
        self.accesses = 0


class LoopTiming:
    """Aggregated accounting for one (static) parallel loop."""

    __slots__ = ("loop", "invocations", "seq_ops", "par_ops", "suppressed")

    def __init__(self, loop: LoopStmt):
        self.loop = loop
        self.invocations = 0
        self.seq_ops = 0.0
        self.par_ops = 0.0
        self.suppressed = 0


class ParallelExecutionResult:
    def __init__(self, machine: Machine):
        self.machine = machine
        self.seq_ops = 0.0          # sequential time, in ops
        self.par_ops = 0.0          # parallel time, in ops
        self.parallel_region_seq_ops = 0.0   # work inside parallel regions
        self.loop_timings: Dict[int, LoopTiming] = {}
        self.outputs: List[float] = []

    @property
    def speedup(self) -> float:
        return self.seq_ops / self.par_ops if self.par_ops else 1.0

    @property
    def coverage(self) -> float:
        """Fraction of sequential time spent inside parallelized regions
        (the Guru's parallelism-coverage metric)."""
        return (self.parallel_region_seq_ops / self.seq_ops
                if self.seq_ops else 0.0)

    def granularity_ms(self) -> float:
        """Average parallel-region work per invocation, in milliseconds of
        sequential machine time (the Guru's granularity metric)."""
        inv = sum(t.invocations for t in self.loop_timings.values())
        if not inv:
            return 0.0
        return self.machine.seconds(
            self.parallel_region_seq_ops / inv) * 1e3

    def seconds_parallel(self) -> float:
        return self.machine.seconds(self.par_ops)

    def seconds_sequential(self) -> float:
        return self.machine.seconds(self.seq_ops)


class _CostObserver(Observer):
    def __init__(self, executor: "ParallelExecutor"):
        self.executor = executor

    def on_loop_enter(self, loop: LoopStmt) -> None:
        self.executor._loop_enter(loop)

    def on_loop_iteration(self, loop: LoopStmt, index_value: int) -> None:
        self.executor._loop_iteration(loop)

    def on_loop_exit(self, loop: LoopStmt) -> None:
        self.executor._loop_exit(loop)

    def on_read(self, buffer: Buffer, offset: int,
                stmt: Optional[Statement]) -> None:
        self.executor._touch(buffer, offset, stmt, False)

    def on_write(self, buffer: Buffer, offset: int,
                 stmt: Optional[Statement]) -> None:
        self.executor._touch(buffer, offset, stmt, True)


class ParallelExecutor:
    """Run a program under a parallelization plan on a machine model."""

    def __init__(self, program: Program, plan: ProgramPlan,
                 machine: Machine, *, processors: Optional[int] = None,
                 reduction_strategy: str = STAGGERED,
                 suppress_factor: float = 2.0,
                 inputs: Sequence[float] = (),
                 max_ops: int = 500_000_000,
                 engine: str = "compiled"):
        self.program = program
        self.plan = plan
        self.machine = (with_processors(machine, processors)
                        if processors else machine)
        self.reduction_strategy = reduction_strategy
        self.suppress_factor = suppress_factor
        self.inputs = inputs
        self.max_ops = max_ops
        self.engine = engine
        self._parallel_ids = {l.stmt_id for l in plan.parallel_loops()}
        self._red_stmts = self._collect_reduction_stmts()
        self._active: Optional[RegionStats] = None
        self._iter_start_ops = 0
        self._iters_seen = 0
        self.regions: List[RegionStats] = []
        self.interp: Optional[Interpreter] = None
        self._total_ops = 0
        self._outputs: List[float] = []
        self._ran = False

    def _collect_reduction_stmts(self) -> Set[int]:
        from ..analysis.reduction import scan_block_reductions
        out: Set[int] = set()
        for proc in self.program.procedures.values():
            for upd in scan_block_reductions(proc.body):
                for inner in upd.stmt.walk():
                    out.add(inner.stmt_id)
        return out

    # -- driver ------------------------------------------------------------
    def run(self) -> ParallelExecutionResult:
        self.measure()
        return self.account(self.machine.processors)

    def measure(self) -> "ParallelExecutor":
        """Execute once and collect region measurements.  The cost observer
        needs memory traffic, so under the compiled engine this runs the
        fully instrumented variant."""
        if self._ran:
            return self
        from .compile_engine import make_engine
        self.interp = make_engine(self.program, self.inputs,
                                  observers=[], max_ops=self.max_ops,
                                  engine=self.engine)
        self.interp.observers.append(_CostObserver(self))
        self.interp.run()
        self._total_ops = self.interp.ops
        self._outputs = list(self.interp.outputs)
        self._ran = True
        return self

    def account(self, processors: int) -> ParallelExecutionResult:
        """Price the measured regions for a processor count."""
        self.measure()
        machine = with_processors(self.machine, processors)
        result = ParallelExecutionResult(machine)
        for region in self.regions:
            self._account_region(region, machine, result)
        covered_seq = sum(t.seq_ops for t in result.loop_timings.values())
        covered_par = sum(t.par_ops for t in result.loop_timings.values())
        result.seq_ops = self._total_ops
        result.par_ops = self._total_ops - covered_seq + covered_par
        result.parallel_region_seq_ops = covered_seq
        result.outputs = list(self._outputs)
        return result

    def results_for(self, processor_counts: Sequence[int]
                    ) -> Dict[int, ParallelExecutionResult]:
        """One measurement run, priced at several processor counts
        (used by the Fig 5-12 sweep)."""
        self.measure()
        return {p: self.account(p) for p in processor_counts}

    # -- real execution (the par_backend bridge) ---------------------------
    def execute(self, processors: int = 2, **runner_kwargs):
        """Run the program's DOALL plan on actual cores.

        Unlike :meth:`account`, which *prices* one instrumented run
        under the cost model, this executes the plan for real:
        offloadable loops are chunked over ``processors`` worker
        processes against shared-memory COMMON storage, bit-identical
        to ``engine="transpiled"`` (outputs, COMMON memory, op counts).
        Returns a :class:`~repro.runtime.par_backend.ParallelRunResult`.
        """
        from .par_backend import ParallelRunner
        runner = ParallelRunner(self.program, self.plan,
                                workers=processors, **runner_kwargs)
        return runner.execute(self.inputs, max_ops=self.max_ops)

    def speedup_report(self, counts: Sequence[int] = (1, 2, 4),
                       repeats: int = 1, **runner_kwargs) -> dict:
        """Measured-vs-predicted speedups over a processor sweep.

        One simulator measurement prices every count; each count is
        then actually executed ``repeats`` times (best wall time kept)
        and compared against the sequential transpiled engine's wall
        time.  Measured speedups only mean something on a host with
        that many free cores — the report records the host core count
        so callers can judge.
        """
        import os
        import time
        from .transpile import load_module

        run = load_module(self.program).namespace["run"]
        seq_wall = None
        outputs = None
        for _ in range(max(1, repeats)):
            t0 = time.perf_counter()
            outputs = run(self.inputs, max_ops=self.max_ops)
            dt = time.perf_counter() - t0
            seq_wall = dt if seq_wall is None else min(seq_wall, dt)

        rows = []
        for p in counts:
            predicted = self.account(p).speedup
            best = None
            res = None
            for _ in range(max(1, repeats)):
                t0 = time.perf_counter()
                res = self.execute(processors=p, **runner_kwargs)
                dt = time.perf_counter() - t0
                best = dt if best is None else min(best, dt)
            rows.append({
                "processors": p,
                "wall_s": best,
                "measured_speedup": seq_wall / best if best else 1.0,
                "predicted_speedup": predicted,
                "ops": res.ops,
                "dispatches": res.dispatches,
                "identical": res.outputs == outputs,
            })
        try:
            cores = len(os.sched_getaffinity(0))
        except AttributeError:
            cores = os.cpu_count() or 1
        return {"seq_wall_s": seq_wall, "host_cores": cores,
                "rows": rows}

    # -- region tracking -----------------------------------------------------
    def _loop_enter(self, loop: LoopStmt) -> None:
        if self._active is not None:
            return
        if loop.stmt_id not in self._parallel_ids:
            return
        self._active = RegionStats(loop, self.interp.ops)
        self._iter_start_ops = self.interp.ops
        self._iters_seen = 0

    def _loop_iteration(self, loop: LoopStmt) -> None:
        region = self._active
        if region is None or region.loop is not loop:
            return
        now = self.interp.ops
        if self._iters_seen > 0:
            region.iter_costs.append(now - self._iter_start_ops)
        self._iter_start_ops = now
        self._iters_seen += 1

    def _loop_exit(self, loop: LoopStmt) -> None:
        region = self._active
        if region is None or region.loop is not loop:
            return
        self._active = None
        now = self.interp.ops
        if self._iters_seen > 0:
            region.iter_costs.append(now - self._iter_start_ops)
        region.seq_ops = now - region.seq_ops
        self.regions.append(region)

    def _touch(self, buffer: Buffer, offset: int,
               stmt: Optional[Statement], is_write: bool) -> None:
        region = self._active
        if region is None:
            return
        region.buffers[id(buffer)] = len(buffer.data) * 8
        region.accesses += 1
        if is_write and stmt is not None and \
                stmt.stmt_id in self._red_stmts:
            region.red_updates += 1
            region.red_touched.add((id(buffer), offset))

    # -- the cost model ----------------------------------------------------------
    def _account_region(self, region: RegionStats, machine: Machine,
                        result: ParallelExecutionResult) -> None:
        loop = region.loop
        timing = result.loop_timings.get(loop.stmt_id)
        if timing is None:
            timing = LoopTiming(loop)
            result.loop_timings[loop.stmt_id] = timing
        timing.invocations += 1
        timing.seq_ops += region.seq_ops

        costs = region.iter_costs
        threshold = self.suppress_factor * machine.spawn_ops
        if region.seq_ops < threshold or len(costs) <= 1 \
                or machine.processors <= 1:
            timing.par_ops += region.seq_ops
            timing.suppressed += 1
            return

        p = min(machine.processors, len(costs))
        chunks = _blocked_chunks(costs, p)
        tmax = max(sum(c) for c in chunks)
        footprint = float(sum(region.buffers.values()))
        mem = machine.mem_factor(footprint, p)

        overhead = machine.spawn_ops
        overhead += self._privatization_overhead(loop, p)
        overhead += self._reduction_overhead(loop, region, p, machine)
        # shared-memory traffic is serialized across processors: a region
        # whose working set misses the cache cannot go faster than the bus
        floor = machine.bandwidth_floor_ops(region.accesses, footprint)
        par = overhead + max(tmax * mem, floor)
        timing.par_ops += min(par, region.seq_ops)

    def _plan_vars(self, loop: LoopStmt, *statuses: str) -> List[VarPlan]:
        lp = self.plan.loops.get(loop.stmt_id)
        if lp is None:
            return []
        return [v for v in lp.vars.values() if v.status in statuses]

    @staticmethod
    def _var_elems(vp: VarPlan) -> int:
        sizes = [s.constant_size() or 1 for s in vp.symbols]
        return max(sizes) if sizes else 1

    def _privatization_overhead(self, loop: LoopStmt, p: int) -> float:
        """PRIVATE_FINAL arrays pay a serialized last-value copy-out."""
        ops = 0.0
        for vp in self._plan_vars(loop, PRIVATE_FINAL):
            ops += self._var_elems(vp) * _ELEM_OPS
        return ops

    def _reduction_overhead(self, loop: LoopStmt, region: RegionStats,
                            p: int, machine: Machine) -> float:
        red_vars = self._plan_vars(loop, REDUCTION)
        if not red_vars:
            return 0.0
        strategy = self.reduction_strategy
        if strategy == ATOMIC:
            # every individual update takes a lock (section 6.3.5); they
            # spread over the processors but serialize on contention
            return region.red_updates / max(1, p) * machine.lock_ops \
                + region.red_updates * 0.5

        ops = 0.0
        for vp in red_vars:
            full = self._var_elems(vp)
            touched = len(region.red_touched) if region.red_touched else full
            elems = full if strategy == NAIVE else min(full, touched)
            init = elems * _ELEM_OPS               # parallel across procs
            if strategy in (NAIVE, MINIMIZED):
                final = elems * p * _ELEM_OPS + p * machine.lock_ops
            elif strategy == TREE:
                # "tree combinations can be used to reduce the
                # serialization if the number of processors is large"
                levels = max(1, (p - 1).bit_length())
                final = elems * levels * _ELEM_OPS \
                    + levels * machine.lock_ops
            else:                                   # STAGGERED
                final = elems * _ELEM_OPS + p * machine.lock_ops
            ops += init + final
        return ops


def _blocked_chunks(costs: List[int], p: int) -> List[List[int]]:
    """Blocked iteration partition: iteration j goes to chunk j*p//n."""
    n = len(costs)
    chunks: List[List[int]] = [[] for _ in range(p)]
    for j, c in enumerate(costs):
        chunks[j * p // n].append(c)
    return chunks


def execute_parallel(program: Program, plan: ProgramPlan, machine: Machine,
                     **kwargs) -> ParallelExecutionResult:
    return ParallelExecutor(program, plan, machine, **kwargs).run()
