"""The Dynamic Dependence Analyzer (paper section 2.5.2).

"The dynamic dependence analyzer works by instrumenting the read and write
accesses of the program and keeping track of the most recent write
operations for each memory location.  It is aware of the induction
variables and reduction operations found by the compiler, and will ignore
dependences on these variables.  It also ignores anti-dependences and can
detect parallelism that requires data to be privatized."

Implementation notes:

* shadow memory maps (buffer, offset) → the loop-iteration snapshot of the
  most recent write; a read whose last write came from a *different
  iteration* of a still-active loop is a loop-carried flow dependence for
  that loop,
* reads preceded by a write in the same iteration never trigger (that is
  the privatization-awareness),
* statements the compiler recognized as reduction updates are skipped, as
  are accesses to induction/loop-index scalars (scalar locals are not
  buffer-backed at all, matching the tool's array focus),
* ``sample_stride`` skips batches of iterations — the speed-up trick of
  section 2.5.2 ("the instrumentation can skip batches of iterations
  because the analysis result is used only as a hint").
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..ir.program import Program
from ..ir.statements import LoopStmt, Statement
from .interpreter import Interpreter, Observer
from .values import Buffer


#: Upper bound on distinct (writer line, reader line) witness pairs
#: remembered per loop — they are diagnostics, not a dependence census.
_MAX_WITNESSES = 4


class _ActiveLoop:
    __slots__ = ("loop", "invocation", "iteration")

    def __init__(self, loop: LoopStmt, invocation: int):
        self.loop = loop
        self.invocation = invocation
        self.iteration = 0


class DynamicDependenceAnalyzer(Observer):
    """Observer detecting loop-carried flow dependences in one execution."""

    def __init__(self, skip_stmt_ids: Optional[Set[int]] = None,
                 sample_stride: int = 1):
        self.skip_stmt_ids = skip_stmt_ids or set()
        self.sample_stride = max(1, sample_stride)
        #: Sampling window: out of every ``2 * stride`` iterations, the
        #: two adjacent ones with counter ≡ 0, 1 (mod window) are kept —
        #: a *pair* so distance-1 flow dependences between consecutive
        #: sampled iterations stay observable, while the other
        #: ``2*(stride-1)`` iterations are skipped entirely (the §2.5.2
        #: batch-skipping speedup).  This is a *heuristic*: sampling is
        #: lossy by design (§2.5.2 uses the result "only as a hint"),
        #: and a distance-1 pair straddling a window boundary (write at
        #: iteration ≡ 1, read at ≡ 2 mod window) is sampled out at
        #: stride > 1.  At stride 1 the window degenerates to "sample
        #: everything".
        self._window = 2 * self.sample_stride
        #: Instrumented accesses actually recorded vs. skipped by the
        #: sampler — the observability hook for the stride regression
        #: tests (strictly fewer sampled accesses at stride 2 than 1).
        self.sampled_accesses = 0
        self.skipped_accesses = 0
        self.interpreter: Optional[Interpreter] = None
        self._stack: List[_ActiveLoop] = []
        self._invocations: Dict[int, int] = {}
        # (buffer id, offset) -> tuple of (loop id, invocation, iteration)
        self._last_write: Dict[Tuple[int, int], Tuple] = {}
        self._buffers: Dict[int, Buffer] = {}
        # loop stmt_id -> number of observed loop-carried flow dependences
        self.carried: Dict[int, int] = {}
        # (loop stmt_id, buffer name) -> count, for per-variable queries
        self.carried_by_var: Dict[Tuple[int, str], int] = {}
        # loop stmt_id -> sample pairs (writer stmt line, reader stmt line);
        # at most _MAX_WITNESSES distinct pairs are kept per loop
        self.witnesses: Dict[int, List[Tuple[int, int]]] = {}

    def attach(self, interpreter: Interpreter
               ) -> "DynamicDependenceAnalyzer":
        self.interpreter = interpreter
        interpreter.observers.append(self)
        return self

    # -- observer ------------------------------------------------------------
    def on_loop_enter(self, loop: LoopStmt) -> None:
        inv = self._invocations.get(loop.stmt_id, 0) + 1
        self._invocations[loop.stmt_id] = inv
        self._stack.append(_ActiveLoop(loop, inv))

    def on_loop_iteration(self, loop: LoopStmt, index_value: int) -> None:
        self._stack[-1].iteration += 1

    def on_loop_exit(self, loop: LoopStmt) -> None:
        self._stack.pop()

    def _sampled(self) -> bool:
        """True when the *innermost* active loop is inside its window.

        The window keeps the adjacent iteration pair (counter ≡ 0 and 1
        mod ``2 * stride``) of the innermost loop and skips the rest of
        the batch.  The old predicate (``iteration % stride in (0, 1)``)
        degenerated at stride 2: *every* iteration is ≡ 0 or ≡ 1
        (mod 2), so nothing was ever skipped and the §2.5.2 speedup was
        a no-op.  Doubling the modulus actually skips
        ``2 * (stride - 1)`` of every ``2 * stride`` iterations while
        keeping an adjacent pair in-window, so distance-1 dependences
        between consecutive sampled iterations remain observable.

        This is a **heuristic**, not a preservation guarantee: a
        distance-1 pair that straddles a window boundary (write at
        iteration ≡ 1, read at ≡ 2 mod window) is sampled out at
        stride > 1 — acceptable because the paper uses the dynamic
        result only as a hint, and the corpus regression test checks
        the detected-dependence sets match on the 6-workload corpus,
        not in general.  Only the innermost counter is windowed:
        requiring *every* active loop to sit in its window
        simultaneously (a joint ``all()``) provably loses dependences
        on nested-loop workloads — outer-loop carried dependences are
        still witnessed because each outer iteration replays the
        innermost window."""
        if self.sample_stride == 1 or not self._stack:
            return True
        return self._stack[-1].iteration % self._window in (0, 1)

    def _snapshot(self) -> Tuple:
        return tuple((a.loop.stmt_id, a.invocation, a.iteration)
                     for a in self._stack)

    def on_write(self, buffer: Buffer, offset: int,
                 stmt: Optional[Statement]) -> None:
        if stmt is not None and stmt.stmt_id in self.skip_stmt_ids:
            return
        if not self._sampled():
            self.skipped_accesses += 1
            return
        self.sampled_accesses += 1
        self._buffers[id(buffer)] = buffer
        key = (id(buffer), offset)
        self._last_write[key] = (self._snapshot(),
                                 stmt.line if stmt else 0)

    def on_read(self, buffer: Buffer, offset: int,
                stmt: Optional[Statement]) -> None:
        if stmt is not None and stmt.stmt_id in self.skip_stmt_ids:
            return
        if not self._sampled():
            self.skipped_accesses += 1
            return
        self.sampled_accesses += 1
        key = (id(buffer), offset)
        got = self._last_write.get(key)
        if got is None:
            return
        write_snapshot, write_line = got
        current = {(lid, inv): it for lid, inv, it in self._snapshot()}
        for lid, inv, it in write_snapshot:
            cur_it = current.get((lid, inv))
            if cur_it is not None and cur_it != it:
                self.carried[lid] = self.carried.get(lid, 0) + 1
                vkey = (lid, buffer.name)
                self.carried_by_var[vkey] = \
                    self.carried_by_var.get(vkey, 0) + 1
                pair = (write_line, stmt.line if stmt else 0)
                pairs = self.witnesses.setdefault(lid, [])
                # dedupe *before* the cap: a hot (writer, reader) pair
                # repeating millions of times is one witness, and must
                # never crowd out later distinct diagnostic pairs
                if pair not in pairs and len(pairs) < _MAX_WITNESSES:
                    pairs.append(pair)

    # -- queries -----------------------------------------------------------
    def has_carried_dependence(self, loop: LoopStmt) -> bool:
        return self.carried.get(loop.stmt_id, 0) > 0

    def dependence_count(self, loop: LoopStmt) -> int:
        return self.carried.get(loop.stmt_id, 0)


def analyze_dependences(program: Program, inputs=(),
                        skip_stmt_ids: Optional[Set[int]] = None,
                        sample_stride: int = 1,
                        max_ops: int = 500_000_000,
                        engine: str = "compiled"
                        ) -> DynamicDependenceAnalyzer:
    """Run one instrumented execution and return the analyzer.

    ``engine`` selects the execution substrate (see
    :func:`repro.runtime.interpreter.run_program`).  Under the compiled
    engine a lone fresh analyzer is compiled *into* the engine
    (``VARIANT_DYNDEP``): flat per-buffer shadow memory, cached
    activation-cell snapshots, a hoisted sampling flag, and compile-time
    skip sets replace the per-access callback protocol — results stay
    bit-identical to this observer running on the tree-walking oracle.
    The span is named ``instrument.dyndep`` so traces separate
    instrumented runs from clean execution; its ``engine_variant`` tag
    records which path ran."""
    from ..obs import get_tracer
    from .compile_engine import engine_label, make_engine
    with get_tracer().span("instrument.dyndep", program=program.name,
                           engine=engine, stride=sample_stride) as sp:
        analyzer = DynamicDependenceAnalyzer(skip_stmt_ids, sample_stride)
        interp = make_engine(program, inputs, observers=[], max_ops=max_ops,
                             engine=engine)
        analyzer.attach(interp)
        interp.run()
        sp.tag(ops=interp.ops,
               carried_loops=len(analyzer.carried),
               carried_total=sum(analyzer.carried.values()),
               sampled_accesses=analyzer.sampled_accesses,
               skipped_accesses=analyzer.skipped_accesses,
               engine_variant=engine_label(interp))
    return analyzer


def reduction_stmt_ids(program: Program) -> Set[int]:
    """Statement ids of syntactic commutative updates — the compiler
    knowledge the analyzer is 'aware of'."""
    from ..analysis.reduction import scan_block_reductions
    out: Set[int] = set()
    for proc in program.procedures.values():
        for upd in scan_block_reductions(proc.body):
            out.add(upd.stmt.stmt_id)
            for inner in upd.stmt.walk():
                out.add(inner.stmt_id)
    return out
