"""Runtime storage: flat column-major arrays and views.

Fortran storage semantics the workloads rely on:

* arrays are column-major storage sequences with per-dimension lower
  bounds,
* COMMON blocks are single flat buffers; each procedure's view lays its
  members over the buffer at element offsets (two views of different
  shapes alias, as in hydro2d),
* passing ``a(k)`` to an array formal passes the storage sequence starting
  at that element (hydro's ``CALL init(aif3(k1), n)``).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..ir.symbols import Symbol


class Buffer:
    """A flat storage sequence with a stable identity for the dynamic
    dependence analyzer."""

    __slots__ = ("name", "data")
    _counter = [0]

    def __init__(self, name: str, size: int, dtype=np.float64):
        self.name = name
        self.data = np.zeros(size, dtype=dtype)

    def __len__(self):
        return len(self.data)

    def __repr__(self):
        return f"Buffer({self.name}, {len(self.data)})"


class ArrayView:
    """A (possibly offset) view of a buffer with shape metadata."""

    __slots__ = ("buffer", "offset", "lows", "extents", "strides")

    def __init__(self, buffer: Buffer, offset: int, lows: Sequence[int],
                 extents: Sequence[Optional[int]]):
        self.buffer = buffer
        self.offset = offset
        self.lows = list(lows)
        self.extents = list(extents)
        strides: List[int] = []
        acc = 1
        for ext in self.extents:
            strides.append(acc)
            acc *= ext if ext is not None else 1
        self.strides = strides

    @property
    def rank(self) -> int:
        return len(self.extents)

    def flat_index(self, indices: Sequence[int]) -> int:
        """Flat element address inside the buffer (bounds unchecked beyond
        the buffer itself, like real Fortran)."""
        pos = self.offset
        for k, idx in enumerate(indices):
            pos += (idx - self.lows[k]) * self.strides[k]
        return pos

    def load(self, indices: Sequence[int]) -> float:
        return self.buffer.data[self.flat_index(indices)]

    def store(self, indices: Sequence[int], value) -> None:
        self.buffer.data[self.flat_index(indices)] = value

    def size(self) -> int:
        total = 1
        for ext in self.extents:
            total *= ext if ext is not None else 1
        return total

    def subview_at(self, indices: Sequence[int]) -> "ArrayView":
        """View starting at the given element (sequence association for
        element actuals): rank collapses to 1-D open-ended."""
        start = self.flat_index(indices)
        remaining = len(self.buffer) - start
        return ArrayView(self.buffer, start, [1], [remaining])

    def __repr__(self):
        return (f"ArrayView({self.buffer.name}+{self.offset}, "
                f"extents={self.extents})")


def view_for_symbol(sym: Symbol, buffer: Buffer, offset: int,
                    dim_values: Sequence[Tuple[int, Optional[int]]]
                    ) -> ArrayView:
    """Build a view for a declared array.  ``dim_values`` holds evaluated
    (low, high) per dimension; assumed-size dims get an open extent."""
    lows = [lo for lo, _ in dim_values]
    extents = [(hi - lo + 1) if hi is not None else None
               for lo, hi in dim_values]
    return ArrayView(buffer, offset, lows, extents)
