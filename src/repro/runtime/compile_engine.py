"""Closure-compiled execution engine for the dynamic-analysis substrate.

The tree-walking :class:`~repro.runtime.interpreter.Interpreter` re-does
``isinstance`` dispatch, ``Dict[Symbol, ...]`` probes, and an observer loop
on every expression node of every iteration.  This module performs that
work **once per procedure** instead: a one-pass compiler lowers the IR to
nested Python closures, and executing a loop iteration is then just calling
a tuple of prebuilt functions.

Design
------

* **Precomputed frame layouts.**  Every procedure activation is a flat
  Python ``list``; each symbol is resolved to a list index (a *slot*) at
  compile time.  Scalars live directly in their slot; arrays and
  buffer-backed COMMON scalars hold an :class:`~repro.runtime.values.ArrayView`.
  No ``Dict[Symbol, ...]`` probe survives into the hot path.

* **Observer fast paths.**  Each procedure compiles into one of five
  variants, selected at run start from the attached observers:

  - :data:`VARIANT_NONE` — no observers: loop drivers are tight ``while``
    loops with **zero** callback overhead,
  - :data:`VARIANT_LOOPS` — loop/call events only (generic loop
    observers): array reads/writes stay callback-free,
  - :data:`VARIANT_FULL` — full read/write instrumentation through the
    generic :class:`Observer` callback protocol (duck-typed observers,
    the parallel-machine cost observer, observer *combinations*),
  - :data:`VARIANT_PROFILE` — the **instrumented fast path** for the
    Loop Profile Analyzer: no callbacks at all; every loop driver does
    its own op-counter-delta accounting (entry snapshot, local
    iteration counter, exit accumulate) against dense per-loop
    accumulator arrays assigned at compile time,
  - :data:`VARIANT_DYNDEP` — the **instrumented fast path** for the
    Dynamic Dependence Analyzer: shadow memory is a per-buffer flat
    list instead of a ``(buffer_id, offset)``-keyed dict, loop-stack
    snapshots are cached tuples of mutable activation cells (no
    per-read dict comprehension), sampling-window membership is a
    single engine flag maintained at loop events (hoisted out of the
    per-access path), and reduction/induction skip sets plus witness
    line numbers are resolved to per-statement constants at compile
    time.

  The specialized variants are chosen by :func:`CompiledEngine.run`
  only when the *exact* analyzer types are attached alone and fresh
  (see ``_specialized_variant``); any other observer mix falls back to
  the generic callback variants, which behave exactly like the
  tree-walking interpreter.  Both paths are bit-identical to the
  oracle — same ``LoopProfile`` numbers, same detected-dependence sets,
  witness pairs, and sampling counters — enforced by the whole-corpus
  instrumented-parity suite and differential fuzzing.

* **Exact op-count parity.**  The tree-walker charges one abstract op per
  expression node and statement.  The compiler pre-sums those charges per
  statement (per arm/operand for short-circuit constructs) and adds them in
  batches, in an order that keeps ``engine.ops`` exact at every observer
  callback boundary.  The differential tests assert bit-identical outputs,
  COMMON buffer contents, and op counts against the oracle interpreter.

The tree-walking interpreter remains the reference oracle; both engines
share the operator/intrinsic dispatch tables (``BINOPS``/``INTRINSICS``).
"""

from __future__ import annotations

import math

from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..ir.expressions import (ArrayRef, BinaryOp, Const, Expression,
                              Intrinsic, StrConst, UnaryOp, VarRef)
from ..ir.program import Procedure, Program
from ..ir.statements import (AssignStmt, Block, CallStmt, CycleStmt,
                             ExitStmt, IfStmt, IoStmt, LoopStmt, NoopStmt,
                             ReturnStmt, Statement, StopStmt)
from ..ir.symbols import INT, Symbol
from .interpreter import (BINOPS, INTRINSICS, COMPILED_ENGINE_NAMES,
                          TRANSPILED_ENGINE_NAMES,
                          TREE_ENGINE_NAMES, Interpreter, Observer,
                          RuntimeErrorInProgram, budget_error, _Cycle,
                          _Exit, _fortran_div, _Return, _Stop)
from .values import ArrayView, Buffer

VARIANT_NONE = "none"
VARIANT_LOOPS = "loops"
VARIANT_FULL = "full"
VARIANT_PROFILE = "profile"
VARIANT_DYNDEP = "dyndep"

#: Direct single-argument intrinsic fast paths (same semantics as the
#: shared ``INTRINSICS`` table entries they shadow).
_ONE_ARG = {"abs": abs, "sqrt": math.sqrt, "exp": math.exp,
            "log": math.log, "sin": math.sin, "cos": math.cos,
            "float": float, "int": int}


def select_variant(observers: Sequence[Observer]) -> str:
    """Pick the cheapest compiled variant that still delivers every
    callback an attached observer actually overrides.  Unknown (duck-typed)
    observers conservatively get the full variant — which calls every hook
    exactly like the tree-walking interpreter does."""
    needs_rw = False
    needs_loops = False
    for obs in observers:
        t = type(obs)
        if not isinstance(obs, Observer):
            return VARIANT_FULL
        if (t.on_read is not Observer.on_read
                or t.on_write is not Observer.on_write):
            needs_rw = True
        if (t.on_loop_enter is not Observer.on_loop_enter
                or t.on_loop_iteration is not Observer.on_loop_iteration
                or t.on_loop_exit is not Observer.on_loop_exit
                or t.on_call is not Observer.on_call):
            needs_loops = True
    if needs_rw:
        return VARIANT_FULL
    if needs_loops:
        return VARIANT_LOOPS
    return VARIANT_NONE


def _int_valued(e: Expression) -> bool:
    """True when ``e`` statically always evaluates to a Python int, so the
    compiled subscript can skip the ``int()`` conversion the oracle
    performs (a no-op on ints)."""
    if isinstance(e, Const):
        return isinstance(e.value, (int, np.integer)) \
            and not isinstance(e.value, bool)
    if isinstance(e, VarRef):
        sym = e.symbol
        if sym.is_const:
            return isinstance(sym.const_value, (int, np.integer))
        return (not sym.is_array and sym.type == INT
                and sym.storage == "local")
    return False


def _specialized_variant(observers: Sequence[Observer]) -> Optional[str]:
    """Upgrade a generic observer variant to an instrumented fast path.

    Fires only when exactly one observer of the *exact* analyzer type is
    attached (subclasses may override behaviour, so they fall back to the
    generic callback protocol) and the analyzer is *fresh* — an analyzer
    carrying state from a previous run must keep accumulating through the
    oracle-identical callback path."""
    if len(observers) != 1:
        return None
    obs = observers[0]
    from .dyndep import DynamicDependenceAnalyzer
    from .profiler import LoopProfiler
    t = type(obs)
    if t is LoopProfiler:
        if obs.profiles or obs._stack:
            return None
        return VARIANT_PROFILE
    if t is DynamicDependenceAnalyzer:
        if (obs.carried or obs.carried_by_var or obs.witnesses
                or obs._last_write or obs._stack or obs._invocations
                or obs.sampled_accesses or obs.skipped_accesses):
            return None
        return VARIANT_DYNDEP
    return None


def engine_label(engine) -> str:
    """Human-readable engine tag for logs/spans: ``"tree"`` for the
    tree-walking oracle, ``"compiled/<variant>"`` for the closure engine,
    ``"transpiled/<variant>"`` for the code-generating engine — or the
    ``compiled/<variant>`` it fell back to (call after ``run()`` — the
    variant is chosen at run start)."""
    lbl = getattr(engine, "label", None)
    if lbl is not None:
        return lbl
    v = getattr(engine, "variant", None)
    return "tree" if v is None else f"compiled/{v}"


class _ProfileRun:
    """Per-run object for :data:`VARIANT_PROFILE`: a compile-time registry
    assigning each loop a dense accumulator index, plus the runtime
    accumulator lists themselves (they grow as loops are discovered, and
    the loop drivers close over them directly — no per-event dict probe,
    no engine attribute loads).  ``order`` records first-touch order so
    the filled-back ``profiles`` dict has oracle-identical insertion
    order."""

    __slots__ = ("loops", "_idx", "total", "inv", "iters", "seen", "order")

    def __init__(self):
        self.loops: List[LoopStmt] = []
        self._idx: Dict[int, int] = {}
        self.total: List[int] = []
        self.inv: List[int] = []
        self.iters: List[int] = []
        self.seen: List[bool] = []
        self.order: List[int] = []

    def index(self, loop: LoopStmt) -> int:
        i = self._idx.get(loop.stmt_id)
        if i is None:
            i = len(self.loops)
            self._idx[loop.stmt_id] = i
            self.loops.append(loop)
            self.total.append(0)
            self.inv.append(0)
            self.iters.append(0)
            self.seen.append(False)
        return i


class _DyndepRun:
    """Per-run object for :data:`VARIANT_DYNDEP`: the compile-time
    constants (reduction/induction skip set resolved to per-statement
    booleans, sampling window — ``0`` disables windowing at stride 1 so
    the per-access check is a single truthy flag load) plus the runtime
    dependence state the access closures close over directly.

    * ``stack`` holds mutable activation cells ``[loop_stmt_id,
      invocation, iteration]``; on loop exit the cell's iteration field is
      set to ``None`` (a dead marker), which is exactly the oracle's
      "``(lid, inv)`` no longer active" condition without any per-read
      dict build.
    * ``snap`` caches the current write snapshot — a tuple of
      ``(cell, iteration_at_snapshot)`` pairs — and is invalidated
      (``None``) whenever the stack or an iteration counter changes, so
      consecutive writes in one iteration share a single tuple.
    * ``shadow`` maps ``id(buffer)`` to a flat per-offset list of
      ``(snapshot, writer_line)`` entries (no tuple-key hashing);
      ``bufs`` pins every written buffer exactly like the oracle's
      ``_buffers`` so ids are never recycled.
    * ``flag`` is the hoisted sampling-window membership, maintained by
      the loop drivers instead of being recomputed per access.
    """

    __slots__ = ("skip_ids", "stride", "window",
                 "stack", "inv", "snap", "flag", "shadow", "bufs",
                 "sampled", "skipped", "carried", "carried_by_var",
                 "witnesses", "maxw")

    def __init__(self, skip_ids, stride: int, max_witnesses: int):
        self.skip_ids = frozenset(skip_ids or ())
        self.stride = max(1, int(stride))
        self.window = 0 if self.stride == 1 else 2 * self.stride
        self.stack: List[list] = []
        self.inv: Dict[int, int] = {}
        self.snap: Optional[tuple] = ()    # empty stack == empty snapshot
        self.flag = True
        self.shadow: Dict[int, list] = {}
        self.bufs: Dict[int, Buffer] = {}
        self.sampled = 0
        self.skipped = 0
        self.carried: Dict[int, int] = {}
        self.carried_by_var: Dict[Tuple[int, str], int] = {}
        self.witnesses: Dict[int, List[Tuple[int, int]]] = {}
        self.maxw = max_witnesses

    def record(self, lid: int, bname: str, wline: int, rline: int) -> None:
        """One observed loop-carried flow dependence (oracle-identical
        bookkeeping: census counters plus deduped, capped witness pairs —
        dedupe applies *before* the cap so a hot pair can never crowd out
        distinct diagnostics)."""
        self.carried[lid] = self.carried.get(lid, 0) + 1
        vkey = (lid, bname)
        self.carried_by_var[vkey] = self.carried_by_var.get(vkey, 0) + 1
        pairs = self.witnesses.setdefault(lid, [])
        pair = (wline, rline)
        if pair not in pairs and len(pairs) < self.maxw:
            pairs.append(pair)


def _fill_profiler(obs, state: _ProfileRun) -> None:
    """Deliver fast-path accumulators into a :class:`LoopProfiler`,
    preserving the oracle's ``profiles`` insertion order (first touch)."""
    from .profiler import LoopProfile
    loops = state.loops
    profiles = obs.profiles
    for i in state.order:
        loop = loops[i]
        prof = profiles.get(loop.stmt_id)
        if prof is None:
            prof = LoopProfile(loop)
            profiles[loop.stmt_id] = prof
        prof.total_ops += state.total[i]
        prof.invocations += state.inv[i]
        prof.iterations += state.iters[i]


def _fill_dyndep(obs, state: _DyndepRun) -> None:
    """Deliver fast-path results into a :class:`DynamicDependenceAnalyzer`
    — dependence census, witness pairs, sampling counters, and the
    reconstructed ``(buffer id, offset)``-keyed last-write map."""
    obs.sampled_accesses += state.sampled
    obs.skipped_accesses += state.skipped
    for lid, n in state.carried.items():
        obs.carried[lid] = obs.carried.get(lid, 0) + n
    for vkey, n in state.carried_by_var.items():
        obs.carried_by_var[vkey] = obs.carried_by_var.get(vkey, 0) + n
    maxw = state.maxw
    for lid, pairs in state.witnesses.items():
        dst = obs.witnesses.setdefault(lid, [])
        for pair in pairs:
            if pair not in dst and len(dst) < maxw:
                dst.append(pair)
    obs._invocations.update(state.inv)
    obs._buffers.update(state.bufs)
    for bid, sh in state.shadow.items():
        for off, ent in enumerate(sh):
            if ent is not None:
                snap = tuple((cell[0], cell[1], it) for cell, it in ent[0])
                obs._last_write[(bid, off)] = (snap, ent[1])


class CompiledProcedure:
    """One procedure lowered to closures for one observer variant."""

    __slots__ = ("name", "make_frame", "body", "formal_slots")

    def __init__(self, name: str):
        self.name = name
        self.make_frame: Callable = None
        self.body: Tuple[Callable, ...] = ()
        self.formal_slots: List[int] = []


class _ProcCompiler:
    """Compiles one :class:`Procedure` into a :class:`CompiledProcedure`."""

    def __init__(self, program: Program, proc: Procedure, variant: str,
                 procs: Dict[str, CompiledProcedure], plan=None):
        self.program = program
        self.proc = proc
        self.variant = variant
        self.plan = plan            # _ProfilePlan / _DyndepPlan / None
        self.full = variant == VARIANT_FULL
        self.events = variant in (VARIANT_LOOPS, VARIANT_FULL)
        self.profile = variant == VARIANT_PROFILE
        self.dyn = variant == VARIANT_DYNDEP
        self.procs = procs          # shared, filled lazily (recursion-safe)
        self._slots: Dict[int, int] = {}      # id(sym) -> slot
        self._shadow: Dict[int, int] = {}     # id(sym) -> shadow slot
        self._nslots = 0
        #: Compile-time mirror of the oracle's runtime ``current_stmt``:
        #: the statement an access is attributed to (skip-set membership
        #: and witness line numbers become per-site constants).  The one
        #: knowing divergence: copy-back subscript reads attribute to the
        #: CallStmt, where the oracle leaves ``current_stmt`` pointing at
        #: the callee's last-executed statement — a stale value no corpus
        #: or fuzz program depends on (skip sets never contain CallStmts,
        #: and the whole-corpus parity suite guards the witness lines).
        self._cur_stmt: Optional[Statement] = None

    def _dd_site(self) -> Tuple[bool, int]:
        """Resolve the current statement against the dyndep plan:
        ``(instrument?, witness line)``.  Statements in the compiler-known
        reduction/induction skip set compile to the plain (uninstrumented)
        closures — exactly the oracle's early return, which also bypasses
        the sampling counters."""
        s = self._cur_stmt
        if s is not None and s.stmt_id in self.plan.skip_ids:
            return False, 0
        return True, (s.line if s is not None else 0)

    # -- slots ---------------------------------------------------------------
    def slot(self, sym: Symbol) -> int:
        k = self._slots.get(id(sym))
        if k is None:
            k = self._nslots
            self._nslots += 1
            self._slots[id(sym)] = k
        return k

    def shadow_slot(self, sym: Symbol) -> int:
        """A write-only slot for loop indices that are buffer-backed: the
        oracle writes such indices into ``frame.scalars`` where they shadow
        (and never reach) the COMMON buffer — reads keep going to the
        buffer.  A dedicated dead slot reproduces that exactly."""
        k = self._shadow.get(id(sym))
        if k is None:
            k = self._nslots
            self._nslots += 1
            self._shadow[id(sym)] = k
        return k

    @staticmethod
    def _buffer_backed(sym: Symbol) -> bool:
        """Scalars living in a COMMON buffer (the oracle keeps them in
        ``frame.arrays`` as one-element views)."""
        return sym.is_common and not sym.is_array

    def _index_slot(self, sym: Symbol) -> int:
        if self._buffer_backed(sym) or sym.is_const:
            return self.shadow_slot(sym)
        return self.slot(sym)

    # -- expressions ---------------------------------------------------------
    def _c_expr(self, e: Expression) -> Tuple[Callable, int]:
        """Compile ``e`` to ``fn(st, frame) -> value`` plus the static op
        count charged by the caller.  Short-circuit operands account for
        their own (conditional) ops inside the closure."""
        full = self.full
        if isinstance(e, Const) or isinstance(e, StrConst):
            v = e.value
            return (lambda st, f: v), 1
        if isinstance(e, VarRef):
            sym = e.symbol
            if sym.is_const:
                v = sym.const_value
                return (lambda st, f: v), 1
            if self._buffer_backed(sym):
                k = self.slot(sym)
                if full:
                    def rd(st, f, k=k):
                        vw = f[k]
                        b = vw.buffer
                        o = vw.offset
                        for ob in st.observers:
                            ob.on_read(b, o, st.current_stmt)
                        return b.data[o]
                    return rd, 1
                if self.dyn:
                    site, rline = self._dd_site()
                    if site:
                        dd = self.plan
                        shadow_get = dd.shadow.get
                        record = dd.record

                        def rd(st, f, k=k, rline=rline):
                            vw = f[k]
                            b = vw.buffer
                            o = vw.offset
                            if dd.flag:
                                dd.sampled += 1
                                sh = shadow_get(id(b))
                                if sh is not None:
                                    ent = sh[o]
                                    if ent is not None:
                                        snap_w = ent[0]
                                        # identity: write was in this
                                        # very iteration -> never carried
                                        if snap_w is not dd.snap:
                                            for cell, wit in snap_w:
                                                cur = cell[2]
                                                if cur is not None \
                                                        and cur != wit:
                                                    record(cell[0],
                                                           b.name,
                                                           ent[1], rline)
                            else:
                                dd.skipped += 1
                            return b.data[o]
                        return rd, 1

                def rd(st, f, k=k):
                    vw = f[k]
                    return vw.buffer.data[vw.offset]
                return rd, 1
            if sym.is_array:
                # the oracle resolves a bare VarRef of an array symbol via
                # frame.scalars.get(sym, 0) -> always 0
                return (lambda st, f: 0), 1
            k = self.slot(sym)
            return (lambda st, f: f[k]), 1
        if isinstance(e, ArrayRef):
            return self._c_array_load(e)
        if isinstance(e, BinaryOp):
            return self._c_binop(e)
        if isinstance(e, UnaryOp):
            inner, n = self._c_expr(e.operand)
            if e.op == "-":
                return (lambda st, f: -inner(st, f)), 1 + n
            if e.op == "not":
                return (lambda st, f: not bool(inner(st, f))), 1 + n
            msg = f"cannot evaluate {e!r}"

            def bad(st, f, inner=inner):
                inner(st, f)
                raise RuntimeErrorInProgram(msg)
            return bad, 1 + n
        if isinstance(e, Intrinsic):
            return self._c_intrinsic(e)
        msg = f"cannot evaluate {e!r}"

        def bad2(st, f):
            raise RuntimeErrorInProgram(msg)
        return bad2, 1

    def _c_index(self, e: Expression) -> Tuple[Callable, int]:
        """Compile a subscript to ``fn(st, f) -> int``."""
        fn, n = self._c_expr(e)
        if _int_valued(e):
            return fn, n
        return (lambda st, f: int(fn(st, f))), n

    def _c_offset(self, indices: Sequence[Expression]
                  ) -> Tuple[Callable, int]:
        """Compile subscripts to ``fn(st, f, view) -> flat offset``,
        mirroring :meth:`ArrayView.flat_index` (first stride is always 1)."""
        comp = [self._c_index(i) for i in indices]
        n = sum(m for _, m in comp)
        if len(comp) == 1:
            i0 = comp[0][0]

            def off1(st, f, vw):
                return vw.offset + i0(st, f) - vw.lows[0]
            return off1, n
        if len(comp) == 2:
            i0 = comp[0][0]
            i1 = comp[1][0]

            def off2(st, f, vw):
                return (vw.offset + i0(st, f) - vw.lows[0]
                        + (i1(st, f) - vw.lows[1]) * vw.strides[1])
            return off2, n
        fns = tuple(fn for fn, _ in comp)

        def offn(st, f, vw):
            pos = vw.offset
            lows = vw.lows
            strides = vw.strides
            for d, it in enumerate(fns):
                pos += (it(st, f) - lows[d]) * strides[d]
            return pos
        return offn, n

    def _c_idx_list(self, indices: Sequence[Expression]
                    ) -> Tuple[Callable, int]:
        """Compile subscripts to ``fn(st, f) -> [int, ...]`` (used where the
        oracle builds an index list: call binding and copy-out)."""
        comp = [self._c_index(i) for i in indices]
        n = sum(m for _, m in comp)
        fns = tuple(fn for fn, _ in comp)
        if len(fns) == 1:
            i0 = fns[0]
            return (lambda st, f: [i0(st, f)]), n
        return (lambda st, f: [it(st, f) for it in fns]), n

    def _c_array_load(self, e: ArrayRef) -> Tuple[Callable, int]:
        # Unbound arrays cannot reach here: frame setup raises for missing
        # array formals, so the oracle's per-access None check is dropped.
        k = self.slot(e.symbol)
        off, n = self._c_offset(e.indices)
        if self.full:
            def rd(st, f):
                vw = f[k]
                o = off(st, f, vw)
                b = vw.buffer
                for ob in st.observers:
                    ob.on_read(b, o, st.current_stmt)
                return b.data[o]
            return rd, 1 + n
        if self.dyn:
            site, rline = self._dd_site()
            if site:
                dd = self.plan
                shadow_get = dd.shadow.get
                record = dd.record

                def rd(st, f, rline=rline):
                    vw = f[k]
                    o = off(st, f, vw)
                    b = vw.buffer
                    if dd.flag:
                        dd.sampled += 1
                        sh = shadow_get(id(b))
                        if sh is not None:
                            ent = sh[o]
                            if ent is not None:
                                snap_w = ent[0]
                                # identity: same-iteration write -> the
                                # oracle's privatization-aware no-op
                                if snap_w is not dd.snap:
                                    for cell, wit in snap_w:
                                        cur = cell[2]
                                        if cur is not None and cur != wit:
                                            record(cell[0], b.name,
                                                   ent[1], rline)
                    else:
                        dd.skipped += 1
                    return b.data[o]
                return rd, 1 + n

        def rd(st, f):
            vw = f[k]
            return vw.buffer.data[off(st, f, vw)]
        return rd, 1 + n

    def _c_binop(self, e: BinaryOp) -> Tuple[Callable, int]:
        lf, ln = self._c_expr(e.left)
        op = e.op
        if op == "and":
            rf, rn = self._c_expr(e.right)

            def f_and(st, f):
                left = lf(st, f)
                if not left:
                    return False
                st.ops += rn
                return bool(rf(st, f))
            return f_and, 1 + ln
        if op == "or":
            rf, rn = self._c_expr(e.right)

            def f_or(st, f):
                left = lf(st, f)
                if left:
                    return True
                st.ops += rn
                return bool(rf(st, f))
            return f_or, 1 + ln
        rf, rn = self._c_expr(e.right)
        n = 1 + ln + rn
        # hot operators inlined; all semantics identical to BINOPS entries
        if op == "+":
            return (lambda st, f: lf(st, f) + rf(st, f)), n
        if op == "-":
            return (lambda st, f: lf(st, f) - rf(st, f)), n
        if op == "*":
            return (lambda st, f: lf(st, f) * rf(st, f)), n
        if op == "/":
            return (lambda st, f: _fortran_div(lf(st, f), rf(st, f))), n
        g = BINOPS.get(op)
        if g is None:
            msg = f"unknown operator {op}"

            def bad(st, f):
                lf(st, f)
                rf(st, f)
                raise RuntimeErrorInProgram(msg)
            return bad, n
        return (lambda st, f: g(lf(st, f), rf(st, f))), n

    def _c_intrinsic(self, e: Intrinsic) -> Tuple[Callable, int]:
        comp = [self._c_expr(a) for a in e.args]
        n = 1 + sum(m for _, m in comp)
        fns = tuple(fn for fn, _ in comp)
        name = e.name
        g = INTRINSICS.get(name)
        if g is None:
            msg = f"unknown intrinsic {name}"

            def bad(st, f):
                for a in fns:
                    a(st, f)
                raise RuntimeErrorInProgram(msg)
            return bad, n
        if len(fns) == 1:
            a0 = fns[0]
            h = _ONE_ARG.get(name)
            if h is not None:
                return (lambda st, f: h(a0(st, f))), n
            if name in ("min", "max"):
                return (lambda st, f: a0(st, f)), n   # min([x]) == x
            return (lambda st, f: g([a0(st, f)])), n
        if len(fns) == 2:
            a0, a1 = fns
            if name == "mod":
                return (lambda st, f: a0(st, f) % a1(st, f)), n
            if name == "min":
                return (lambda st, f: min(a0(st, f), a1(st, f))), n
            if name == "max":
                return (lambda st, f: max(a0(st, f), a1(st, f))), n
        return (lambda st, f: g([a(st, f) for a in fns])), n

    # -- statements ----------------------------------------------------------
    def _c_block(self, block: Block) -> Tuple[Callable, ...]:
        """Compile a block to a tuple of self-accounting closures.  Runs of
        straight-line statements are merged into a single closure that adds
        their combined op count once (one budget check per run)."""
        out: List[Callable] = []
        run_effects: List[Callable] = []
        run_n = 0

        def flush():
            nonlocal run_effects, run_n
            if run_n:
                out.append(_make_run(tuple(run_effects), run_n))
            run_effects = []
            run_n = 0

        for stmt in block.statements:
            compiled = self._c_stmt(stmt)
            if compiled is None:
                continue
            fn, n = compiled
            if n is None:                 # self-accounting (dynamic)
                flush()
                out.append(fn)
            else:                          # static effect, batched
                if fn is not None:
                    run_effects.append(fn)
                run_n += n
        flush()
        return tuple(out)

    def _c_stmt(self, stmt: Statement
                ) -> Optional[Tuple[Optional[Callable], Optional[int]]]:
        """Returns ``(effect, static_ops)`` for straight-line statements
        (``effect`` may be None for pure-cost statements), or
        ``(closure, None)`` for self-accounting control statements."""
        self._cur_stmt = stmt
        if isinstance(stmt, AssignStmt):
            return self._c_assign(stmt)
        if isinstance(stmt, IfStmt):
            return self._c_if(stmt), None
        if isinstance(stmt, LoopStmt):
            return self._c_loop(stmt), None
        if isinstance(stmt, CallStmt):
            return self._c_call(stmt), None
        if isinstance(stmt, IoStmt):
            return self._c_io(stmt)
        if isinstance(stmt, NoopStmt):
            return None, 1
        full = self.full
        if isinstance(stmt, CycleStmt):
            return _make_raiser(_Cycle, stmt.target_label, stmt, full), None
        if isinstance(stmt, ExitStmt):
            return _make_raiser(_Exit, None, stmt, full), None
        if isinstance(stmt, ReturnStmt):
            return _make_raiser(_Return, None, stmt, full), None
        if isinstance(stmt, StopStmt):
            return _make_raiser(_Stop, None, stmt, full), None
        msg = f"cannot execute {stmt!r}"

        def bad(st, f):
            ops = st.ops + 1
            st.ops = ops
            if ops > st.max_ops:
                raise budget_error(ops, st.max_ops)
            raise RuntimeErrorInProgram(msg)
        return bad, None

    def _c_assign(self, stmt: AssignStmt) -> Tuple[Callable, int]:
        val, vn = self._c_expr(stmt.value)
        full = self.full
        target = stmt.target
        if isinstance(target, VarRef):
            sym = target.symbol
            if self._buffer_backed(sym):
                k = self.slot(sym)
                if full:
                    def eff(st, f):
                        st.current_stmt = stmt
                        v = val(st, f)
                        vw = f[k]
                        b = vw.buffer
                        o = vw.offset
                        for ob in st.observers:
                            ob.on_write(b, o, stmt)
                        b.data[o] = v
                    return eff, 1 + vn
                if self.dyn:
                    site, wline = self._dd_site()
                    if site:
                        dd = self.plan
                        shadow = dd.shadow
                        shadow_get = shadow.get
                        bufs = dd.bufs
                        stack = dd.stack

                        def eff(st, f, wline=wline):
                            v = val(st, f)
                            vw = f[k]
                            b = vw.buffer
                            o = vw.offset
                            if dd.flag:
                                dd.sampled += 1
                                bid = id(b)
                                sh = shadow_get(bid)
                                if sh is None:
                                    sh = [None] * len(b.data)
                                    shadow[bid] = sh
                                    bufs[bid] = b
                                snap = dd.snap
                                if snap is None:
                                    snap = tuple((c, c[2])
                                                 for c in stack)
                                    dd.snap = snap
                                sh[o] = (snap, wline)
                            else:
                                dd.skipped += 1
                            b.data[o] = v
                        return eff, 1 + vn

                def eff(st, f):
                    v = val(st, f)
                    vw = f[k]
                    vw.buffer.data[vw.offset] = v
                return eff, 1 + vn
            k = self.slot(sym)
            coerce = int if sym.type == INT else float
            if full:
                def eff(st, f):
                    st.current_stmt = stmt
                    f[k] = coerce(val(st, f))
                return eff, 1 + vn
            return (lambda st, f: f.__setitem__(k, coerce(val(st, f)))), \
                1 + vn
        # array element target
        k = self.slot(target.symbol)
        off, on = self._c_offset(target.indices)
        if full:
            def eff(st, f):
                st.current_stmt = stmt
                v = val(st, f)
                vw = f[k]
                o = off(st, f, vw)
                b = vw.buffer
                for ob in st.observers:
                    ob.on_write(b, o, stmt)
                b.data[o] = v
            return eff, 1 + vn + on
        if self.dyn:
            site, wline = self._dd_site()
            if site:
                dd = self.plan
                shadow = dd.shadow
                shadow_get = shadow.get
                bufs = dd.bufs
                stack = dd.stack

                def eff(st, f, wline=wline):
                    v = val(st, f)
                    vw = f[k]
                    o = off(st, f, vw)
                    b = vw.buffer
                    if dd.flag:
                        dd.sampled += 1
                        bid = id(b)
                        sh = shadow_get(bid)
                        if sh is None:
                            sh = [None] * len(b.data)
                            shadow[bid] = sh
                            bufs[bid] = b
                        snap = dd.snap
                        if snap is None:
                            snap = tuple((c, c[2]) for c in stack)
                            dd.snap = snap
                        sh[o] = (snap, wline)
                    else:
                        dd.skipped += 1
                    b.data[o] = v
                return eff, 1 + vn + on

        def eff(st, f):
            v = val(st, f)
            vw = f[k]
            vw.buffer.data[off(st, f, vw)] = v
        return eff, 1 + vn + on

    def _c_if(self, stmt: IfStmt) -> Callable:
        arms = []
        for cond, body in stmt.arms:
            # arm bodies move _cur_stmt; conditions belong to the IfStmt
            # (the oracle sets current_stmt to it before testing arms)
            self._cur_stmt = stmt
            cf, cn = self._c_expr(cond)
            arms.append((cf, cn, self._c_block(body)))
        else_blk = (self._c_block(stmt.else_block)
                    if stmt.else_block is not None else None)
        full = self.full
        if len(arms) == 1:
            cf, cn, blk = arms[0]
            head_n = 1 + cn

            def fn(st, f):
                ops = st.ops + head_n
                st.ops = ops
                if ops > st.max_ops:
                    raise budget_error(ops, st.max_ops)
                if full:
                    st.current_stmt = stmt
                if cf(st, f):
                    for s in blk:
                        s(st, f)
                elif else_blk is not None:
                    for s in else_blk:
                        s(st, f)
            return fn
        arm_t = tuple(arms)
        head_n = 1 + arm_t[0][1]

        def fn(st, f):
            ops = st.ops + head_n
            st.ops = ops
            if ops > st.max_ops:
                raise budget_error(ops, st.max_ops)
            if full:
                st.current_stmt = stmt
            first = True
            for cf, cn, blk in arm_t:
                if first:
                    first = False
                else:
                    st.ops += cn
                if cf(st, f):
                    for s in blk:
                        s(st, f)
                    return
            if else_blk is not None:
                for s in else_blk:
                    s(st, f)
        return fn

    def _c_loop(self, loop: LoopStmt) -> Callable:
        low_f, low_n = self._c_expr(loop.low)
        high_f, high_n = self._c_expr(loop.high)
        if loop.step is not None:
            step_f, step_n = self._c_expr(loop.step)
        else:
            step_f, step_n = None, 0
        head_n = 1 + low_n + high_n + step_n
        body = self._c_block(loop.body)
        k = self._index_slot(loop.index)
        term = loop.term_label
        name = loop.name
        events = self.events
        full = self.full
        # the oracle wraps every iteration in try/except _Cycle and the
        # whole loop in try/except _Exit; skip the wrappers when the body
        # can never raise them (no CYCLE/EXIT reachable, no calls)
        stmts = list(loop.body.walk())
        has_call = any(isinstance(s, CallStmt) for s in stmts)
        need_cycle = has_call or any(isinstance(s, CycleStmt)
                                     for s in stmts)
        need_exit = has_call or _has_shallow_exit(loop.body)
        if self.profile:
            return self._profile_loop(loop, low_f, high_f, step_f, head_n,
                                      body, k, term, name, need_cycle)
        if self.dyn:
            return self._dyndep_loop(loop, low_f, high_f, step_f, head_n,
                                     body, k, term, name, need_cycle)

        def fn(st, f):
            ops = st.ops + head_n
            st.ops = ops
            if ops > st.max_ops:
                raise budget_error(ops, st.max_ops)
            if full:
                st.current_stmt = loop
            low = int(low_f(st, f))
            high = int(high_f(st, f))
            step = int(step_f(st, f)) if step_f is not None else 1
            if step == 0:
                raise RuntimeErrorInProgram(f"zero step in {name}")
            if events:
                for ob in st.observers:
                    ob.on_loop_enter(loop)
            i = low
            try:
                if events or need_cycle:
                    while (i <= high) if step > 0 else (i >= high):
                        f[k] = i
                        if events:
                            for ob in st.observers:
                                ob.on_loop_iteration(loop, i)
                        try:
                            for s in body:
                                s(st, f)
                        except _Cycle as cyc:
                            if cyc.target_label is not None and \
                                    cyc.target_label != term:
                                raise
                        i += step
                        st.ops += 1
                elif step > 0:
                    while i <= high:
                        f[k] = i
                        for s in body:
                            s(st, f)
                        i += step
                        st.ops += 1
                else:
                    while i >= high:
                        f[k] = i
                        for s in body:
                            s(st, f)
                        i += step
                        st.ops += 1
            except _Exit:
                pass
            finally:
                f[k] = i
                if events:
                    for ob in st.observers:
                        ob.on_loop_exit(loop)
        if not (need_exit or events or need_cycle):
            # tightest driver: no exception fences at all
            def fast(st, f):
                ops = st.ops + head_n
                st.ops = ops
                if ops > st.max_ops:
                    raise budget_error(ops, st.max_ops)
                low = int(low_f(st, f))
                high = int(high_f(st, f))
                step = int(step_f(st, f)) if step_f is not None else 1
                if step == 0:
                    raise RuntimeErrorInProgram(f"zero step in {name}")
                i = low
                if step > 0:
                    while i <= high:
                        f[k] = i
                        for s in body:
                            s(st, f)
                        i += step
                        st.ops += 1
                else:
                    while i >= high:
                        f[k] = i
                        for s in body:
                            s(st, f)
                        i += step
                        st.ops += 1
                f[k] = i
            return fast
        return fn

    def _profile_loop(self, loop, low_f, high_f, step_f, head_n, body,
                      k, term, name, need_cycle) -> Callable:
        """Loop driver for :data:`VARIANT_PROFILE`: no observer callbacks
        anywhere — the driver snapshots the op counter where the oracle's
        ``on_loop_enter`` fires, counts iterations in a local, and
        accumulates (total delta, invocations, iterations) into dense
        plan-indexed lists in a ``finally`` so mid-iteration unwinds
        (EXIT/STOP/RETURN/op budget) charge exactly like the oracle's
        ``finally``-driven ``on_loop_exit``."""
        pr = self.plan
        L = pr.index(loop)
        seen = pr.seen
        order = pr.order
        total = pr.total
        invs = pr.inv
        iter_acc = pr.iters

        def fn(st, f):
            ops = st.ops + head_n
            st.ops = ops
            if ops > st.max_ops:
                raise budget_error(ops, st.max_ops)
            low = int(low_f(st, f))
            high = int(high_f(st, f))
            step = int(step_f(st, f)) if step_f is not None else 1
            if step == 0:
                raise RuntimeErrorInProgram(f"zero step in {name}")
            entry_ops = st.ops      # == ops at the oracle's on_loop_enter
            i = low
            iters = 0
            # first-touch registration order must match the oracle's
            # ``profiles`` dict: a loop that iterates registers at its
            # first iteration event (before any inner loop); a zero-trip
            # loop registers at exit (the finally below).
            if ((i <= high) if step > 0 else (i >= high)) \
                    and not seen[L]:
                seen[L] = True
                order.append(L)
            try:
                if need_cycle:
                    while (i <= high) if step > 0 else (i >= high):
                        f[k] = i
                        iters += 1
                        try:
                            for s in body:
                                s(st, f)
                        except _Cycle as cyc:
                            if cyc.target_label is not None and \
                                    cyc.target_label != term:
                                raise
                        i += step
                        st.ops += 1
                elif step > 0:
                    while i <= high:
                        f[k] = i
                        iters += 1
                        for s in body:
                            s(st, f)
                        i += step
                        st.ops += 1
                else:
                    while i >= high:
                        f[k] = i
                        iters += 1
                        for s in body:
                            s(st, f)
                        i += step
                        st.ops += 1
            except _Exit:
                pass
            finally:
                f[k] = i
                if not seen[L]:
                    seen[L] = True
                    order.append(L)
                total[L] += st.ops - entry_ops
                invs[L] += 1
                iter_acc[L] += iters
        return fn

    def _dyndep_loop(self, loop, low_f, high_f, step_f, head_n, body,
                     k, term, name, need_cycle) -> Callable:
        """Loop driver for :data:`VARIANT_DYNDEP`: maintains the mutable
        activation-cell stack, invalidates the cached write snapshot on
        every loop event, and keeps the sampling-window flag up to date so
        the per-access closures do a single attribute load instead of a
        modulo over the innermost counter.  On exit the cell is marked
        dead (iteration ``None``) — the oracle's "that invocation is no
        longer active" condition."""
        lid = loop.stmt_id
        dd = self.plan
        window = dd.window
        stack = dd.stack
        inv_map = dd.inv

        def fn(st, f):
            ops = st.ops + head_n
            st.ops = ops
            if ops > st.max_ops:
                raise budget_error(ops, st.max_ops)
            low = int(low_f(st, f))
            high = int(high_f(st, f))
            step = int(step_f(st, f)) if step_f is not None else 1
            if step == 0:
                raise RuntimeErrorInProgram(f"zero step in {name}")
            inv = inv_map.get(lid, 0) + 1
            inv_map[lid] = inv
            entry = [lid, inv, 0]
            stack.append(entry)
            dd.snap = None
            if window:
                dd.flag = True      # iteration 0 is in-window
            i = low
            try:
                if need_cycle:
                    while (i <= high) if step > 0 else (i >= high):
                        f[k] = i
                        it = entry[2] + 1
                        entry[2] = it
                        dd.snap = None
                        if window:
                            dd.flag = (it % window) < 2
                        try:
                            for s in body:
                                s(st, f)
                        except _Cycle as cyc:
                            if cyc.target_label is not None and \
                                    cyc.target_label != term:
                                raise
                        i += step
                        st.ops += 1
                elif step > 0:
                    while i <= high:
                        f[k] = i
                        it = entry[2] + 1
                        entry[2] = it
                        dd.snap = None
                        if window:
                            dd.flag = (it % window) < 2
                        for s in body:
                            s(st, f)
                        i += step
                        st.ops += 1
                else:
                    while i >= high:
                        f[k] = i
                        it = entry[2] + 1
                        entry[2] = it
                        dd.snap = None
                        if window:
                            dd.flag = (it % window) < 2
                        for s in body:
                            s(st, f)
                        i += step
                        st.ops += 1
            except _Exit:
                pass
            finally:
                f[k] = i
                stack.pop()
                entry[2] = None          # dead marker for old snapshots
                dd.snap = None
                if window:
                    dd.flag = ((stack[-1][2] % window) < 2) if stack \
                        else True
        return fn

    def _c_call(self, call: CallStmt) -> Callable:
        callee = self.program.procedures.get(call.callee)
        if callee is None:
            msg = call.callee

            def missing(st, f):
                ops = st.ops + 1
                st.ops = ops
                if ops > st.max_ops:
                    raise budget_error(ops, st.max_ops)
                raise KeyError(msg)
            return missing
        binders: List[Callable] = []
        args_n = 0
        copybacks: List[Callable] = []   # cb(st, f, callee_frame)
        cb_n = 0
        for pos, (actual, formal) in enumerate(zip(call.args,
                                                   callee.formals)):
            b, bn, cb, cbn = self._c_bind(pos, actual, formal, callee)
            binders.append(b)
            args_n += bn
            if cb is not None:
                copybacks.append(cb)
                cb_n += cbn
        bind_t = tuple(binders)
        cb_t = tuple(copybacks)
        procs = self.procs
        callee_name = call.callee
        cell: List[CompiledProcedure] = []
        events = self.events
        full = self.full
        total_args_n = args_n
        total_cb_n = cb_n

        def fn(st, f):
            ops = st.ops + 1
            st.ops = ops
            if ops > st.max_ops:
                raise budget_error(ops, st.max_ops)
            if full:
                st.current_stmt = call
            if events:
                for ob in st.observers:
                    ob.on_call(call)
            if not cell:
                cell.append(procs[callee_name])
            cp = cell[0]
            st.ops += total_args_n
            bound = [b(st, f) for b in bind_t]
            cf = cp.make_frame(st, bound)
            st.ops += 5                     # call overhead, like the oracle
            try:
                for s in cp.body:
                    s(st, cf)
            except _Return:
                pass
            finally:
                st.ops += total_cb_n
                for cb in cb_t:
                    cb(st, f, cf)
        return fn

    def _c_bind(self, pos: int, actual: Expression, formal: Symbol,
                callee: Procedure):
        """Compile one argument binding.  Returns
        ``(bind_fn, bind_ops, copyback_fn_or_None, copyback_ops)``."""
        formal_pos = pos
        if isinstance(actual, ArrayRef):
            k = self.slot(actual.symbol)
            aname = actual.symbol.name
            if actual.indices:
                idx_f, idx_n = self._c_idx_list(actual.indices)
                if formal.is_array:
                    def bind(st, f):
                        vw = f[k]
                        if vw == 0:
                            raise RuntimeErrorInProgram(
                                f"array {aname} unbound")
                        return vw.subview_at(idx_f(st, f))
                    return bind, idx_n, None, 0
                # scalar formal bound to an array element: copy-in/out
                # (the oracle uses view.load/store directly — no callbacks)

                def bind(st, f):
                    vw = f[k]
                    if vw == 0:
                        raise RuntimeErrorInProgram(
                            f"array {aname} unbound")
                    return vw.load(idx_f(st, f))
                cb_idx_f, cb_idx_n = self._c_idx_list(actual.indices)
                fslot = self._callee_scalar_slot(callee, formal_pos)

                def cb(st, f, cf, fslot=fslot):
                    v = cf[fslot] if fslot is not None else 0
                    f[k].store(cb_idx_f(st, f), v)
                return bind, idx_n, cb, cb_idx_n

            def bind(st, f):
                vw = f[k]
                if vw == 0:
                    raise RuntimeErrorInProgram(f"array {aname} unbound")
                return vw
            return bind, 0, None, 0
        if isinstance(actual, VarRef) and not formal.is_array:
            sym = actual.symbol
            if self._buffer_backed(sym) or sym.is_const or sym.is_array:
                # oracle: frame.scalars.get(sym, 0) -> 0 for symbols that
                # never live in the scalars dict; the copy-out lands in the
                # scalars dict where it shadows nothing and is never read
                return (lambda st, f: 0), 0, (lambda st, f, cf: None), 0
            k = self.slot(sym)
            coerce = int if sym.type == INT else float
            fslot = self._callee_scalar_slot(callee, formal_pos)

            def cb(st, f, cf, fslot=fslot):
                v = cf[fslot] if fslot is not None else 0
                f[k] = coerce(v)
            return (lambda st, f: f[k]), 0, cb, 0
        # read-only expression temporary
        fn, n = self._c_expr(actual)
        return fn, n, None, 0

    def _callee_scalar_slot(self, callee: Procedure, pos: int
                            ) -> Optional[int]:
        """Slot of formal #pos in the callee's compiled frame (resolved
        after the callee compiles; returns a late-bound lookup value)."""
        # Formal slots are assigned first and deterministically by
        # make_frame compilation order, which mirrors proc.formals order.
        # We can't index self.procs yet (callee may compile later), so we
        # rely on the invariant that _compile() allocates formal slots
        # 0..len(formals)-1 in order.
        if pos >= len(callee.formals):
            return None
        return pos

    # -- frame setup ---------------------------------------------------------
    def _compile_make_frame(self) -> Callable:
        proc = self.proc
        pname = proc.name
        # 1. formals — allocate first so formal slots are 0..n-1 in order
        formal_plan = []
        for formal in proc.formals:
            formal_plan.append((self.slot(formal), formal.is_array,
                                formal.name))
        # 2. commons
        common_plan = []
        setup_static = 0
        for block_name in proc.common_blocks:
            view = self.program.commons[block_name].views[proc.name]
            for sym in view.symbols:
                if sym.is_array:
                    dims = []
                    for d in sym.dims:
                        lo_f, lo_n = self._c_expr(d.low)
                        setup_static += lo_n
                        if d.high is not None:
                            hi_f, hi_n = self._c_expr(d.high)
                            setup_static += hi_n
                        else:
                            hi_f = None
                        dims.append((lo_f, hi_f))
                    common_plan.append((self.slot(sym), block_name,
                                        sym.common_offset, tuple(dims)))
                else:
                    common_plan.append((self.slot(sym), block_name,
                                        sym.common_offset, None))
        # 3. locals
        local_plan = []
        for sym in proc.symbols:
            if sym.is_const or sym.is_formal or sym.is_common:
                continue
            if sym.is_array:
                dims = []
                assumed = False
                for d in sym.dims:
                    lo_f, lo_n = self._c_expr(d.low)
                    setup_static += lo_n
                    if d.high is None:
                        assumed = True
                        hi_f = None
                    else:
                        hi_f, hi_n = self._c_expr(d.high)
                        setup_static += hi_n
                    dims.append((lo_f, hi_f))
                local_plan.append((self.slot(sym), sym.name, tuple(dims),
                                   assumed))
            else:
                self.slot(sym)       # scalars: list default 0 suffices
        formal_t = tuple(formal_plan)
        common_t = tuple(common_plan)
        local_t = tuple(local_plan)
        nslots_box = [0]             # finalized after body compiles

        def make_frame(st, bound):
            f = [0] * nslots_box[0]
            nb = len(bound)
            for j, (slot, is_arr, fname) in enumerate(formal_t):
                if j < nb:
                    f[slot] = bound[j]
                elif is_arr:
                    raise RuntimeErrorInProgram(
                        f"array formal {fname} of {pname} not bound")
            st.ops += setup_static
            commons = st.commons
            for slot, bname, offset, dims in common_t:
                buffer = commons[bname]
                if dims is None:
                    f[slot] = ArrayView(buffer, offset, [1], [1])
                    continue
                lows = []
                extents = []
                for lo_f, hi_f in dims:
                    lo = int(lo_f(st, f))
                    lows.append(lo)
                    extents.append(int(hi_f(st, f)) - lo + 1
                                   if hi_f is not None else None)
                f[slot] = ArrayView(buffer, offset, lows, extents)
            for slot, name, dims, assumed in local_t:
                if assumed:
                    raise RuntimeErrorInProgram(
                        f"local array {name} has assumed size")
                size = 1
                lows = []
                extents = []
                for lo_f, hi_f in dims:
                    lo = int(lo_f(st, f))
                    ext = int(hi_f(st, f)) - lo + 1
                    lows.append(lo)
                    extents.append(ext)
                    size *= ext
                buffer = Buffer(f"{pname}::{name}", size)
                f[slot] = ArrayView(buffer, 0, lows, extents)
            return f
        return make_frame, nslots_box

    # -- io ------------------------------------------------------------------
    def _c_io(self, stmt: IoStmt) -> Tuple[Callable, int]:
        full = self.full
        if stmt.kind == "print":
            comp = [self._c_expr(item) for item in stmt.items]
            n = 1 + sum(m for _, m in comp)
            fns = tuple(fn for fn, _ in comp)

            def eff(st, f):
                if full:
                    st.current_stmt = stmt
                out = st.outputs
                for t in fns:
                    out.append(t(st, f))
            return eff, n
        # READ
        if self.dyn:
            dd_site, dd_line = self._dd_site()
        else:
            dd_site, dd_line = False, 0
        if dd_site:
            dd = self.plan
            shadow = dd.shadow
            shadow_get = shadow.get
            bufs = dd.bufs
            stack = dd.stack
        stores = []
        n = 1
        for item in stmt.items:
            if isinstance(item, VarRef):
                sym = item.symbol
                if self._buffer_backed(sym):
                    k = self.slot(sym)
                    if full:
                        def sto(st, f, v, k=k):
                            vw = f[k]
                            b = vw.buffer
                            o = vw.offset
                            for ob in st.observers:
                                ob.on_write(b, o, stmt)
                            b.data[o] = v
                    elif dd_site:
                        def sto(st, f, v, k=k, wline=dd_line, dd=dd,
                                shadow=shadow, shadow_get=shadow_get,
                                bufs=bufs, stack=stack):
                            vw = f[k]
                            b = vw.buffer
                            o = vw.offset
                            if dd.flag:
                                dd.sampled += 1
                                bid = id(b)
                                sh = shadow_get(bid)
                                if sh is None:
                                    sh = [None] * len(b.data)
                                    shadow[bid] = sh
                                    bufs[bid] = b
                                snap = dd.snap
                                if snap is None:
                                    snap = tuple((c, c[2])
                                                 for c in stack)
                                    dd.snap = snap
                                sh[o] = (snap, wline)
                            else:
                                dd.skipped += 1
                            b.data[o] = v
                    else:
                        def sto(st, f, v, k=k):
                            vw = f[k]
                            vw.buffer.data[vw.offset] = v
                else:
                    k = self.slot(sym)
                    coerce = int if sym.type == INT else float

                    def sto(st, f, v, k=k, coerce=coerce):
                        f[k] = coerce(v)
                stores.append(sto)
            elif isinstance(item, ArrayRef):
                k = self.slot(item.symbol)
                off, on = self._c_offset(item.indices)
                n += on
                if full:
                    def sto(st, f, v, k=k, off=off):
                        vw = f[k]
                        o = off(st, f, vw)
                        b = vw.buffer
                        for ob in st.observers:
                            ob.on_write(b, o, stmt)
                        b.data[o] = v
                elif dd_site:
                    def sto(st, f, v, k=k, off=off, wline=dd_line, dd=dd,
                            shadow=shadow, shadow_get=shadow_get,
                            bufs=bufs, stack=stack):
                        vw = f[k]
                        o = off(st, f, vw)
                        b = vw.buffer
                        if dd.flag:
                            dd.sampled += 1
                            bid = id(b)
                            sh = shadow_get(bid)
                            if sh is None:
                                sh = [None] * len(b.data)
                                shadow[bid] = sh
                                bufs[bid] = b
                            snap = dd.snap
                            if snap is None:
                                snap = tuple((c, c[2]) for c in stack)
                                dd.snap = snap
                            sh[o] = (snap, wline)
                        else:
                            dd.skipped += 1
                        b.data[o] = v
                else:
                    def sto(st, f, v, k=k, off=off):
                        vw = f[k]
                        vw.buffer.data[off(st, f, vw)] = v
                stores.append(sto)
            else:
                msg = f"invalid store target {item!r}"

                def sto(st, f, v, msg=msg):
                    raise RuntimeErrorInProgram(msg)
                stores.append(sto)
        store_t = tuple(stores)

        def eff(st, f):
            if full:
                st.current_stmt = stmt
            for sto in store_t:
                pos = st._input_pos
                if pos >= len(st.inputs):
                    raise RuntimeErrorInProgram("READ past end of inputs")
                v = st.inputs[pos]
                st._input_pos = pos + 1
                sto(st, f, v)
        return eff, n

    # -- driver --------------------------------------------------------------
    def compile(self) -> CompiledProcedure:
        cp = CompiledProcedure(self.proc.name)
        make_frame, nslots_box = self._compile_make_frame()
        cp.body = self._c_block(self.proc.body)
        nslots_box[0] = self._nslots
        cp.make_frame = make_frame
        cp.formal_slots = [self._slots[id(f)] for f in self.proc.formals]
        return cp


def _has_shallow_exit(block: Block) -> bool:
    """EXIT statements not enclosed in a deeper loop (those are the ones
    whose _Exit reaches *this* loop)."""
    for stmt in block.statements:
        if isinstance(stmt, ExitStmt):
            return True
        if isinstance(stmt, LoopStmt):
            continue                      # inner loop catches its own _Exit
        for child in stmt.children_blocks():
            if _has_shallow_exit(child):
                return True
    return False


def _make_run(effects: Tuple[Callable, ...], n: int) -> Callable:
    """One batched straight-line run: charge ``n`` ops, check the budget
    once, execute the effects in order."""
    if len(effects) == 1:
        e0 = effects[0]

        def run1(st, f):
            ops = st.ops + n
            st.ops = ops
            if ops > st.max_ops:
                raise budget_error(ops, st.max_ops)
            e0(st, f)
        return run1
    if not effects:
        def run0(st, f):
            ops = st.ops + n
            st.ops = ops
            if ops > st.max_ops:
                raise budget_error(ops, st.max_ops)
        return run0

    def run(st, f):
        ops = st.ops + n
        st.ops = ops
        if ops > st.max_ops:
            raise budget_error(ops, st.max_ops)
        for e in effects:
            e(st, f)
    return run


def _make_raiser(exc_type, arg, stmt, full: bool) -> Callable:
    if exc_type is _Cycle:
        def fn(st, f):
            ops = st.ops + 1
            st.ops = ops
            if ops > st.max_ops:
                raise budget_error(ops, st.max_ops)
            if full:
                st.current_stmt = stmt
            raise _Cycle(arg)
        return fn

    def fn(st, f):
        ops = st.ops + 1
        st.ops = ops
        if ops > st.max_ops:
            raise budget_error(ops, st.max_ops)
        if full:
            st.current_stmt = stmt
        raise exc_type()
    return fn


class CompiledProgram:
    """All procedures of one program compiled for one observer variant."""

    __slots__ = ("program", "variant", "procs", "plan")

    def __init__(self, program: Program, variant: str, plan=None):
        self.program = program
        self.variant = variant
        self.plan = plan
        self.procs: Dict[str, CompiledProcedure] = {}
        for name, proc in program.procedures.items():
            self.procs[name] = _ProcCompiler(program, proc, variant,
                                             self.procs, plan).compile()


def compile_closures(program: Program, variant: str = VARIANT_NONE,
                     plan=None) -> CompiledProgram:
    """One-pass compile of ``program`` for the given observer variant.
    The specialized variants take a ``plan`` (:class:`_ProfilePlan` or
    :class:`_DyndepPlan`) carrying their compile-time constants."""
    return CompiledProgram(program, variant, plan)


class CompiledEngine:
    """Drop-in replacement for :class:`Interpreter` running closure-compiled
    code.  Same constructor signature and public attributes (``ops``,
    ``outputs``, ``observers``, ``commons``, ``inputs``, ``max_ops``)."""

    __slots__ = ("program", "inputs", "_input_pos", "observers", "ops",
                 "max_ops", "outputs", "current_stmt", "commons", "variant",
                 "specialize", "prof", "dd")

    def __init__(self, program: Program, inputs: Sequence[float] = (),
                 observers: Sequence[Observer] = (),
                 max_ops: int = 500_000_000, specialize: bool = True):
        self.program = program
        self.inputs = list(inputs)
        self._input_pos = 0
        self.observers = list(observers)
        self.ops = 0
        self.max_ops = max_ops
        self.outputs: List = []
        self.current_stmt: Optional[Statement] = None
        self.variant: Optional[str] = None
        #: When True (default), a lone fresh LoopProfiler / dyndep
        #: analyzer is compiled into the engine (VARIANT_PROFILE /
        #: VARIANT_DYNDEP) instead of running through the generic
        #: callback protocol.  ``specialize=False`` forces the generic
        #: path — the parity tests use it to compare both.
        self.specialize = specialize
        self.prof: Optional[_ProfileRun] = None
        self.dd: Optional[_DyndepRun] = None
        self.commons: Dict[str, Buffer] = {}
        for name, block in program.commons.items():
            self.commons[name] = Buffer(f"/{name}/", block.size)

    def run(self) -> "CompiledEngine":
        from ..obs import get_tracer
        if self.program.main is None:
            raise ValueError("program has no PROGRAM unit")
        tracer = get_tracer()
        with tracer.span("execute", engine="compiled",
                         program=self.program.name) as sp:
            self.prof = None
            self.dd = None
            variant = select_variant(self.observers)
            special = None
            if self.specialize and variant in (VARIANT_LOOPS,
                                               VARIANT_FULL):
                upgraded = _specialized_variant(self.observers)
                if upgraded is not None:
                    special = self.observers[0]
                    variant = upgraded
            self.variant = variant
            plan = None
            if variant == VARIANT_PROFILE:
                plan = self.prof = _ProfileRun()
            elif variant == VARIANT_DYNDEP:
                from .dyndep import _MAX_WITNESSES
                plan = self.dd = _DyndepRun(special.skip_stmt_ids,
                                            special.sample_stride,
                                            _MAX_WITNESSES)
            with tracer.span("codegen", variant=variant):
                compiled = compile_closures(self.program, variant, plan)
            main = compiled.procs[self.program.main]
            frame = main.make_frame(self, [])
            try:
                try:
                    for s in main.body:
                        s(self, frame)
                except _Stop:
                    pass
                except _Return:
                    pass
            finally:
                # deliver fast-path results even on abnormal unwinds
                # (op budget, program errors) — the oracle's observers
                # hold partial data in exactly those cases too.
                if self.prof is not None:
                    _fill_profiler(special, self.prof)
                elif self.dd is not None:
                    _fill_dyndep(special, self.dd)
            sp.tag(ops=self.ops, variant=variant)
        return self


def make_engine(program: Program, inputs: Sequence[float] = (),
                observers: Sequence[Observer] = (),
                max_ops: int = 500_000_000, engine: str = "compiled",
                specialize: bool = True):
    """Build (don't run) the selected execution engine.  ``specialize``
    (compiled engine only) gates the instrumented fast paths."""
    if engine in COMPILED_ENGINE_NAMES:
        return CompiledEngine(program, inputs, observers, max_ops,
                              specialize=specialize)
    if engine in TRANSPILED_ENGINE_NAMES:
        from .transpile import TranspiledEngine
        return TranspiledEngine(program, inputs, observers, max_ops,
                                specialize=specialize)
    if engine in TREE_ENGINE_NAMES:
        return Interpreter(program, inputs, observers, max_ops)
    raise ValueError(
        f"unknown engine {engine!r}; expected one of "
        f"{COMPILED_ENGINE_NAMES + TRANSPILED_ENGINE_NAMES + TREE_ENGINE_NAMES}")
