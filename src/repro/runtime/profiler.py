"""The Loop Profile Analyzer (paper section 2.5.1).

"It runs a program sequentially, and determines for each loop its total
execution time and its average computation per invocation."  Implemented as
an interpreter observer: loop entry/exit deltas of the op counter give each
loop its *inclusive* total, invocation count, and iteration count.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..ir.program import Program
from ..ir.statements import LoopStmt
from .interpreter import Interpreter, Observer
from .machine import Machine


class LoopProfile:
    __slots__ = ("loop", "total_ops", "invocations", "iterations")

    def __init__(self, loop: LoopStmt):
        self.loop = loop
        self.total_ops = 0
        self.invocations = 0
        self.iterations = 0

    @property
    def name(self) -> str:
        return self.loop.name

    def ops_per_invocation(self) -> float:
        return self.total_ops / self.invocations if self.invocations else 0.0

    def __repr__(self):
        return (f"LoopProfile({self.name}: ops={self.total_ops}, "
                f"inv={self.invocations})")


class LoopProfiler(Observer):
    """Observer collecting per-loop inclusive op counts."""

    def __init__(self, interpreter: Optional[Interpreter] = None):
        self.interpreter = interpreter
        self.profiles: Dict[int, LoopProfile] = {}
        self._stack: List[tuple] = []       # (loop, ops at entry)
        self.total_ops = 0

    def attach(self, interpreter: Interpreter) -> "LoopProfiler":
        self.interpreter = interpreter
        interpreter.observers.append(self)
        return self

    # -- observer callbacks ----------------------------------------------------
    def on_loop_enter(self, loop: LoopStmt) -> None:
        self._stack.append((loop, self.interpreter.ops))

    def on_loop_iteration(self, loop: LoopStmt, index_value: int) -> None:
        prof = self._profile(loop)
        prof.iterations += 1

    def on_loop_exit(self, loop: LoopStmt) -> None:
        entry_loop, entry_ops = self._stack.pop()
        assert entry_loop is loop
        prof = self._profile(loop)
        prof.total_ops += self.interpreter.ops - entry_ops
        prof.invocations += 1

    def _profile(self, loop: LoopStmt) -> LoopProfile:
        prof = self.profiles.get(loop.stmt_id)
        if prof is None:
            prof = LoopProfile(loop)
            self.profiles[loop.stmt_id] = prof
        return prof

    # -- queries -----------------------------------------------------------
    def finish(self) -> None:
        self.total_ops = self.interpreter.ops if self.interpreter else 0

    def profile(self, loop: LoopStmt) -> Optional[LoopProfile]:
        return self.profiles.get(loop.stmt_id)

    def executed_loops(self) -> List[LoopProfile]:
        return list(self.profiles.values())

    def coverage_of(self, loop: LoopStmt) -> float:
        """Fraction of program ops spent (inclusively) in this loop."""
        prof = self.profiles.get(loop.stmt_id)
        if prof is None or not self.total_ops:
            return 0.0
        return prof.total_ops / self.total_ops

    def granularity_ms(self, loop: LoopStmt, machine: Machine) -> float:
        """Average per-invocation time in milliseconds on ``machine``."""
        prof = self.profiles.get(loop.stmt_id)
        if prof is None:
            return 0.0
        return machine.seconds(prof.ops_per_invocation()) * 1e3


def profile_program(program: Program, inputs=(), max_ops: int = 500_000_000,
                    engine: str = "compiled") -> LoopProfiler:
    """Run the program once under the Loop Profile Analyzer.

    ``engine`` selects the execution substrate (see
    :func:`repro.runtime.interpreter.run_program`).  Under the compiled
    engine a lone fresh profiler is compiled *into* the engine
    (``VARIANT_PROFILE``): loop drivers do their own op-delta accounting
    and no observer callback fires at all — results stay bit-identical to
    this observer running on the tree-walking oracle.  The span is named
    ``instrument.profile`` so traces separate instrumented runs from
    clean execution; its ``engine_variant`` tag records which path ran."""
    from ..obs import get_tracer
    from .compile_engine import engine_label, make_engine
    with get_tracer().span("instrument.profile", program=program.name,
                           engine=engine) as sp:
        profiler = LoopProfiler()
        interp = make_engine(program, inputs, observers=[], max_ops=max_ops,
                             engine=engine)
        profiler.attach(interp)
        interp.run()
        profiler.finish()
        sp.tag(ops=profiler.total_ops, loops=len(profiler.profiles),
               engine_variant=engine_label(interp))
    return profiler
