"""Transpiled execution engine: IR -> plain Python source.

The third execution substrate, and the fastest.  Where the tree-walking
:class:`~repro.runtime.interpreter.Interpreter` is the semantic oracle
and the closure engine (:mod:`repro.runtime.compile_engine`) lowers the
IR to nested Python closures, this module *generates Python source* —
the paper's §4.5 endgame of handing generated code to a real compiler,
with CPython's bytecode compiler standing in for the native one.

The contract is the same bit-determinism the closure engine honors:

* identical printed outputs, COMMON memory, and **op counts** as the
  closure engine (ops are charged in the same per-block batches, so the
  two fast engines agree exactly, including where the budget trips),
* identical :class:`OpsBudgetExceeded` type and message on exhaustion,
* codegen-time instrumentation variants (the source-level analogue of
  the closure engine's ``VARIANT_PROFILE`` / ``VARIANT_DYNDEP``): loop
  drivers emit their own op-delta accounting, and dyndep shadow-memory
  updates — stride-sampling window included — are generated directly
  into the Python, keeping analyzer state bit-identical to the oracle.

Op accounting in generated code uses a function-local counter ``_o``
synchronized through a shared cell ``_s[0]`` at call boundaries (callers
publish before a call, callees start from the cell, and ``finally``
blocks max-merge on every unwind), so the budget check on the hot path
is a compare of two local integers.

Generated modules are cached twice: an in-process LRU of exec'd
namespaces keyed by (program source hash, variant, skip-set signature,
codegen version), and an optional persistent
:class:`~repro.service.artifacts.ArtifactStore` layer (see
:func:`set_codegen_store`) holding the generated source so repeat
service jobs skip codegen entirely.

Programs or observer configurations the generator cannot express
(unknown operators/intrinsics, observer sets with no codegen variant)
make :class:`TranspiledEngine` fall back to the closure engine — same
results, and ``engine_label`` reports what actually ran.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Tuple

from ..ir.expressions import (ArrayRef, BinaryOp, Const, Expression,
                              Intrinsic, StrConst, UnaryOp, VarRef)
from ..ir.program import Procedure, Program
from ..ir.statements import (AssignStmt, Block, CallStmt, CycleStmt,
                             ExitStmt, IfStmt, IoStmt, LoopStmt, NoopStmt,
                             ReturnStmt, Statement, StopStmt)
from ..ir.symbols import INT, Symbol
from .interpreter import (RuntimeErrorInProgram, TRANSPILED_ENGINE_NAMES,
                          budget_error)
from .values import Buffer

__all__ = [
    "CODEGEN_VERSION", "TRANSPILED_ENGINE_NAMES", "TranspileUnsupported",
    "TranspiledEngine", "VARIANT_DYNDEP", "VARIANT_PLAIN",
    "VARIANT_PROFILE", "codegen_cache_stats", "compile_program",
    "loop_table", "reset_codegen_cache", "set_codegen_store",
    "transpile_to_python",
]

#: Bumped whenever generated-code layout or semantics change: cached
#: modules (in-process and persistent) then miss instead of being reused.
CODEGEN_VERSION = 2

#: Instrumentation variants the generator can emit.  ``profile`` and
#: ``dyndep`` intentionally reuse the closure engine's variant names so
#: engine labels read uniformly (``transpiled/profile`` vs
#: ``compiled/profile``).
VARIANT_PLAIN = "plain"
VARIANT_PROFILE = "profile"
VARIANT_DYNDEP = "dyndep"

_DEFAULT_MAX_OPS = 500_000_000


class TranspileUnsupported(ValueError):
    """The generator cannot express this program/construct; callers fall
    back to the closure engine (which shares oracle semantics)."""


def _buffer_backed(sym: Symbol) -> bool:
    return sym.is_common and not sym.is_array


def loop_table(program: Program) -> List[LoopStmt]:
    """Every loop of ``program`` in deterministic order (procedures by
    name, statements pre-order).  Generated code refers to loops by
    their dense index in this table, so identical sources produce
    identical generated text regardless of parse-time statement ids."""
    out: List[LoopStmt] = []
    for name in sorted(program.procedures):
        for s in program.procedures[name].body.walk():
            if isinstance(s, LoopStmt):
                out.append(s)
    return out


def _skip_signature(program: Program, skip_ids) -> Tuple[int, ...]:
    """Canonical (parse-order-independent) form of a dyndep skip set,
    used in cache keys: dense pre-order statement indices."""
    if not skip_ids:
        return ()
    skip = frozenset(skip_ids)
    dense: List[int] = []
    i = 0
    for name in sorted(program.procedures):
        for s in program.procedures[name].body.walk():
            if s.stmt_id in skip:
                dense.append(i)
            i += 1
    return tuple(dense)


# ---------------------------------------------------------------------------
# generated-module preamble
# ---------------------------------------------------------------------------
# Self-contained: the emitted source runs standalone (the ``repro
# compile`` CLI, the plain-Python contract in the tests).  When the
# engine drives a module it rebinds ``_Err`` / ``_bud`` post-exec to the
# runtime's real exception types so error and budget semantics unify
# across all three engines.

_PREAMBLE = '''\
import math as _m


class _Err(Exception):
    pass


class _Budget(_Err):
    pass


class _Stop(Exception):
    pass


class _Exit(Exception):
    pass


class _Cycle(Exception):
    def __init__(self, label):
        self.label = label


def _bud(o, mo):
    raise _Budget("operation budget exceeded (max_ops=%d)" % (mo,))


def _idiv(a, b):
    q = abs(a) // abs(b)
    return int(q if (a >= 0) == (b >= 0) else -q)


def _div(a, b):
    if isinstance(a, int) and isinstance(b, int):
        if b == 0:
            raise _Err("integer division by zero")
        return _idiv(a, b)
    return a / b


def _sign(a, b):
    return abs(a) if b >= 0 else -abs(a)


def _pop(q):
    if not q:
        raise _Err("READ past end of inputs")
    return q.pop(0)
'''

# Dyndep-variant extras: the state object plus the read/write helpers
# called at every instrumented access site.  ``_wr`` takes the value
# *before* the offset so Python's left-to-right argument evaluation
# reproduces the oracle's event order (value reads, then subscript
# reads, then the write).  ``stack`` holds mutable activation cells
# ``[dense loop id, invocation, iteration]``; a cell's iteration field
# is severed to ``None`` on loop exit, so a shadow snapshot referencing
# a dead (or re-entered) loop invocation compares as inactive — exactly
# the oracle's (loop, invocation) matching.
_DD_PREAMBLE = '''\


class _DD(object):
    __slots__ = ("window", "stack", "inv", "snap", "flag", "shadow",
                 "bufs", "names", "sampled", "skipped", "carried",
                 "by_var", "wit", "maxw")

    def __init__(self, window, maxw):
        self.window = window
        self.stack = []
        self.inv = {}
        self.snap = ()
        self.flag = True
        self.shadow = {}
        self.bufs = {}
        self.names = {}
        self.sampled = 0
        self.skipped = 0
        self.carried = {}
        self.by_var = {}
        self.wit = {}
        self.maxw = maxw

    def rec(self, lid, bname, wline, rline):
        c = self.carried
        c[lid] = c.get(lid, 0) + 1
        bv = self.by_var
        k = (lid, bname)
        bv[k] = bv.get(k, 0) + 1
        pairs = self.wit.setdefault(lid, [])
        p = (wline, rline)
        if p not in pairs and len(pairs) < self.maxw:
            pairs.append(p)


def _rd(dd, b, i, rline):
    if dd.flag:
        dd.sampled += 1
        sh = dd.shadow.get(id(b))
        if sh is not None:
            ent = sh[i]
            if ent is not None:
                sw = ent[0]
                if sw is not dd.snap:
                    for cell, wit in sw:
                        cur = cell[2]
                        if cur is not None and cur != wit:
                            dd.rec(cell[0], dd.names[id(b)],
                                   ent[1], rline)
    else:
        dd.skipped += 1
    return b[i]


def _wr(dd, b, v, i, wline):
    if dd.flag:
        dd.sampled += 1
        bid = id(b)
        sh = dd.shadow.get(bid)
        if sh is None:
            sh = [None] * len(b)
            dd.shadow[bid] = sh
            dd.bufs[bid] = b
        snap = dd.snap
        if snap is None:
            snap = tuple((c, c[2]) for c in dd.stack)
            dd.snap = snap
        sh[i] = (snap, wline)
    else:
        dd.skipped += 1
    b[i] = float(v)
'''

_BINOPS = {"+": "+", "-": "-", "*": "*", "**": "**",
           "<": "<", "<=": "<=", ">": ">", ">=": ">=",
           "==": "==", "/=": "!="}

_ONE_ARG = {"abs": "abs", "sqrt": "_m.sqrt", "exp": "_m.exp",
            "log": "_m.log", "sin": "_m.sin", "cos": "_m.cos",
            "float": "float", "int": "int"}


class _Arr:
    """Codegen-time metadata for one array (or buffer-backed scalar).

    ``lows`` / ``strides`` entries are ints (constant-folded) or names
    of prologue temporaries; formal arrays instead defer everything to
    the runtime 4-tuple ``(buffer, base, lows, strides)`` they were
    passed — the oracle binds the *caller's* view to array formals, so
    the callee's declared shape never enters the picture."""

    __slots__ = ("buf", "base", "lows", "strides", "formal", "name")

    def __init__(self, buf, base, lows, strides, formal, name):
        self.buf = buf
        self.base = base
        self.lows = lows
        self.strides = strides
        self.formal = formal
        self.name = name

    def low(self, k: int):
        if self.formal:
            return f"lo_{self.name}[{k}]"
        return self.lows[k]

    def stride(self, k: int):
        if self.formal:
            # ArrayView strides always start at 1
            return 1 if k == 0 else f"st_{self.name}[{k}]"
        return self.strides[k]

    def whole(self) -> str:
        """Argument text passing this array whole to an array formal."""
        if self.formal:
            return (f"(buf_{self.name}, off_{self.name}, "
                    f"lo_{self.name}, st_{self.name})")
        lows = ", ".join(str(v) for v in self.lows)
        sts = ", ".join(str(v) for v in self.strides)
        sep = "," if len(self.lows) == 1 else ""
        return f"({self.buf}, {self.base}, ({lows}{sep}), ({sts}{sep}))"


def _lit(value) -> str:
    """Source literal for a constant; negatives are parenthesized so
    the text embeds safely in any operator context."""
    text = repr(value)
    return f"({text})" if text.startswith("-") else text


def _const_index(e: Expression) -> Optional[int]:
    if isinstance(e, Const) and isinstance(e.value, int) \
            and not isinstance(e.value, bool):
        return e.value
    if isinstance(e, VarRef) and e.symbol.is_const \
            and isinstance(e.symbol.const_value, int) \
            and not isinstance(e.symbol.const_value, bool):
        return e.symbol.const_value
    return None


class _LoopHead:
    """Codegen-time facts about one loop, computed by
    ``_ProcEmitter._emit_loop_head`` and consumed by
    ``_emit_loop_body`` (and by the parallel backend's dispatch
    sites, which sit between the two)."""

    __slots__ = ("has_call", "need_cycle", "need_exit", "seed_iter",
                 "precharge", "sym", "shadow", "mirror", "lo_t", "hi_t",
                 "st_t", "step_const", "rng")


class _ProcEmitter:
    """Emits one procedure as a Python function, mirroring the closure
    engine's op batching, loop drivers, and call protocol statement for
    statement."""

    def __init__(self, mod: "_ModuleEmitter", proc: Procedure):
        self.mod = mod
        self.program = mod.program
        self.proc = proc
        self.dyn = mod.variant == VARIANT_DYNDEP
        self.profile = mod.variant == VARIANT_PROFILE
        self.is_main = proc.name == mod.program.main
        self.lines: List[str] = []
        self._ind = 0
        self._n = 0
        self._pending: List[str] = []
        self._pending_n = 0
        self.arrays: Dict[int, _Arr] = {}      # id(sym) -> metadata
        self._site = False                      # dyndep: instrument here?
        self._line = 0                          # dyndep: witness line
        # loop scopes for invariant hoisting: [pos, indent, written, cache]
        self._scopes: List[list] = []
        # batch-scope load/store CSE: (bufname, offtext) -> value temp.
        # Off for dyndep — every access must raise its shadow event.
        self._cse: Optional[Dict] = None if self.dyn else {}
        # CSE pre-lines go through self._pending; only statements that
        # batch (assign/io) may use it — conditions, bounds and call
        # arguments must compile to self-contained text
        self._batch = False
        # symbols the loop driver writes raw ints into (no type
        # coercion, mirroring the oracle's frame.scalars[index] = i)
        self._loop_syms = frozenset(
            id(s.index) for s in proc.body.walk()
            if isinstance(s, LoopStmt))

    # -- infrastructure ------------------------------------------------------
    def w(self, text: str) -> None:
        self.lines.append("    " * self._ind + text)

    def tmp(self, prefix: str = "_t") -> str:
        self._n += 1
        return f"{prefix}{self._n}"

    def set_site(self, stmt: Optional[Statement]) -> None:
        """Resolve dyndep instrumentation for accesses attributed to
        ``stmt`` (the compile-time mirror of the oracle's
        ``current_stmt``; skip-set statements compile to uninstrumented
        accesses, bypassing even the sampling counters, exactly like
        the oracle's early return)."""
        if not self.dyn:
            return
        if stmt is not None and stmt.stmt_id in self.mod.skip:
            self._site, self._line = False, 0
        else:
            self._site = True
            self._line = stmt.line if stmt is not None else 0

    def charge(self, n: int) -> None:
        """One batched budget charge-and-check."""
        self.w(f"_o += {n}")
        self.w("if _o > _mo:")
        self.w("    _bud(_o, _mo)")

    def flush(self) -> None:
        if self._pending_n:
            self.charge(self._pending_n)
            for line in self._pending:
                self.w(line)
        self._pending = []
        self._pending_n = 0
        if self._cse is not None:
            self._cse = {}

    # -- static analysis -----------------------------------------------------
    def etype(self, e: Expression) -> str:
        """Runtime type of ``e``'s value: ``'f'`` (definitely Python
        float), ``'i'`` (definitely int), ``'?'`` (unknown / bool).
        Sound because every store site coerces: REAL locals and buffer
        elements always hold floats, INT locals always ints.  Formals
        are ``'?'`` — binding is raw, so a float can hide in an INT
        formal until its first (coercing) store."""
        import numpy as np
        if isinstance(e, Const):
            v = e.value
            if isinstance(v, bool):
                return "?"
            if isinstance(v, float):
                return "f"
            if isinstance(v, (int, np.integer)):
                return "i"
            return "?"
        if isinstance(e, VarRef):
            sym = e.symbol
            if sym.is_const:
                v = sym.const_value
                if isinstance(v, bool):
                    return "?"
                return "f" if isinstance(v, float) else (
                    "i" if isinstance(v, (int, np.integer)) else "?")
            if _buffer_backed(sym):
                return "f"
            if sym.is_array:
                return "i"                       # bare ref reads as 0
            if getattr(sym, "storage", None) != "local":
                return "?"
            if sym.type == INT:
                return "i"
            # a REAL used as a loop index holds raw driver ints
            return "?" if id(sym) in self._loop_syms else "f"
        if isinstance(e, ArrayRef):
            return "f"
        if isinstance(e, BinaryOp):
            lt, rt = self.etype(e.left), self.etype(e.right)
            if e.op in ("+", "-", "*"):
                if "f" in (lt, rt):
                    return "f"
                return "i" if lt == rt == "i" else "?"
            if e.op == "/":
                if "f" in (lt, rt):
                    return "f"
                return "i" if lt == rt == "i" else "?"
            if e.op == "**":
                return "f" if "f" in (lt, rt) else "?"
            return "?"                           # comparisons, and/or
        if isinstance(e, UnaryOp):
            return self.etype(e.operand) if e.op == "-" else "?"
        if isinstance(e, Intrinsic):
            n = e.name
            if n in ("sqrt", "exp", "log", "sin", "cos", "float"):
                return "f"
            if n == "int":
                return "i"
            if n in ("abs", "min", "max", "mod"):
                ts = {self.etype(a) for a in e.args}
                return ts.pop() if len(ts) == 1 else "?"
            if n == "sign" and e.args:
                return self.etype(e.args[0])
        return "?"

    def _expr_vars(self, e: Expression):
        """(referenced plain-local names, pure?) — pure means no buffer
        reads, no raising ops, no short-circuit charging: safe to
        evaluate early, repeatedly, or not at all."""
        if isinstance(e, Const):
            return frozenset(), True
        if isinstance(e, VarRef):
            sym = e.symbol
            if sym.is_const or sym.is_array:
                return frozenset(), True
            if _buffer_backed(sym):
                return frozenset(), False
            return frozenset((sym.name,)), True
        if isinstance(e, BinaryOp):
            if e.op not in ("+", "-", "*"):
                return frozenset(), False
            lv, lp = self._expr_vars(e.left)
            rv, rp = self._expr_vars(e.right)
            return lv | rv, lp and rp
        if isinstance(e, UnaryOp) and e.op == "-":
            return self._expr_vars(e.operand)
        if isinstance(e, Intrinsic) and e.name in ("int", "float", "abs"):
            vs, pure = frozenset(), True
            for a in e.args:
                av, ap = self._expr_vars(a)
                vs, pure = vs | av, pure and ap
            return vs, pure
        return frozenset(), False

    def _written_vars(self, block: Block) -> frozenset:
        """Plain-local names the block (transitively) may write: assign
        targets, READ items, call copy-back args, loop indices."""
        out = set()

        def local(sym):
            if not (sym.is_const or sym.is_array or _buffer_backed(sym)):
                out.add(sym.name)

        for s in block.walk():
            if isinstance(s, AssignStmt) and isinstance(s.target, VarRef):
                local(s.target.symbol)
            elif isinstance(s, IoStmt) and s.kind == "read":
                for item in s.items:
                    if isinstance(item, VarRef):
                        local(item.symbol)
            elif isinstance(s, CallStmt):
                for a in s.args:
                    if isinstance(a, VarRef):
                        local(a.symbol)
            elif isinstance(s, LoopStmt):
                local(s.index)
        return frozenset(out)

    def _hoist(self, text: str, vars_: frozenset) -> str:
        """Loop-invariant code motion for a pure offset term: emit
        ``temp = text`` at the outermost enclosing loop none of whose
        (transitively) written variables feed the term; returns the temp
        (or ``text`` unchanged when no loop qualifies)."""
        target = None
        for scope in self._scopes:               # outermost first
            if not (vars_ & scope[2]):
                target = scope
                break
        if target is None:
            return text
        cached = target[3].get(text)
        if cached is not None:
            return cached
        name = self.tmp("_h")
        line = "    " * target[1] + f"{name} = {text}"
        pos = target[0]
        self.lines.insert(pos, line)
        for scope in self._scopes:
            if scope[0] >= pos:
                scope[0] += 1
        target[3][text] = name
        return name

    def _load(self, bufname: str, offtext: str) -> str:
        """Batch-scope CSE of element loads: repeated reads of the same
        (buffer, offset-text) within one straight-line batch reuse one
        temp; a store to the same slot forwards its value.  Ops are
        charged statically, so reuse never changes op accounting."""
        plain = f"{bufname}[{offtext}]"
        if self._cse is None or not self._batch or "_o :=" in offtext:
            return plain
        key = (bufname, offtext)
        cached = self._cse.get(key)
        if cached is not None:
            return cached
        name = self.tmp()
        self._pending.append(f"{name} = {plain}")
        self._cse[key] = name
        return name

    def _store_cse(self, meta: _Arr, offtext: str, valtext: str,
                   vtype: str) -> List[str]:
        """Emit a coerced store through the CSE layer: the stored value
        lands in a temp (forwarded to later same-slot reads) and every
        possibly-aliasing cached load is dropped."""
        val = valtext if vtype == "f" else f"float({valtext})"
        plain = [f"{meta.buf}[{offtext}] = {val}"]
        if self._cse is None or not self._batch or "_o :=" in offtext:
            self._invalidate_store(meta, None)
            return plain
        name = self.tmp()
        self._invalidate_store(meta, (meta.buf, offtext))
        self._cse[(meta.buf, offtext)] = name
        return [f"{name} = {val}", f"{meta.buf}[{offtext}] = {name}"]

    def _invalidate_store(self, meta: _Arr, keep) -> None:
        """Drop CSE entries a store through ``meta`` may alias: same
        buffer at any other offset text, plus — since array formals can
        alias each other and any common block — everything formal-backed
        when storing anywhere, and commons when storing via a formal."""
        if self._cse is None:
            return
        via_formal = meta.formal
        for key in list(self._cse):
            bufname, _ = key
            if key == keep:
                continue
            if bufname == meta.buf \
                    or bufname.startswith("buf_") and self._is_formal(bufname) \
                    or (via_formal and bufname.startswith("_c_")):
                del self._cse[key]

    def _is_formal(self, bufname: str) -> bool:
        name = bufname[4:]
        for f in self.proc.formals:
            if f.is_array and f.name == name:
                return True
        return False

    def _invalidate_scalar(self, name: str) -> None:
        """A scalar assign changes the meaning of any cached offset text
        that mentions it."""
        if not self._cse:
            return
        import re
        pat = re.compile(rf"\bv_{re.escape(name)}\b")
        for key in list(self._cse):
            if pat.search(key[1]):
                del self._cse[key]

    # -- expressions ---------------------------------------------------------
    def expr(self, e: Expression) -> Tuple[str, int]:
        """(source text, static op count) — op protocol identical to the
        closure engine's ``_c_expr``: one op per node, short-circuit
        right branches charged dynamically (via walrus on ``_o``)."""
        if isinstance(e, Const):
            return _lit(e.value), 1
        if isinstance(e, StrConst):
            return repr(e.value), 1
        if isinstance(e, VarRef):
            sym = e.symbol
            if sym.is_const:
                return _lit(sym.const_value), 1
            if _buffer_backed(sym):
                meta = self.arrays[id(sym)]
                if self._site:
                    return (f"_rd(_dd, {meta.buf}, {meta.base}, "
                            f"{self._line})"), 1
                return self._load(meta.buf, str(meta.base)), 1
            if sym.is_array:
                # the oracle resolves a bare VarRef of an array symbol
                # via frame.scalars.get(sym, 0) -> always 0
                return "0", 1
            return f"v_{sym.name}", 1
        if isinstance(e, ArrayRef):
            meta = self.arrays.get(id(e.symbol))
            if meta is None:
                raise TranspileUnsupported(
                    f"cannot transpile array ref {e.symbol.name}")
            off, n = self.offset(meta, e.indices)
            if self._site:
                return f"_rd(_dd, {meta.buf}, {off}, {self._line})", 1 + n
            return self._load(meta.buf, off), 1 + n
        if isinstance(e, BinaryOp):
            lt, ln = self.expr(e.left)
            rt, rn = self.expr(e.right)
            if e.op == "and":
                return (f"(bool({lt}) and ((_o := _o + {rn}), "
                        f"bool({rt}))[1])"), 1 + ln
            if e.op == "or":
                return (f"(bool({lt}) or ((_o := _o + {rn}), "
                        f"bool({rt}))[1])"), 1 + ln
            if e.op == "/":
                return f"_div({lt}, {rt})", 1 + ln + rn
            op = _BINOPS.get(e.op)
            if op is None:
                raise TranspileUnsupported(
                    f"cannot transpile operator {e.op!r}")
            return f"({lt} {op} {rt})", 1 + ln + rn
        if isinstance(e, UnaryOp):
            t, n = self.expr(e.operand)
            if e.op == "-":
                return f"(-{t})", 1 + n
            if e.op == "not":
                return f"(not bool({t}))", 1 + n
            raise TranspileUnsupported(f"cannot transpile unary {e.op!r}")
        if isinstance(e, Intrinsic):
            return self.intrinsic(e)
        raise TranspileUnsupported(f"cannot transpile {e!r}")

    def intrinsic(self, e: Intrinsic) -> Tuple[str, int]:
        comp = [self.expr(a) for a in e.args]
        n = 1 + sum(m for _, m in comp)
        texts = [t for t, _ in comp]
        name = e.name
        if name in ("min", "max"):
            if not texts:
                raise TranspileUnsupported(f"{name} with no arguments")
            if len(texts) == 1:
                return texts[0], n
            return f"{name}({', '.join(texts)})", n
        if name == "mod":
            if len(texts) != 2:
                raise TranspileUnsupported("mod arity")
            return f"({texts[0]} % {texts[1]})", n
        if name == "sign":
            if len(texts) != 2:
                raise TranspileUnsupported("sign arity")
            return f"_sign({texts[0]}, {texts[1]})", n
        fn = _ONE_ARG.get(name)
        if fn is None or len(texts) != 1:
            raise TranspileUnsupported(
                f"cannot transpile intrinsic {name!r}")
        return f"{fn}({texts[0]})", n

    def index(self, e: Expression) -> Tuple[str, int]:
        t, n = self.expr(e)
        if self.etype(e) == "i":
            return t, n                    # int() of an int is identity
        return f"int({t})", n

    def offset(self, meta: _Arr, indices: Sequence[Expression]
               ) -> Tuple[str, int]:
        """Flat-offset text mirroring ``ArrayView.flat_index`` over the
        array's (possibly runtime) lows/strides, with constant folding
        of literal indices against constant shape metadata and
        loop-invariant terms hoisted out of enclosing loops."""
        const = meta.base if isinstance(meta.base, int) else 0
        terms: List[str] = []
        if not isinstance(meta.base, int):
            terms.append(str(meta.base))
        n = 0
        for k, e in enumerate(indices):
            it, m = self.index(e)
            n += m
            lo = meta.low(k)
            st = meta.stride(k)
            iv = _const_index(e)
            if iv is not None and isinstance(lo, int) \
                    and isinstance(st, int):
                const += (iv - lo) * st
                continue
            if isinstance(lo, int):
                if lo == 0:
                    base = it
                elif lo > 0:
                    base = f"({it} - {lo})"
                else:
                    base = f"({it} + {-lo})"
            else:
                base = f"({it} - {lo})"
            term = base if st == 1 else f"{base} * {st}"
            if self._scopes and term != it:
                vars_, pure = self._expr_vars(e)
                if pure:
                    term = self._hoist(term, vars_)
            terms.append(term)
        if not terms:
            return str(const), n
        text = " + ".join(terms)
        if const:
            text = f"{const} + {text}" if const > 0 else \
                f"{text} - {-const}"
        return text, n

    # -- statements ----------------------------------------------------------
    def block(self, b: Block) -> None:
        mark = len(self.lines)
        for s in b.statements:
            self.stmt(s)
        self.flush()
        if len(self.lines) == mark:
            self.w("pass")

    def stmt(self, s: Statement) -> None:
        if isinstance(s, AssignStmt):
            self.set_site(s)
            self._batch = True
            lines, n = self.assign(s)
            self._batch = False
            self._pending.extend(lines)
            self._pending_n += n
            return
        if isinstance(s, IoStmt):
            self.set_site(s)
            self._batch = True
            lines, n = self.io(s)
            self._batch = False
            self._pending.extend(lines)
            self._pending_n += n
            return
        if isinstance(s, NoopStmt):
            self._pending_n += 1
            return
        self.flush()
        if isinstance(s, IfStmt):
            self.emit_if(s)
        elif isinstance(s, LoopStmt):
            self.emit_loop(s)
        elif isinstance(s, CallStmt):
            self.emit_call(s)
        elif isinstance(s, CycleStmt):
            self.charge(1)
            self.w(f"raise _Cycle({s.target_label!r})")
        elif isinstance(s, ExitStmt):
            self.charge(1)
            self.w("raise _Exit()")
        elif isinstance(s, ReturnStmt):
            self.charge(1)
            self.w("return")
        elif isinstance(s, StopStmt):
            self.charge(1)
            self.w("raise _Stop()")
        else:
            raise TranspileUnsupported(f"cannot transpile {s!r}")

    def assign(self, s: AssignStmt) -> Tuple[List[str], int]:
        vtype = self.etype(s.value)
        vt, vn = self.expr(s.value)
        t = s.target
        if isinstance(t, VarRef):
            sym = t.symbol
            if _buffer_backed(sym):
                meta = self.arrays[id(sym)]
                if self._site:
                    return [f"_wr(_dd, {meta.buf}, {vt}, {meta.base}, "
                            f"{self._line})"], 1 + vn
                return self._store_cse(meta, str(meta.base), vt,
                                       vtype), 1 + vn
            if sym.is_array:
                raise TranspileUnsupported(
                    f"assignment to array name {sym.name}")
            want = "i" if sym.type == INT else "f"
            coerce = "int" if sym.type == INT else "float"
            val = vt if vtype == want else f"{coerce}({vt})"
            if sym.is_const:
                # the oracle stores into frame.scalars where the const
                # shadows it forever: evaluate + coerce, visible nowhere
                return [f"{self.tmp()} = {val}"], 1 + vn
            self._invalidate_scalar(sym.name)
            return [f"v_{sym.name} = {val}"], 1 + vn
        if isinstance(t, ArrayRef):
            meta = self.arrays.get(id(t.symbol))
            if meta is None:
                raise TranspileUnsupported(
                    f"cannot transpile store to {t.symbol.name}")
            off, on = self.offset(meta, t.indices)
            if self._site:
                return [f"_wr(_dd, {meta.buf}, {vt}, {off}, "
                        f"{self._line})"], 1 + vn + on
            # RHS text precedes the target subscript in the emitted
            # store - oracle value-then-index order
            return self._store_cse(meta, off, vt, vtype), 1 + vn + on
        raise TranspileUnsupported(f"invalid store target {t!r}")

    def io(self, s: IoStmt) -> Tuple[List[str], int]:
        if s.kind == "print":
            lines = []
            n = 1
            for item in s.items:
                t, m = self.expr(item)
                n += m
                lines.append(f"_out.append({t})")
            return lines, n
        lines = []
        n = 1
        for item in s.items:
            if isinstance(item, VarRef):
                sym = item.symbol
                if _buffer_backed(sym):
                    meta = self.arrays[id(sym)]
                    if self._site:
                        lines.append(f"_wr(_dd, {meta.buf}, _pop(_in), "
                                     f"{meta.base}, {self._line})")
                    else:
                        lines.extend(self._store_cse(
                            meta, str(meta.base), "_pop(_in)", "?"))
                    continue
                if sym.is_array:
                    raise TranspileUnsupported(
                        f"READ into array name {sym.name}")
                coerce = "int" if sym.type == INT else "float"
                target = self.tmp() if sym.is_const else f"v_{sym.name}"
                if not sym.is_const:
                    self._invalidate_scalar(sym.name)
                lines.append(f"{target} = {coerce}(_pop(_in))")
                continue
            if isinstance(item, ArrayRef):
                meta = self.arrays.get(id(item.symbol))
                if meta is None:
                    raise TranspileUnsupported(
                        f"READ into {item.symbol.name}")
                off, on = self.offset(meta, item.indices)
                n += on
                if self._site:
                    lines.append(f"_wr(_dd, {meta.buf}, _pop(_in), "
                                 f"{off}, {self._line})")
                else:
                    lines.extend(self._store_cse(meta, off,
                                                 "_pop(_in)", "?"))
                continue
            raise TranspileUnsupported(f"invalid READ target {item!r}")
        return lines, n

    def emit_if(self, s: IfStmt) -> None:
        self.set_site(s)
        arms = []
        for cond, body in s.arms:
            self.set_site(s)        # bodies move the site; conds don't
            ct, cn = self.expr(cond)
            arms.append((ct, cn, body))
        self.charge(1 + arms[0][1])

        def emit_arm(i: int) -> None:
            ct, _, body = arms[i]
            self.w(f"if {ct}:")
            self._ind += 1
            self.block(body)
            self._ind -= 1
            rest = i + 1 < len(arms)
            if rest or s.else_block is not None:
                self.w("else:")
                self._ind += 1
                if rest:
                    # later arm conditions charge on reach, no check
                    self.w(f"_o += {arms[i + 1][1]}")
                    emit_arm(i + 1)
                else:
                    self.block(s.else_block)
                self._ind -= 1

        emit_arm(0)

    # -- loops ---------------------------------------------------------------
    def _index_written(self, loop: LoopStmt) -> bool:
        """Static test: can the loop body write the index variable?  If
        not, the generated loop drives ``v_<index>`` directly (no mirror
        counter, no per-iteration store)."""
        sym = loop.index
        for s in loop.body.walk():
            if isinstance(s, AssignStmt) and isinstance(s.target, VarRef) \
                    and s.target.symbol is sym:
                return True
            if isinstance(s, IoStmt) and s.kind == "read":
                for item in s.items:
                    if isinstance(item, VarRef) and item.symbol is sym:
                        return True
            if isinstance(s, CallStmt):
                for a in s.args:
                    if isinstance(a, VarRef) and a.symbol is sym:
                        return True
            if isinstance(s, LoopStmt) and s.index is sym:
                return True
        return False

    def _bound(self, e: Expression, prefix: str) -> str:
        """Loop bound: a literal when constant, otherwise an ``int()``-
        coerced temp evaluated once (like the closure driver)."""
        iv = _const_index(e)
        if iv is not None:
            return _lit(iv)
        t, _ = self.index(e)
        name = self.tmp(prefix)
        self.w(f"{name} = {t}")
        return name

    def emit_loop(self, loop: LoopStmt) -> None:
        head = self._emit_loop_head(loop)
        self._emit_loop_body(loop, head)

    def _emit_loop_head(self, loop: LoopStmt) -> "_LoopHead":
        """Charge the loop head and evaluate bounds into temps, ending
        with the ``range`` object.  Split from the body emission so the
        parallel backend can interpose a dispatch decision *after* the
        (side-effecting, op-charged) bound evaluation but *before* the
        sequential loop drivers; the generated text for a plain
        head+body emission is bit-identical to the pre-split layout."""
        self.set_site(loop)
        head = _LoopHead()
        stmts = list(loop.body.walk())
        head.has_call = has_call = any(isinstance(x, CallStmt)
                                       for x in stmts)
        head.need_cycle = has_call or any(isinstance(x, CycleStmt)
                                          for x in stmts)
        from .compile_engine import _has_shallow_exit
        head.need_exit = has_call or _has_shallow_exit(loop.body)
        # the per-iteration +1 folds into the body's first batch charge
        # only when no unwind can skip it (the oracle drops it on
        # EXIT/STOP/RETURN and on a CYCLE crossing to an outer loop)
        head.seed_iter = not any(
            isinstance(x, (CallStmt, ExitStmt, StopStmt, ReturnStmt,
                           CycleStmt)) for x in stmts)
        # straight-line bodies under the plain variant hoist the whole
        # per-iteration charge out of the loop: one precomputed
        # (batch + 1) * trips charge, zero accounting inside
        head.precharge = (not self.profile and not self.dyn
                          and all(isinstance(x, (AssignStmt, IoStmt,
                                                 NoopStmt))
                                  for x in loop.body.statements))

        head.sym = sym = loop.index
        if sym.is_array:
            raise TranspileUnsupported(
                f"array symbol {sym.name} as loop index")
        # buffer-backed / const indices: the oracle's index store lands
        # in frame.scalars where reads never see it -> invisible mirror
        head.shadow = shadow = _buffer_backed(sym) or sym.is_const
        head.mirror = shadow or self._index_written(loop)

        def bound_n(e) -> int:
            return 1 if _const_index(e) is not None else self.expr(e)[1]

        head_n = 1 + bound_n(loop.low) + bound_n(loop.high)
        if loop.step is not None:
            head_n += bound_n(loop.step)
        self.charge(head_n)

        head.lo_t = lo_t = self._bound(loop.low, "_lo")
        head.hi_t = self._bound(loop.high, "_hi")
        hi_t = head.hi_t
        step_const: Optional[int] = 1
        st_t = "1"
        if loop.step is not None:
            step_const = _const_index(loop.step)
            if step_const is not None:
                st_t = _lit(step_const)
            else:
                st_t = self._bound(loop.step, "_st")
                self.w(f"if {st_t} == 0:")
                self.w(f"    raise _Err({('zero step in ' + loop.name)!r})")
        if step_const == 0:
            self.w(f"raise _Err({('zero step in ' + loop.name)!r})")
        head.step_const = step_const
        head.st_t = st_t

        head.rng = rng = self.tmp("_rng")
        if step_const is None:
            self.w(f"{rng} = range({lo_t}, {hi_t} + "
                   f"(1 if {st_t} > 0 else -1), {st_t})")
        elif step_const == 1:
            self.w(f"{rng} = range({lo_t}, {hi_t} + 1)")
        elif step_const > 0:
            self.w(f"{rng} = range({lo_t}, {hi_t} + 1, {st_t})")
        else:
            self.w(f"{rng} = range({lo_t}, {hi_t} - 1, {st_t})")
        return head

    def _emit_loop_body(self, loop: LoopStmt, head: "_LoopHead") -> None:
        """Sequential loop drivers and body for an already-emitted head
        (same generated text as the pre-split ``emit_loop``)."""
        need_cycle = head.need_cycle
        need_exit = head.need_exit
        seed_iter = head.seed_iter
        precharge = head.precharge
        sym = head.sym
        shadow = head.shadow
        mirror = head.mirror
        lo_t = head.lo_t
        step_const = head.step_const
        st_t = head.st_t
        rng = head.rng

        L = None
        if self.profile or self.dyn:
            L = self.mod.loop_index[loop.stmt_id]
        if self.profile:
            en = self.tmp("_en")
            it_acc = self.tmp("_it")
            self.w(f"{en} = _o")
        if self.dyn:
            cell = self.tmp("_e")
            self.w(f"_v = _dd.inv.get({L}, 0) + 1")
            self.w(f"_dd.inv[{L}] = _v")
            self.w(f"{cell} = [{L}, _v, 0]")
            self.w(f"_dd.stack.append({cell})")
            self.w("_dd.snap = None")
            self.w("if _w:")
            self.w("    _dd.flag = True")
        iv = self.tmp("_i") if mirror else f"v_{sym.name}"
        self.w(f"{iv} = {lo_t}")
        if self.profile:
            self.w(f"{it_acc} = 0")
            # first-touch registration: an iterating loop registers at
            # its first iteration (before any inner loop does); zero-trip
            # loops register in the exit finally below
            self.w(f"if {rng} and not _pn[{L}]:")
            self.w(f"    _pn[{L}] = True")
            self.w(f"    _po.append({L})")

        # on normal completion the oracle's index sits one past the last
        # iteration; a Python for leaves the final value, so fix up from
        # the O(1) range length (unwinds skip this, keeping the
        # current-iteration value exactly like the while form did)
        if step_const == 1:
            fix = f"{iv} = {lo_t} + len({rng})"
        else:
            fix = f"{iv} = {lo_t} + len({rng}) * {st_t}"

        # loop-invariant hoist scope: offset terms none of whose inputs
        # the body writes migrate to this position
        written = self._written_vars(loop.body)
        if not shadow:
            written = written | {sym.name}
        self._scopes.append([len(self.lines), self._ind, written, {}])

        if precharge:
            for s in loop.body.statements:
                self.stmt(s)
            body_lines = self._pending
            body_n = self._pending_n
            self._pending = []
            self._pending_n = 0
            if self._cse is not None:
                self._cse = {}
            self.w(f"_o += {body_n + 1} * len({rng})")
            self.w("if _o > _mo:")
            self.w("    _bud(_o, _mo)")
            self.w(f"for {iv} in {rng}:")
            self._ind += 1
            if mirror and not shadow:
                self.w(f"v_{sym.name} = {iv}")
            if body_lines:
                for line in body_lines:
                    self.w(line)
            elif not (mirror and not shadow):
                self.w("pass")
            self._ind -= 1
            self.w(fix)
            if mirror and not shadow:
                self.w(f"v_{sym.name} = {iv}")
            self._scopes.pop()
            return

        fenced = need_exit or self.profile or self.dyn or mirror
        if fenced:
            self.w("try:")
            self._ind += 1
        self.w(f"for {iv} in {rng}:")
        self._ind += 1
        if mirror and not shadow:
            self.w(f"v_{sym.name} = {iv}")
        if self.profile:
            self.w(f"{it_acc} += 1")
        if self.dyn:
            itv = self.tmp("_c")
            self.w(f"{itv} = {cell}[2] + 1")
            self.w(f"{cell}[2] = {itv}")
            self.w("_dd.snap = None")
            self.w("if _w:")
            self.w(f"    _dd.flag = ({itv} % _w) < 2")
        if seed_iter:
            self._pending_n += 1
        if need_cycle:
            self.w("try:")
            self._ind += 1
            self.block(loop.body)
            self._ind -= 1
            self.w("except _Cycle as _cy:")
            self.w("    if _cy.label is not None and "
                   f"_cy.label != {loop.term_label!r}:")
            self.w("        raise")
        else:
            self.block(loop.body)
        if not seed_iter:
            self.w("_o += 1")
        self._ind -= 1
        self.w(fix)
        self._scopes.pop()
        if fenced:
            self._ind -= 1
            if need_exit:
                self.w("except _Exit:")
                self.w("    pass")
            self.w("finally:")
            self._ind += 1
            emitted = False
            if mirror and not shadow:
                self.w(f"v_{sym.name} = {iv}")
                emitted = True
            if self.profile:
                # call-site finallys already max-merged _s[0] into _o on
                # any unwind path, so _o is current here
                self.w(f"if not _pn[{L}]:")
                self.w(f"    _pn[{L}] = True")
                self.w(f"    _po.append({L})")
                self.w(f"_pt[{L}] += _o - {en}")
                self.w(f"_pv[{L}] += 1")
                self.w(f"_pi[{L}] += {it_acc}")
                emitted = True
            if self.dyn:
                self.w("_dd.stack.pop()")
                self.w(f"{cell}[2] = None")
                self.w("_dd.snap = None")
                self.w("if _w:")
                self.w("    _dd.flag = ((_dd.stack[-1][2] % _w) < 2) "
                       "if _dd.stack else True")
                emitted = True
            if not emitted:
                self.w("pass")
            self._ind -= 1

    # -- calls ---------------------------------------------------------------
    def emit_call(self, call: CallStmt) -> None:
        callee = self.program.procedures.get(call.callee)
        if callee is None:
            raise TranspileUnsupported(
                f"call to unknown procedure {call.callee}")
        self.set_site(call)
        args: List[Tuple[str, bool]] = []     # (text, hoist to temp?)
        cbs: List[str] = []
        args_n = 0
        cb_n = 0
        for pos, (actual, formal) in enumerate(zip(call.args,
                                                   callee.formals)):
            if isinstance(actual, ArrayRef):
                meta = self.arrays.get(id(actual.symbol))
                if meta is None:
                    raise TranspileUnsupported(
                        f"unbound array {actual.symbol.name}")
                if actual.indices:
                    off, on = self.offset(meta, actual.indices)
                    args_n += on
                    if formal.is_array:
                        # sequence association: a 1-D open view rooted
                        # at the element (ArrayView.subview_at)
                        args.append((f"({meta.buf}, {off}, (1,), (1,))",
                                     True))
                    else:
                        # scalar formal bound to an array element:
                        # copy-in/copy-out; the loads/stores themselves
                        # have no observer events (oracle view.load /
                        # view.store), only the index expressions do
                        args.append((f"{meta.buf}[{off}]", True))
                        cb_off, cb_on = self.offset(meta, actual.indices)
                        cb_n += cb_on
                        cbs.append(f"{meta.buf}[{cb_off}] = "
                                   f"float(_r[{pos}])")
                else:
                    args.append((meta.whole(), False))
                continue
            if isinstance(actual, VarRef) and not formal.is_array:
                sym = actual.symbol
                if _buffer_backed(sym) or sym.is_const or sym.is_array:
                    # oracle: frame.scalars.get(sym, 0) -> 0, and the
                    # copy-out lands where the real storage shadows it
                    args.append(("0", False))
                else:
                    coerce = "int" if sym.type == INT else "float"
                    args.append((f"v_{sym.name}", False))
                    cbs.append(f"v_{sym.name} = {coerce}(_r[{pos}])")
                continue
            if formal.is_array:
                # the oracle would bind a scalar and raise "array formal
                # not bound" at frame setup — degenerate, not mirrored
                raise TranspileUnsupported(
                    f"non-array actual for array formal {formal.name} "
                    f"of {call.callee}")
            t, n = self.expr(actual)
            args_n += n
            args.append((t, True))
        for pos in range(len(call.args), len(callee.formals)):
            args.append(("None" if callee.formals[pos].is_array else "0",
                         False))

        self.charge(1)
        if args_n:
            self.w(f"_o += {args_n}")
        final = []
        for text, hoist in args:
            if hoist:
                # side-effecting argument expressions (charges via
                # walrus, dyndep events) must run before _s[0] publishes
                name = self.tmp("_a")
                self.w(f"{name} = {text}")
                final.append(name)
            else:
                final.append(text)
        self.w("_s[0] = _o")
        arglist = ", ".join(final + ["_cm", "_out", "_in", "_s", "_mo"])
        self.w("try:")
        self.w(f"    p_{call.callee}({arglist}{self.mod.extra_args})")
        self.w("finally:")
        self._ind += 1
        # max-merge so caught unwinds (CYCLE/EXIT crossing the call)
        # leave the local counter in sync with the shared cell
        self.w("if _s[0] > _o:")
        self.w("    _o = _s[0]")
        if cbs:
            # _s[1] stays None when the callee died during frame setup;
            # the oracle skips copy-out (and its charge) in that case
            self.w("_r = _s[1]")
            self.w("if _r is not None:")
            self._ind += 1
            if cb_n:
                self.w(f"_o += {cb_n}")
            for line in cbs:
                self.w(line)
            self._ind -= 1
        self._ind -= 1

    # -- procedure -----------------------------------------------------------
    def emit(self) -> List[str]:
        proc = self.proc
        params = [(f"a_{f.name}" if f.is_array else f"v_{f.name}")
                  for f in proc.formals]
        params += ["_cm", "_out", "_in", "_s", "_mo"]
        sig = ", ".join(params) + self.mod.extra_args
        self.w(f"def p_{proc.name}({sig}):")
        self._ind += 1
        self.w("_o = _s[0]")
        self.w("_s[1] = None")
        self.w("try:")
        self._ind += 1

        # formal arrays: unpack the caller's view 4-tuple; the unbound
        # check (for call sites that under-pass) mirrors frame setup
        for pos, f in enumerate(proc.formals):
            if not f.is_array:
                continue
            if self.mod.may_underpass(proc.name, pos):
                msg = f"array formal {f.name} of {proc.name} not bound"
                self.w(f"if a_{f.name} is None:")
                self.w(f"    raise _Err({msg!r})")
            self.w(f"buf_{f.name}, off_{f.name}, lo_{f.name}, "
                   f"st_{f.name} = a_{f.name}")
            self.arrays[id(f)] = _Arr(f"buf_{f.name}", f"off_{f.name}",
                                      None, None, True, f.name)

        # common blocks: hoist each flat list once per frame
        hoisted = set()
        common_arrays = []
        for block_name in proc.common_blocks:
            if block_name not in hoisted:
                hoisted.add(block_name)
                self.w(f"_c_{block_name} = _cm[{block_name!r}]")
            view = self.program.commons[block_name].views[proc.name]
            for sym in view.symbols:
                if sym.is_array:
                    common_arrays.append((block_name, sym))
                else:
                    self.arrays[id(sym)] = _Arr(
                        f"_c_{block_name}", sym.common_offset,
                        [1], [1], False, sym.name)

        # local scalars first: frame slots default to 0, and dimension
        # expressions may (degenerately) read them
        local_arrays = []
        for sym in proc.symbols:
            if sym.is_const or sym.is_formal or sym.is_common \
                    or id(sym) in self.arrays:
                continue
            if sym.is_array:
                local_arrays.append(sym)
            elif sym.type == INT or id(sym) in self._loop_syms:
                self.w(f"v_{sym.name} = 0")
            else:
                # float seed keeps the 'f' inference sound (== 0, so
                # printed read-before-write values still compare equal)
                self.w(f"v_{sym.name} = 0.0")

        # frame-setup op charge: statically summed dimension-expression
        # costs, charged before any dimension runs (no budget check)
        setup = 0
        for _, sym in common_arrays:
            for d in sym.dims:
                setup += self.expr(d.low)[1]
                if d.high is not None:
                    setup += self.expr(d.high)[1]
        for sym in local_arrays:
            for d in sym.dims:
                setup += self.expr(d.low)[1]
                if d.high is not None:
                    setup += self.expr(d.high)[1]
        if setup:
            self.w(f"_o += {setup}")

        # dimension expressions compile like the closure engine's frame
        # setup: dyndep-instrumented, attributed to line 0
        if self.dyn:
            self._site, self._line = True, 0

        for block_name, sym in common_arrays:
            lows, strides = self._emit_shape(sym, local=False)
            self.arrays[id(sym)] = _Arr(f"_c_{block_name}",
                                        sym.common_offset, lows, strides,
                                        False, sym.name)
        for sym in local_arrays:
            if any(d.high is None for d in sym.dims):
                msg = f"local array {sym.name} has assumed size"
                self.w(f"raise _Err({msg!r})")
                # codegen must still complete for the (unreachable) body
                self.arrays[id(sym)] = _Arr(f"buf_{sym.name}", 0,
                                            [1], [1], False, sym.name)
                continue
            lows, strides = self._emit_shape(sym, local=True)
            self.arrays[id(sym)] = _Arr(f"buf_{sym.name}", 0, lows,
                                        strides, False, sym.name)
        if not self.is_main:
            self.w("_o += 5")
        if self.dyn:
            self.w("_w = _dd.window")

        self.w("try:")
        self._ind += 1
        self.block(proc.body)
        self._ind -= 1
        self.w("finally:")
        self._ind += 1
        # copy-out source for the caller: final scalar-formal values.
        # Runs on every unwind once frame setup succeeded (the oracle
        # performs copy-outs even when the body raised).
        formals_t = ", ".join(
            ("None" if f.is_array else f"v_{f.name}")
            for f in proc.formals)
        if len(proc.formals) == 1:
            formals_t += ","
        self.w(f"_s[1] = ({formals_t})")
        self._ind -= 2
        self.w("finally:")
        self._ind += 1
        self.w("if _o > _s[0]:")
        self.w("    _s[0] = _o")
        self._ind -= 2
        return self.lines

    def _emit_shape(self, sym: Symbol, local: bool) -> Tuple[List, List]:
        """Evaluate one array's declared shape at frame time (lows,
        strides and — for locals — the backing list), folding constant
        dimensions into codegen-time ints."""
        lows: List = []
        extents: List = []
        for d in sym.dims:
            lo = _const_index(d.low)
            if lo is None:
                t, _ = self.index(d.low)
                lo = self.tmp("_d")
                self.w(f"{lo} = {t}")
            if d.high is None:
                lows.append(lo)
                extents.append(None)
                continue
            hi = _const_index(d.high)
            if hi is None:
                t, _ = self.index(d.high)
                hi = self.tmp("_d")
                self.w(f"{hi} = {t}")
            if isinstance(lo, int) and isinstance(hi, int):
                extents.append(hi - lo + 1)
            else:
                ext = self.tmp("_d")
                self.w(f"{ext} = {hi} - {lo} + 1")
                extents.append(ext)
            lows.append(lo)
        strides: List = []
        acc: object = 1
        for ext in extents:
            strides.append(acc)
            if ext is None:
                continue
            if isinstance(acc, int) and isinstance(ext, int):
                acc = acc * ext
            else:
                nxt = self.tmp("_d")
                self.w(f"{nxt} = {acc} * {ext}")
                acc = nxt
        if local:
            self.w(f"buf_{sym.name} = [0.0] * {acc}")
            if self.dyn:
                bname = f"{self.proc.name}::{sym.name}"
                self.w(f"_dd.names[id(buf_{sym.name})] = {bname!r}")
        return lows, strides


class _ModuleEmitter:
    """Emits one whole program for one instrumentation variant."""

    def __init__(self, program: Program, variant: str, skip_ids=()):
        if variant not in (VARIANT_PLAIN, VARIANT_PROFILE,
                           VARIANT_DYNDEP):
            raise TranspileUnsupported(f"unknown variant {variant!r}")
        if program.main is None:
            raise ValueError("program has no PROGRAM unit")
        self.program = program
        self.variant = variant
        self.skip = frozenset(skip_ids or ())
        self.loop_index = {loop.stmt_id: i
                           for i, loop in enumerate(loop_table(program))}
        if variant == VARIANT_PROFILE:
            self.extra_args = ", _pt, _pv, _pi, _pn, _po"
        elif variant == VARIANT_DYNDEP:
            self.extra_args = ", _dd"
        else:
            self.extra_args = ""
        # minimum positional arity seen per callee: array formals at or
        # past it need the unbound-None guard
        self._min_args: Dict[str, int] = {}
        for proc in program.procedures.values():
            for s in proc.body.walk():
                if isinstance(s, CallStmt):
                    prev = self._min_args.get(s.callee)
                    if prev is None or len(s.args) < prev:
                        self._min_args[s.callee] = len(s.args)

    def may_underpass(self, proc_name: str, pos: int) -> bool:
        least = self._min_args.get(proc_name)
        return least is not None and least <= pos

    def emit(self) -> str:
        program = self.program
        parts = [
            f'"""Transpiled from {program.name!r} '
            f'(variant={self.variant}, codegen v{CODEGEN_VERSION}).\n'
            'Generated by repro.runtime.transpile - do not edit."""',
            "",
            _PREAMBLE,
        ]
        if self.variant == VARIANT_DYNDEP:
            parts.append(_DD_PREAMBLE)
        parts.append(f"\n_NLOOPS = {len(self.loop_index)}\n")
        for name in sorted(program.procedures):
            emitter = _ProcEmitter(self, program.procedures[name])
            parts.append("\n")
            parts.extend(emitter.emit())
        if self.variant == VARIANT_PLAIN:
            commons = ", ".join(
                f"{name!r}: [0.0] * {block.size}"
                for name, block in program.commons.items())
            parts.extend([
                "\n",
                f"def run(inputs=(), max_ops={_DEFAULT_MAX_OPS}):",
                f"    _cm = {{{commons}}}",
                "    _out = []",
                "    _in = list(inputs)",
                "    _s = [0, None]",
                "    try:",
                f"        p_{program.main}(_cm, _out, _in, _s, max_ops)",
                "    except _Stop:",
                "        pass",
                "    return _out",
            ])
        return "\n".join(parts) + "\n"


def transpile_to_python(program: Program, variant: str = VARIANT_PLAIN,
                        skip_stmt_ids=()) -> str:
    """Generate a self-contained Python module for ``program``.

    ``variant`` selects the instrumentation baked into the source
    (:data:`VARIANT_PLAIN` / :data:`VARIANT_PROFILE` /
    :data:`VARIANT_DYNDEP`); ``skip_stmt_ids`` is the dyndep
    reduction/induction skip set, compiled to uninstrumented accesses.
    Raises :class:`TranspileUnsupported` for programs the generator
    cannot express (the engine falls back to the closure engine)."""
    return _ModuleEmitter(program, variant, skip_stmt_ids).emit()


# ---------------------------------------------------------------------------
# module cache
# ---------------------------------------------------------------------------

class TranspiledModule:
    """One generated module, exec'd and engine-ready."""

    __slots__ = ("source", "namespace", "variant", "nloops")

    def __init__(self, source: str, namespace: Dict, variant: str,
                 nloops: int):
        self.source = source
        self.namespace = namespace
        self.variant = variant
        self.nloops = nloops


_UNSUPPORTED = object()          # negative-cache sentinel

_MEMO_CAP = 128
_lock = threading.Lock()
_memo: "OrderedDict[tuple, object]" = OrderedDict()
_counters = {"hit": 0, "miss": 0}
_codegen_store = None


def set_codegen_store(store) -> None:
    """Install a persistent cache (an
    :class:`~repro.service.artifacts.ArtifactStore`) for generated
    module source.  Keys combine the program source hash, variant, skip
    signature, and :data:`CODEGEN_VERSION`, so a stale entry can never
    be served.  Pass ``None`` to disable."""
    global _codegen_store
    with _lock:
        _codegen_store = store


def codegen_cache_stats() -> Dict[str, int]:
    """Monotonic counters: ``hit`` (codegen skipped — in-process memo
    or persistent store) and ``miss`` (source freshly generated)."""
    with _lock:
        return dict(_counters)


def reset_codegen_cache() -> None:
    """Drop the in-process memo and zero the counters (for tests)."""
    with _lock:
        _memo.clear()
        _counters["hit"] = 0
        _counters["miss"] = 0


def _raise_budget(ops, mo):
    raise budget_error(ops, mo)


def _bind_runtime(ns: Dict) -> None:
    """Swap a module's self-contained error/budget shims for the
    runtime's real types so all three engines raise identically."""
    ns["_Err"] = RuntimeErrorInProgram
    ns["_bud"] = _raise_budget


def _exec_module(source: str, program: Program,
                 variant: str) -> TranspiledModule:
    ns: Dict = {}
    exec(compile(source, f"<transpiled:{program.name}>", "exec"), ns)
    _bind_runtime(ns)
    return TranspiledModule(source, ns, variant,
                            int(ns.get("_NLOOPS", 0)))


def _cache_key(program: Program, variant: str,
               skip_ids) -> Optional[tuple]:
    src = program.source_text or ""
    if not src:
        return None                      # no stable identity: no caching
    digest = hashlib.sha256(src.encode("utf-8")).hexdigest()
    return (digest, variant, _skip_signature(program, skip_ids),
            CODEGEN_VERSION)


def _store_key(key: tuple) -> str:
    from ..service.artifacts import canonical_json
    payload = canonical_json({"src": key[0], "variant": key[1],
                              "skip": list(key[2]), "codegen": key[3]})
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _remember(key: tuple, value) -> None:
    with _lock:
        _memo[key] = value
        _memo.move_to_end(key)
        while len(_memo) > _MEMO_CAP:
            _memo.popitem(last=False)


def load_module(program: Program, variant: str = VARIANT_PLAIN,
                skip_ids=()) -> TranspiledModule:
    """Generated module for ``(program, variant, skip set)`` via the
    in-process memo, then the persistent store, then fresh codegen."""
    key = _cache_key(program, variant, skip_ids)
    if key is not None:
        with _lock:
            cached = _memo.get(key)
            if cached is not None:
                _memo.move_to_end(key)
                _counters["hit"] += 1
            store = _codegen_store
        if cached is _UNSUPPORTED:
            raise TranspileUnsupported(
                f"cannot transpile {program.name} (cached verdict)")
        if cached is not None:
            return cached
        if store is not None:
            art = store.get(_store_key(key))
            if art is not None and isinstance(art.get("source"), str):
                mod = _exec_module(art["source"], program, variant)
                with _lock:
                    _counters["hit"] += 1
                _remember(key, mod)
                return mod
    with _lock:
        _counters["miss"] += 1
    try:
        source = transpile_to_python(program, variant, skip_ids)
    except TranspileUnsupported:
        if key is not None:
            _remember(key, _UNSUPPORTED)
        raise
    mod = _exec_module(source, program, variant)
    if key is not None:
        _remember(key, mod)
        with _lock:
            store = _codegen_store
        if store is not None:
            store.put(_store_key(key), {"source": source})
    return mod


def compile_program(program: Program):
    """Transpile (once) and return the module-level ``run(inputs,
    max_ops)`` callable.  Memoized on the program's source hash: repeat
    calls for an unchanged program skip codegen and re-``exec``."""
    return load_module(program, VARIANT_PLAIN).namespace["run"]


# ---------------------------------------------------------------------------
# engine
# ---------------------------------------------------------------------------

class TranspiledEngine:
    """Drop-in engine running generated Python.  Same constructor and
    public attributes as the closure engine; observer support is
    narrower by design — no observers (plain), or a lone fresh
    ``LoopProfiler`` / ``DynamicDependenceAnalyzer`` (compiled to
    codegen-time instrumentation).  Everything else falls back to the
    closure engine, and ``engine_label`` then reports the
    ``compiled/<variant>`` that actually ran."""

    __slots__ = ("program", "inputs", "observers", "_ops", "max_ops",
                 "outputs", "_current_stmt", "commons", "variant",
                 "specialize", "label", "_delegate")

    def __init__(self, program: Program, inputs: Sequence[float] = (),
                 observers: Sequence = (),
                 max_ops: int = _DEFAULT_MAX_OPS,
                 specialize: bool = True):
        self.program = program
        self.inputs = list(inputs)
        self.observers = list(observers)
        self._delegate = None
        self.ops = 0
        self.max_ops = max_ops
        self.outputs: List = []
        self.current_stmt: Optional[Statement] = None
        self.commons: Dict[str, Buffer] = {}
        self.variant: Optional[str] = None
        self.specialize = specialize
        self.label: Optional[str] = None
        for name, block in program.commons.items():
            self.commons[name] = Buffer(f"/{name}/", block.size)

    # Observers attached to *this* engine read ``.ops`` /
    # ``.current_stmt`` mid-run (the profiler computes per-loop op
    # deltas from them), so during a fallback these must be live views
    # of the delegate, not stale snapshots mirrored after the fact.
    @property
    def ops(self) -> int:
        d = self._delegate
        return d.ops if d is not None else self._ops

    @ops.setter
    def ops(self, value: int) -> None:
        self._ops = value

    @property
    def current_stmt(self):
        d = self._delegate
        return d.current_stmt if d is not None else self._current_stmt

    @current_stmt.setter
    def current_stmt(self, value) -> None:
        self._current_stmt = value

    def _select(self):
        if not self.observers:
            return VARIANT_PLAIN, None
        if self.specialize:
            from .compile_engine import _specialized_variant
            upgraded = _specialized_variant(self.observers)
            if upgraded == "profile":
                return VARIANT_PROFILE, self.observers[0]
            if upgraded == "dyndep":
                return VARIANT_DYNDEP, self.observers[0]
        return None, None

    def run(self) -> "TranspiledEngine":
        from ..obs import get_tracer
        if self.program.main is None:
            raise ValueError("program has no PROGRAM unit")
        variant, special = self._select()
        if variant is None:
            return self._run_fallback()
        skip = special.skip_stmt_ids if variant == VARIANT_DYNDEP else ()
        tracer = get_tracer()
        before = codegen_cache_stats()["miss"]
        try:
            with tracer.span("codegen", engine="transpiled",
                             variant=variant) as cg:
                mod = load_module(self.program, variant, skip)
                cg.tag(cached=codegen_cache_stats()["miss"] == before)
        except TranspileUnsupported:
            return self._run_fallback()
        self.variant = variant
        self.label = f"transpiled/{variant}"
        with tracer.span("execute", engine="transpiled",
                         program=self.program.name) as sp:
            self._execute(mod, variant, special)
            sp.tag(ops=self.ops, variant=variant)
        return self

    def _run_fallback(self) -> "TranspiledEngine":
        """Observer configuration or program shape the generator can't
        express: delegate to the closure engine (bit-identical
        semantics) and mirror its results, so callers — profilers, the
        parallel executor, sessions — keep seeing one engine object."""
        from .compile_engine import CompiledEngine, engine_label
        delegate = CompiledEngine(self.program, self.inputs,
                                  self.observers, self.max_ops,
                                  specialize=self.specialize)
        self._delegate = delegate
        try:
            delegate.run()
        finally:
            self._delegate = None
            self.ops = delegate.ops
            self.outputs = delegate.outputs
            self.commons = delegate.commons
            self.current_stmt = delegate.current_stmt
            self.variant = delegate.variant
            self.label = engine_label(delegate)
        return self

    # -- execution -----------------------------------------------------------
    def _execute(self, mod: TranspiledModule, variant: str,
                 special) -> None:
        ns = mod.namespace
        program = self.program
        cm = {name: [0.0] * block.size
              for name, block in program.commons.items()}
        out: List = []
        inp = list(self.inputs)
        s: List = [0, None]
        extra: tuple = ()
        state = None
        if variant == VARIANT_PROFILE:
            nl = mod.nloops
            state = ([0] * nl, [0] * nl, [0] * nl, [False] * nl, [])
            extra = state
        elif variant == VARIANT_DYNDEP:
            from .dyndep import _MAX_WITNESSES
            stride = max(1, int(special.sample_stride))
            state = ns["_DD"](0 if stride == 1 else 2 * stride,
                              _MAX_WITNESSES)
            for name, lst in cm.items():
                state.names[id(lst)] = f"/{name}/"
            extra = (state,)
        entry = ns[f"p_{program.main}"]
        stop = ns["_Stop"]
        try:
            try:
                entry(cm, out, inp, s, self.max_ops, *extra)
            except stop:
                pass
        finally:
            # deliver results even on abnormal unwinds (budget aborts,
            # program errors) — oracle observers hold partial data too
            self.ops = s[0]
            self.outputs = out
            for name, buf in self.commons.items():
                buf.data[:] = cm[name]
            if variant == VARIANT_PROFILE:
                self._fill_profile(special, state)
            elif variant == VARIANT_DYNDEP:
                self._fill_dyndep(special, state)

    def _fill_profile(self, obs, state) -> None:
        from .profiler import LoopProfile
        total, inv, iters, _seen, order = state
        loops = loop_table(self.program)
        profiles = obs.profiles
        for i in order:
            loop = loops[i]
            prof = profiles.get(loop.stmt_id)
            if prof is None:
                prof = LoopProfile(loop)
                profiles[loop.stmt_id] = prof
            prof.total_ops += total[i]
            prof.invocations += inv[i]
            prof.iterations += iters[i]

    def _fill_dyndep(self, obs, dd) -> None:
        sid = [loop.stmt_id for loop in loop_table(self.program)]
        obs.sampled_accesses += dd.sampled
        obs.skipped_accesses += dd.skipped
        for lid, n in dd.carried.items():
            key = sid[lid]
            obs.carried[key] = obs.carried.get(key, 0) + n
        for (lid, bname), n in dd.by_var.items():
            vkey = (sid[lid], bname)
            obs.carried_by_var[vkey] = \
                obs.carried_by_var.get(vkey, 0) + n
        maxw = dd.maxw
        for lid, pairs in dd.wit.items():
            dst = obs.witnesses.setdefault(sid[lid], [])
            for pair in pairs:
                if pair not in dst and len(dst) < maxw:
                    dst.append(pair)
        obs._invocations.update(
            {sid[lid]: n for lid, n in dd.inv.items()})
        obs._buffers.update(dd.bufs)
        for bid, sh in dd.shadow.items():
            for off, ent in enumerate(sh):
                if ent is not None:
                    snap = tuple((sid[cell[0]], cell[1], it)
                                 for cell, it in ent[0])
                    obs._last_write[(bid, off)] = (snap, ent[1])
