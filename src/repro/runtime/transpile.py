"""Transpile mini-Fortran IR to plain Python.

The SUIF parallelizer "generates an SPMD parallel C version of the program
that can be compiled by native C compilers" (section 4.5).  The analogue
here is a Python backend: :func:`transpile_to_python` emits a
self-contained Python source string whose ``run(inputs)`` function executes
the program with exactly the interpreter's semantics (column-major
storage, COMMON aliasing, copy-in/copy-out scalars, Fortran integer
division, DO-loop index left one-past-the-end).

Besides being a usable backend (compiled programs run ~30-100x faster than
the tree-walking interpreter), it is a second, independent implementation
of the language semantics — the differential-testing oracle used by
``tests/test_fuzz_interpreter.py``.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..ir.expressions import (ArrayRef, BinaryOp, Const, Expression,
                              Intrinsic, StrConst, UnaryOp, VarRef)
from ..ir.program import Procedure, Program
from ..ir.statements import (AssignStmt, Block, CallStmt, CycleStmt,
                             ExitStmt, IfStmt, IoStmt, LoopStmt, NoopStmt,
                             ReturnStmt, Statement, StopStmt)
from ..ir.symbols import INT, Symbol

_PREAMBLE = '''\
import math

def _idiv(a, b):
    q = abs(a) // abs(b)
    return int(q if (a >= 0) == (b >= 0) else -q)

def _div(a, b):
    if isinstance(a, int) and isinstance(b, int):
        return _idiv(a, b)
    return a / b

def _sign(a, b):
    return abs(a) if b >= 0 else -abs(a)

class _Cycle(Exception):
    def __init__(self, label):
        self.label = label

class _Stop(Exception):
    pass
'''


class _ProcEmitter:
    def __init__(self, program: Program, proc: Procedure):
        self.program = program
        self.proc = proc
        self.lines: List[str] = []
        self._tmp = 0
        # array metadata: symbol -> (base expression, lows, strides text)
        self._array_meta: Dict[int, Dict] = {}

    def out(self, indent: int, text: str) -> None:
        self.lines.append("    " * indent + text)

    # -- names ---------------------------------------------------------------
    def scalar_name(self, sym: Symbol) -> str:
        return f"v_{sym.name}"

    # -- array address arithmetic ----------------------------------------------
    def _register_array(self, sym: Symbol, buf: str, offset: str) -> None:
        self._array_meta[id(sym)] = {"buf": buf, "offset": offset}

    def flat_index(self, ref: ArrayRef) -> str:
        meta = self._array_meta[id(ref.symbol)]
        sym = ref.symbol
        parts = [meta["offset"]]
        stride = f"st_{sym.name}"
        for k, idx in enumerate(ref.indices):
            lo = f"lo_{sym.name}[{k}]"
            parts.append(f"(int({self.expr(idx)}) - {lo}) * "
                         f"{stride}[{k}]")
        return " + ".join(parts)

    # -- expressions -----------------------------------------------------------
    def expr(self, e: Expression) -> str:
        if isinstance(e, Const):
            return repr(e.value)
        if isinstance(e, StrConst):
            return repr(e.value)
        if isinstance(e, VarRef):
            sym = e.symbol
            if sym.is_const:
                return repr(sym.const_value)
            if sym.is_common and not sym.is_array:
                meta = self._array_meta[id(sym)]
                return f"{meta['buf']}[{meta['offset']}]"
            return self.scalar_name(sym)
        if isinstance(e, ArrayRef):
            meta = self._array_meta[id(e.symbol)]
            return f"{meta['buf']}[{self.flat_index(e)}]"
        if isinstance(e, BinaryOp):
            left, right = self.expr(e.left), self.expr(e.right)
            if e.op == "/":
                return f"_div({left}, {right})"
            if e.op == "**":
                return f"({left}) ** ({right})"
            op = {"and": "and", "or": "or", "/=": "!="}.get(e.op, e.op)
            return f"({left} {op} {right})"
        if isinstance(e, UnaryOp):
            if e.op == "-":
                return f"(-{self.expr(e.operand)})"
            return f"(not {self.expr(e.operand)})"
        if isinstance(e, Intrinsic):
            args = ", ".join(self.expr(a) for a in e.args)
            table = {"min": "min", "max": "max", "abs": "abs",
                     "sqrt": "math.sqrt", "exp": "math.exp",
                     "log": "math.log", "sin": "math.sin",
                     "cos": "math.cos", "float": "float", "int": "int",
                     "sign": "_sign"}
            if e.name == "mod":
                a0 = self.expr(e.args[0])
                a1 = self.expr(e.args[1])
                return f"math.fmod({a0}, {a1})" \
                    if False else f"({a0} % {a1})"
            return f"{table[e.name]}({args})"
        raise ValueError(f"cannot transpile {e!r}")

    def coerced(self, sym: Symbol, text: str) -> str:
        return f"int({text})" if sym.type == INT else f"float({text})"

    # -- statements -----------------------------------------------------------
    def stmt(self, s: Statement, indent: int) -> None:
        if isinstance(s, AssignStmt):
            value = self.expr(s.value)
            if isinstance(s.target, VarRef):
                sym = s.target.symbol
                if sym.is_common and not sym.is_array:
                    meta = self._array_meta[id(sym)]
                    self.out(indent,
                             f"{meta['buf']}[{meta['offset']}] = {value}")
                else:
                    self.out(indent, f"{self.scalar_name(sym)} = "
                                     f"{self.coerced(sym, value)}")
            else:
                meta = self._array_meta[id(s.target.symbol)]
                self.out(indent, f"{meta['buf']}"
                                 f"[{self.flat_index(s.target)}] = {value}")
            return
        if isinstance(s, IfStmt):
            for k, (cond, body) in enumerate(s.arms):
                kw = "if" if k == 0 else "elif"
                self.out(indent, f"{kw} {self.expr(cond)}:")
                self.block(body, indent + 1)
            if s.else_block is not None:
                self.out(indent, "else:")
                self.block(s.else_block, indent + 1)
            return
        if isinstance(s, LoopStmt):
            self.loop(s, indent)
            return
        if isinstance(s, CallStmt):
            self.call(s, indent)
            return
        if isinstance(s, IoStmt):
            if s.kind == "print":
                for item in s.items:
                    self.out(indent, f"_out.append({self.expr(item)})")
            else:
                for item in s.items:
                    if isinstance(item, VarRef):
                        sym = item.symbol
                        self.out(indent,
                                 f"{self.scalar_name(sym)} = "
                                 f"{self.coerced(sym, '_in.pop(0)')}")
                    else:
                        meta = self._array_meta[id(item.symbol)]
                        self.out(indent, f"{meta['buf']}"
                                         f"[{self.flat_index(item)}]"
                                         f" = _in.pop(0)")
            return
        if isinstance(s, NoopStmt):
            self.out(indent, "pass")
            return
        if isinstance(s, CycleStmt):
            self.out(indent, f"raise _Cycle({s.target_label!r})")
            return
        if isinstance(s, ExitStmt):
            self.out(indent, "break")
            return
        if isinstance(s, ReturnStmt):
            self.out(indent, "return")
            return
        if isinstance(s, StopStmt):
            self.out(indent, "raise _Stop()")
            return
        raise ValueError(f"cannot transpile {s!r}")

    def block(self, block: Block, indent: int) -> None:
        if not block.statements:
            self.out(indent, "pass")
            return
        for s in block.statements:
            self.stmt(s, indent)

    def loop(self, loop: LoopStmt, indent: int) -> None:
        n = self._tmp
        self._tmp += 1
        iv = self.scalar_name(loop.index)
        self.out(indent, f"_lo{n} = int({self.expr(loop.low)})")
        self.out(indent, f"_hi{n} = int({self.expr(loop.high)})")
        step = (f"int({self.expr(loop.step)})"
                if loop.step is not None else "1")
        self.out(indent, f"_st{n} = {step}")
        self.out(indent, f"{iv} = _lo{n}")
        self.out(indent, f"while ({iv} <= _hi{n}) if _st{n} > 0 "
                         f"else ({iv} >= _hi{n}):")
        self.out(indent + 1, "try:")
        self.block(loop.body, indent + 2)
        self.out(indent + 1, "except _Cycle as _c:")
        self.out(indent + 2, f"if _c.label is not None and "
                             f"_c.label != {loop.term_label!r}:")
        self.out(indent + 3, "raise")
        self.out(indent + 1, f"{iv} += _st{n}")

    def call(self, call: CallStmt, indent: int) -> None:
        callee = self.program.procedures[call.callee]
        args: List[str] = []
        copy_back: List[str] = []
        for pos, (actual, formal) in enumerate(zip(call.args,
                                                   callee.formals)):
            if isinstance(actual, ArrayRef) and formal.is_array:
                meta = self._array_meta[id(actual.symbol)]
                if actual.indices:
                    off = self.flat_index(actual)
                else:
                    off = meta["offset"]
                args.append(f"({meta['buf']}, {off})")
            elif isinstance(actual, (VarRef, ArrayRef)):
                args.append(self.expr(actual))
                if isinstance(actual, VarRef) and \
                        not actual.symbol.is_common:
                    copy_back.append(
                        f"{self.scalar_name(actual.symbol)} = "
                        f"{self.coerced(actual.symbol, f'_r{pos}')}")
                elif isinstance(actual, VarRef):
                    meta = self._array_meta[id(actual.symbol)]
                    copy_back.append(f"{meta['buf']}[{meta['offset']}] "
                                     f"= _r{pos}")
                else:
                    meta = self._array_meta[id(actual.symbol)]
                    copy_back.append(f"{meta['buf']}"
                                     f"[{self.flat_index(actual)}]"
                                     f" = _r{pos}")
            else:
                args.append(self.expr(actual))
        rets = ", ".join(f"_r{pos}" for pos in range(len(call.args)))
        arg_text = ", ".join(args + ["_cm", "_out", "_in"])
        self.out(indent, f"{rets}{',' if len(call.args) == 1 else ''} "
                         f"= p_{call.callee}({arg_text})" if call.args
                 else f"p_{call.callee}({arg_text})")
        for line in copy_back:
            self.out(indent, line)

    # -- procedure scaffolding ----------------------------------------------
    def emit(self) -> List[str]:
        proc = self.program.procedures[self.proc.name]
        formal_names = ", ".join(f"a_{f.name}" for f in proc.formals)
        params = (formal_names + ", " if formal_names else "") + \
            "_cm, _out, _in"
        self.out(0, f"def p_{proc.name}({params}):")

        # formals
        for f in proc.formals:
            if f.is_array:
                self.out(1, f"buf_{f.name}, base_{f.name} = a_{f.name}")
                self._register_array(f, f"buf_{f.name}", f"base_{f.name}")
                self._emit_shape(f, 1)
            else:
                self.out(1, f"v_{f.name} = a_{f.name}")

        # commons
        for block_name in proc.common_blocks:
            view = self.program.commons[block_name].views[proc.name]
            for sym in view.symbols:
                buf = f"_cm[{block_name!r}]"
                self._register_array(sym, buf, str(sym.common_offset))
                if sym.is_array:
                    self._emit_shape(sym, 1)

        # locals
        for sym in self.proc.symbols:
            if sym.is_const or sym.is_formal or sym.is_common:
                continue
            if sym.is_array:
                size = sym.constant_size()
                self.out(1, f"buf_{sym.name} = [0.0] * {size}")
                self._register_array(sym, f"buf_{sym.name}", "0")
                self._emit_shape(sym, 1)
            else:
                self.out(1, f"v_{sym.name} = 0")

        body_start = len(self.lines)
        self.block(self.proc.body, 1)

        # single return point returning the scalar formals (copy-out)
        ret_expr = ", ".join(f"v_{f.name}" if not f.is_array
                             else f"a_{f.name}" for f in self.proc.formals)
        if len(self.proc.formals) == 1:
            ret_expr += ","                 # 1-tuple, not parentheses
        if self.proc.formals:
            # rewrite bare `return` to return the tuple
            self.lines = [
                line.replace("return", f"return ({ret_expr})")
                if line.strip() == "return" else line
                for line in self.lines]
            self.out(1, f"return ({ret_expr})")
        return self.lines

    def _emit_shape(self, sym: Symbol, indent: int) -> None:
        lows = []
        strides = []
        acc = "1"
        for d in sym.dims:
            lows.append(f"int({self.expr(d.low)})")
            strides.append(acc)
            if d.high is not None:
                ext = (f"(int({self.expr(d.high)}) - "
                       f"int({self.expr(d.low)}) + 1)")
                acc = f"({acc} * {ext})" if acc != "1" else ext
        self.out(indent, f"lo_{sym.name} = ({', '.join(lows)},)")
        self.out(indent, f"st_{sym.name} = ({', '.join(strides)},)")


def transpile_to_python(program: Program) -> str:
    """Emit a Python module source with a ``run(inputs=())`` entry point
    returning the list of PRINTed values."""
    parts = [_PREAMBLE]
    for name in sorted(program.procedures):
        if name == program.main:
            continue
        emitter = _ProcEmitter(program, program.procedures[name])
        parts.append("\n".join(emitter.emit()))
    main = program.main_procedure()
    emitter = _ProcEmitter(program, main)
    parts.append("\n".join(emitter.emit()))
    commons = {name: block.size
               for name, block in program.commons.items()}
    parts.append(f'''
def run(inputs=()):
    _cm = {{name: [0.0] * size
           for name, size in {commons!r}.items()}}
    _out = []
    _in = list(inputs)
    try:
        p_{program.main}(_cm, _out, _in)
    except _Stop:
        pass
    return _out
''')
    return "\n\n".join(parts)


def compile_program(program: Program):
    """Transpile + exec; returns the ``run`` callable."""
    source = transpile_to_python(program)
    namespace: Dict[str, object] = {}
    exec(compile(source, f"<transpiled {program.name}>", "exec"),
         namespace)
    return namespace["run"]
