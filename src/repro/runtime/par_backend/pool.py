"""Persistent worker pool for the parallel backend.

Workers are long-lived processes speaking a tiny pipe protocol:

* ``("module", key, source)`` — exec a generated parallel module and
  cache its namespace under ``key`` (idempotent; the module's
  self-contained ``_Err``/``_Budget`` shims stay in place, so kernel
  failures classify without importing anything),
* ``("segs", run_id, spec)`` — attach the run's shared-memory COMMON
  segments (see :mod:`.shm`),
* ``("task", key, run_id, kernel, rng, env, mo, ro)`` — run one kernel
  over one iteration-space chunk; replies ``("ok", result)``,
  ``("budget",)``, ``("err", message)`` (a runtime error the program
  itself raised) or ``("fail", message)`` (anything else),
* ``("release", run_id)`` — detach the run's segments,
* ``("stop",)`` — exit.

Module shipping makes the pool spawn-safe: nothing about the generated
code relies on fork-inherited state, so ``start_method="spawn"`` works
wherever fork is unavailable.  Pools are cached per (worker count,
start method) and reused across runs; a broken pipe marks the pool dead
and evicts it so the next run builds a fresh one.
"""

from __future__ import annotations

import atexit
import multiprocessing
from typing import Dict, Optional, Tuple

from .shm import attach_views, detach_views

__all__ = ["WorkerPool", "get_pool", "shutdown_pools"]


def _worker_main(conn) -> None:
    """Worker loop (module top-level so it pickles under spawn)."""
    modules: Dict[str, dict] = {}
    runs: Dict[object, tuple] = {}
    try:
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                break
            kind = msg[0]
            if kind == "stop":
                break
            if kind == "module":
                _, key, source = msg
                if key not in modules:
                    ns: dict = {}
                    try:
                        exec(compile(source, "<par-worker>", "exec"), ns)
                        modules[key] = ns
                    except Exception as e:  # surfaced on first task
                        modules[key] = {"__error__": f"{type(e).__name__}: {e}"}
                continue
            if kind == "segs":
                _, run_id, spec = msg
                if run_id not in runs:
                    try:
                        runs[run_id] = attach_views(spec)
                    except Exception as e:
                        runs[run_id] = ("__error__",
                                        f"{type(e).__name__}: {e}")
                continue
            if kind == "release":
                _, run_id = msg
                state = runs.pop(run_id, None)
                if state is not None and state[0] != "__error__":
                    detach_views(*state)
                continue
            if kind == "task":
                _, key, run_id, kernel, rng, env, mo, ro = msg
                ns = modules.get(key)
                state = runs.get(run_id)
                if ns is None or state is None:
                    conn.send(("fail", "worker missing module or segments"))
                    continue
                if "__error__" in ns:
                    conn.send(("fail", ns["__error__"]))
                    continue
                if state[0] == "__error__":
                    conn.send(("fail", state[1]))
                    continue
                views = state[0]
                try:
                    res = ns[kernel](rng, env, views, mo, ro)
                except ns["_Budget"]:
                    conn.send(("budget",))
                except ns["_Err"] as e:
                    conn.send(("err", str(e)))
                except Exception as e:
                    conn.send(("fail", f"{type(e).__name__}: {e}"))
                else:
                    conn.send(("ok", res))
                continue
            conn.send(("fail", f"unknown message {kind!r}"))
    finally:
        for state in runs.values():
            if state[0] != "__error__":
                detach_views(*state)
        conn.close()


class WorkerPool:
    """A fixed set of worker processes plus bookkeeping of what each
    already holds (shipped modules, attached runs)."""

    def __init__(self, workers: int, start_method: Optional[str] = None):
        self.workers = workers
        self.start_method = start_method
        ctx = multiprocessing.get_context(start_method)
        self.conns = []
        self.procs = []
        self.broken = False
        self._modules: set = set()
        self._runs: set = set()
        for _ in range(workers):
            parent, child = ctx.Pipe()
            proc = ctx.Process(target=_worker_main, args=(child,),
                               daemon=True)
            proc.start()
            child.close()
            self.conns.append(parent)
            self.procs.append(proc)

    # -- broadcast bookkeeping ----------------------------------------------
    def _send_all(self, msg) -> None:
        try:
            for conn in self.conns:
                conn.send(msg)
        except (BrokenPipeError, OSError):
            self.broken = True
            raise RuntimeError(
                "parallel worker pool broken (worker died)") from None

    def ship_module(self, key: str, source: str) -> None:
        if key not in self._modules:
            self._send_all(("module", key, source))
            self._modules.add(key)

    def attach_run(self, run_id, spec) -> None:
        if run_id not in self._runs:
            self._send_all(("segs", run_id, spec))
            self._runs.add(run_id)

    def release_run(self, run_id) -> None:
        if run_id in self._runs:
            self._runs.discard(run_id)
            if not self.broken:
                try:
                    self._send_all(("release", run_id))
                except RuntimeError:
                    pass

    # -- tasks ---------------------------------------------------------------
    def run_chunks(self, key: str, run_id, kernel: str, chunks, env,
                   mo: int, ro):
        """Fan ``chunks`` (≤ worker count) out one-per-worker and return
        the replies in chunk order."""
        try:
            for w, rng in enumerate(chunks):
                self.conns[w].send(
                    ("task", key, run_id, kernel, rng, env, mo, ro))
            return [self.conns[w].recv() for w in range(len(chunks))]
        except (BrokenPipeError, EOFError, OSError):
            self.broken = True
            raise RuntimeError(
                "parallel worker pool broken (worker died)") from None

    def shutdown(self) -> None:
        for conn in self.conns:
            try:
                conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for proc in self.procs:
            proc.join(timeout=2.0)
            if proc.is_alive():
                proc.terminate()
        for conn in self.conns:
            conn.close()
        self.broken = True


_pools: Dict[Tuple[int, Optional[str]], WorkerPool] = {}


def get_pool(workers: int, start_method: Optional[str] = None
             ) -> WorkerPool:
    """The shared pool for (workers, start_method), rebuilt if broken."""
    key = (workers, start_method)
    pool = _pools.get(key)
    if pool is not None and pool.broken:
        pool.shutdown()
        pool = None
    if pool is None:
        pool = WorkerPool(workers, start_method)
        _pools[key] = pool
    return pool


def shutdown_pools() -> None:
    for pool in list(_pools.values()):
        pool.shutdown()
    _pools.clear()


atexit.register(shutdown_pools)
