"""Real multiprocessor execution backend.

Consumes a :class:`~repro.parallelize.plan.ProgramPlan` and executes
the program's DOALL loops on actual cores:

* :mod:`.codegen` — extends the transpiled engine's code generator with
  per-loop worker *kernels* (iteration-space chunks over the loop
  range, privatized scalars/arrays, deterministic reduction logs) and
  a dispatch site at every offloadable loop that falls back to the
  bit-identical sequential drivers when the runtime declines,
* :mod:`.shm` — ``multiprocessing.shared_memory`` float64 views over
  COMMON block storage, shared zero-copy between orchestrator and
  workers,
* :mod:`.pool` — a persistent worker pool (fork or spawn) with module
  shipping and a tiny pipe protocol,
* :mod:`.runner` — the orchestrator: chunking, worker fan-out, the
  chunk-order merge protocol (masked privatized writebacks, last-chunk
  scalar finals, reduction-log replay), and op/budget accounting summed
  across workers.

Whole-program outputs, COMMON memory, and op counts are bit-identical
to ``engine="transpiled"`` sequential runs; see DESIGN.md ("Real
parallel execution") for the exact protocol and its guardrails.
"""

from .codegen import (ParallelModule, analyze_offloads,
                      load_parallel_module, transpile_parallel)
from .runner import ParallelRunResult, ParallelRunner

__all__ = [
    "ParallelModule", "ParallelRunResult", "ParallelRunner",
    "analyze_offloads", "load_parallel_module", "transpile_parallel",
]
