"""Shared-memory COMMON storage for the parallel backend.

Each COMMON block becomes one ``multiprocessing.shared_memory`` segment
holding ``size`` float64 slots, exposed as a ``memoryview(...).cast("d")``
both in the orchestrator and in every worker.  The cast view supports
exactly the operations generated code performs on the sequential
backend's plain lists — ``view[i]``, ``view[i] = float``, and
``view[a:b]`` slicing — so the same generated module runs against either
storage.  Contents start zeroed, matching the sequential ``run()``
prologue's ``[0.0] * size``.
"""

from __future__ import annotations

from multiprocessing import shared_memory
from typing import Dict, List, Tuple

from ...ir.program import Program

__all__ = ["SharedCommons", "attach_views", "detach_views"]


class SharedCommons:
    """Owner side: create, zero, view, and eventually unlink one segment
    per COMMON block of ``program``."""

    def __init__(self, program: Program):
        self.segments: Dict[str, shared_memory.SharedMemory] = {}
        self.views: Dict[str, memoryview] = {}
        self.sizes: Dict[str, int] = {}
        try:
            for name, block in program.commons.items():
                nbytes = 8 * block.size
                seg = shared_memory.SharedMemory(create=True,
                                                 size=max(nbytes, 1))
                # segments round up to page size; slice before casting
                seg.buf[:nbytes] = b"\0" * nbytes
                self.segments[name] = seg
                self.views[name] = memoryview(seg.buf)[:nbytes].cast("d")
                self.sizes[name] = block.size
        except Exception:
            self.close()
            raise

    def spec(self) -> Dict[str, Tuple[str, int]]:
        """{block name: (segment name, element count)} — everything a
        worker needs to attach."""
        return {name: (seg.name, self.sizes[name])
                for name, seg in self.segments.items()}

    def snapshot(self) -> Dict[str, List[float]]:
        """Plain-list copy of every block, in the same shape the
        sequential engines report machine state."""
        return {name: list(view) for name, view in self.views.items()}

    def load(self, commons: Dict[str, List[float]]) -> None:
        """Overwrite block contents (used to seed non-zero states)."""
        for name, values in commons.items():
            view = self.views[name]
            for i, v in enumerate(values):
                view[i] = float(v)

    def close(self) -> None:
        """Release views and destroy the segments.  Safe to call twice;
        the owner is the only unlinker (workers merely close)."""
        for view in self.views.values():
            view.release()
        self.views.clear()
        for seg in self.segments.values():
            try:
                seg.close()
            except OSError:
                pass
            try:
                seg.unlink()
            except FileNotFoundError:
                pass
        self.segments.clear()


def attach_views(spec: Dict[str, Tuple[str, int]]):
    """Worker side: attach every segment in ``spec``.  Returns
    ``(views, segments)`` — keep ``segments`` alive as long as the views
    are in use, then pass both to :func:`detach_views`."""
    views: Dict[str, memoryview] = {}
    segments: Dict[str, shared_memory.SharedMemory] = {}
    try:
        for name, (seg_name, count) in spec.items():
            seg = shared_memory.SharedMemory(name=seg_name)
            segments[name] = seg
            views[name] = memoryview(seg.buf)[:8 * count].cast("d")
    except Exception:
        detach_views(views, segments)
        raise
    return views, segments


def detach_views(views, segments) -> None:
    for view in views.values():
        view.release()
    for seg in segments.values():
        try:
            seg.close()
        except OSError:
            pass
