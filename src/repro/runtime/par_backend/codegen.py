"""Parallel codegen: per-loop worker kernels + dispatch sites.

Extends :mod:`repro.runtime.transpile` — the kernel emitter and the
orchestrator emitter are subclasses of the sequential ``_ProcEmitter``
/ ``_ModuleEmitter``, so expression lowering, op batching, CSE and the
inner-loop drivers are shared line for line.  Three pieces:

* :func:`analyze_offloads` decides, per ``LoopPlan.parallel`` loop,
  whether a worker kernel can reproduce the sequential semantics
  bit-exactly (see the conservative checklist in ``_try_offload``), and
  computes the data-movement contract (env scalars, privatized groups,
  masked local arrays, reduction specs),
* ``_KernelEmitter`` emits ``_k<J>(_rng, _env, _cm, _mo, _ro)`` — the
  body of loop ``J`` over an arbitrary iteration-space chunk, with
  privatized-group copies, write masks, and an append-only reduction
  log in place of in-place reduction updates,
* ``_ParProcEmitter`` emits each procedure with a *dispatch site* at
  every offloadable loop: after the (op-charged) bound evaluation the
  generated code asks the runtime ``_par.go(J, n)`` and either hands
  the range to ``_par.run(...)`` or falls through to the unchanged
  sequential drivers — so any dispatch decision preserves outputs,
  COMMONs and op counts exactly.

The generated module also embeds ``_PAR_META`` (a pure literal), so a
module re-loaded from cache carries everything the runner needs without
re-running the analysis.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Optional, Tuple

from ...analysis.access import location_key
from ...ir.expressions import (ArrayRef, BinaryOp, Expression, Intrinsic,
                               VarRef)
from ...ir.program import Procedure, Program
from ...ir.statements import (AssignStmt, CallStmt, CycleStmt, ExitStmt,
                              IfStmt, IoStmt, LoopStmt, NoopStmt,
                              ReturnStmt, Statement, StopStmt)
from ...ir.symbols import INT, Symbol
from ...parallelize.plan import (INDUCTION, PARALLEL, PRIVATE,
                                 PRIVATE_FINAL, PRIVATE_USER, REDUCTION,
                                 LoopPlan, ProgramPlan, VarPlan)
from ..transpile import (CODEGEN_VERSION, TranspileUnsupported,
                         VARIANT_PLAIN, _Arr, _bind_runtime,
                         _buffer_backed, _const_index, _ModuleEmitter,
                         _PREAMBLE, _ProcEmitter, loop_table)

__all__ = [
    "Offload", "ParallelModule", "analyze_offloads",
    "load_parallel_module", "transpile_parallel",
]


# ---------------------------------------------------------------------------
# offload analysis
# ---------------------------------------------------------------------------

class _Reject(Exception):
    """Internal: this loop stays sequential (reason in args[0])."""


class Offload:
    """Everything codegen and the runner need about one offloaded loop."""

    __slots__ = (
        "loop", "proc", "J", "kname",
        "env",          # sorted plain-scalar names shipped to the kernel
        "fin",          # sorted plain-scalar names whose finals ship back
        "fs",           # fin minus reduction scalars (last-chunk finals)
        "red_scalars",  # {name: rid} plain local scalar reductions
        "arrays",       # merge specs, in kernel _pa order (dict literals)
        "ro",           # shipped local arrays: [{"name","sym","copy","mask_arr"}]
        "mrg",          # local-array names in the dispatch _mrg tuple
        "red",          # {rid: replay spec dict}
        "red_stmts",    # {stmt_id: (rid, op, pos, other_expr)}
        "blocks",       # sorted common-block names touched by the kernel
        "cs_ro",        # read-only common scalars (syms)
        "cm_masked",    # [(sym, arr_index)] privatized common members
        "ca_direct",    # common arrays written directly (syms)
        "cm_red",       # reduction-target common syms (scalars + arrays)
        "la_red",       # reduction-target local arrays: [(sym, mrg_index)]
        "ca_ro",        # read-only common arrays (syms)
    )


def _refs_group(e: Expression, group_ids) -> bool:
    return any(isinstance(x, (VarRef, ArrayRef)) and id(x.symbol) in group_ids
               for x in e.walk())


def _exprs_equal(a: Expression, b: Expression) -> bool:
    from ...analysis.reduction import exprs_equal
    return exprs_equal(a, b)


def _has_boolop(e: Expression) -> bool:
    return any(isinstance(x, BinaryOp) and x.op in ("and", "or")
               for x in e.walk())


def _match_reduction_chain(stmt: AssignStmt, group_ids
                           ) -> Optional[List[Tuple[str, str, Expression]]]:
    """Match update chains the log-replay merge can reproduce
    bit-exactly: a spine of ``+``/``*``/``-``/``min``/``max`` nodes with
    the target read at the deep end, e.g. ``t = ((t + e1) + e2) - e3``.
    Returns the steps outside-in as ``[(op, pos, operand), ...]`` —
    applying them in order to the accumulator performs literally the
    same operations in the same order as one sequential evaluation
    (``pos`` records which side the accumulator sat on; IEEE min/max
    and ``+``/``-`` are position-sensitive for NaNs and signed zeros).
    Operands must not reference the reduction location, ``-`` only
    accepts the accumulator on the left, and the target's indices must
    be free of short-circuit operators (their walrus op-charges would
    fire twice sequentially — RHS read plus store — but once in the
    kernel's logged-offset form)."""
    target = stmt.target
    if isinstance(target, ArrayRef):
        for idx in target.indices:
            if _refs_group(idx, group_ids) or _has_boolop(idx):
                return None

    def peel(v: Expression):
        if _exprs_equal(v, target):
            return []
        if isinstance(v, BinaryOp) and v.op in ("+", "*"):
            if _refs_group(v.left, group_ids) \
                    and not _refs_group(v.right, group_ids):
                sub = peel(v.left)
                return None if sub is None \
                    else sub + [(v.op, "l", v.right)]
            if _refs_group(v.right, group_ids) \
                    and not _refs_group(v.left, group_ids):
                sub = peel(v.right)
                return None if sub is None \
                    else sub + [(v.op, "r", v.left)]
            return None
        if isinstance(v, BinaryOp) and v.op == "-":
            if _refs_group(v.left, group_ids) \
                    and not _refs_group(v.right, group_ids):
                sub = peel(v.left)
                return None if sub is None \
                    else sub + [("-", "l", v.right)]
            return None
        if isinstance(v, Intrinsic) and v.name in ("min", "max") \
                and len(v.args) == 2:
            a0, a1 = v.args
            if _refs_group(a0, group_ids) \
                    and not _refs_group(a1, group_ids):
                sub = peel(a0)
                return None if sub is None \
                    else sub + [(v.name, "l", a1)]
            if _refs_group(a1, group_ids) \
                    and not _refs_group(a0, group_ids):
                sub = peel(a1)
                return None if sub is None \
                    else sub + [(v.name, "r", a0)]
            return None
        return None

    steps = peel(stmt.value)
    return steps or None


def _const_shape(sym: Symbol) -> Optional[Tuple[List[int], List[int], int]]:
    """(lows, strides, size) as ints, or None when any extent is not a
    compile-time constant."""
    lows: List[int] = []
    extents: List[int] = []
    for d in sym.dims:
        lo = _const_index(d.low)
        if lo is None or d.high is None:
            return None
        hi = _const_index(d.high)
        if hi is None:
            return None
        lows.append(lo)
        extents.append(hi - lo + 1)
    strides: List[int] = []
    acc = 1
    for ext in extents:
        strides.append(acc)
        acc *= ext
    return lows, strides, acc


def _vp_for(lp: LoopPlan, proc: Procedure, sym: Symbol) -> Optional[VarPlan]:
    """The loop plan's classification for ``sym``'s location.  Common
    locations may have been refined into member groups ``("cm", block,
    gidx)`` — resolve by symbol identity across the block's entries."""
    if sym.is_common:
        block = sym.common_block
        for key, vp in lp.vars.items():
            if key[0] == "cm" and key[1] == block and sym in vp.symbols:
                return vp
        return lp.vars.get(("cm", block))
    return lp.vars.get(location_key(sym))


def _loop_trips(loop: LoopStmt) -> Optional[int]:
    """Constant trip count, or None when any bound is non-constant."""
    lo = _const_index(loop.low)
    hi = _const_index(loop.high)
    if lo is None or hi is None:
        return None
    st = 1
    if loop.step is not None:
        st = _const_index(loop.step)
        if st is None or st == 0:
            return None
    if st > 0:
        return max(0, (hi - lo) // st + 1)
    return max(0, (lo - hi) // (-st) + 1)


def _always_reached(stmt: Statement, region: LoopStmt) -> bool:
    """True when ``stmt`` executes on *every* iteration of ``region``:
    its ancestor chain inside the region holds only loops with provably
    non-empty constant ranges (an IF, or a possibly zero-trip loop,
    means a chunk's last iteration might skip it)."""
    cur = stmt.parent
    while cur is not None and cur is not region:
        if not isinstance(cur, LoopStmt):
            return False
        trips = _loop_trips(cur)
        if trips is None or trips < 1:
            return False
        cur = cur.parent
    return cur is region


def _try_offload(program: Program, proc: Procedure, loop: LoopStmt,
                 lp: LoopPlan) -> Offload:
    """Build the offload contract for one parallel loop, or raise
    :class:`_Reject` when the kernel/merge protocol cannot reproduce
    sequential semantics bit-exactly."""
    own = loop.index
    if own.is_array:
        raise _Reject("array loop index")
    region = list(loop.body.walk())

    # structural rejections (I/O and early exits are plan blockers
    # already — rechecked here so the kernel can trust its input)
    for s in region:
        if isinstance(s, CallStmt):
            raise _Reject("loop contains a call")
        if isinstance(s, IoStmt):
            raise _Reject("loop performs I/O")
        if isinstance(s, (ExitStmt, StopStmt, ReturnStmt)):
            raise _Reject("loop may exit early")

    # CYCLE must resolve to a loop inside the region (incl. the region
    # driver itself); a label crossing out would unwind the kernel
    def check_cycles(body, labels):
        for s in body.statements:
            if isinstance(s, CycleStmt):
                if s.target_label is not None and \
                        s.target_label not in labels:
                    raise _Reject("CYCLE targets an enclosing loop")
            elif isinstance(s, LoopStmt):
                check_cycles(s.body, labels | {s.term_label})
            elif isinstance(s, IfStmt):
                for _, arm in s.arms:
                    check_cycles(arm, labels)
                if s.else_block is not None:
                    check_cycles(s.else_block, labels)
    check_cycles(loop.body, {loop.term_label})

    if any(vp.status == INDUCTION for vp in lp.vars.values()):
        raise _Reject("loop carries an induction variable")

    # -- access census ------------------------------------------------------
    inner_loops = [s for s in region if isinstance(s, LoopStmt)
                   and s is not loop]
    inner_idx = {id(s.index): s.index for s in inner_loops
                 if not (_buffer_backed(s.index) or s.index.is_const
                         or s.index.is_array)}

    read_plain: Dict[int, Symbol] = {}
    common_syms: Dict[int, Symbol] = {}
    local_arrays: Dict[int, Symbol] = {}
    written_arr: Dict[int, Symbol] = {}
    written_cs: Dict[int, Symbol] = {}
    written_plain: Dict[int, Symbol] = {}
    red_stmt_of: Dict[int, AssignStmt] = {}

    def see_expr(e: Expression) -> None:
        for x in e.walk():
            if isinstance(x, VarRef):
                sym = x.symbol
                if sym.is_const or sym.is_array:
                    continue
                if _buffer_backed(sym):
                    common_syms[id(sym)] = sym
                else:
                    read_plain[id(sym)] = sym
            elif isinstance(x, ArrayRef):
                sym = x.symbol
                if sym.is_formal:
                    raise _Reject(f"formal array {sym.name} in loop")
                if sym.is_common:
                    common_syms[id(sym)] = sym
                else:
                    local_arrays[id(sym)] = sym

    for s in region:
        for e in s.sub_expressions():
            see_expr(e)
        if isinstance(s, AssignStmt):
            t = s.target
            if isinstance(t, ArrayRef):
                sym = t.symbol
                if sym.is_formal:
                    raise _Reject(f"formal array {sym.name} written")
                written_arr[id(sym)] = sym
                if sym.is_common:
                    common_syms[id(sym)] = sym
                else:
                    local_arrays[id(sym)] = sym
            elif isinstance(t, VarRef):
                sym = t.symbol
                if sym.is_array:
                    raise _Reject(f"assignment to array name {sym.name}")
                if sym.is_const:
                    continue
                if _buffer_backed(sym):
                    written_cs[id(sym)] = sym
                    common_syms[id(sym)] = sym
                elif sym is not own:
                    if id(sym) in inner_idx:
                        raise _Reject(
                            f"inner loop index {sym.name} assigned")
                    written_plain[id(sym)] = sym

    # inner plain indices: only referenced inside their own loops'
    # subtrees, and every driving loop reached on every iteration —
    # that pins the index's post-region value to the last chunk's
    shadowed = dict(inner_idx)
    for inner in inner_loops:
        iid = id(inner.index)
        if iid in shadowed:
            in_subtree = set()
            for drv in inner_loops:
                if drv.index is inner.index:
                    if not _always_reached(drv, loop):
                        raise _Reject(
                            f"index {inner.index.name}: driving loop "
                            f"conditionally reached")
                    in_subtree.update(id(x) for x in drv.body.walk())
            # driving loops are NOT skipped: their own bound
            # expressions reading the index (``do j = j+1, n``) carry
            # state across chunks and must reject the offload
            for s in region:
                if id(s) in in_subtree:
                    continue
                for e in s.sub_expressions():
                    for x in e.walk():
                        if isinstance(x, VarRef) \
                                and x.symbol is inner.index:
                            raise _Reject(
                                f"index {inner.index.name} read outside "
                                f"its loop")
            del shadowed[iid]

    # -- per-location roles --------------------------------------------------
    off = Offload()
    off.loop, off.proc = loop, proc
    off.arrays = []
    off.ro = []
    off.mrg = []
    off.red = {}
    off.red_stmts = {}
    off.red_scalars = {}
    off.cs_ro = []
    off.cm_masked = []
    off.ca_direct = []
    off.cm_red = []
    off.la_red = []
    off.ca_ro = []

    rid_next = [0]
    red_groups: List[Tuple[VarPlan, frozenset]] = []

    def red_group_ids(sym: Symbol, vp: VarPlan) -> frozenset:
        for g_vp, g_ids in red_groups:
            if g_vp is vp:
                return g_ids
        g_ids = frozenset(id(s) for s in vp.symbols) | {id(sym)}
        red_groups.append((vp, g_ids))
        return g_ids

    # written plain scalars: trust the plan's privatization statuses
    # (they guarantee no exposed cross-iteration reads); reductions go
    # through the log, everything else ships last-chunk finals
    red_plain: Dict[int, Symbol] = {}
    for sid, sym in written_plain.items():
        vp = _vp_for(lp, proc, sym)
        if vp is None:
            raise _Reject(f"scalar {sym.name}: unclassified")
        if vp.status == REDUCTION:
            red_plain[sid] = sym
        elif vp.status not in (PRIVATE, PRIVATE_FINAL, PRIVATE_USER):
            raise _Reject(f"scalar {sym.name}: status {vp.status}")

    # written common locations: group-privatize (masked span copies),
    # write through (parallel arrays), or log (reductions)
    seen_groups: Dict[int, int] = {}      # id(vp) -> arrays index
    for sid, sym in list(written_cs.items()) + [
            (i, s) for i, s in written_arr.items() if s.is_common]:
        vp = _vp_for(lp, proc, sym)
        if vp is None:
            raise _Reject(f"common {sym.name}: unclassified")
        if vp.status == REDUCTION:
            continue
        if sym.is_array and vp.status == PARALLEL:
            off.ca_direct.append(sym)
            continue
        if vp.status not in (PRIVATE, PRIVATE_FINAL, PRIVATE_USER):
            raise _Reject(f"common {sym.name}: status {vp.status}")
        if id(vp) in seen_groups:
            continue
        # privatize the whole member group as one span so aliasing
        # (EQUIVALENCE-style overlap) behaves as in shared memory
        members = [s for s in common_syms.values()
                   if s in vp.symbols or s is sym]
        lo = min(s.common_offset for s in members)
        hi = max(s.common_offset + (s.constant_size() or 1)
                 for s in members)
        k = len(off.arrays)
        seen_groups[id(vp)] = k
        off.arrays.append({"kind": "ca", "block": sym.common_block,
                           "base": lo, "size": hi - lo})
        for m in members:
            off.cm_masked.append((m, k))

    masked_ids = {id(m) for m, _ in off.cm_masked}

    # local arrays: ship contents; written ones get masked copies
    red_local: Dict[int, Symbol] = {}
    for sid, sym in sorted(local_arrays.items(),
                           key=lambda kv: kv[1].name):
        if _const_shape(sym) is None:
            raise _Reject(f"local array {sym.name}: non-constant shape")
        if sid not in written_arr:
            off.ro.append({"name": sym.name, "sym": sym, "copy": False,
                           "mask_arr": None})
            continue
        vp = _vp_for(lp, proc, sym)
        if vp is None:
            raise _Reject(f"local array {sym.name}: unclassified")
        if vp.status == REDUCTION:
            red_local[sid] = sym
            continue
        if vp.status not in (PARALLEL, PRIVATE, PRIVATE_FINAL,
                             PRIVATE_USER):
            raise _Reject(f"local array {sym.name}: status {vp.status}")
        k = len(off.arrays)
        off.arrays.append({"kind": "la", "name": sym.name,
                           "mrg": len(off.mrg),
                           "size": _const_shape(sym)[2]})
        off.mrg.append(sym.name)
        off.ro.append({"name": sym.name, "sym": sym, "copy": True,
                       "mask_arr": k})

    for sid, sym in sorted(red_local.items(), key=lambda kv: kv[1].name):
        off.la_red.append((sym, len(off.mrg)))
        off.mrg.append(sym.name)

    # reduction statements: every touch of a REDUCTION location must be
    # a matched ``t = t op e`` update; the kernel logs (rid, [off,] val)
    # and the runner replays the log in chunk-execution order
    all_red_syms: Dict[int, Symbol] = dict(red_plain)
    all_red_syms.update(red_local)
    for sid, sym in common_syms.items():
        vp = _vp_for(lp, proc, sym)
        if vp is not None and vp.status == REDUCTION:
            all_red_syms[sid] = sym

    group_ids_all = set(all_red_syms)
    la_red_index = {id(s): k for s, k in off.la_red}
    for s in region:
        if isinstance(s, AssignStmt):
            t = s.target
            tsym = t.symbol if isinstance(t, (VarRef, ArrayRef)) else None
            if tsym is not None and id(tsym) in group_ids_all:
                vp = _vp_for(lp, proc, tsym)
                g_ids = red_group_ids(tsym, vp)
                if _has_boolop(s.value):
                    raise _Reject(
                        f"reduction on {tsym.name}: short-circuit "
                        f"operator in update")
                m = _match_reduction_chain(s, g_ids | {id(tsym)})
                if m is None:
                    raise _Reject(
                        f"reduction on {tsym.name}: unsupported shape")
                operands = [e for _op, _pos, e in m]
                if any(_refs_group(e, group_ids_all) for e in operands):
                    raise _Reject(
                        f"reduction on {tsym.name}: reads another "
                        f"reduction location")
                if isinstance(t, ArrayRef) and any(
                        _refs_group(idx, group_ids_all)
                        for idx in t.indices):
                    raise _Reject(
                        f"reduction on {tsym.name}: index reads a "
                        f"reduction location")
                rid = rid_next[0]
                rid_next[0] += 1
                if tsym.is_common and tsym.is_array:
                    spec = {"kind": "ca", "block": tsym.common_block}
                elif tsym.is_common:
                    spec = {"kind": "cs", "block": tsym.common_block,
                            "off": tsym.common_offset}
                elif tsym.is_array:
                    spec = {"kind": "la",
                            "mrg": la_red_index[id(tsym)]}
                else:
                    spec = {"kind": "ls", "name": tsym.name,
                            "coerce": "i" if tsym.type == INT else "f"}
                spec["steps"] = [(op_, pos_) for op_, pos_, _e in m]
                off.red[rid] = spec
                off.red_stmts[s.stmt_id] = (rid, operands)
                if spec["kind"] == "ls":
                    off.red_scalars[tsym.name] = rid
                # the other-side expression and the target indices may
                # not read any reduction location (checked above); the
                # single allowed group reference is the target read
                continue
        # any other statement may not touch a reduction location
        for e in s.sub_expressions():
            if s.stmt_id in off.red_stmts:
                continue
            for x in e.walk():
                if isinstance(x, (VarRef, ArrayRef)) \
                        and id(x.symbol) in group_ids_all:
                    raise _Reject(
                        f"reduction location {x.symbol.name} read "
                        f"outside its update")

    # reduction-status locations that never got a matched statement are
    # fine (no touches at all); but a write outside a matched statement
    # was already rejected above, and masked/direct writes to REDUCTION
    # locations were routed here by status

    # classify remaining common accesses (read-only / log metas)
    for sid, sym in sorted(common_syms.items(),
                           key=lambda kv: (kv[1].common_block,
                                           kv[1].common_offset,
                                           kv[1].name)):
        if sid in masked_ids:
            continue
        if sid in all_red_syms:
            off.cm_red.append(sym)
            continue
        if sym.is_array:
            if sym in off.ca_direct:
                continue
            off.ca_ro.append(sym)
        else:
            off.cs_ro.append(sym)

    # -- shipping lists ------------------------------------------------------
    env_names = {sym.name for sym in read_plain.values()
                 if sym is not own}
    env_names |= {sym.name for sym in written_plain.values()}
    off.env = sorted(env_names)
    fin = {sym.name for sym in written_plain.values()}
    fin |= {s.index.name for s in inner_loops
            if id(s.index) in inner_idx}
    off.fin = sorted(fin)
    off.fs = [n for n in off.fin if n not in off.red_scalars]
    off.blocks = sorted({s.common_block for s in common_syms.values()})
    return off


def analyze_offloads(program: Program, plan: ProgramPlan
                     ) -> Tuple[List[Offload], Dict[str, str]]:
    """All offloadable loops (in ``loop_table`` order, ``J`` assigned
    sequentially) plus a ``{loop name: reason}`` map for the parallel
    loops that stay sequential-only."""
    offloads: List[Offload] = []
    rejects: Dict[str, str] = {}
    proc_of = {}
    for pname, proc in program.procedures.items():
        for s in proc.body.walk():
            proc_of[s.stmt_id] = proc
    for loop in loop_table(program):
        lp = plan.loops.get(loop.stmt_id)
        if lp is None or not lp.parallel:
            continue
        proc = proc_of[loop.stmt_id]
        try:
            off = _try_offload(program, proc, loop, lp)
        except _Reject as e:
            rejects[loop.name or f"#{loop.stmt_id}"] = e.args[0]
            continue
        off.J = len(offloads)
        off.kname = f"_k{off.J}"
        offloads.append(off)
    return offloads, rejects


# ---------------------------------------------------------------------------
# kernel emitter
# ---------------------------------------------------------------------------

class _KernelEmitter(_ProcEmitter):
    """Emits one loop's worker kernel.  Inherits the sequential
    expression/statement lowering; overrides stores to privatized
    locations (masked) and reduction updates (logged)."""

    def __init__(self, mod: "_ParModuleEmitter", proc: Procedure,
                 off: Offload):
        super().__init__(mod, proc)
        self.off = off
        self.masked: Dict[int, int] = {}     # id(sym) -> arrays index
        self.red_stmts = off.red_stmts

    def emit(self) -> List[str]:
        off = self.off
        loop = off.loop
        self.w(f"def {off.kname}(_rng, _env, _cm, _mo, _ro):")
        self._ind += 1
        self.w("_o = 0")
        if off.env:
            names = ", ".join(f"v_{n}" for n in off.env)
            if len(off.env) == 1:
                names += ","
            self.w(f"({names}) = _env")
        for blk in off.blocks:
            self.w(f"_c_{blk} = _cm[{blk!r}]")

        # privatized common groups: span copies seeded from the shared
        # state (reads of never-written cells see dispatch-time values)
        for k, spec in enumerate(off.arrays):
            if spec["kind"] != "ca":
                continue
            b, base, size = spec["block"], spec["base"], spec["size"]
            self.w(f"_pg{k} = list(_c_{b}[{base}:{base + size}])")
            self.w(f"_pgm{k} = [False] * {size}")

        # local arrays: read-only bind, written ones copy + mask
        for j, r in enumerate(off.ro):
            if r["copy"]:
                k = r["mask_arr"]
                self.w(f"buf_{r['name']} = list(_ro[{j}])")
                self.w(f"_pgm{k} = [False] * {off.arrays[k]['size']}")
            else:
                self.w(f"buf_{r['name']} = _ro[{j}]")
        self.w("_rl = []")

        self._register_metas()

        # -- region driver (mirrors _emit_loop_body minus head/fix) ---------
        stmts = list(loop.body.walk())
        need_cycle = any(isinstance(x, CycleStmt) for x in stmts)
        seed_iter = not any(isinstance(x, CycleStmt) for x in stmts)
        precharge = all(isinstance(x, (AssignStmt, IoStmt, NoopStmt))
                        for x in loop.body.statements)
        sym = loop.index
        shadow = _buffer_backed(sym) or sym.is_const
        mirror = shadow or self._index_written(loop)
        iv = "_i0" if mirror else f"v_{sym.name}"
        written = self._written_vars(loop.body)
        if not shadow:
            written = written | {sym.name}
        self._scopes.append([len(self.lines), self._ind, written, {}])
        if precharge:
            for s in loop.body.statements:
                self.stmt(s)
            body_lines = self._pending
            body_n = self._pending_n
            self._pending = []
            self._pending_n = 0
            if self._cse is not None:
                self._cse = {}
            self.w(f"_o += {body_n + 1} * len(_rng)")
            self.w("if _o > _mo:")
            self.w("    _bud(_o, _mo)")
            self.w(f"for {iv} in _rng:")
            self._ind += 1
            if mirror and not shadow:
                self.w(f"v_{sym.name} = {iv}")
            if body_lines:
                for line in body_lines:
                    self.w(line)
            elif not (mirror and not shadow):
                self.w("pass")
            self._ind -= 1
        else:
            self.w(f"for {iv} in _rng:")
            self._ind += 1
            if mirror and not shadow:
                self.w(f"v_{sym.name} = {iv}")
            if seed_iter:
                self._pending_n += 1
            if need_cycle:
                self.w("try:")
                self._ind += 1
                self.block(loop.body)
                self._ind -= 1
                self.w("except _Cycle as _cy:")
                self.w("    if _cy.label is not None and "
                       f"_cy.label != {loop.term_label!r}:")
                self.w("        raise")
            else:
                self.block(loop.body)
            if not seed_iter:
                self.w("_o += 1")
            self._ind -= 1
        self._scopes.pop()

        # -- returns --------------------------------------------------------
        fs_t = "()"
        if off.fs:
            fs_t = "(" + ", ".join(f"v_{n}" for n in off.fs)
            fs_t += (",)" if len(off.fs) == 1 else ")")
        pa_items = []
        for k, spec in enumerate(off.arrays):
            buf = f"_pg{k}" if spec["kind"] == "ca" \
                else f"buf_{spec['name']}"
            pa_items.append(f"[(_j, {buf}[_j]) for _j in "
                            f"range({spec['size']}) if _pgm{k}[_j]]")
        pa_t = "()"
        if pa_items:
            pa_t = "(" + ", ".join(pa_items)
            pa_t += (",)" if len(pa_items) == 1 else ")")
        self.w(f"return _o, {fs_t}, {pa_t}, _rl")
        self._ind -= 1
        return self.lines

    def _register_metas(self) -> None:
        """Bind every accessed buffer-backed / array symbol to kernel
        storage: shared views, privatized span copies, or shipped local
        buffers.  All shapes are compile-time constants (the analysis
        rejected everything else)."""
        off = self.off
        for sym in off.cs_ro:
            self.arrays[id(sym)] = _Arr(f"_c_{sym.common_block}",
                                        sym.common_offset, [1], [1],
                                        False, sym.name)
        for sym, k in off.cm_masked:
            self.masked[id(sym)] = k
            base = sym.common_offset - off.arrays[k]["base"]
            if sym.is_array:
                lows, strides, _ = _const_shape(sym)
            else:
                lows, strides = [1], [1]
            self.arrays[id(sym)] = _Arr(f"_pg{k}", base, lows, strides,
                                        False, sym.name)
        for sym in off.ca_direct + off.ca_ro:
            lows, strides, _ = _const_shape(sym)
            self.arrays[id(sym)] = _Arr(f"_c_{sym.common_block}",
                                        sym.common_offset, lows, strides,
                                        False, sym.name)
        for sym in off.cm_red:
            if sym.is_array:
                lows, strides, _ = _const_shape(sym)
            else:
                lows, strides = [1], [1]
            # offsets in the log are absolute within the block view;
            # the buffer itself is never subscripted (log-only)
            self.arrays[id(sym)] = _Arr(f"_c_{sym.common_block}",
                                        sym.common_offset, lows, strides,
                                        False, sym.name)
        for r in self.off.ro:
            sym = r["sym"]
            lows, strides, _ = _const_shape(sym)
            self.arrays[id(sym)] = _Arr(f"buf_{sym.name}", 0, lows,
                                        strides, False, sym.name)
            if r["mask_arr"] is not None:
                self.masked[id(sym)] = r["mask_arr"]
        for sym, _k in off.la_red:
            lows, strides, _ = _const_shape(sym)
            self.arrays[id(sym)] = _Arr(f"_noread_{sym.name}", 0, lows,
                                        strides, False, sym.name)

    # -- overrides -----------------------------------------------------------
    def assign(self, s: AssignStmt) -> Tuple[List[str], int]:
        red = self.red_stmts.get(s.stmt_id)
        if red is not None:
            rid, operands = red
            texts = []
            en = 0
            for e in operands:
                et, n_e = self.expr(e)
                texts.append(et)
                en += n_e
            vals_t = "(" + ", ".join(texts) \
                + ("," if len(texts) == 1 else "") + ")"
            t = s.target
            if isinstance(t, ArrayRef):
                meta = self.arrays[id(t.symbol)]
                off_t, on = self.offset(meta, t.indices)
                tn = self.tmp("_x")
                # static count mirrors the sequential update: store(1)
                # + rhs(chain ops + target-read(1 + idx) + operands)
                # + store idx
                n = 1 + (len(operands) + (1 + on) + en) + on
                return [f"{tn} = {off_t}",
                        f"_rl.append(({rid}, {tn}, {vals_t}))"], n
            n = 1 + (len(operands) + 1 + en)
            return [f"_rl.append(({rid}, {vals_t}))"], n
        t = s.target
        if isinstance(t, ArrayRef) and id(t.symbol) in self.masked:
            k = self.masked[id(t.symbol)]
            meta = self.arrays[id(t.symbol)]
            vtype = self.etype(s.value)
            vt, vn = self.expr(s.value)
            off_t, on = self.offset(meta, t.indices)
            val = vt if vtype == "f" else f"float({vt})"
            tn = self.tmp("_x")
            self._invalidate_store(meta, None)
            return [f"{tn} = {off_t}", f"{meta.buf}[{tn}] = {val}",
                    f"_pgm{k}[{tn}] = True"], 1 + vn + on
        if isinstance(t, VarRef) and id(t.symbol) in self.masked:
            k = self.masked[id(t.symbol)]
            meta = self.arrays[id(t.symbol)]
            vtype = self.etype(s.value)
            vt, vn = self.expr(s.value)
            val = vt if vtype == "f" else f"float({vt})"
            self._invalidate_store(meta, None)
            return [f"{meta.buf}[{meta.base}] = {val}",
                    f"_pgm{k}[{meta.base}] = True"], 1 + vn
        return super().assign(s)

    def io(self, s):
        raise TranspileUnsupported("I/O inside a parallel kernel")

    def emit_call(self, call):
        raise TranspileUnsupported("call inside a parallel kernel")


# ---------------------------------------------------------------------------
# orchestrator emitters
# ---------------------------------------------------------------------------

def _tuple_text(items: List[str]) -> str:
    if not items:
        return "()"
    return "(" + ", ".join(items) + ("," if len(items) == 1 else "") + ")"


class _ParProcEmitter(_ProcEmitter):
    """Sequential procedure emitter plus a dispatch site at every
    offloadable loop.  The head (bound evaluation, op charges, range
    construction) is shared; the dispatched branch replicates exactly
    the loop's externally visible post-state (index fixup, finals,
    op total via ``_s[0]``)."""

    def emit_loop(self, loop: LoopStmt) -> None:
        head = self._emit_loop_head(loop)
        off = self.mod.offloads.get(loop.stmt_id)
        if off is None:
            self._emit_loop_body(loop, head)
            return
        rng = head.rng
        env_t = _tuple_text([f"v_{n}" for n in off.env])
        mrg_t = _tuple_text([f"buf_{n}" for n in off.mrg])
        ro_t = _tuple_text([f"buf_{r['name']}" for r in off.ro])
        self.w(f"if _par.go({off.J}, len({rng})):")
        self._ind += 1
        self.w("_s[0] = _o")
        self.w(f"_fin = _par.run({off.J}, {rng}, _s, _mo, {env_t}, "
               f"{mrg_t}, {ro_t})")
        self.w("_o = _s[0]")
        if off.fin:
            targets = ", ".join(f"v_{n}" for n in off.fin)
            if len(off.fin) == 1:
                targets += ","
            self.w(f"({targets}) = _fin")
        if not head.shadow:
            if head.step_const == 1:
                self.w(f"v_{loop.index.name} = {head.lo_t} + len({rng})")
            else:
                self.w(f"v_{loop.index.name} = {head.lo_t} + "
                       f"len({rng}) * {head.st_t}")
        self._ind -= 1
        self.w("else:")
        self._ind += 1
        self._emit_loop_body(loop, head)
        self._ind -= 1
        self.mod.kernel_lines.append(
            _KernelEmitter(self.mod, self.proc, off).emit())


def _meta_literal(offloads: List[Offload]) -> str:
    meta = {}
    for off in offloads:
        meta[off.J] = {
            "kernel": off.kname,
            "loop": off.loop.name or f"#{off.loop.stmt_id}",
            "proc": off.proc.name,
            "env": list(off.env),
            "fin": list(off.fin),
            "fs": list(off.fs),
            "arrays": [
                {k: v for k, v in spec.items() if k != "name"}
                if spec["kind"] == "ca" else
                {"kind": "la", "mrg": spec["mrg"], "size": spec["size"]}
                for spec in off.arrays],
            "red": {rid: dict(spec) for rid, spec in off.red.items()},
        }
    return repr(meta)


class _ParModuleEmitter(_ModuleEmitter):
    """Whole-program emitter for the parallel backend: plain-variant
    procedures with dispatch sites, kernels appended after, and the
    ``_PAR_META`` literal.  No module-level ``run()`` — the runner
    drives ``p_<main>`` directly with shared-memory COMMON views and a
    live ``_par`` handle."""

    def __init__(self, program: Program, offloads: List[Offload]):
        super().__init__(program, VARIANT_PLAIN, ())
        self.extra_args = ", _par"
        self.offloads = {o.loop.stmt_id: o for o in offloads}
        self.offload_list = offloads
        self.kernel_lines: List[List[str]] = []

    def emit(self) -> str:
        program = self.program
        parts = [
            f'"""Parallel-backend module for {program.name!r} '
            f'(codegen v{CODEGEN_VERSION}).\n'
            'Generated by repro.runtime.par_backend - do not edit."""',
            "",
            _PREAMBLE,
            f"\n_NLOOPS = {len(self.loop_index)}\n",
        ]
        for name in sorted(program.procedures):
            emitter = _ParProcEmitter(self, program.procedures[name])
            parts.append("\n")
            parts.extend(emitter.emit())
        for lines in self.kernel_lines:
            parts.append("\n")
            parts.extend(lines)
        parts.append("\n_PAR_META = " + _meta_literal(self.offload_list))
        return "\n".join(parts) + "\n"


def transpile_parallel(program: Program, plan: ProgramPlan
                       ) -> Tuple[str, List[Offload], Dict[str, str]]:
    """Generate the parallel-backend module source.  Returns
    ``(source, offloads, rejects)``; raises
    :class:`TranspileUnsupported` when the program itself cannot be
    transpiled (same contract as the sequential generator)."""
    offloads, rejects = analyze_offloads(program, plan)
    source = _ParModuleEmitter(program, offloads).emit()
    return source, offloads, rejects


# ---------------------------------------------------------------------------
# module cache
# ---------------------------------------------------------------------------

class ParallelModule:
    """One generated parallel module: orchestrator namespace (runtime
    error types bound), raw source (shipped verbatim to workers, where
    the self-contained shims stay in place), and the dispatch metadata
    the runner merges with."""

    __slots__ = ("source", "namespace", "meta", "rejects", "key")

    def __init__(self, source: str, namespace: Dict, meta: Dict,
                 rejects: Dict[str, str], key: str):
        self.source = source
        self.namespace = namespace
        self.meta = meta
        self.rejects = rejects
        self.key = key

    @property
    def n_offloads(self) -> int:
        return len(self.meta)


def _plan_signature(plan: ProgramPlan) -> str:
    items = []
    for stmt_id in sorted(plan.loops):
        lp = plan.loops[stmt_id]
        vars_sig = sorted(
            (repr(key), vp.status, ",".join(sorted(vp.reduction_ops)))
            for key, vp in lp.vars.items())
        items.append((stmt_id, lp.parallel, tuple(lp.blockers),
                      tuple(vars_sig)))
    return hashlib.sha256(repr(items).encode("utf-8")).hexdigest()


_par_memo: Dict[tuple, ParallelModule] = {}


def load_parallel_module(program: Program, plan: ProgramPlan
                         ) -> ParallelModule:
    """Generated parallel module for ``(program, plan)``, memoized on
    (source hash, plan signature, codegen version)."""
    src = program.source_text or ""
    key = None
    if src:
        digest = hashlib.sha256(src.encode("utf-8")).hexdigest()
        key = (digest, _plan_signature(plan), CODEGEN_VERSION)
        cached = _par_memo.get(key)
        if cached is not None:
            return cached
    source, offloads, rejects = transpile_parallel(program, plan)
    ns: Dict = {}
    exec(compile(source, f"<par:{program.name}>", "exec"), ns)
    _bind_runtime(ns)
    meta = ns["_PAR_META"]
    mod = ParallelModule(source, ns, meta, rejects,
                         hashlib.sha256(source.encode("utf-8"))
                         .hexdigest())
    if key is not None:
        if len(_par_memo) > 64:
            _par_memo.clear()
        _par_memo[key] = mod
    return mod
