"""SPEC92 floating-point kernels — the static reduction census of Fig 6-2.

Fig 6-2 counts recognized commutative updates in the SPEC92 benchmarks by
operation type (+, *, MIN, MAX) and target kind (scalar / array).  Each
kernel here is a miniature of the corresponding benchmark's documented
numerics, carrying a known mix of reduction statements; the bench
regenerates the census with ``scan_block_reductions``.
"""

from typing import Dict, List

from .base import Workload

_KERNELS: Dict[str, str] = {}

_KERNELS["tomcatv"] = """
      PROGRAM tomcatv
      DIMENSION x(200,200), y(200,200), rx(200,200), ry(200,200)
      INTEGER n
      n = 64
      DO 5 j = 1, n
        DO 5 i = 1, n
          x(i,j) = i * 0.1
          y(i,j) = j * 0.1
          rx(i,j) = 0.0
          ry(i,j) = 0.0
5     CONTINUE
      DO 100 it = 1, 2
        rxm = 0.0
        rym = 0.0
        DO 60 j = 2, n-1
          DO 60 i = 2, n-1
            rx(i,j) = x(i+1,j) - 2.0*x(i,j) + x(i-1,j)
            ry(i,j) = y(i,j+1) - 2.0*y(i,j) + y(i,j-1)
            rxm = max(rxm, abs(rx(i,j)))
            rym = max(rym, abs(ry(i,j)))
60      CONTINUE
        DO 80 j = 2, n-1
          DO 80 i = 2, n-1
            x(i,j) = x(i,j) + rx(i,j) * 0.3
            y(i,j) = y(i,j) + ry(i,j) * 0.3
80      CONTINUE
        PRINT *, rxm, rym
100   CONTINUE
      END
"""

_KERNELS["ora"] = """
      PROGRAM ora
      INTEGER nray
      nray = 256
      vint = 0.0
      wint = 1.0
      DO 100 i = 1, nray
        t = i * 0.01
        f = t * t * 0.5 + sin(t) * 0.25
        g = 1.0 + t * 0.001
        vint = vint + f * 0.01
        wint = wint * g
100   CONTINUE
      PRINT *, vint, wint
      END
"""

_KERNELS["doduc"] = """
      PROGRAM doduc
      DIMENSION u(500), du(500)
      INTEGER n
      n = 200
      DO 10 i = 1, n
        u(i) = i * 0.05
        du(i) = 0.0
10    CONTINUE
      dtmin = 1000000.0
      esum = 0.0
      DO 100 i = 2, n-1
        du(i) = u(i+1) - 2.0*u(i) + u(i-1)
        dt = 1.0 / (abs(du(i)) + 0.001)
        IF (dt .LT. dtmin) dtmin = dt
        esum = esum + u(i) * u(i)
100   CONTINUE
      PRINT *, dtmin, esum
      END
"""

_KERNELS["swm256"] = """
      PROGRAM swm256
      DIMENSION p(130,130), uvel(130,130), vvel(130,130)
      INTEGER n
      n = 48
      DO 10 j = 1, n
        DO 10 i = 1, n
          p(i,j) = 1000.0 + i * 0.5
          uvel(i,j) = 0.1 * i
          vvel(i,j) = 0.1 * j
10    CONTINUE
      ptot = 0.0
      ketot = 0.0
      pmax = 0.0
      DO 100 j = 1, n
        DO 100 i = 1, n
          ptot = ptot + p(i,j)
          ketot = ketot + uvel(i,j)*uvel(i,j) + vvel(i,j)*vvel(i,j)
          pmax = max(pmax, p(i,j))
100   CONTINUE
      PRINT *, ptot, ketot, pmax
      END
"""

_KERNELS["su2cor"] = """
      PROGRAM su2cor
      DIMENSION corr(64), field(4096)
      INTEGER nsite
      nsite = 1024
      DO 10 i = 1, nsite
        field(i) = sin(i * 0.01)
10    CONTINUE
      DO 20 k = 1, 32
        corr(k) = 0.0
20    CONTINUE
      DO 100 i = 1, nsite - 32
        DO 90 k = 1, 32
          corr(k) = corr(k) + field(i) * field(i+k)
90      CONTINUE
100   CONTINUE
      PRINT *, corr(1), corr(32)
      END
"""

_KERNELS["nasa7"] = """
      PROGRAM nasa7
      DIMENSION a(128,128), b(128,128), c(128,128)
      INTEGER n
      n = 40
      DO 10 j = 1, n
        DO 10 i = 1, n
          a(i,j) = i * 0.01 + j
          b(i,j) = j * 0.01 - i
          c(i,j) = 0.0
10    CONTINUE
      DO 100 j = 1, n
        DO 100 k = 1, n
          DO 100 i = 1, n
            c(i,j) = c(i,j) + a(i,k) * b(k,j)
100   CONTINUE
      emax = 0.0
      emin = 1000000.0
      DO 200 j = 1, n
        DO 200 i = 1, n
          emax = max(emax, c(i,j))
          emin = min(emin, c(i,j))
200   CONTINUE
      PRINT *, emax, emin
      END
"""

_KERNELS["mdljdp2"] = """
      PROGRAM mdljdp2
      DIMENSION fx(512), x(512)
      INTEGER natom
      natom = 128
      DO 10 i = 1, natom
        x(i) = i * 0.3
        fx(i) = 0.0
10    CONTINUE
      epot = 0.0
      vir = 0.0
      DO 100 i = 1, natom
        DO 90 jj = 1, 8
          j = mod(i + jj - 1, natom) + 1
          r2 = (x(i) - x(j)) * (x(i) - x(j)) + 0.5
          fij = 1.0 / (r2 * r2)
          fx(i) = fx(i) + fij
          fx(j) = fx(j) - fij
          epot = epot + fij * r2
          vir = vir - fij
90      CONTINUE
100   CONTINUE
      PRINT *, epot, vir, fx(3)
      END
"""

_KERNELS["ear"] = """
      PROGRAM ear
      DIMENSION sig(2048), eng(32)
      INTEGER n
      n = 2048
      DO 10 i = 1, n
        sig(i) = sin(i * 0.02) * cos(i * 0.005)
10    CONTINUE
      DO 20 k = 1, 32
        eng(k) = 0.0
20    CONTINUE
      DO 100 k = 1, 32
        DO 90 i = 1, 64
          eng(k) = eng(k) + sig((k-1)*64 + i) * sig((k-1)*64 + i)
90      CONTINUE
100   CONTINUE
      etot = 0.0
      DO 200 k = 1, 32
        etot = etot + eng(k)
200   CONTINUE
      PRINT *, etot
      END
"""

# Expected static census per kernel (op, scalar-or-array) — verified by
# the Fig 6-2 bench against scan_block_reductions.
EXPECTED_REDUCTIONS: Dict[str, Dict[str, int]] = {
    "tomcatv": {"max_scalar": 2},
    "ora": {"sum_scalar": 1, "prod_scalar": 1},
    "doduc": {"min_scalar": 1, "sum_scalar": 1},
    "swm256": {"sum_scalar": 2, "max_scalar": 1},
    "su2cor": {"sum_array": 1},
    "nasa7": {"sum_array": 1, "max_scalar": 1, "min_scalar": 1},
    "mdljdp2": {"sum_array": 2, "sum_scalar": 2},
    "ear": {"sum_array": 1, "sum_scalar": 1},
}

WORKLOADS: List[Workload] = [
    Workload(name, f"SPEC92 kernel miniature: {name} (Fig 6-2 census)",
             src, tags=("chapter6", "spec92"))
    for name, src in _KERNELS.items()
]

BY_NAME = {w.name: w for w in WORKLOADS}
