"""Workload infrastructure.

Each workload is a synthetic mini-Fortran program modeled on one of the
paper's applications: it reproduces the *documented loop structures* (the
code excerpts, loop names, dependence patterns, and analysis challenges
the paper describes) at a laptop-friendly scale.  A workload carries the
user assertions its chapter-4 session supplies and the paper-reported
numbers its benches compare shapes against.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from ..ir.builder import build_program
from ..ir.program import Program
from ..parallelize.parallelizer import Assertion


class Workload:
    def __init__(self, name: str, description: str, source: str, *,
                 inputs: Sequence[float] = (),
                 user_assertions: Optional[List[Assertion]] = None,
                 paper: Optional[Dict] = None,
                 tags: Sequence[str] = ()):
        self.name = name
        self.description = description
        self.source = source
        self.inputs = list(inputs)
        self.user_assertions = user_assertions or []
        self.paper = paper or {}
        self.tags = tuple(tags)

    def build(self) -> Program:
        """A fresh IR program (transforms may mutate it, so never cache)."""
        return build_program(self.source, self.name)

    def line_count(self) -> int:
        return sum(1 for line in self.source.splitlines()
                   if line.strip() and not line.lstrip().startswith("C "))

    def __repr__(self):
        return f"Workload({self.name})"
