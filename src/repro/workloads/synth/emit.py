"""The AST-emission core shared by the corpus factory and the fuzzer.

Every grammar rule here is written against a tiny :class:`Chooser`
protocol instead of a concrete randomness source, so the same emission
code serves two masters that must never drift apart:

* the **seeded corpus generator** (:mod:`repro.workloads.synth.generator`)
  drives it with :class:`RandomChooser` — a plain ``random.Random`` —
  giving bit-deterministic, spawn-safe program synthesis keyed by seed,
* the **Hypothesis fuzzer** (``tests/test_fuzz_soundness.py``) drives it
  with a draw-backed chooser, keeping shrinking: Hypothesis minimizes the
  underlying draw sequence, which replays through these same rules.

No Hypothesis import appears here (or anywhere under ``synth/``): the
runtime package must stay importable without the fuzzing toolchain.
"""

from __future__ import annotations

import random
from typing import List, Sequence


class Chooser:
    """Minimal decision interface the grammar rules draw from."""

    def choice(self, seq: Sequence):
        raise NotImplementedError

    def randint(self, lo: int, hi: int) -> int:
        """Inclusive on both ends, like ``random.Random.randint``."""
        raise NotImplementedError

    def boolean(self) -> bool:
        raise NotImplementedError


class RandomChooser(Chooser):
    """Seeded chooser: ``random.Random`` methods only, which are
    documented-stable across processes and platforms — the foundation of
    the generator's determinism contract."""

    def __init__(self, rng: random.Random):
        self.rng = rng

    def choice(self, seq: Sequence):
        return seq[self.rng.randrange(len(seq))]

    def randint(self, lo: int, hi: int) -> int:
        return self.rng.randint(lo, hi)

    def boolean(self) -> bool:
        return self.rng.random() < 0.5


# -- the fuzzer grammar -------------------------------------------------------
# The exact program family the soundness fuzzer has always generated:
# one outer i-loop over COMMON scalars and two 40-element arrays, with
# simple/IF/inner-j-loop body shapes.  (Kept byte-compatible with the
# old inline Hypothesis strategies so shrunk counterexamples stay
# meaningful.)

IDX = ["i", "i+1", "i-1", "2*i", "j", "j+1", "3", "7"]
SCALARS = ["s", "t"]
ARRAYS = ["a", "b"]


def expr(ch: Chooser) -> str:
    kind = ch.choice(["const", "scalar", "array", "index", "binop"])
    if kind == "const":
        return f"{ch.randint(1, 9)}.0"
    if kind == "scalar":
        return ch.choice(SCALARS)
    if kind == "index":
        return ch.choice(["i * 1.0", "j * 1.0"])
    if kind == "array":
        return f"{ch.choice(ARRAYS)}({ch.choice(IDX)})"
    op = ch.choice(["+", "-", "*"])
    left = ch.choice(SCALARS + ["i * 1.0", "2.0"])
    right = f"{ch.choice(ARRAYS)}({ch.choice(IDX)})"
    return f"{left} {op} {right}"


def simple_stmt(ch: Chooser, indent: int) -> str:
    pad = " " * indent
    kind = ch.choice(["assign_array", "assign_scalar",
                      "reduce_scalar", "reduce_array"])
    if kind == "assign_array":
        tgt = f"{ch.choice(ARRAYS)}({ch.choice(IDX)})"
        return f"{pad}{tgt} = {expr(ch)}"
    if kind == "assign_scalar":
        return f"{pad}{ch.choice(SCALARS)} = {expr(ch)}"
    if kind == "reduce_scalar":
        s = ch.choice(SCALARS)
        return f"{pad}{s} = {s} + {expr(ch)}"
    arr = ch.choice(ARRAYS)
    idx = ch.choice(IDX)
    return f"{pad}{arr}({idx}) = {arr}({idx}) + {expr(ch)}"


def body_stmts(ch: Chooser, labels: List[int]) -> List[str]:
    out = []
    n = ch.randint(1, 3)
    for _ in range(n):
        shape = ch.choice(["simple", "if", "jloop"])
        if shape == "simple":
            out.append(simple_stmt(ch, 8))
        elif shape == "if":
            cond = (f"{ch.choice(ARRAYS)}({ch.choice(IDX)}) .GT. "
                    f"{ch.randint(0, 5)}.0")
            out.append(f"        IF ({cond}) THEN")
            out.append(simple_stmt(ch, 10))
            out.append("        ENDIF")
        else:
            label = labels.pop()
            out.append(f"        DO {label} j = 2, 8")
            out.append(simple_stmt(ch, 10))
            out.append(f"{label}      CONTINUE")
    return out


def fuzz_program(ch: Chooser) -> str:
    """The soundness fuzzer's program family (see module docstring)."""
    labels = [20, 30, 40]
    body = body_stmts(ch, labels)
    lines = [
        "      PROGRAM fz",
        "      COMMON /sc/ s, t",
        "      DIMENSION a(40), b(40)",
        "      DO 5 i = 1, 40",
        "        a(i) = i * 0.5",
        "        b(i) = 21.0 - i * 0.25",
        "5     CONTINUE",
        "      s = 1.0",
        "      t = 2.0",
        "      DO 100 i = 2, 12",
    ] + body + [
        "100   CONTINUE",
        "      PRINT *, a(3), b(5), s, t",
        "      END",
    ]
    return "\n".join(lines)


def reduction_merge_program(ch: Chooser) -> str:
    """Parallel loops dominated by reduction chains — the shapes whose
    merge order the par_backend must replay bit-exactly: ``+ - *`` and
    ``min``/``max`` spines over scalars, mixed with plain parallel
    array writes."""
    lines = []
    n_red = ch.randint(1, 3)
    operands = ["a(i)", "b(i)", "a(i) * b(i)", "0.5", "1.25",
                "b(i) - a(i)"]
    for _ in range(n_red):
        target = ch.choice(["s", "t"])
        kind = ch.choice(["chain", "minmax"])
        if kind == "minmax":
            fn = ch.choice(["MIN", "MAX"])
            arg = ch.choice(operands)
            lines.append(f"        {target} = {fn}({target}, {arg})")
        else:
            e = target
            for _ in range(ch.randint(1, 3)):
                op = ch.choice(["+", "-", "*"])
                e = f"({e} {op} {ch.choice(operands)})"
            lines.append(f"        {target} = {e}")
    if ch.boolean():
        lines.append(f"        c(i) = {ch.choice(operands)}")
    return "\n".join([
        "      PROGRAM fzr",
        "      COMMON /sc/ s, t",
        "      DIMENSION a(40), b(40), c(40)",
        "      DO 5 i = 1, 40",
        "        a(i) = i * 0.5",
        "        b(i) = 21.0 - i * 0.25",
        "5     CONTINUE",
        "      s = 1.0",
        "      t = 2.0",
        "      DO 100 i = 2, 33",
    ] + lines + [
        "100   CONTINUE",
        "      PRINT *, s, t, c(3)",
        "      END",
    ])
