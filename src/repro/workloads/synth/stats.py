"""Trait-coverage analysis over a generated corpus slice.

``repro synthstats`` (and the bench mirror) answers the question the
paper's Fig. 6.2 table answers for its hand-picked suite, here over a
machine-generated population: *for each trait profile, which analysis
wins* — the static dependence test alone, the reduction recognizer, the
privatizer (liveness-driven finalization included), or dynamic
dependence analysis confirming/refuting a statically blocked loop.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

#: Classification buckets, in report-column order.
WINNERS = ("static", "reduction", "privatizer", "dyndep-dep",
           "dyndep-clean")

_PRIVATE = ("private", "private_final", "private_user")


def classify_program(source: str, name: str) -> Dict[str, int]:
    """Per-loop analysis-winner census for one program.

    Parallel loops are credited to the *strongest* analysis that was
    needed: reduction recognizer beats privatizer beats the bare static
    dependence test.  Statically blocked loops are handed to dyndep
    (stride 1, exhaustive): a loop with an observed carried dependence
    is ``dyndep-dep`` (the block is real), one with none is
    ``dyndep-clean`` (a candidate the static test missed — interactive
    Explorer fodder per §2.5)."""
    from ...ir import build_program
    from ...parallelize import Parallelizer
    from ...runtime import analyze_dependences

    prog = build_program(source, name)
    plan = Parallelizer(prog).plan()
    counts = {w: 0 for w in WINNERS}
    blocked = []
    for loop in prog.all_loops():
        lp = plan.plan_for(loop)
        if lp is None:
            continue
        if lp.parallel:
            statuses = {vp.status for vp in lp.vars.values()}
            if "reduction" in statuses:
                counts["reduction"] += 1
            elif statuses.intersection(_PRIVATE):
                counts["privatizer"] += 1
            else:
                counts["static"] += 1
        else:
            blocked.append(loop)
    if blocked:
        # fresh build for the instrumented run; map its stmt_ids back to
        # loop *names* (stmt_ids are global counters, unique per build)
        dyn_prog = build_program(source, name)
        names = {l.stmt_id: l.name for l in dyn_prog.all_loops()}
        analyzer = analyze_dependences(dyn_prog, sample_stride=1)
        carried = {}
        for (stmt_id, _var), hits in analyzer.carried_by_var.items():
            if hits:
                carried[names.get(stmt_id)] = True
        for loop in blocked:
            if carried.get(loop.name):
                counts["dyndep-dep"] += 1
            else:
                counts["dyndep-clean"] += 1
    return counts


def trait_table(seeds_per_profile: int = 4,
                profiles: Sequence[str] = ()) -> List[Tuple]:
    """Aggregate :func:`classify_program` over ``seeds_per_profile``
    seeds of each profile.  Returns rows
    ``(profile, programs, loops, static, reduction, privatizer,
    dyndep-dep, dyndep-clean)`` sorted by profile."""
    from . import SPECS, generate

    rows = []
    for profile in sorted(profiles or SPECS):
        agg = {w: 0 for w in WINNERS}
        loops = 0
        for seed in range(seeds_per_profile):
            w = generate(seed, profile)
            counts = classify_program(w.source, w.name)
            for k, v in counts.items():
                agg[k] += v
            loops += sum(counts.values())
        rows.append((profile, seeds_per_profile, loops,
                     *(agg[w] for w in WINNERS)))
    return rows


def render_table(rows: List[Tuple]) -> str:
    headers = ("profile", "progs", "loops") + WINNERS
    widths = [max(len(str(h)), *(len(str(r[i])) for r in rows))
              for i, h in enumerate(headers)]
    def fmt(vals):
        return "  ".join(str(v).ljust(w) for v, w in zip(vals, widths))
    lines = [fmt(headers), fmt(tuple("-" * w for w in widths))]
    lines += [fmt(r) for r in rows]
    return "\n".join(lines)
