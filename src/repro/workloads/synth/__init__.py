"""Seeded workload factory: corpus-scale generated mini-Fortran programs.

Public surface:

* :func:`generate` — ``(seed, profile) -> SynthWorkload``, memoized in a
  bounded LRU (generation runs the tree oracle once, so repeat lookups
  by suites/scheduler/CLI must not regenerate).
* :func:`from_name` — resolve a ``synth/s<seed>-<profile>`` corpus name.
* :func:`pinned_slice` — the canonical prefix-stable corpus slice the
  parity suites and CI gates pin: ``pinned_slice(50)`` is a strict
  prefix of ``pinned_slice(200)``, so scaling ``REPRO_SYNTH_N`` only
  ever *adds* programs.
* :data:`PROFILES` / :data:`SPECS` — the trait-profile registry.

Determinism: everything here is a pure function of
``(seed, profile, GENERATOR_VERSION)`` — see :mod:`.generator`.
"""

from functools import lru_cache
from typing import List

from .emit import Chooser, RandomChooser
from .generator import (GENERATOR_VERSION, NAME_PREFIX, SPECS, SynthSpec,
                        SynthWorkload, build_source, parse_name,
                        profile_names, synth_name)
from .generator import generate as _generate

#: Sorted profile tags, the deterministic round-robin order of
#: :func:`pinned_slice`.
PROFILES: List[str] = profile_names()

_CACHE_SIZE = 256


@lru_cache(maxsize=_CACHE_SIZE)
def generate(seed: int, profile: str) -> SynthWorkload:
    return _generate(seed, profile)


def from_name(name: str) -> SynthWorkload:
    """Resolve a ``synth/s<seed>-<profile>`` name to its workload."""
    seed, profile = parse_name(name)
    return generate(seed, profile)


def is_synth_name(name: str) -> bool:
    return name.startswith(NAME_PREFIX)


def pinned_slice(n: int) -> List[str]:
    """The first ``n`` names of the canonical corpus slice: profiles in
    sorted order round-robin, seeds increasing — prefix-stable in ``n``."""
    if n < 0:
        raise ValueError("slice size must be >= 0")
    out = []
    for k in range(n):
        profile = PROFILES[k % len(PROFILES)]
        seed = k // len(PROFILES)
        out.append(synth_name(seed, profile))
    return out


__all__ = [
    "Chooser", "RandomChooser", "GENERATOR_VERSION", "NAME_PREFIX",
    "PROFILES", "SPECS", "SynthSpec", "SynthWorkload", "build_source",
    "from_name", "generate", "is_synth_name", "parse_name",
    "pinned_slice", "profile_names", "synth_name",
]
