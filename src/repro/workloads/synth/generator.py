"""Seed-keyed, trait-controlled mini-Fortran program generation.

Each generated program is assembled from *sections* — small loop nests
with a known analysis story (statically parallel stencil, sequential
recurrence, scalar/array/sparse/guarded-min-max reductions per Ch. 6,
privatization with a liveness decision, indirect-indexing chains,
call-containing loops, formal-array sweeps, conditionally-reached inner
drivers, split-COMMON aliasing).  A :class:`SynthSpec` profile fixes the
section mix; the seed fixes every remaining decision through one
``random.Random`` stream.

Determinism contract: ``generate(seed, profile)`` is a pure function of
``(seed, profile, GENERATOR_VERSION)`` — identical source text, trait
manifest, and tree-oracle reference outputs in any process on any host
(spawn-safe; no ``hash()``, no wall clock, no filesystem).  The manifest
is plain JSON and round-trips bit-exactly.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..base import Workload
from .emit import Chooser, RandomChooser

#: Bump when the grammar changes: the version participates in the RNG
#: stream key, so regenerated corpora never silently mix grammars.
GENERATOR_VERSION = 1

#: Budget for the generation-time tree-oracle reference run.
REFERENCE_MAX_OPS = 2_000_000

NAME_PREFIX = "synth/"


@dataclass(frozen=True)
class SynthSpec:
    """One trait profile: which sections a program draws, and the floor
    on how many of its loops the automatic parallelizer must prove
    parallel (recorded in the manifest, asserted by the corpus tests)."""

    profile: str
    sections: Tuple[str, ...]
    min_parallel: int = 1
    description: str = ""


#: The trait-profile registry.  ``synth/s<seed>-<profile>`` names resolve
#: against these tags; ``mix`` draws its section set from the seed.
SPECS: Dict[str, SynthSpec] = {
    s.profile: s for s in (
        SynthSpec("mix", ("auto",), 2,
                  "seed-drawn mixture of 2-4 trait sections"),
        SynthSpec("deep", ("deepnest", "stencil"), 2,
                  "depth-2/3 loop nests over 2-D arrays"),
        SynthSpec("red-sc", ("red_scalar", "stencil"), 2,
                  "scalar sum/product reductions (Ch. 6 table)"),
        SynthSpec("red-arr", ("red_array",), 1,
                  "regular array reduction (su2cor shape)"),
        SynthSpec("red-sp", ("red_sparse",), 1,
                  "sparse-indexed reduction (bdna scatter shape)"),
        SynthSpec("red-mm", ("red_minmax",), 1,
                  "guarded IF-min/max reduction (plan-parallel, "
                  "par_backend-rejected)"),
        SynthSpec("alias", ("alias_split",), 1,
                  "COMMON aliasing through split layouts"),
        SynthSpec("ind", ("indirect_chain", "stencil"), 1,
                  "distance-1 indirect-indexing dependence chain "
                  "(dyndep fodder)"),
        SynthSpec("priv", ("priv",), 1,
                  "privatization with a liveness decision "
                  "(dead / live-out / blocked)"),
        SynthSpec("call", ("call_loop",), 1,
                  "parallel loop containing a CALL (offload-rejected)"),
        SynthSpec("formal", ("formal_sweep",), 1,
                  "subroutine DOALL writing its formal array "
                  "(offload-rejected)"),
        SynthSpec("conddrv", ("cond_driver",), 1,
                  "conditionally reached inner loop driver "
                  "(offload-rejected)"),
    )
}

#: Section pool the ``mix`` profile draws from (traits that compose
#: without fighting over scalars or index arrays are listed once each).
_MIX_POOL = ("stencil", "seqchain", "deepnest", "red_scalar",
             "red_array", "red_sparse", "red_minmax", "priv",
             "indirect_chain")

#: Sections whose loops the planner always proves parallel; ``mix``
#: draws its first section here so its min_parallel=2 floor (init loop
#: plus one section) holds for every seed.
_MIX_PARALLEL_POOL = ("stencil", "deepnest", "red_scalar", "red_array",
                      "red_sparse", "red_minmax")


def profile_names() -> List[str]:
    return sorted(SPECS)


def synth_name(seed: int, profile: str) -> str:
    if profile not in SPECS:
        raise ValueError(f"unknown synth profile {profile!r}; choose "
                         f"from {profile_names()}")
    return f"{NAME_PREFIX}s{int(seed)}-{profile}"


def parse_name(name: str) -> Tuple[int, str]:
    """``synth/s<seed>-<profile>`` → ``(seed, profile)``; raises
    :class:`ValueError` on anything else."""
    if not name.startswith(NAME_PREFIX):
        raise ValueError(f"{name!r} is not a synth workload name "
                         f"(expected {NAME_PREFIX}s<seed>-<profile>)")
    rest = name[len(NAME_PREFIX):]
    if not rest.startswith("s"):
        raise ValueError(f"bad synth name {name!r}: expected "
                         f"{NAME_PREFIX}s<seed>-<profile>")
    head, sep, profile = rest[1:].partition("-")
    if not sep or not head.isdigit():
        raise ValueError(f"bad synth name {name!r}: expected "
                         f"{NAME_PREFIX}s<seed>-<profile>")
    if profile not in SPECS:
        raise ValueError(f"unknown synth profile {profile!r} in "
                         f"{name!r}; choose from {profile_names()}")
    return int(head), profile


class SynthWorkload(Workload):
    """A generated corpus entry: a :class:`Workload` plus its trait
    manifest (seed, drawn traits, source hash, tree-oracle reference)."""

    def __init__(self, name: str, description: str, source: str, *,
                 manifest: Dict, spec: SynthSpec, tags=()):
        super().__init__(name, description, source, tags=tags)
        self.manifest = manifest
        self.spec = spec

    def __repr__(self):
        return f"SynthWorkload({self.name})"


# -- program assembly ---------------------------------------------------------

class _Assembler:
    """Collects declarations, body lines, subroutines, and the PRINT
    digest while sections are emitted, then renders one program unit."""

    def __init__(self, prog_name: str):
        self.prog_name = prog_name
        self.commons: List[str] = []         # extra COMMON declarations
        self.body: List[str] = []
        self.subs: List[str] = []
        self.digest: List[str] = []
        self.traits: Dict[str, object] = {}
        self._label = 90

    def label(self) -> int:
        self._label += 10
        return self._label

    def common(self, decl: str) -> None:
        if decl not in self.commons:
            self.commons.append(decl)

    def render(self) -> str:
        lines = [f"      PROGRAM {self.prog_name}",
                 "      COMMON /st/ s0, s1, s2, s3",
                 "      COMMON /wa/ a(64), b(64), c(64)"]
        lines += [f"      {d}" for d in self.commons]
        lines += self.body
        for k in range(0, len(self.digest), 4):
            chunk = ", ".join(self.digest[k:k + 4])
            lines.append(f"      PRINT *, {chunk}")
        lines.append("      END")
        for sub in self.subs:
            lines.append(sub)
        return "\n".join(lines)


def _emit_init(asm: _Assembler, ch: Chooser) -> None:
    fa = ch.choice(["0.5", "0.25", "0.75"])
    fb = ch.choice(["0.125", "0.0625"])
    cb = ch.choice(["17.0", "23.0", "29.0"])
    lbl = asm.label()
    asm.body += [
        f"      DO {lbl} i = 1, 64",
        f"        a(i) = i * {fa}",
        f"        b(i) = {cb} - i * {fb}",
        "        c(i) = 0.0",
        f"{lbl}    CONTINUE",
        "      s0 = 0.0",
        "      s1 = 1.0",
        "      s2 = 1.0",
    ]
    asm.traits["init"] = {"fa": fa, "fb": fb, "cb": cb}


def _sec_stencil(asm: _Assembler, ch: Chooser) -> None:
    n = ch.randint(20, 40)
    f = ch.choice(["0.5", "0.25", "2.0"])
    g = ch.choice(["0.125", "1.5"])
    lbl = asm.label()
    asm.body += [
        f"      DO {lbl} i = 2, {n}",
        f"        c(i) = a(i-1) * {f} + b(i+1) * {g}",
        f"{lbl}    CONTINUE",
    ]
    asm.digest.append("c(3)")
    asm.traits["stencil"] = {"n": n, "f": f, "g": g}


def _sec_seqchain(asm: _Assembler, ch: Chooser) -> None:
    n = ch.randint(16, 32)
    f = ch.choice(["0.25", "0.5"])
    lbl = asm.label()
    asm.body += [
        f"      DO {lbl} i = 2, {n}",
        f"        a(i) = a(i-1) + b(i) * {f}",
        f"{lbl}    CONTINUE",
    ]
    asm.digest.append(f"a({n})")
    asm.traits["seqchain"] = {"n": n, "f": f}


def _sec_deepnest(asm: _Assembler, ch: Chooser) -> None:
    asm.common("COMMON /g2/ d(20,20), e(20,20)")
    depth = ch.randint(2, 3)
    m = ch.randint(12, 18)
    accumulate = ch.boolean()
    l_init = asm.label()
    asm.body += [
        f"      DO {l_init} j = 1, 20",
        f"      DO {l_init} i = 1, 20",
        "        d(i,j) = i * 0.1 + j",
        "        e(i,j) = 0.0",
        f"{l_init}  CONTINUE",
    ]
    l_out = asm.label()
    l_mid = asm.label()
    pad = ""
    if depth == 3:
        l_k = asm.label()
        asm.body.append(f"      DO {l_k} k = 1, 3")
        pad = "  "
    stmt = ("e(i,j) = e(i,j) + d(i,j) * 0.5" if accumulate
            else "e(i,j) = d(i,j) * 0.5 + 1.0")
    if depth == 3:
        stmt = ("e(i,j) = e(i,j) + d(i,j) * k" if accumulate
                else "e(i,j) = d(i,j) * k + 1.0")
    asm.body += [
        f"      {pad}DO {l_out} j = 2, {m}",
        f"      {pad}  DO {l_mid} i = 2, {m}",
        f"      {pad}    {stmt}",
        f"{l_mid}  {pad}  CONTINUE",
        f"{l_out}  {pad}CONTINUE",
    ]
    if depth == 3:
        asm.body.append(f"{l_k}    CONTINUE")
    asm.digest.append("e(3,4)")
    asm.traits["deepnest"] = {"depth": depth, "m": m,
                              "accumulate": accumulate}


def _sec_red_scalar(asm: _Assembler, ch: Chooser) -> None:
    n = ch.randint(20, 40)
    kinds = ["sum"] if not ch.boolean() else ["sum", "prod"]
    lbl = asm.label()
    lines = [f"      DO {lbl} i = 1, {n}"]
    if "sum" in kinds:
        lines.append(f"        s1 = s1 + a(i) * b(i)")
        asm.digest.append("s1")
    if "prod" in kinds:
        lines.append(f"        s2 = s2 * (1.0 + a(i) * 0.001)")
        asm.digest.append("s2")
    lines.append(f"{lbl}    CONTINUE")
    asm.body += lines
    asm.traits["red_scalar"] = {"n": n, "kinds": kinds}


def _sec_red_array(asm: _Assembler, ch: Chooser) -> None:
    n = ch.randint(24, 40)
    k = ch.randint(4, 8)
    lbl_o = asm.label()
    lbl_i = asm.label()
    asm.body += [
        f"      DO {lbl_o} i = 1, {n - k}",
        f"        DO {lbl_i} j = 1, {k}",
        "          c(j) = c(j) + a(i) * b(i+j)",
        f"{lbl_i}    CONTINUE",
        f"{lbl_o}  CONTINUE",
    ]
    asm.digest += ["c(1)", f"c({k})"]
    asm.traits["red_array"] = {"n": n, "k": k}


def _emit_idx_init(asm: _Assembler, ch: Chooser, span: int) -> str:
    asm.common("COMMON /ix/ idx(64)")
    m = ch.choice([3, 5, 7, 11])
    lbl = asm.label()
    asm.body += [
        f"      DO {lbl} i = 1, 64",
        f"        idx(i) = mod(i * {m}, {span}) + 1",
        f"{lbl}    CONTINUE",
    ]
    return str(m)


def _sec_red_sparse(asm: _Assembler, ch: Chooser) -> None:
    n = ch.randint(24, 48)
    span = ch.randint(12, 24)
    m = _emit_idx_init(asm, ch, span)
    f = ch.choice(["0.5", "0.25"])
    lbl = asm.label()
    asm.body += [
        f"      DO {lbl} i = 1, {n}",
        f"        c(idx(i)) = c(idx(i)) + a(i) * {f}",
        f"{lbl}    CONTINUE",
    ]
    asm.digest += ["c(2)", "c(5)"]
    asm.traits["red_sparse"] = {"n": n, "span": span, "mult": m, "f": f}


def _sec_red_minmax(asm: _Assembler, ch: Chooser) -> None:
    n = ch.randint(24, 48)
    kind = ch.choice(["max", "min"])
    lbl = asm.label()
    if kind == "max":
        asm.body.append("      s3 = 0.0")
        guard = f"IF (a(i) .GT. s3) s3 = a(i)"
    else:
        asm.body.append("      s3 = 1000000.0")
        guard = f"IF (b(i) .LT. s3) s3 = b(i)"
    asm.body += [
        f"      DO {lbl} i = 1, {n}",
        f"        {guard}",
        f"{lbl}    CONTINUE",
    ]
    asm.digest.append("s3")
    asm.traits["red_minmax"] = {"n": n, "kind": kind}


def _sec_indirect_chain(asm: _Assembler, ch: Chooser) -> None:
    n = ch.randint(24, 48)
    span = ch.randint(16, 40)
    m = _emit_idx_init(asm, ch, span)
    lbl = asm.label()
    asm.body += [
        f"      DO {lbl} i = 2, {n}",
        "        a(idx(i)) = a(idx(i-1)) + 1.0",
        f"{lbl}    CONTINUE",
    ]
    asm.digest += ["a(2)", "a(7)"]
    # distance-1 chain: the documented §2.5.2 sampling-window contract
    # keeps adjacent iteration pairs, so dyndep must observe this at
    # any stride (the recall tests key on this trait fact)
    asm.traits["indirect_chain"] = {"n": n, "span": span, "mult": m,
                                    "distance": 1}


def _sec_priv(asm: _Assembler, ch: Chooser) -> None:
    n = ch.randint(20, 40)
    variant = ch.choice(["dead", "liveout", "blocked"])
    lbl = asm.label()
    if variant == "blocked":
        thr = ch.choice(["4.0", "7.0"])
        asm.body += [
            f"      DO {lbl} i = 1, {n}",
            f"        IF (a(i) .GT. {thr}) THEN",
            "          s0 = a(i) * 2.0",
            "        ENDIF",
            "        c(i) = s0 + 1.0",
            f"{lbl}    CONTINUE",
        ]
    else:
        asm.body += [
            f"      DO {lbl} i = 1, {n}",
            "        s0 = a(i) * 2.0",
            "        c(i) = s0 + s0 * 0.5",
            f"{lbl}    CONTINUE",
        ]
    asm.digest.append("c(3)")
    if variant == "liveout":
        asm.digest.append("s0")
    asm.traits["priv"] = {"n": n, "variant": variant}


def _sec_call_loop(asm: _Assembler, ch: Chooser) -> None:
    n = ch.randint(24, 48)
    f = ch.choice(["2.0", "1.5"])
    lbl = asm.label()
    asm.body += [
        f"      DO {lbl} i = 1, {n}",
        "        CALL upd(i)",
        f"{lbl}    CONTINUE",
    ]
    asm.subs.append("\n".join([
        "",
        "      SUBROUTINE upd(k)",
        "      COMMON /wa/ a(64), b(64), c(64)",
        f"      c(k) = a(k) * {f} + b(k)",
        "      END",
    ]))
    asm.digest.append("c(4)")
    asm.traits["call_loop"] = {"n": n, "f": f}


def _sec_formal_sweep(asm: _Assembler, ch: Chooser) -> None:
    n = ch.randint(24, 48)
    f = ch.choice(["1.5", "0.5"])
    asm.body.append(f"      CALL sweep(c, {n})")
    asm.subs.append("\n".join([
        "",
        "      SUBROUTINE sweep(q, m)",
        "      DIMENSION q(*)",
        "      COMMON /wa/ a(64), b(64), c(64)",
        "      DO 100 i = 1, m",
        f"        q(i) = a(i) * {f} + 1.0",
        "100   CONTINUE",
        "      END",
    ]))
    asm.digest.append("c(6)")
    asm.traits["formal_sweep"] = {"n": n, "f": f}


def _sec_cond_driver(asm: _Assembler, ch: Chooser) -> None:
    n = ch.randint(24, 48)
    thr = ch.choice(["6.0", "9.0"])
    inner = ch.randint(3, 5)
    lbl_o = asm.label()
    lbl_i = asm.label()
    asm.body += [
        f"      DO {lbl_o} i = 1, {n}",
        f"        IF (a(i) .GT. {thr}) THEN",
        f"          DO {lbl_i} j = 1, {inner}",
        "            c(i) = c(i) + a(i) * j",
        f"{lbl_i}      CONTINUE",
        "        ENDIF",
        f"{lbl_o}  CONTINUE",
    ]
    asm.digest.append("c(8)")
    asm.traits["cond_driver"] = {"n": n, "thr": thr, "inner": inner}


def _sec_alias_split(asm: _Assembler, ch: Chooser) -> None:
    asm.common("COMMON /gr/ g(64)")
    f = ch.choice(["1.0", "2.0"])
    h = ch.choice(["0.5", "0.25"])
    lbl = asm.label()
    asm.body += [
        f"      DO {lbl} i = 1, 64",
        "        g(i) = i * 0.5",
        f"{lbl}    CONTINUE",
        "      CALL halves",
    ]
    asm.subs.append("\n".join([
        "",
        "      SUBROUTINE halves",
        "      COMMON /gr/ gl(32), gh(32)",
        "      DO 100 i = 1, 32",
        f"        gl(i) = gl(i) + {f}",
        f"        gh(i) = gh(i) * {h}",
        "100   CONTINUE",
        "      END",
    ]))
    asm.digest += ["g(3)", "g(40)"]
    asm.traits["alias_split"] = {"f": f, "h": h}


_SECTIONS: Dict[str, Callable[[_Assembler, Chooser], None]] = {
    "stencil": _sec_stencil,
    "seqchain": _sec_seqchain,
    "deepnest": _sec_deepnest,
    "red_scalar": _sec_red_scalar,
    "red_array": _sec_red_array,
    "red_sparse": _sec_red_sparse,
    "red_minmax": _sec_red_minmax,
    "indirect_chain": _sec_indirect_chain,
    "priv": _sec_priv,
    "call_loop": _sec_call_loop,
    "formal_sweep": _sec_formal_sweep,
    "cond_driver": _sec_cond_driver,
    "alias_split": _sec_alias_split,
}


def _sample_without_replacement(ch: Chooser, pool: Tuple[str, ...],
                                k: int) -> List[str]:
    remaining = list(pool)
    out = []
    for _ in range(min(k, len(remaining))):
        pick = ch.choice(remaining)
        remaining.remove(pick)
        out.append(pick)
    return out


def build_source(seed: int, profile: str) -> Tuple[str, Dict]:
    """Render the program text and the *pre-reference* part of the
    manifest (everything derivable without executing the program)."""
    spec = SPECS[profile]
    rng = random.Random(f"repro-synth/v{GENERATOR_VERSION}/"
                        f"{profile}/{seed}")
    ch = RandomChooser(rng)
    asm = _Assembler(f"sy{seed}")
    _emit_init(asm, ch)
    if spec.sections == ("auto",):
        first = ch.choice(_MIX_PARALLEL_POOL)
        rest_pool = tuple(s for s in _MIX_POOL if s != first)
        sections = [first] + _sample_without_replacement(
            ch, rest_pool, ch.randint(1, 3))
    else:
        sections = list(spec.sections)
    for name in sections:
        _SECTIONS[name](asm, ch)
    source = asm.render()
    manifest = {
        "name": synth_name(seed, profile),
        "seed": seed,
        "profile": profile,
        "generator": GENERATOR_VERSION,
        "sections": sections,
        "traits": asm.traits,
        "source_sha256": hashlib.sha256(source.encode()).hexdigest(),
    }
    return source, manifest


def generate(seed: int, profile: str) -> SynthWorkload:
    """Generate one corpus entry: source + manifest with the tree-oracle
    reference outputs and the automatic plan's parallel-loop census."""
    if profile not in SPECS:
        raise ValueError(f"unknown synth profile {profile!r}; choose "
                         f"from {profile_names()}")
    source, manifest = build_source(seed, profile)
    spec = SPECS[profile]
    name = manifest["name"]

    from ...ir import build_program
    from ...parallelize import Parallelizer
    from ...runtime import run_program

    ref = run_program(build_program(source, name),
                      max_ops=REFERENCE_MAX_OPS, engine="tree")
    manifest["reference"] = {"outputs": [float(v) for v in ref.outputs],
                             "ops": int(ref.ops)}

    plan_prog = build_program(source, name)
    plan = Parallelizer(plan_prog).plan()
    parallel = sorted(loop.name for loop in plan.parallel_loops())
    manifest["plan"] = {
        "parallel_loops": parallel,
        "parallel_count": len(parallel),
        "loop_count": len(plan_prog.all_loops()),
        "expected_parallel_min": spec.min_parallel,
    }
    return SynthWorkload(
        name, f"generated workload (profile {profile}, seed {seed}): "
              f"{spec.description}",
        source, manifest=manifest, spec=spec,
        tags=("synth", profile))
