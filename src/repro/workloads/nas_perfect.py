"""NAS Parallel + Perfect Club miniatures — the chapter-6 impact study.

Fig 6-3/6-4/6-5 measure, across NAS and Perfect Club programs, how much of
the computation can only be parallelized when reduction recognition is on;
Fig 6-6/6-7 turn that into 4-processor speedups on the SGI Challenge and
Origin.  Each miniature's *dominant* loop depends on a reduction —
scalar, array-region, sparse/indirect, or interprocedural — so disabling
the analysis (``Parallelizer(use_reductions=False)``) collapses its
coverage, exactly the paper's ablation.
"""

from typing import Dict, List

from .base import Workload

_P: Dict[str, str] = {}

# --- NAS ------------------------------------------------------------------

_P["cgm"] = """
      PROGRAM cgm
      DIMENSION aval(3000), acol(3000), x(600), q(600), arow(601)
      INTEGER n, nz
      n = 200
      nz = 5
      DO 10 i = 1, n
        x(i) = 1.0 + i * 0.001
        arow(i) = (i-1) * nz + 1
        DO 8 k = 1, nz
          aval((i-1)*nz + k) = 0.1 * k
          acol((i-1)*nz + k) = mod(i + k * 17, n) + 1
8       CONTINUE
10    CONTINUE
      arow(n+1) = n * nz + 1
      DO 900 it = 1, 3
        DO 100 i = 1, n
          sum = 0.0
          DO 90 k = arow(i), arow(i+1) - 1
            sum = sum + aval(k) * x(acol(k))
90        CONTINUE
          q(i) = sum
100     CONTINUE
        rho = 0.0
        DO 200 i = 1, n
          rho = rho + q(i) * x(i)
200     CONTINUE
        DO 300 i = 1, n
          x(i) = x(i) + q(i) / (rho + 1.0)
300     CONTINUE
        PRINT *, rho
900   CONTINUE
      END
"""

_P["embar"] = """
      PROGRAM embar
      INTEGER n
      n = 4000
      sx = 0.0
      sy = 0.0
      DO 100 i = 1, n
        t1 = mod(i * 1220703125, 16777216) / 16777216.0
        t2 = mod(i * 279470273, 16777216) / 16777216.0
        g = t1 * t1 + t2 * t2 + 0.001
        sx = sx + t1 * g
        sy = sy + t2 * g
100   CONTINUE
      PRINT *, sx, sy
      END
"""

_P["appbt"] = """
      PROGRAM appbt
      DIMENSION u(66,66), rsd(66,66)
      INTEGER n
      n = 64
      DO 10 j = 1, n
        DO 10 i = 1, n
          u(i,j) = i * 0.01 + j * 0.02
          rsd(i,j) = 0.0
10    CONTINUE
      DO 900 it = 1, 2
        rsdnm = 0.0
        DO 100 j = 2, n-1
          DO 100 i = 2, n-1
            rsd(i,j) = u(i+1,j) + u(i-1,j) + u(i,j+1) + u(i,j-1) - 4.0 * u(i,j)
            rsdnm = rsdnm + rsd(i,j) * rsd(i,j)
100     CONTINUE
        DO 200 j = 2, n-1
          DO 200 i = 2, n-1
            u(i,j) = u(i,j) + rsd(i,j) * 0.2
200     CONTINUE
        PRINT *, rsdnm
900   CONTINUE
      END
"""

_P["mgrid"] = """
      PROGRAM mgrid
      DIMENSION v(80,80), r(80,80)
      INTEGER n
      n = 64
      DO 10 j = 1, n
        DO 10 i = 1, n
          v(i,j) = 0.0
          r(i,j) = sin(i * 0.1) * cos(j * 0.1)
10    CONTINUE
      DO 900 it = 1, 2
        DO 100 j = 2, n-1
          DO 100 i = 2, n-1
            v(i,j) = v(i,j) + r(i,j) * 0.25
100     CONTINUE
        rmax = 0.0
        rmin = 1000000.0
        DO 200 j = 2, n-1
          DO 200 i = 2, n-1
            r(i,j) = r(i,j) * 0.9 + v(i,j) * 0.01
            rmax = max(rmax, r(i,j))
            rmin = min(rmin, r(i,j))
200     CONTINUE
        PRINT *, rmax, rmin
900   CONTINUE
      END
"""

# --- Perfect Club -----------------------------------------------------------

_P["trfd"] = """
      PROGRAM trfd
      DIMENSION xints(200,200), val(200)
      INTEGER n
      n = 80
      DO 10 j = 1, n
        DO 10 i = 1, n
          xints(i,j) = 1.0 / (i + j)
10    CONTINUE
      DO 20 i = 1, n
        val(i) = 0.0
20    CONTINUE
C     two-electron integral transformation: array reduction into val
      DO 100 j = 1, n
        DO 100 i = 1, n
          val(i) = val(i) + xints(i,j) * xints(j,i)
100   CONTINUE
      tr = 0.0
      DO 200 i = 1, n
        tr = tr + val(i)
200   CONTINUE
      PRINT *, tr
      END
"""

_P["ocean"] = """
      PROGRAM ocean
      DIMENSION psi(130,130), vort(130,130)
      INTEGER n
      n = 64
      DO 10 j = 1, n
        DO 10 i = 1, n
          psi(i,j) = 0.0
          vort(i,j) = sin(i * 0.05) * sin(j * 0.05)
10    CONTINUE
      DO 900 it = 1, 2
        enrgy = 0.0
        enstr = 0.0
        DO 100 j = 2, n-1
          DO 100 i = 2, n-1
            psi(i,j) = psi(i,j) + vort(i,j) * 0.2
            enrgy = enrgy + psi(i,j) * psi(i,j)
            enstr = enstr + vort(i,j) * vort(i,j)
100     CONTINUE
        PRINT *, enrgy, enstr
900   CONTINUE
      END
"""

_P["dyfesm"] = """
      PROGRAM dyfesm
      DIMENSION force(800), disp(800), elst(200)
      INTEGER nel, nnode
      nel = 150
      nnode = 600
      DO 10 i = 1, nnode
        force(i) = 0.0
        disp(i) = i * 0.001
10    CONTINUE
      DO 15 ie = 1, nel
        elst(ie) = 1.0 + ie * 0.01
15    CONTINUE
C     element assembly: indirect (sparse) array reduction
      DO 100 ie = 1, nel
        i1 = mod(ie * 13, nnode) + 1
        i2 = mod(ie * 29, nnode) + 1
        f = elst(ie) * (disp(i1) - disp(i2))
        force(i1) = force(i1) + f
        force(i2) = force(i2) - f
100   CONTINUE
      ftot = 0.0
      DO 200 i = 1, nnode
        ftot = ftot + abs(force(i))
200   CONTINUE
      PRINT *, ftot
      END
"""

_P["qcd"] = """
      PROGRAM qcd
      DIMENSION link(4096)
      INTEGER nsite
      nsite = 2048
      DO 10 i = 1, nsite
        link(i) = cos(i * 0.003)
10    CONTINUE
      action = 0.0
      DO 100 i = 1, nsite - 4
        plaq = link(i) * link(i+1) * link(i+2) * link(i+3)
        action = action + plaq
100   CONTINUE
      PRINT *, action
      END
"""

_P["spec77"] = """
      PROGRAM spec77
      DIMENSION sp(258), fl(258)
      INTEGER n
      n = 256
      DO 10 i = 1, n
        sp(i) = sin(i * 0.02)
        fl(i) = 0.0
10    CONTINUE
      DO 900 it = 1, 3
        CALL fluxes
        emean = 0.0
        DO 200 i = 1, n
          emean = emean + fl(i)
200     CONTINUE
        PRINT *, emean
900   CONTINUE
      END

C     interprocedural reduction: the update spans a call boundary
      SUBROUTINE fluxes
      COMMON /spc/ dummy
      END
"""

_P["track"] = """
      PROGRAM track
      DIMENSION hits(400), trkx(100)
      INTEGER ntrk, nhit
      ntrk = 60
      nhit = 300
      DO 10 i = 1, nhit
        hits(i) = mod(i * 37, 359) + 0.5
10    CONTINUE
      DO 20 k = 1, ntrk
        trkx(k) = 0.0
20    CONTINUE
C     histogramming into track bins: sparse reduction
      DO 100 i = 1, nhit
        k = mod(i * 7, 60) + 1
        trkx(k) = trkx(k) + hits(i) * 0.01
100   CONTINUE
      best = 0.0
      DO 200 k = 1, ntrk
        best = max(best, trkx(k))
200   CONTINUE
      PRINT *, best
      END
"""

_P["adm"] = """
      PROGRAM adm
      DIMENSION conc(100,100)
      INTEGER n
      n = 64
      DO 10 j = 1, n
        DO 10 i = 1, n
          conc(i,j) = exp(0.0 - (i - 32.0) * (i - 32.0) * 0.01)
10    CONTINUE
      DO 900 it = 1, 2
        total = 0.0
        cmax = 0.0
        DO 100 j = 2, n-1
          DO 100 i = 2, n-1
            conc(i,j) = conc(i,j) * 0.98 + conc(i-1,j) * 0.005 + conc(i+1,j) * 0.005 + conc(i,j-1) * 0.005
            total = total + conc(i,j)
            cmax = max(cmax, conc(i,j))
100     CONTINUE
        PRINT *, total, cmax
900   CONTINUE
      END
"""

# spec77 needs the interprocedural reduction: rewrite it properly
_P["spec77"] = """
      PROGRAM spec77
      COMMON /spc/ sp(258), fl(258), emean
      INTEGER n
      COMMON /sps/ n
      n = 256
      DO 10 i = 1, n
        sp(i) = sin(i * 0.02)
        fl(i) = 0.0
10    CONTINUE
      DO 900 it = 1, 3
        emean = 0.0
        DO 100 i = 2, n - 1
          CALL accum(i)
100     CONTINUE
        PRINT *, emean
900   CONTINUE
      END

C     Interprocedural reduction: the commutative updates of fl and emean
C     happen inside a procedure called from the loop (section 6.1's
C     "reduction operations that span multiple procedures").
      SUBROUTINE accum(i)
      COMMON /spc/ sp(258), fl(258), emean
      INTEGER n
      COMMON /sps/ n
      flux = (sp(i+1) - sp(i-1)) * 0.5
      fl(i) = fl(i) + flux * flux
      emean = emean + flux * sp(i)
      END
"""

PAPER_NAS = ["appbt", "cgm", "embar", "mgrid"]
PAPER_PERFECT = ["adm", "dyfesm", "ocean", "qcd", "spec77", "track", "trfd"]

WORKLOADS: List[Workload] = [
    Workload(name,
             ("NAS Parallel miniature: " if name in PAPER_NAS
              else "Perfect Club miniature: ") + name,
             src,
             tags=("chapter6", "nas" if name in PAPER_NAS else "perfect"))
    for name, src in _P.items()
]

BY_NAME = {w.name: w for w in WORKLOADS}
