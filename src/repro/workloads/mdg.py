"""mdg — molecular dynamics model (Perfect Club), the section 4.1 case
study.

Faithful structures:

* ``interf/1000`` dominates execution (paper: 90 %), spans procedure
  calls, and is blocked by a single static dependence on the work array
  ``RL`` — the exact Fig 4-3 pattern: ``RL(K+4)`` written under
  ``RS(K+4) .LE. CUT2`` inside loop 1130, ``RL(K-5)`` read under
  ``KC .EQ. 0`` inside loop 1140, with ``KC`` counting how many ``RS``
  entries exceed ``CUT2`` in loop 1110.  The read condition implies the
  write condition, so RL *is* privatizable — but only a human (or the
  slice) can see it.  The Dynamic Dependence Analyzer observes no carried
  dependence.
* force arrays ``FX/FY/FZ`` and the virial ``VIR`` are interprocedural
  sum reductions (Fig 4-9's 3 reduction arrays + 1 reduction scalar).
* ``predic``/``correc`` hold the small automatically-parallel loops whose
  granularity is too fine to profit (paper: 0.002 ms granularity, no
  speedup from automatic parallelization).
* the timestep loop performs I/O, keeping it off the Guru's list.
"""

from ..parallelize.parallelizer import Assertion
from .base import Workload

SOURCE = """
      PROGRAM mdg
      COMMON /coords/ x(200), y(200), z(200)
      COMMON /forces/ fx(200), fy(200), fz(200)
      COMMON /work/ rs(9), rl(14), kc
      COMMON /params/ nmol, cut2, vir
      nmol = 48
      cut2 = 60.0
      CALL initia
      DO 500 ts = 1, 3
        CALL predic
        CALL interf
        CALL correc
        ekin = 0.0
        DO 510 i = 1, nmol
          ekin = ekin + fx(i)*fx(i) + fy(i)*fy(i) + fz(i)*fz(i)
510     CONTINUE
        PRINT *, ekin, vir
500   CONTINUE
      END

      SUBROUTINE initia
      COMMON /coords/ x(200), y(200), z(200)
      COMMON /forces/ fx(200), fy(200), fz(200)
      COMMON /params/ nmol, cut2, vir
      DO 10 i = 1, nmol
        x(i) = i * 0.25
        y(i) = i * 0.5 - 3.0
        z(i) = 11.0 - i * 0.125
        fx(i) = 0.0
        fy(i) = 0.0
        fz(i) = 0.0
10    CONTINUE
      vir = 0.0
      END

      SUBROUTINE predic
      COMMON /coords/ x(200), y(200), z(200)
      COMMON /forces/ fx(200), fy(200), fz(200)
      COMMON /params/ nmol, cut2, vir
      DO 20 i = 1, nmol
        x(i) = x(i) + fx(i) * 0.001
        y(i) = y(i) + fy(i) * 0.001
        z(i) = z(i) + fz(i) * 0.001
20    CONTINUE
      END

      SUBROUTINE correc
      COMMON /coords/ x(200), y(200), z(200)
      COMMON /forces/ fx(200), fy(200), fz(200)
      COMMON /params/ nmol, cut2, vir
      DO 30 i = 1, nmol
        fx(i) = fx(i) * 0.5
        fy(i) = fy(i) * 0.5
        fz(i) = fz(i) * 0.5
30    CONTINUE
      END

      SUBROUTINE interf
      COMMON /coords/ x(200), y(200), z(200)
      COMMON /forces/ fx(200), fy(200), fz(200)
      COMMON /work/ rs(9), rl(14), kc
      COMMON /params/ nmol, cut2, vir
      DO 1000 i = 1, nmol
        DO 1100 jj = 1, 16
          j = mod(i + jj - 1, nmol) + 1
          CALL dists(i, j)
          kc = 0
          DO 1110 k = 1, 9
            IF (rs(k) .GT. cut2) kc = kc + 1
1110      CONTINUE
          IF (kc .NE. 9) THEN
            DO 1130 k = 2, 5
              IF (rs(k+4) .LE. cut2) THEN
                rl(k+4) = rs(k+4) * 0.5 + rs(k) * 0.25
              ENDIF
1130        CONTINUE
            IF (kc .EQ. 0) THEN
              DO 1140 k = 11, 14
                gg = rl(k-5) * 0.125
                fx(i) = fx(i) + gg * (x(i) - x(j))
                fx(j) = fx(j) - gg * (x(i) - x(j))
                fy(i) = fy(i) + gg * (y(i) - y(j))
                fy(j) = fy(j) - gg * (y(i) - y(j))
                fz(i) = fz(i) + gg * (z(i) - z(j))
                fz(j) = fz(j) - gg * (z(i) - z(j))
                vir = vir + gg * rs(k-5)
1140          CONTINUE
            ENDIF
          ENDIF
1100    CONTINUE
1000  CONTINUE
      END

      SUBROUTINE dists(i, j)
      COMMON /coords/ x(200), y(200), z(200)
      COMMON /work/ rs(9), rl(14), kc
      dx = x(i) - x(j)
      dy = y(i) - y(j)
      dz = z(i) - z(j)
      rr = dx*dx + dy*dy + dz*dz
      DO 40 k = 1, 9
        rs(k) = rr + k * 0.5 + dx * dy * 0.01
40    CONTINUE
      END
"""

WORKLOAD = Workload(
    "mdg",
    "Molecular dynamics model (Perfect Club) - section 4.1 case study",
    SOURCE,
    user_assertions=[
        # "Once the programmer asserts that the array RL is privatizable,
        # the Assertion Checker ... enables the compiler to successfully
        # parallelize the main loop" (section 4.1.4).  The checker's
        # callee-consistency rule auto-privatizes the sibling work-array
        # members (RS, KC) accessed by DISTS.
        Assertion("interf/1000", "rl", "privatizable"),
    ],
    paper={
        "lines": 1238,
        "auto_coverage": 0.73,
        "auto_speedup_8": 1.0,
        "auto_granularity_ms": 0.002,
        "user_coverage": 0.98,
        "user_speedup_4": 4.0,
        "user_speedup_8": 6.0,
        "reduction_arrays": 3,
        "reduction_scalars": 1,
        "target_loop": "interf/1000",
        "target_coverage": 0.90,
    },
    tags=("chapter4", "perfect"),
)
