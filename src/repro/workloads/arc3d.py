"""arc3d — 3-D Euler equations solver (NASA Ames), section 4.4.1.

Faithful structures:

* ``stepf3d/701``, ``/702``, ``/801`` — the user-parallelized loops, each
  blocked by the paper's SN pattern: a scalar conditionally initialized by
  an IF chain that in fact covers the whole iteration space
  ("The variable SN is initialized when N is 3, 4, or 5.  The user
  observes that the initialization code covers the entire iteration
  space; thus, SN is privatizable").
* ``filter3d/701`` — the remaining important loop: a genuine line
  recurrence the user cannot fix (arc3d's one "remaining important"
  row in Fig 4-7).
* Large field arrays give the code its memory-bound character: the
  paper's arc3d *degrades* from 4 to 8 processors until loop interchange
  fixes locality; our bandwidth-floor model caps its scaling the same
  way.
"""

from ..parallelize.parallelizer import Assertion
from .base import Workload

SOURCE = """
      PROGRAM arc3d
      COMMON /flow/ q1(600,600), q2(600,600), press(600,600)
      COMMON /scl/ jm, km, lm
      jm = 40
      km = 40
      lm = 40
      CALL setup
      DO 900 step = 1, 2
        CALL stepf3d
        CALL filter3d
        PRINT *, q1(3,3)
900   CONTINUE
      END

      SUBROUTINE setup
      COMMON /flow/ q1(600,600), q2(600,600), press(600,600)
      COMMON /scl/ jm, km, lm
      DO 10 l = 1, lm+1
        DO 10 j = 1, jm+1
          q1(j,l) = j * 0.01 + l * 0.001
          q2(j,l) = j * 0.002 - l * 0.01
          press(j,l) = 1.0 + j * 0.0001
10    CONTINUE
      END

      SUBROUTINE stepf3d
      COMMON /flow/ q1(600,600), q2(600,600), press(600,600)
      COMMON /scl/ jm, km, lm
      DO 701 l = 2, lm
        DO 300 n = 3, 5
          IF (n .EQ. 3) sn = 0.1
          IF (n .EQ. 4) sn = 0.2
          IF (n .EQ. 5) sn = 0.3
          DO 310 j = 2, jm
            q1(j,l) = q1(j,l) + sn * (q2(j,l) - q2(j-1,l))
            q1(j,l) = q1(j,l) + sn * press(j,l) * 0.01
310       CONTINUE
300     CONTINUE
701   CONTINUE
      DO 702 l = 2, lm
        DO 400 n = 3, 5
          IF (n .EQ. 3) sn = 0.05
          IF (n .EQ. 4) sn = 0.15
          IF (n .EQ. 5) sn = 0.25
          DO 410 j = 2, jm
            q2(j,l) = q2(j,l) + sn * (q1(j,l) - q1(j-1,l))
            q2(j,l) = q2(j,l) - sn * press(j,l) * 0.005
410       CONTINUE
400     CONTINUE
702   CONTINUE
      DO 801 l = 2, lm
        DO 500 n = 3, 5
          IF (n .EQ. 3) sn = 0.3
          IF (n .EQ. 4) sn = 0.2
          IF (n .EQ. 5) sn = 0.1
          DO 510 j = 2, jm
            press(j,l) = press(j,l) + sn * q1(j,l) * q2(j,l) * 0.001
510       CONTINUE
500     CONTINUE
801   CONTINUE
      END

C     An implicit line filter: a true recurrence over l.
      SUBROUTINE filter3d
      COMMON /flow/ q1(600,600), q2(600,600), press(600,600)
      COMMON /scl/ jm, km, lm
      DO 701 l = 2, lm
        DO 600 j = 2, jm
          q1(j,l) = q1(j,l) * 0.9 + q1(j,l-1) * 0.1
600     CONTINUE
701   CONTINUE
      END
"""

WORKLOAD = Workload(
    "arc3d",
    "3-D Euler equations solver (NASA Ames) - sections 4.4-4.5",
    SOURCE,
    user_assertions=[
        Assertion("stepf3d/701", "sn", "privatizable"),
        Assertion("stepf3d/702", "sn", "privatizable"),
        Assertion("stepf3d/801", "sn", "privatizable"),
    ],
    paper={
        "lines": 4053,
        "auto_coverage": 0.90,
        "auto_speedup_4": 2.1,
        "auto_speedup_8": 1.6,
        "user_coverage": 0.98,
        "user_speedup_4": 5.4,
        "user_speedup_8": 4.9,
        "user_parallelized_loops": 3,
        "user_privatizable_scalars": 3,
        "failed_loop": "filter3d/701",
    },
    tags=("chapter4", "chapter5"),
)
