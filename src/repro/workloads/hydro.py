"""hydro — 2-D Lagrangian hydrodynamics (Los Alamos), sections 4.2 / 5.x.

Faithful structures:

* ``update/1000`` — the Fig 2-1 coarse-grain loop: an outer loop over grid
  columns whose body is eight procedure calls (period / vmeos0 / vmeos1 /
  sesind / sesgrd / sesint / srchdf / ivsr, mirroring the figure's
  UPDATE->...->IVSR chain) with automatically-parallelizable inner loops;
  the outer loop is blocked by a conditionally-written scratch row
  (``wrk1``) that only the user can privatize (the mdg/RL situation).
* ``vsetuv/85`` — the Fig 4-5 excerpt verbatim: ``k1 = k_lower(l)`` /
  ``k2 = k_upper(l)`` come from index arrays, so the written range of
  ``dkrc`` is loop-variant and unknown; ``k1p1`` is conditionally bumped.
  ``aif3`` is initialized through ``CALL init1(aif3(k1), k2-k1+1)``
  (Fig 5-1).  Both need user assertions.
* ``vsetuv/105`` / ``vsetuv/155`` / ``vqterm/85`` — privatizable scratch
  rows whose written region varies *affinely* with the outer index: the
  last-iteration finalization trick fails, so they parallelize
  automatically **only** with the chapter-5 array liveness analysis
  (deadness at exit).  Chapter-4 benches run with ``use_liveness=False``
  and the user supplies the assertions, matching the paper's timeline.
* ``vsetgc/200`` — another conditional-guard pattern (user).
* ``vh2200/1000`` — a genuine recurrence ("attempted without success").
* The cycle loop prints diagnostics, keeping it off the Guru's list.
"""

from ..parallelize.parallelizer import Assertion
from .base import Workload

SOURCE = """
      PROGRAM hydro
      COMMON /grid/ duac(42,42), u(42,42), v(42,42), p(42,42), q(42,42)
      COMMON /wrk/ dkrc(44), aif3(44), wrk1(44), wrk2(44)
      COMMON /bnd/ klo(44), khi(44)
      COMMON /scl/ kmax, lmax
      kmax = 40
      lmax = 40
      CALL init
      DO 200 ncy = 1, 2
        CALL update
        CALL vsetuv
        CALL vqterm
        CALL vsetgc
        CALL vh2200
        PRINT *, q(3,3), duac(3,3)
200   CONTINUE
      END

      SUBROUTINE init
      COMMON /grid/ duac(42,42), u(42,42), v(42,42), p(42,42), q(42,42)
      COMMON /bnd/ klo(44), khi(44)
      COMMON /scl/ kmax, lmax
      DO 10 l = 1, lmax+1
        DO 10 k = 1, kmax+1
          u(k,l) = k * 0.01 + l * 0.02
          v(k,l) = k * 0.02 - l * 0.01
          p(k,l) = 1.0 + k * 0.001
          q(k,l) = 0.5
          duac(k,l) = 0.0
10    CONTINUE
      DO 15 l = 1, lmax+1
        klo(l) = 2 + mod(l, 2)
        khi(l) = kmax - mod(l, 3)
15    CONTINUE
      END

C     The Fig 2-1 coarse-grain loop: spans four procedures.
      SUBROUTINE update
      COMMON /grid/ duac(42,42), u(42,42), v(42,42), p(42,42), q(42,42)
      COMMON /wrk/ dkrc(44), aif3(44), wrk1(44), wrk2(44)
      COMMON /scl/ kmax, lmax
      DO 1000 l = 2, lmax
        CALL period(l)
        CALL vmeos0(l)
        CALL vmeos1(l)
        CALL sesind(l)
        CALL sesgrd(l)
        CALL sesint(l)
        CALL srchdf(l)
        CALL ivsr(l)
1000  CONTINUE
      END

      SUBROUTINE period(l)
      COMMON /grid/ duac(42,42), u(42,42), v(42,42), p(42,42), q(42,42)
      COMMON /wrk/ dkrc(44), aif3(44), wrk1(44), wrk2(44)
      COMMON /scl/ kmax, lmax
C     wrk1 is written only where the flow limiter triggers; the reads are
C     guarded by the same condition, but the compiler cannot prove the
C     implication (the mdg/RL situation again).
      DO 20 k = 1, kmax
        IF (u(k,l) + v(k,l) .GT. 0.0) THEN
          wrk1(k) = p(k,l) * 0.5 + q(k,l) + u(k,l) * v(k,l) * 0.125
        ENDIF
20    CONTINUE
      DO 25 k = 1, kmax
        IF (u(k,l) + v(k,l) .GT. 0.0) THEN
          q(k,l) = wrk1(k) * 0.25 + q(k,l) * 0.75 - wrk1(k) * q(k,l) * 0.01
        ENDIF
25    CONTINUE
      END

      SUBROUTINE vmeos0(l)
      COMMON /grid/ duac(42,42), u(42,42), v(42,42), p(42,42), q(42,42)
      COMMON /scl/ kmax, lmax
      DO 30 k = 2, kmax
        ekin = u(k,l) * u(k,l) + v(k,l) * v(k,l)
        eth = q(k,l) * 2.5 + p(k,l) * 0.4
        p(k,l) = p(k,l) + 0.1 * ekin + 0.01 * eth
        q(k,l) = q(k,l) * 0.99 + eth * 0.002
30    CONTINUE
      END

      SUBROUTINE vmeos1(l)
      COMMON /grid/ duac(42,42), u(42,42), v(42,42), p(42,42), q(42,42)
      COMMON /scl/ kmax, lmax
      DO 40 k = 2, kmax
        grad = p(k,l) - p(k-1,l)
        u(k,l) = u(k,l) + 0.01 * grad + 0.001 * u(k,l) * grad
        v(k,l) = v(k,l) - 0.01 * grad + 0.001 * v(k,l) * grad
40    CONTINUE
      END

      SUBROUTINE sesind(l)
      COMMON /grid/ duac(42,42), u(42,42), v(42,42), p(42,42), q(42,42)
      COMMON /wrk/ dkrc(44), aif3(44), wrk1(44), wrk2(44)
      COMMON /scl/ kmax, lmax
      DO 50 k = 2, kmax
        wrk2(k) = p(k,l) - p(k-1,l) + q(k,l) * 0.01
        duac(k,l) = duac(k,l) + wrk2(k) * 0.5 + wrk2(k) * wrk2(k) * 0.01
50    CONTINUE
      END

      SUBROUTINE sesgrd(l)
      COMMON /grid/ duac(42,42), u(42,42), v(42,42), p(42,42), q(42,42)
      COMMON /scl/ kmax, lmax
      DO 52 k = 2, kmax
        grd = p(k,l) - p(k-1,l)
        u(k,l) = u(k,l) - grd * 0.004 + grd * grd * 0.0001
52    CONTINUE
      END

      SUBROUTINE sesint(l)
      COMMON /grid/ duac(42,42), u(42,42), v(42,42), p(42,42), q(42,42)
      COMMON /scl/ kmax, lmax
      DO 54 k = 2, kmax
        eint = q(k,l) * 2.5 + p(k,l) * 0.4
        q(k,l) = q(k,l) + eint * 0.001 - q(k,l) * q(k,l) * 0.0001
54    CONTINUE
      END

      SUBROUTINE srchdf(l)
      COMMON /grid/ duac(42,42), u(42,42), v(42,42), p(42,42), q(42,42)
      COMMON /scl/ kmax, lmax
      dfmax = 0.0
      DO 56 k = 2, kmax
        df = abs(u(k,l) - u(k-1,l))
        IF (df .GT. dfmax) dfmax = df
56    CONTINUE
      duac(1,l) = dfmax
      END

      SUBROUTINE ivsr(l)
      COMMON /grid/ duac(42,42), u(42,42), v(42,42), p(42,42), q(42,42)
      COMMON /scl/ kmax, lmax
      DO 58 k = 2, kmax
        v(k,l) = v(k,l) * 0.999 + u(k,l) * 0.001 + duac(k,l) * 0.0005
58    CONTINUE
      END

C     Fig 4-5 verbatim: loop-variant ranges from index arrays.
      SUBROUTINE vsetuv
      COMMON /grid/ duac(42,42), u(42,42), v(42,42), p(42,42), q(42,42)
      COMMON /wrk/ dkrc(44), aif3(44), wrk1(44), wrk2(44)
      COMMON /bnd/ klo(44), khi(44)
      COMMON /scl/ kmax, lmax
      DO 85 l = 2, lmax
        k1 = klo(l)
        k2 = khi(l)
        k1p1 = k1
        IF (k1 .EQ. 1) k1p1 = k1 + 1
        CALL init1(aif3(k1), k2 - k1 + 1)
        DO 60 k = k1, k2
          dkrc(k) = u(k,l) * 0.5 + aif3(k) + v(k,l) * 0.25
60      CONTINUE
        DO 80 k = k1p1, k2
          duac(k,l) = duac(k,l) + dkrc(k) + dkrc(k-1)
80      CONTINUE
85    CONTINUE
      DO 105 l = 2, lmax
        DO 90 k = 2, l
          dkrc(k) = v(k,l) - v(k-1,l) + u(k,l) * 0.01
90      CONTINUE
        DO 100 k = 2, l
          u(k,l) = u(k,l) + dkrc(k) * 0.125
100     CONTINUE
105   CONTINUE
      DO 155 l = 2, lmax
        DO 140 k = 2, l
          aif3(k) = q(k,l) * 0.5 + p(k,l) * 0.125
140     CONTINUE
        DO 150 k = 2, l
          v(k,l) = v(k,l) + aif3(k) * 0.0625
150     CONTINUE
155   CONTINUE
      END

      SUBROUTINE init1(qq, n)
      DIMENSION qq(*)
      DO 70 j = 1, n
        qq(j) = j * 0.001
70    CONTINUE
      END

C     Scratch row whose written region varies affinely with k: only
C     liveness (or the user) privatizes wrk2 here.
      SUBROUTINE vqterm
      COMMON /grid/ duac(42,42), u(42,42), v(42,42), p(42,42), q(42,42)
      COMMON /wrk/ dkrc(44), aif3(44), wrk1(44), wrk2(44)
      COMMON /scl/ kmax, lmax
      DO 85 k = 2, kmax
        DO 110 l = 2, k
          wrk2(l) = duac(k,l) * 0.5 + p(k,l) * 0.01
110     CONTINUE
        DO 115 l = 2, k
          q(k,l) = q(k,l) + wrk2(l) * 0.5
115     CONTINUE
85    CONTINUE
      END

      SUBROUTINE vsetgc
      COMMON /grid/ duac(42,42), u(42,42), v(42,42), p(42,42), q(42,42)
      COMMON /wrk/ dkrc(44), aif3(44), wrk1(44), wrk2(44)
      COMMON /scl/ kmax, lmax
      DO 200 l = 2, lmax
        DO 180 k = 1, kmax
          IF (p(k,l) .GT. 1.0) THEN
            wrk1(k) = p(k,l) - 1.0 + q(k,l) * 0.01
          ENDIF
180     CONTINUE
        DO 190 k = 1, kmax
          IF (p(k,l) .GT. 1.0) THEN
            duac(k,l) = duac(k,l) + wrk1(k) * 0.5
          ENDIF
190     CONTINUE
200   CONTINUE
      END

C     A genuine recurrence over l — "attempted without success".
      SUBROUTINE vh2200
      COMMON /grid/ duac(42,42), u(42,42), v(42,42), p(42,42), q(42,42)
      COMMON /scl/ kmax, lmax
      DO 1000 l = 2, lmax
        DO 210 k = 2, kmax
          q(k,l) = q(k,l) + q(k,l-1) * 0.25
210     CONTINUE
1000  CONTINUE
      END
"""

WORKLOAD = Workload(
    "hydro",
    "2-D Lagrangian hydrodynamics (Los Alamos) - section 4.2 case study",
    SOURCE,
    user_assertions=[
        # section 4.2.4: "SUIF Explorer parallelizes a total of 6 loops
        # after the user provides 25 assertions on privatization."
        Assertion("update/1000", "wrk1", "privatizable"),
        Assertion("vsetuv/85", "dkrc", "privatizable"),
        Assertion("vsetuv/85", "aif3", "privatizable"),
        Assertion("vsetuv/105", "dkrc", "privatizable"),
        Assertion("vsetuv/155", "aif3", "privatizable"),
        Assertion("vqterm/85", "wrk2", "privatizable"),
        Assertion("vsetgc/200", "wrk1", "privatizable"),
    ],
    paper={
        "lines": 12942,
        "auto_coverage": 0.86,
        "auto_speedup_8": 2.7,
        "auto_speedup_4": 2.4,
        "auto_granularity_ms": 0.3,
        "user_coverage": 0.94,
        "user_speedup_4": 3.2,
        "user_speedup_8": 4.3,
        "user_parallelized_loops": 6,
        "failed_loop": "vh2200/1000",
        "important_loops": 7,
    },
    tags=("chapter4", "chapter5"),
)
