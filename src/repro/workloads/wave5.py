"""wave5 — Maxwell's equations + particle push (SPEC95), chapter 5 only.

The paper uses wave5 to expose the precision ladder of the three liveness
variants (Fig 5-7: 3 % / 22 % / 32 % of modified variables dead at loop
exits for flow-insensitive / 1-bit / full; Fig 5-8: 0 / 15 / 19 dead
privatizable arrays).  The corresponding patterns here:

* *flow-insensitive killers*: every scratch array is **read by an earlier
  sibling region** (the diagnostic sweep at the top of each phase), so the
  order-blind variant believes it is live after every later loop,
* *1-bit killers*: phases communicate through **disjoint halves** of the
  shared field rows (particles write cells 1..n, the field solver later
  reads only cells n+1..2n), so whole-variable liveness sees a live
  variable where element-wise liveness sees a dead half,
* the newly privatizable loops are deliberately fine-grained, so the
  extra parallel loops change no speedup (paper: 1.0 before and after).
"""

from .base import Workload

SOURCE = """
      PROGRAM wave5
      COMMON /fld/ ex(400), ey(400), rho(400)
      COMMON /prt/ px(200), pv(200)
      COMMON /wk5/ cur(400), tmp(400), smt(400)
      COMMON /scw/ np, ng
      np = 60
      ng = 80
      CALL setup5
      DO 500 it = 1, 2
        CALL diag5
        CALL push5
        CALL field5
        PRINT *, ex(3), rho(3)
500   CONTINUE
      END

      SUBROUTINE setup5
      COMMON /fld/ ex(400), ey(400), rho(400)
      COMMON /prt/ px(200), pv(200)
      COMMON /scw/ np, ng
      DO 10 i = 1, np
        px(i) = i * 1.25
        pv(i) = 0.01 * i - 0.3
10    CONTINUE
      DO 20 i = 1, 2*ng
        ex(i) = 0.001 * i
        ey(i) = 0.5
        rho(i) = 0.0
20    CONTINUE
      END

C     Diagnostics first: reads the scratch arrays BEFORE the phases that
C     recompute them — harmless in program order, fatal to the
C     flow-insensitive liveness variant.
      SUBROUTINE diag5
      COMMON /wk5/ cur(400), tmp(400), smt(400)
      COMMON /scw/ np, ng
      dsum = 0.0
      DO 30 i = 1, ng
        dsum = dsum + cur(i) + tmp(i) + smt(i)
30    CONTINUE
      END

C     Particle push: deposits current into cur(1:ng) through scratch rows
C     that die at each loop exit.
      SUBROUTINE push5
      COMMON /fld/ ex(400), ey(400), rho(400)
      COMMON /prt/ px(200), pv(200)
      COMMON /wk5/ cur(400), tmp(400), smt(400)
      COMMON /scw/ np, ng
      DO 110 i = 1, ng
        cur(i) = 0.0
110   CONTINUE
      DO 120 ip = 1, np
        pv(ip) = pv(ip) + ex(1) * 0.01
        px(ip) = px(ip) + pv(ip) * 0.1
120   CONTINUE
      DO 140 i = 1, ng
        tmp(i) = rho(i) * 0.5 + ex(i) * 0.25
        rho(i) = tmp(i) + rho(i) * 0.5
140   CONTINUE
      DO 160 i = 1, ng
        smt(i) = rho(i) * 0.25 + cur(i)
        cur(i) = smt(i) * 0.5 + cur(i) * 0.5
160   CONTINUE
      END

C     Field solve: works on the UPPER half ex(ng+1:2*ng) — the lower half
C     written by the smoothing loops below is dead, but only element-wise
C     (full) liveness can tell.
      SUBROUTINE field5
      COMMON /fld/ ex(400), ey(400), rho(400)
      COMMON /wk5/ cur(400), tmp(400), smt(400)
      COMMON /scw/ np, ng
      DO 210 i = 1, ng
        tmp(i) = ex(i) * 0.5
        ex(i) = tmp(i) + cur(i) * 0.125
210   CONTINUE
      DO 230 i = 1, ng
        smt(i) = ey(i) * 0.5 + rho(i) * 0.25
        ey(i) = smt(i) * 0.75 + ey(i) * 0.25
230   CONTINUE
      DO 250 i = ng+1, 2*ng
        ex(i) = ex(i) * 0.9 + ey(i) * 0.1
250   CONTINUE
      DO 270 i = 1, ng
        tmp(i) = ex(ng+i) * 0.5
        ey(ng+i) = tmp(i) + ey(ng+i) * 0.5
270   CONTINUE
      END
"""

WORKLOAD = Workload(
    "wave5",
    "Maxwell equations + particle equations of motion (SPEC95) - ch. 5",
    SOURCE,
    paper={
        "lines": 7764,
        "loops": 361,
        "modified_vars": 668,
        "dead_pct": {"flow_insensitive": 0.03, "one_bit": 0.22,
                     "full": 0.32},
        "dead_private": {"flow_insensitive": 0, "one_bit": 15, "full": 19},
        "parallel_loops_gained": {"flow_insensitive": 0, "one_bit": 9,
                                  "full": 12},
        "speedup_4": 1.0,
    },
    tags=("chapter5",),
)
