"""bdna — molecular dynamics of DNA (Perfect Club), chapter 6's running
example for array-reduction implementation.

* ``actfor/240`` — the section 6.3.3 region reduction: inside a loop over
  solvent groups, forces accumulate into ``FAX(1:NATOMS)``, a small prefix
  of a 2000-element array; the *minimized-region* lowering initializes and
  finalizes only the touched prefix.
* ``scatter/60`` — the section 6.3.5 sparse update
  ``FOX(IND(J)) = FOX(IND(J)) + FOXP(J)``: an indirect reduction through
  an index array, unanalyzable by dependence testing yet parallelizable by
  reduction recognition (with per-element locking as one lowering choice).
"""

from .base import Workload

SOURCE = """
      PROGRAM bdna
      COMMON /frc/ fax(2000), fay(2000), fox(2000)
      COMMON /ind/ ind(500), foxp(500)
      COMMON /scb/ nsp, natoms, l
      nsp = 40
      natoms = 60
      l = 300
      CALL setupb
      DO 900 it = 1, 2
        CALL actfor
        CALL scatter
        PRINT *, fax(3), fox(5)
900   CONTINUE
      END

      SUBROUTINE setupb
      COMMON /frc/ fax(2000), fay(2000), fox(2000)
      COMMON /ind/ ind(500), foxp(500)
      COMMON /scb/ nsp, natoms, l
      DO 10 i = 1, 2000
        fax(i) = 0.0
        fay(i) = 0.0
        fox(i) = 0.0
10    CONTINUE
      DO 20 j = 1, l
        ind(j) = mod(j * 7, 97) + 1
        foxp(j) = j * 0.001
20    CONTINUE
      END

C     Region reduction: FAX/FAY updated only on (1:NATOMS) — the
C     minimized-region lowering beats the naive whole-array one.
      SUBROUTINE actfor
      COMMON /frc/ fax(2000), fay(2000), fox(2000)
      COMMON /scb/ nsp, natoms, l
      DO 240 i = 1, nsp
        DO 230 ia = 1, natoms
          gx = i * 0.01 + ia * 0.002
          gy = i * 0.002 - ia * 0.001
          gg = gx * gx + gy * gy + 0.5
          fax(ia) = fax(ia) + gx / gg
          fay(ia) = fay(ia) + gy / gg
230     CONTINUE
240   CONTINUE
      END

C     Sparse (indirect) reduction through an index array.
      SUBROUTINE scatter
      COMMON /frc/ fax(2000), fay(2000), fox(2000)
      COMMON /ind/ ind(500), foxp(500)
      COMMON /scb/ nsp, natoms, l
      DO 60 j = 1, l
        fox(ind(j)) = fox(ind(j)) + foxp(j)
60    CONTINUE
      END
"""

WORKLOAD = Workload(
    "bdna",
    "DNA molecular dynamics (Perfect Club) - reduction lowering, ch. 6",
    SOURCE,
    paper={
        "lines": 3980,
        "region_reduction_loop": "actfor/240",
        "sparse_reduction_loop": "scatter/60",
    },
    tags=("chapter6", "perfect", "reduction"),
)
