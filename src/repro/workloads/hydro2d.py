"""hydro2d — astrophysical Navier-Stokes (SPEC92), sections 5.3 / 5.5.

The Fig 5-9 structure, verbatim: the COMMON block ``/varh/`` is viewed as
``vz(mp,np)`` by ``tistep``/``vps`` and as ``vz1(0:mp,np)`` by
``trans2``/``fct`` — two differently-shaped aliases with **disjoint live
ranges** ("trans2 writes vz1 which is then read by fct, and vps writes vz
which is then read by tistep in the next iteration").  The full liveness
analysis proves the ranges disjoint, enabling the common-block split of
Fig 5-10; the weaker top-down variants cannot ("finding that the variable
vz is upwardly exposed at the beginning of the loop body of Loop/100, the
weaker top-down phases cannot tell that the subroutine vps kills the live
section of vz").

Two more split candidates (/varg/, /varf/) follow the same pattern, and a
non-splittable control block (/varc/) carries genuine cross-shape flow as
a negative case.  hydro2d has dead variables but no privatizable arrays
(Fig 5-8 row: zero improved loops).
"""

from .base import Workload

SOURCE = """
      PROGRAM hydro2d
      COMMON /varh/ vz(130,130)
      COMMON /varg/ vg(120,120)
      COMMON /varf/ vf(110,110)
      COMMON /varc/ vc(100,100)
      COMMON /varn/ vn(80,80)
      COMMON /sc2/ mp, np2
      mp = 48
      np2 = 48
      CALL start2d
      DO 100 icnt = 1, 2
        CALL tistep
        CALL advnce
        CALL check
        PRINT *, vz(3,3)
100   CONTINUE
      END

      SUBROUTINE start2d
      COMMON /varh/ vz(130,130)
      COMMON /varc/ vc(100,100)
      COMMON /sc2/ mp, np2
      DO 10 j = 1, np2
        DO 10 i = 1, mp
          vz(i,j) = i * 0.01 + j * 0.001
          vc(i,j) = 0.5
10    CONTINUE
      END

C     Reads vz (written by vps in the previous cycle).
      SUBROUTINE tistep
      COMMON /varh/ vz(130,130)
      COMMON /varc/ vc(100,100)
      COMMON /varn/ vn(80,80)
      COMMON /sc2/ mp, np2
      dt = 0.0
      DO 20 j = 1, np2
        DO 20 i = 1, mp
          IF (vz(i,j) .GT. dt) dt = vz(i,j)
          vc(i,j) = vc(i,j) + vz(i,j) * 0.001
20    CONTINUE
C     vn genuinely flows across shapes: written here as vn, read in fct
C     through the vn1 view — /varn/ must NOT be split.
      DO 22 i = 1, mp
        vn(i,1) = vc(i,1) * 0.5
22    CONTINUE
C     Ghost cells: written every cycle, never read — dead element-wise,
C     invisible to whole-variable (1-bit) liveness because the rest of
C     /varh/ stays live.
      DO 25 i = 1, mp
        vz(i,np2+2) = vz(i,np2) * 0.5
25    CONTINUE
      END

      SUBROUTINE advnce
      COMMON /sc2/ mp, np2
      CALL trans2
      CALL fct
      END

C     Writes the vz1-shaped view of /varh/ (and /varg/, /varf/ views).
      SUBROUTINE trans2
      COMMON /varh/ vz1(0:130,129)
      COMMON /varg/ vg1(0:120,119)
      COMMON /varf/ vf1(0:110,109)
      COMMON /varc/ vc(100,100)
      COMMON /sc2/ mp, np2
      DO 30 j = 1, np2
        DO 30 i = 1, mp
          vz1(i,j) = vc(i,j) * 0.5 + i * 0.001
          vg1(i,j) = vc(i,j) * 0.25 - j * 0.001
          vf1(i,j) = vc(i,j) * 0.125
30    CONTINUE
      END

C     Consumes vz1 within the same cycle; vz1 dies here.
      SUBROUTINE fct
      COMMON /varh/ vz1(0:130,129)
      COMMON /varg/ vg1(0:120,119)
      COMMON /varf/ vf1(0:110,109)
      COMMON /varc/ vc(100,100)
      COMMON /varn/ vn1(0:80,79)
      COMMON /sc2/ mp, np2
      DO 40 j = 1, np2
        DO 40 i = 1, mp
          vc(i,j) = vc(i,j) + vz1(i,j) * 0.1 + vg1(i,j) * 0.05
          vc(i,j) = vc(i,j) + vf1(i,j) * 0.025
40    CONTINUE
C     Cross-shape consumer of tistep's vn writes (storage overlap).
      DO 42 i = 1, mp
        vc(i,2) = vc(i,2) + vn1(i,1) * 0.01
42    CONTINUE
      DO 45 i = 1, mp
        vz1(i,np2+1) = vz1(i,np2) * 0.25
45    CONTINUE
      END

      SUBROUTINE check
      COMMON /sc2/ mp, np2
      CALL vps
      END

C     Rewrites the vz-shaped view for the next cycle's tistep.
      SUBROUTINE vps
      COMMON /varh/ vz(130,130)
      COMMON /varg/ vg(120,120)
      COMMON /varf/ vf(110,110)
      COMMON /varc/ vc(100,100)
      COMMON /sc2/ mp, np2
      DO 50 j = 1, np2
        DO 50 i = 1, mp
          vz(i,j) = vc(i,j) * 0.75
          vg(i,j) = vc(i,j) * 0.5
          vf(i,j) = vc(i,j) * 0.25
50    CONTINUE
C     More ghost writes (dead element-wise only).
      DO 55 i = 1, mp
        vg(i,np2+2) = vg(i,np2) * 0.5
        vf(i,np2+2) = vf(i,np2) * 0.5
55    CONTINUE
      END
"""

WORKLOAD = Workload(
    "hydro2d",
    "Astrophysical Navier-Stokes (SPEC92) - common-block splitting, ch. 5",
    SOURCE,
    paper={
        "lines": 4461,
        "loops": 155,
        "modified_vars": 287,
        "dead_pct": {"flow_insensitive": 0.01, "one_bit": 0.05,
                     "full": 0.18},
        "common_splits": 5,
        "speedup_before_splits": 2.6,
        "speedup_after_splits": 2.8,
    },
    tags=("chapter5", "split"),
)
