"""Benchmark corpus: miniatures of the paper's evaluation programs."""

from .base import Workload
from .corpus import ALL, CHAPTER4, CHAPTER5, CHAPTER6, by_tag, get

__all__ = ["Workload", "ALL", "CHAPTER4", "CHAPTER5", "CHAPTER6",
           "by_tag", "get"]
