"""Benchmark corpus: miniatures of the paper's evaluation programs,
plus lazily-resolved generated entries (``synth/s<seed>-<profile>``)."""

from .base import Workload
from .corpus import (ALL, CHAPTER4, CHAPTER5, CHAPTER6, by_tag, get,
                     register_lazy)

__all__ = ["Workload", "ALL", "CHAPTER4", "CHAPTER5", "CHAPTER6",
           "by_tag", "get", "register_lazy"]
