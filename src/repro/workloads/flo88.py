"""flo88 — transonic wing-body flow (Stanford CIT), sections 4.x / 5.6.

Faithful structures:

* ``psmoo/50``, ``psmoo/100``, ``psmoo/150`` — the Fig 5-4 smoothing
  loops: each outer k-iteration initializes a row of the temporary ``d``,
  runs a forward recurrence producing ``t``/``d``, and applies the result.
  Loop bounds mix ``il`` and ``ie``, two scalars read *separately* from
  the input, so the compiler cannot know ``ie = il + 1`` ("the user needs
  to know the relationship between the scalar IE and the scalar IL in
  order to privatize the arrays in the loop psmoo/50", section 4.4.1).
* ``dflux/30``, ``dflux/50``, ``dflux/70``, ``eflux/50`` — flux loops with
  conditionally-written scratch rows (user-privatized).
* Large 2-D temporaries ``d``/``t`` dominate the working set: the program
  is memory-bound and barely scales until **array contraction**
  (section 5.6) shrinks them — ``build_fused()`` returns the
  post-affine-partitioning form of Fig 5-11(b) on which
  ``contract_in_program`` performs the 5-11(c) rewrite.

Inputs: ``il`` and ``ie`` are read from input (4 values: il, ie, jl, kl).
"""

from ..parallelize.parallelizer import Assertion
from .base import Workload

_COMMONS = """
      COMMON /flow/ w(64,64,33), p2(64,64,33)
      COMMON /fl2/ radi(64,64,33)
      COMMON /scr/ fs(66), gs(66)
      COMMON /scl2/ il, ie, jl, kl
"""

_MAIN = """
      PROGRAM flo88
""" + _COMMONS + """
      READ *, il
      READ *, ie
      READ *, jl
      READ *, kl
      CALL initw
      DO 900 ncyc = 1, 2
        CALL psmoo
        CALL dflux
        CALL eflux
        PRINT *, w(3,3,1)
900   CONTINUE
      END

      SUBROUTINE initw
""" + _COMMONS + """
      DO 10 k = 1, kl
        DO 10 j = 1, jl+2
          DO 10 i = 1, ie+2
            w(i,j,k) = i * 0.01 + j * 0.002 + k * 0.1
            p2(i,j,k) = 1.0 + i * 0.0001
            radi(i,j,k) = 0.5 + j * 0.0003
10    CONTINUE
      END
"""

_PSMOO_ORIGINAL = """
C     Fig 5-4: vector-style smoothing with 2-D temporaries.
      SUBROUTINE psmoo
""" + _COMMONS + """
      DIMENSION d(385,385), t(385,385)
      DO 50 k = 2, kl
        DO 20 j = 2, jl
          d(1,j) = 0.0
20      CONTINUE
        DO 30 i = 2, il
          DO 30 j = 2, jl
            cfl = 0.25 + 0.01 * i - 0.002 * j
            cfl = cfl * cfl * 0.5 + cfl * 0.25 + 0.125
            eps = cfl * 0.3 + 0.07
            eps = eps * eps + cfl * eps * 0.5
            t(i,j) = d(i-1,j) * cfl + w(i,j,k) * radi(i,j,k)
            d(i,j) = t(i,j) * eps + p2(i,j,k) * 0.125
30      CONTINUE
        DO 40 i = 2, ie-1
          DO 40 j = 2, jl
            w(i,j,k) = w(i,j,k) + d(i,j) * 0.125 - t(i,j) * 0.0625
40      CONTINUE
50    CONTINUE
      DO 100 k = 2, kl
        DO 60 j = 2, jl
          d(1,j) = 0.0
60      CONTINUE
        DO 70 i = 2, il
          DO 70 j = 2, jl
            cfl = 0.2 + 0.005 * i + 0.001 * j
            cfl = cfl * cfl * 0.4 + cfl * 0.2 + 0.1
            eps = cfl * 0.25 + 0.05
            eps = eps * eps + cfl * eps * 0.4
            t(i,j) = d(i-1,j) * cfl + p2(i,j,k) * radi(i,j,k)
            d(i,j) = t(i,j) * eps + w(i,j,k) * 0.1
70      CONTINUE
        DO 80 i = 2, ie-1
          DO 80 j = 2, jl
            p2(i,j,k) = p2(i,j,k) + d(i,j) * 0.0625
80      CONTINUE
100   CONTINUE
      DO 150 k = 2, kl
        DO 110 j = 2, jl
          d(1,j) = 0.0
110     CONTINUE
        DO 120 i = 2, il
          DO 120 j = 2, jl
            cfl = 0.3 + 0.002 * i - 0.001 * j
            cfl = cfl * cfl * 0.6 + cfl * 0.3 + 0.05
            eps = cfl * 0.2 + 0.04
            eps = eps * eps + cfl * eps * 0.3
            t(i,j) = d(i-1,j) * cfl + w(i,j,k) * 0.05
            d(i,j) = t(i,j) * eps + radi(i,j,k) * 0.01
120     CONTINUE
        DO 130 i = 2, ie-1
          DO 130 j = 2, jl
            radi(i,j,k) = radi(i,j,k) + d(i,j) * 0.03125
130     CONTINUE
150   CONTINUE
      END
"""

_PSMOO_FUSED = """
C     Fig 5-11(b): after affine partitioning the j loop is outermost and
C     all operations on column j happen in its iteration; the temporaries
C     are then contractible (d -> d(i), t -> scalar).
      SUBROUTINE psmoo
""" + _COMMONS + """
      DIMENSION d(385,385), t(385,385)
      DO 50 k = 2, kl
        DO 50 j = 2, jl
          d(1,j) = 0.0
          DO 30 i = 2, il
            t(i,j) = d(i-1,j) * 0.25 + w(i,j,k) * radi(i,j,k)
            d(i,j) = t(i,j) * 0.5 + p2(i,j,k) * 0.125
30        CONTINUE
          DO 40 i = 2, il
            w(i,j,k) = w(i,j,k) + d(i,j) * 0.125
40        CONTINUE
50    CONTINUE
      DO 100 k = 2, kl
        DO 100 j = 2, jl
          d(1,j) = 0.0
          DO 70 i = 2, il
            t(i,j) = d(i-1,j) * 0.2 + p2(i,j,k) * radi(i,j,k)
            d(i,j) = t(i,j) * 0.4 + w(i,j,k) * 0.1
70        CONTINUE
          DO 80 i = 2, il
            p2(i,j,k) = p2(i,j,k) + d(i,j) * 0.0625
80        CONTINUE
100   CONTINUE
      END
"""

_FLUXES = """
      SUBROUTINE dflux
""" + _COMMONS + """
      DO 30 j = 2, jl
        DO 10 i = 2, il
          IF (w(i,j,1) .GT. 0.0) THEN
            fs(i) = w(i,j,1) - w(i-1,j,1) + p2(i,j,1) * 0.01
          ENDIF
10      CONTINUE
        DO 20 i = 2, il
          IF (w(i,j,1) .GT. 0.0) THEN
            w(i,j,1) = w(i,j,1) + fs(i) * 0.05
          ENDIF
20      CONTINUE
30    CONTINUE
      DO 50 j = 2, jl
        DO 35 i = 2, il
          IF (p2(i,j,1) .GT. 1.0) THEN
            fs(i) = p2(i,j,1) - p2(i-1,j,1)
          ENDIF
35      CONTINUE
        DO 45 i = 2, il
          IF (p2(i,j,1) .GT. 1.0) THEN
            p2(i,j,1) = p2(i,j,1) + fs(i) * 0.025
          ENDIF
45      CONTINUE
50    CONTINUE
      DO 70 j = 2, jl
        DO 55 i = 2, il
          IF (radi(i,j,1) .GT. 0.5) THEN
            gs(i) = radi(i,j,1) * 0.5 - radi(i-1,j,1) * 0.25
          ENDIF
55      CONTINUE
        DO 65 i = 2, il
          IF (radi(i,j,1) .GT. 0.5) THEN
            radi(i,j,1) = radi(i,j,1) + gs(i) * 0.125
          ENDIF
65      CONTINUE
70    CONTINUE
      END

      SUBROUTINE eflux
""" + _COMMONS + """
      DO 50 j = 2, jl
        DO 42 i = 2, il
          IF (w(i,j,2) .GT. 0.0) THEN
            fs(i) = w(i,j,2) * 0.5 + w(i+1,j,2) * 0.5
            gs(i) = p2(i,j,2) * 0.5 + p2(i+1,j,2) * 0.5
          ENDIF
42      CONTINUE
        DO 48 i = 2, ie-1
          IF (w(i,j,2) .GT. 0.0) THEN
            w(i,j,2) = w(i,j,2) - fs(i) * 0.01 + gs(i) * 0.005
          ENDIF
48      CONTINUE
50    CONTINUE
      END
"""

SOURCE = _MAIN + _PSMOO_ORIGINAL + _FLUXES
SOURCE_FUSED = _MAIN + _PSMOO_FUSED + _FLUXES

INPUTS = [24.0, 25.0, 16.0, 33.0]         # il, ie, jl, kl

USER_ASSERTIONS = [
    # section 4.4.1: privatizing psmoo's temporaries requires IE = IL + 1.
    Assertion("psmoo/50", "d", "privatizable"),
    Assertion("psmoo/50", "t", "privatizable"),
    Assertion("psmoo/100", "d", "privatizable"),
    Assertion("psmoo/100", "t", "privatizable"),
    Assertion("psmoo/150", "d", "privatizable"),
    Assertion("psmoo/150", "t", "privatizable"),
    Assertion("dflux/30", "fs", "privatizable"),
    Assertion("dflux/50", "fs", "privatizable"),
    Assertion("dflux/70", "gs", "privatizable"),
    Assertion("eflux/50", "fs", "privatizable"),
    Assertion("eflux/50", "gs", "privatizable"),
]

WORKLOAD = Workload(
    "flo88",
    "Wing-body transonic flow (Stanford CIT) - sections 4.x and 5.6",
    SOURCE,
    inputs=INPUTS,
    user_assertions=USER_ASSERTIONS,
    paper={
        "lines": 7438,
        "auto_coverage": 0.81,
        "auto_speedup_8": 1.0,
        "user_coverage": 0.98,
        "user_speedup_4": 3.1,
        "user_speedup_8": 5.5,
        "user_parallelized_loops": 7,
        "contraction_speedup_before_32": 6.3,
        "contraction_speedup_after_32": 19.6,
    },
    tags=("chapter4", "chapter5", "contraction"),
)

WORKLOAD_FUSED = Workload(
    "flo88_fused",
    "flo88 after affine partitioning (Fig 5-11b) - contraction input",
    SOURCE_FUSED,
    inputs=INPUTS,
    user_assertions=USER_ASSERTIONS,
    paper=WORKLOAD.paper,
    tags=("chapter5", "contraction"),
)
