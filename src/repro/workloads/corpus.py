"""The workload registry: every benchmark program the benches draw on."""

from typing import Dict, List

from . import (arc3d, bdna, flo88, hydro, hydro2d, mdg, nas_perfect,
               spec_kernels, wave5)
from .base import Workload

CHAPTER4: List[Workload] = [
    mdg.WORKLOAD, arc3d.WORKLOAD, hydro.WORKLOAD, flo88.WORKLOAD,
]

CHAPTER5: List[Workload] = [
    hydro.WORKLOAD, flo88.WORKLOAD, arc3d.WORKLOAD, wave5.WORKLOAD,
    hydro2d.WORKLOAD,
]

CHAPTER6: List[Workload] = ([bdna.WORKLOAD] + spec_kernels.WORKLOADS
                            + nas_perfect.WORKLOADS)

ALL: Dict[str, Workload] = {}
for _w in (CHAPTER4 + CHAPTER5 + CHAPTER6
           + [flo88.WORKLOAD_FUSED]):
    ALL[_w.name] = _w


def get(name: str) -> Workload:
    try:
        return ALL[name]
    except KeyError:
        raise KeyError(f"unknown workload {name!r}; choose from "
                       f"{', '.join(sorted(ALL))}") from None


def by_tag(tag: str) -> List[Workload]:
    return [w for w in ALL.values() if tag in w.tags]
