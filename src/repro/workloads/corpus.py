"""The workload registry: every benchmark program the benches draw on.

Two tiers of registration:

* **eager** — the hand-built paper miniatures in :data:`ALL`, defined at
  module import (27 programs; cheap, pure source text).
* **lazy** — generated entries resolved on first :func:`get`.  A
  ``register_lazy(name, factory)`` entry materializes once and is cached;
  ``synth/s<seed>-<profile>`` names resolve through the synth factory
  without the registry importing :mod:`repro.workloads.synth` (or running
  any generation) until such a name is actually requested.  This keeps
  ``import repro.workloads`` fast and side-effect-free — there is a
  regression test on exactly that.
"""

from typing import Callable, Dict, List

from . import (arc3d, bdna, flo88, hydro, hydro2d, mdg, nas_perfect,
               spec_kernels, wave5)
from .base import Workload

CHAPTER4: List[Workload] = [
    mdg.WORKLOAD, arc3d.WORKLOAD, hydro.WORKLOAD, flo88.WORKLOAD,
]

CHAPTER5: List[Workload] = [
    hydro.WORKLOAD, flo88.WORKLOAD, arc3d.WORKLOAD, wave5.WORKLOAD,
    hydro2d.WORKLOAD,
]

CHAPTER6: List[Workload] = ([bdna.WORKLOAD] + spec_kernels.WORKLOADS
                            + nas_perfect.WORKLOADS)

ALL: Dict[str, Workload] = {}
for _w in (CHAPTER4 + CHAPTER5 + CHAPTER6
           + [flo88.WORKLOAD_FUSED]):
    ALL[_w.name] = _w

#: name -> zero-arg factory; materialized entries move to _MATERIALIZED.
_LAZY: Dict[str, Callable[[], Workload]] = {}
_MATERIALIZED: Dict[str, Workload] = {}

_SYNTH_PREFIX = "synth/"


def register_lazy(name: str, factory: Callable[[], Workload]) -> None:
    """Register a workload that is built on first lookup.  The factory
    runs at most once; its result is cached for the process lifetime."""
    if name in ALL:
        raise ValueError(f"workload {name!r} is already registered "
                         "eagerly")
    _LAZY[name] = factory


def get(name: str) -> Workload:
    try:
        return ALL[name]
    except KeyError:
        pass
    try:
        return _MATERIALIZED[name]
    except KeyError:
        pass
    factory = _LAZY.get(name)
    if factory is not None:
        w = factory()
        _MATERIALIZED[name] = w
        return w
    if name.startswith(_SYNTH_PREFIX):
        # deferred import: pulling in the generator (and its IR /
        # parallelizer / runtime deps) only when a synth name is asked
        from . import synth
        return synth.from_name(name)  # LRU-bounded in synth
    raise KeyError(f"unknown workload {name!r}; choose from "
                   f"{', '.join(sorted(ALL))} or a lazy/synth name "
                   f"(synth/s<seed>-<profile>)")


def by_tag(tag: str) -> List[Workload]:
    return [w for w in ALL.values() if tag in w.tags]
