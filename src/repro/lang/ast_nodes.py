"""Abstract syntax tree for the mini-Fortran language.

The AST is purely syntactic: names are unresolved strings, GOTOs are still
gotos, and array references are indistinguishable from intrinsic calls
(Fortran's classic `a(i)` ambiguity).  Lowering to the resolved IR happens
in :mod:`repro.ir.builder`.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from .errors import SourceLocation


class Node:
    """Base AST node; every node records its source location."""

    __slots__ = ("loc",)

    def __init__(self, loc: SourceLocation):
        self.loc = loc


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------

class Expr(Node):
    __slots__ = ()


class NumLit(Expr):
    __slots__ = ("value",)

    def __init__(self, value, loc: SourceLocation):
        super().__init__(loc)
        self.value = value

    def __repr__(self):
        return f"NumLit({self.value})"


class StrLit(Expr):
    __slots__ = ("value",)

    def __init__(self, value: str, loc: SourceLocation):
        super().__init__(loc)
        self.value = value

    def __repr__(self):
        return f"StrLit({self.value!r})"


class BoolLit(Expr):
    __slots__ = ("value",)

    def __init__(self, value: bool, loc: SourceLocation):
        super().__init__(loc)
        self.value = value

    def __repr__(self):
        return f"BoolLit({self.value})"


class Name(Expr):
    """A bare identifier — scalar variable or array name."""

    __slots__ = ("ident",)

    def __init__(self, ident: str, loc: SourceLocation):
        super().__init__(loc)
        self.ident = ident

    def __repr__(self):
        return f"Name({self.ident})"


class Apply(Expr):
    """``name(arg, ...)`` — array reference *or* intrinsic function call;
    disambiguated during IR building from the declared symbols."""

    __slots__ = ("ident", "args")

    def __init__(self, ident: str, args: Sequence[Expr], loc: SourceLocation):
        super().__init__(loc)
        self.ident = ident
        self.args = list(args)

    def __repr__(self):
        return f"Apply({self.ident}, {self.args})"


class BinOp(Expr):
    """Binary operation.  ``op`` is one of
    ``+ - * / ** < <= > >= == /= and or``."""

    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Expr, right: Expr, loc: SourceLocation):
        super().__init__(loc)
        self.op = op
        self.left = left
        self.right = right

    def __repr__(self):
        return f"BinOp({self.op}, {self.left}, {self.right})"


class UnOp(Expr):
    """Unary ``-`` or ``not``."""

    __slots__ = ("op", "operand")

    def __init__(self, op: str, operand: Expr, loc: SourceLocation):
        super().__init__(loc)
        self.op = op
        self.operand = operand

    def __repr__(self):
        return f"UnOp({self.op}, {self.operand})"


class RangeArg(Expr):
    """``lo:hi`` inside a declaration dimension or section expression."""

    __slots__ = ("low", "high")

    def __init__(self, low: Optional[Expr], high: Optional[Expr],
                 loc: SourceLocation):
        super().__init__(loc)
        self.low = low
        self.high = high

    def __repr__(self):
        return f"RangeArg({self.low}, {self.high})"


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------

class Stmt(Node):
    __slots__ = ("label",)

    def __init__(self, loc: SourceLocation, label: Optional[int] = None):
        super().__init__(loc)
        self.label = label


class Assign(Stmt):
    __slots__ = ("target", "value")

    def __init__(self, target: Expr, value: Expr, loc, label=None):
        super().__init__(loc, label)
        self.target = target
        self.value = value


class CallStmt(Stmt):
    __slots__ = ("name", "args")

    def __init__(self, name: str, args: Sequence[Expr], loc, label=None):
        super().__init__(loc, label)
        self.name = name
        self.args = list(args)


class DoLoop(Stmt):
    """``DO [termlabel] var = low, high [, step]`` with its body.

    ``term_label`` is the label of the terminating CONTINUE for
    label-terminated loops (None for ``ENDDO`` form); it gives loops their
    paper-style names like ``interf/1000``.
    """

    __slots__ = ("var", "low", "high", "step", "body", "term_label")

    def __init__(self, var: str, low: Expr, high: Expr, step: Optional[Expr],
                 body: List[Stmt], term_label: Optional[int], loc, label=None):
        super().__init__(loc, label)
        self.var = var
        self.low = low
        self.high = high
        self.step = step
        self.body = body
        self.term_label = term_label


class IfBlock(Stmt):
    """Block IF: list of (condition, body) arms plus optional else body."""

    __slots__ = ("arms", "else_body")

    def __init__(self, arms: List[Tuple[Expr, List[Stmt]]],
                 else_body: Optional[List[Stmt]], loc, label=None):
        super().__init__(loc, label)
        self.arms = arms
        self.else_body = else_body


class LogicalIf(Stmt):
    """One-line ``IF (cond) stmt``."""

    __slots__ = ("cond", "stmt")

    def __init__(self, cond: Expr, stmt: Stmt, loc, label=None):
        super().__init__(loc, label)
        self.cond = cond
        self.stmt = stmt


class Goto(Stmt):
    __slots__ = ("target",)

    def __init__(self, target: int, loc, label=None):
        super().__init__(loc, label)
        self.target = target


class Continue(Stmt):
    """A (possibly labeled) CONTINUE — a no-op that can end a DO loop."""
    __slots__ = ()


class Return(Stmt):
    __slots__ = ()


class Stop(Stmt):
    __slots__ = ()


class ExitStmt(Stmt):
    __slots__ = ()


class CycleStmt(Stmt):
    __slots__ = ()


class IoStmt(Stmt):
    """PRINT or READ.  I/O pins a loop sequential (paper section 2.6)."""

    __slots__ = ("kind", "items")

    def __init__(self, kind: str, items: Sequence[Expr], loc, label=None):
        super().__init__(loc, label)
        self.kind = kind          # "print" | "read"
        self.items = list(items)


# ---------------------------------------------------------------------------
# Declarations & program units
# ---------------------------------------------------------------------------

class ArrayDecl:
    """``name(d1, d2, ...)`` in DIMENSION/type/COMMON statements.

    Each dim is ``(low, high)`` of optional Exprs; ``(None, None)`` means an
    assumed-size ``*`` dimension; scalar declarations have no dims.
    """

    __slots__ = ("name", "dims", "loc")

    def __init__(self, name: str,
                 dims: List[Tuple[Optional[Expr], Optional[Expr]]],
                 loc: SourceLocation):
        self.name = name
        self.dims = dims
        self.loc = loc

    @property
    def is_array(self) -> bool:
        return bool(self.dims)


class Declaration(Node):
    """A specification statement."""

    __slots__ = ("kind", "type_name", "common_name", "entries", "params")

    def __init__(self, kind: str, loc: SourceLocation, *,
                 type_name: str = "", common_name: str = "",
                 entries: Optional[List[ArrayDecl]] = None,
                 params: Optional[List[Tuple[str, Expr]]] = None):
        super().__init__(loc)
        self.kind = kind                # "type" | "dimension" | "common" | "parameter"
        self.type_name = type_name      # "integer" | "real" for kind=="type"
        self.common_name = common_name
        self.entries = entries or []
        self.params = params or []


class Unit(Node):
    """A PROGRAM or SUBROUTINE unit."""

    __slots__ = ("kind", "name", "params", "decls", "body")

    def __init__(self, kind: str, name: str, params: List[str],
                 decls: List[Declaration], body: List[Stmt],
                 loc: SourceLocation):
        super().__init__(loc)
        self.kind = kind                # "program" | "subroutine"
        self.name = name
        self.params = params
        self.decls = decls
        self.body = body


class SourceFile(Node):
    __slots__ = ("units",)

    def __init__(self, units: List[Unit], loc: SourceLocation):
        super().__init__(loc)
        self.units = units
