"""Mini-Fortran front end: lexer, AST, parser."""

from .errors import BuildError, FrontEndError, LexError, ParseError, \
    SourceLocation
from .lexer import Token, tokenize
from .parser import parse_source

__all__ = [
    "BuildError", "FrontEndError", "LexError", "ParseError",
    "SourceLocation", "Token", "tokenize", "parse_source",
]
