"""Recursive-descent parser for the mini-Fortran language.

Produces a :class:`repro.lang.ast_nodes.SourceFile`.  Notable Fortran-isms
supported because the paper's example codes use them:

* label-terminated DO loops (``DO 100 I = 1, N ... 100 CONTINUE``),
  including several nested loops sharing one terminating label
  (``DO 30 I ... DO 30 J ... 30 CONTINUE`` as in flo88's psmoo),
* one-line logical IF (``IF (K .EQ. 0) GO TO 85``),
* COMMON blocks with per-unit shapes (hydro2d's vz/vz1 aliasing),
* dotted relational/logical operators.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from . import ast_nodes as ast
from .errors import ParseError, SourceLocation
from .lexer import (EOF, FLOAT, IDENT, INT, KW, LABEL, NEWLINE, OP, STRING,
                    Token, tokenize)

_DECL_KEYWORDS = {"integer", "real", "dimension", "common", "parameter"}

# Intrinsics are parsed as Apply and classified later by the IR builder.
INTRINSICS = {
    "min", "max", "abs", "mod", "sqrt", "exp", "log", "sin", "cos",
    "float", "int", "sign", "iabs", "amin1", "amax1", "min0", "max0",
}


class Parser:
    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.pos = 0
        # Set when a shared-label DO terminator has just been consumed, so
        # enclosing loops with the same terminating label also close.
        self._just_closed_label: Optional[int] = None

    # -- token plumbing -----------------------------------------------------
    def _peek(self, offset: int = 0) -> Token:
        i = self.pos + offset
        return self.tokens[min(i, len(self.tokens) - 1)]

    def _advance(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind != EOF:
            self.pos += 1
        return tok

    def _check(self, kind: str, value=None) -> bool:
        tok = self._peek()
        if tok.kind != kind:
            return False
        return value is None or tok.value == value

    def _accept(self, kind: str, value=None) -> Optional[Token]:
        if self._check(kind, value):
            return self._advance()
        return None

    def _expect(self, kind: str, value=None) -> Token:
        if not self._check(kind, value):
            tok = self._peek()
            want = value if value is not None else kind
            raise ParseError(f"expected {want!r}, found {tok.value!r}", tok.loc)
        return self._advance()

    def _skip_newlines(self) -> None:
        while self._accept(NEWLINE):
            pass

    def _end_of_statement(self) -> None:
        if self._peek().kind == EOF:
            return
        self._expect(NEWLINE)
        self._skip_newlines()

    # -- program units --------------------------------------------------------
    def parse_source(self) -> ast.SourceFile:
        self._skip_newlines()
        units: List[ast.Unit] = []
        loc = self._peek().loc
        while not self._check(EOF):
            units.append(self._parse_unit())
            self._skip_newlines()
        if not units:
            raise ParseError("empty source file", loc)
        return ast.SourceFile(units, loc)

    def _parse_unit(self) -> ast.Unit:
        tok = self._peek()
        if self._accept(KW, "program"):
            name = self._expect(IDENT).value
            params: List[str] = []
        elif self._accept(KW, "subroutine"):
            name = self._expect(IDENT).value
            params = []
            if self._accept(OP, "("):
                if not self._check(OP, ")"):
                    params.append(self._expect(IDENT).value)
                    while self._accept(OP, ","):
                        params.append(self._expect(IDENT).value)
                self._expect(OP, ")")
        else:
            raise ParseError("expected PROGRAM or SUBROUTINE", tok.loc)
        self._end_of_statement()

        decls: List[ast.Declaration] = []
        while self._check(KW) and self._peek().value in _DECL_KEYWORDS:
            decls.append(self._parse_declaration())
            self._end_of_statement()

        body = self._parse_stmt_list(stop=lambda: self._check(KW, "end"))
        self._expect(KW, "end")
        if self._peek().kind == NEWLINE:
            self._end_of_statement()
        return ast.Unit(tok.value, name, params, decls, body, tok.loc)

    # -- declarations -----------------------------------------------------------
    def _parse_declaration(self) -> ast.Declaration:
        tok = self._advance()
        kw = tok.value
        if kw in ("integer", "real"):
            entries = self._parse_arraydecl_list()
            return ast.Declaration("type", tok.loc, type_name=kw,
                                   entries=entries)
        if kw == "dimension":
            entries = self._parse_arraydecl_list()
            return ast.Declaration("dimension", tok.loc, entries=entries)
        if kw == "common":
            self._expect(OP, "/")
            cname = self._expect(IDENT).value
            self._expect(OP, "/")
            entries = self._parse_arraydecl_list()
            return ast.Declaration("common", tok.loc, common_name=cname,
                                   entries=entries)
        if kw == "parameter":
            self._expect(OP, "(")
            params: List[Tuple[str, ast.Expr]] = []
            while True:
                pname = self._expect(IDENT).value
                self._expect(OP, "=")
                params.append((pname, self._parse_expr()))
                if not self._accept(OP, ","):
                    break
            self._expect(OP, ")")
            return ast.Declaration("parameter", tok.loc, params=params)
        raise ParseError(f"unknown declaration {kw!r}", tok.loc)

    def _parse_arraydecl_list(self) -> List[ast.ArrayDecl]:
        entries = [self._parse_arraydecl()]
        while self._accept(OP, ","):
            entries.append(self._parse_arraydecl())
        return entries

    def _parse_arraydecl(self) -> ast.ArrayDecl:
        tok = self._expect(IDENT)
        dims: List[Tuple[Optional[ast.Expr], Optional[ast.Expr]]] = []
        if self._accept(OP, "("):
            while True:
                dims.append(self._parse_dim())
                if not self._accept(OP, ","):
                    break
            self._expect(OP, ")")
        return ast.ArrayDecl(tok.value, dims, tok.loc)

    def _parse_dim(self) -> Tuple[Optional[ast.Expr], Optional[ast.Expr]]:
        if self._accept(OP, "*"):
            return (None, None)
        first = self._parse_expr()
        if self._accept(OP, ":"):
            if self._check(OP, "*"):
                self._advance()
                return (first, None)
            return (first, self._parse_expr())
        return (None, first)   # declared 1:first

    # -- statements -----------------------------------------------------------
    def _parse_stmt_list(self, stop: Callable[[], bool],
                         shared_label: Optional[int] = None) -> List[ast.Stmt]:
        stmts: List[ast.Stmt] = []
        self._skip_newlines()
        while not stop() and not self._check(EOF):
            stmt = self._parse_statement()
            stmts.append(stmt)
            if shared_label is not None and (
                    stmt.label == shared_label
                    or self._just_closed_label == shared_label):
                break
            self._skip_newlines()
        self._skip_newlines()
        return stmts

    def _parse_statement(self) -> ast.Stmt:
        label: Optional[int] = None
        lab_tok = self._accept(LABEL)
        if lab_tok is not None:
            label = lab_tok.value
        self._just_closed_label = None
        stmt = self._parse_unlabeled_statement(label)
        stmt.label = label
        return stmt

    def _parse_unlabeled_statement(self, label: Optional[int]) -> ast.Stmt:
        tok = self._peek()
        if tok.kind == KW:
            kw = tok.value
            if kw == "do":
                return self._parse_do()
            if kw == "if":
                return self._parse_if()
            if kw == "call":
                return self._parse_call()
            if kw == "goto":
                self._advance()
                target = self._expect(INT).value
                self._end_of_statement()
                return ast.Goto(target, tok.loc)
            if kw == "continue":
                self._advance()
                self._end_of_statement()
                return ast.Continue(tok.loc)
            if kw == "return":
                self._advance()
                self._end_of_statement()
                return ast.Return(tok.loc)
            if kw == "stop":
                self._advance()
                self._end_of_statement()
                return ast.Stop(tok.loc)
            if kw == "exit":
                self._advance()
                self._end_of_statement()
                return ast.ExitStmt(tok.loc)
            if kw == "cycle":
                self._advance()
                self._end_of_statement()
                return ast.CycleStmt(tok.loc)
            if kw in ("print", "read"):
                return self._parse_io(kw)
            raise ParseError(f"unexpected keyword {kw!r}", tok.loc)
        if tok.kind == IDENT:
            return self._parse_assignment()
        raise ParseError(f"unexpected token {tok.value!r}", tok.loc)

    def _parse_simple_statement(self) -> ast.Stmt:
        """Statement allowed as the body of a one-line logical IF."""
        tok = self._peek()
        if tok.kind == KW:
            kw = tok.value
            if kw == "goto":
                self._advance()
                target = self._expect(INT).value
                self._end_of_statement()
                return ast.Goto(target, tok.loc)
            if kw == "call":
                return self._parse_call()
            if kw == "return":
                self._advance()
                self._end_of_statement()
                return ast.Return(tok.loc)
            if kw == "exit":
                self._advance()
                self._end_of_statement()
                return ast.ExitStmt(tok.loc)
            if kw == "cycle":
                self._advance()
                self._end_of_statement()
                return ast.CycleStmt(tok.loc)
            if kw in ("print", "read"):
                return self._parse_io(kw)
            raise ParseError(f"{kw!r} not allowed in logical IF", tok.loc)
        return self._parse_assignment()

    def _parse_do(self) -> ast.DoLoop:
        tok = self._expect(KW, "do")
        term_label: Optional[int] = None
        lt = self._accept(INT)
        if lt is not None:
            term_label = lt.value
        var = self._expect(IDENT).value
        self._expect(OP, "=")
        low = self._parse_expr()
        self._expect(OP, ",")
        high = self._parse_expr()
        step = None
        if self._accept(OP, ","):
            step = self._parse_expr()
        self._end_of_statement()

        if term_label is None:
            body = self._parse_stmt_list(
                stop=lambda: self._check(KW, "enddo"))
            self._expect(KW, "enddo")
            if self._peek().kind == NEWLINE:
                self._end_of_statement()
            return ast.DoLoop(var, low, high, step, body, None, tok.loc)

        # Label-terminated: consume statements until one carries term_label.
        body = self._parse_stmt_list(
            stop=lambda: False, shared_label=term_label)
        if body and body[-1].label == term_label:
            pass
        elif self._just_closed_label != term_label:
            raise ParseError(
                f"DO loop terminator label {term_label} not found", tok.loc)
        self._just_closed_label = term_label
        return ast.DoLoop(var, low, high, step, body, term_label, tok.loc)

    def _parse_if(self) -> ast.Stmt:
        tok = self._expect(KW, "if")
        self._expect(OP, "(")
        cond = self._parse_expr()
        self._expect(OP, ")")
        if self._accept(KW, "then"):
            self._end_of_statement()
            arms: List[Tuple[ast.Expr, List[ast.Stmt]]] = []
            body = self._parse_stmt_list(
                stop=lambda: self._check(KW, "elseif")
                or self._check(KW, "else") or self._check(KW, "endif"))
            arms.append((cond, body))
            else_body: Optional[List[ast.Stmt]] = None
            while self._accept(KW, "elseif"):
                self._expect(OP, "(")
                c2 = self._parse_expr()
                self._expect(OP, ")")
                self._expect(KW, "then")
                self._end_of_statement()
                b2 = self._parse_stmt_list(
                    stop=lambda: self._check(KW, "elseif")
                    or self._check(KW, "else") or self._check(KW, "endif"))
                arms.append((c2, b2))
            if self._accept(KW, "else"):
                self._end_of_statement()
                else_body = self._parse_stmt_list(
                    stop=lambda: self._check(KW, "endif"))
            self._expect(KW, "endif")
            if self._peek().kind == NEWLINE:
                self._end_of_statement()
            return ast.IfBlock(arms, else_body, tok.loc)
        # one-line logical IF
        inner = self._parse_simple_statement()
        return ast.LogicalIf(cond, inner, tok.loc)

    def _parse_call(self) -> ast.CallStmt:
        tok = self._expect(KW, "call")
        name = self._expect(IDENT).value
        args: List[ast.Expr] = []
        if self._accept(OP, "("):
            if not self._check(OP, ")"):
                args.append(self._parse_expr())
                while self._accept(OP, ","):
                    args.append(self._parse_expr())
            self._expect(OP, ")")
        self._end_of_statement()
        return ast.CallStmt(name, args, tok.loc)

    def _parse_io(self, kind: str) -> ast.IoStmt:
        tok = self._advance()
        self._expect(OP, "*")
        items: List[ast.Expr] = []
        while self._accept(OP, ","):
            items.append(self._parse_expr())
        self._end_of_statement()
        return ast.IoStmt(kind, items, tok.loc)

    def _parse_assignment(self) -> ast.Assign:
        target = self._parse_primary()
        if not isinstance(target, (ast.Name, ast.Apply)):
            raise ParseError("invalid assignment target", target.loc)
        self._expect(OP, "=")
        value = self._parse_expr()
        self._end_of_statement()
        return ast.Assign(target, value, target.loc)

    # -- expressions (precedence climbing) -------------------------------------
    def _parse_expr(self) -> ast.Expr:
        return self._parse_or()

    def _parse_or(self) -> ast.Expr:
        left = self._parse_and()
        while self._check(OP, "or"):
            tok = self._advance()
            left = ast.BinOp("or", left, self._parse_and(), tok.loc)
        return left

    def _parse_and(self) -> ast.Expr:
        left = self._parse_not()
        while self._check(OP, "and"):
            tok = self._advance()
            left = ast.BinOp("and", left, self._parse_not(), tok.loc)
        return left

    def _parse_not(self) -> ast.Expr:
        if self._check(OP, "not"):
            tok = self._advance()
            return ast.UnOp("not", self._parse_not(), tok.loc)
        return self._parse_comparison()

    def _parse_comparison(self) -> ast.Expr:
        left = self._parse_additive()
        if self._peek().kind == OP and self._peek().value in (
                "<", "<=", ">", ">=", "==", "/=", "!="):
            tok = self._advance()
            op = "/=" if tok.value == "!=" else tok.value
            right = self._parse_additive()
            return ast.BinOp(op, left, right, tok.loc)
        return left

    def _parse_additive(self) -> ast.Expr:
        left = self._parse_multiplicative()
        while self._peek().kind == OP and self._peek().value in ("+", "-"):
            tok = self._advance()
            left = ast.BinOp(tok.value, left,
                             self._parse_multiplicative(), tok.loc)
        return left

    def _parse_multiplicative(self) -> ast.Expr:
        left = self._parse_unary()
        while self._peek().kind == OP and self._peek().value in ("*", "/"):
            tok = self._advance()
            left = ast.BinOp(tok.value, left, self._parse_unary(), tok.loc)
        return left

    def _parse_unary(self) -> ast.Expr:
        if self._check(OP, "-"):
            tok = self._advance()
            return ast.UnOp("-", self._parse_unary(), tok.loc)
        if self._check(OP, "+"):
            self._advance()
            return self._parse_unary()
        return self._parse_power()

    def _parse_power(self) -> ast.Expr:
        base = self._parse_primary()
        if self._check(OP, "**"):
            tok = self._advance()
            # right associative; exponent may carry unary minus
            exponent = self._parse_unary()
            return ast.BinOp("**", base, exponent, tok.loc)
        return base

    def _parse_primary(self) -> ast.Expr:
        tok = self._peek()
        if tok.kind == INT or tok.kind == FLOAT:
            self._advance()
            return ast.NumLit(tok.value, tok.loc)
        if tok.kind == STRING:
            self._advance()
            return ast.StrLit(tok.value, tok.loc)
        if tok.kind == KW and tok.value in ("true", "false"):
            self._advance()
            return ast.BoolLit(tok.value == "true", tok.loc)
        if tok.kind == IDENT:
            self._advance()
            if self._check(OP, "("):
                self._advance()
                args: List[ast.Expr] = []
                if not self._check(OP, ")"):
                    args.append(self._parse_expr())
                    while self._accept(OP, ","):
                        args.append(self._parse_expr())
                self._expect(OP, ")")
                return ast.Apply(tok.value, args, tok.loc)
            return ast.Name(tok.value, tok.loc)
        if tok.kind == OP and tok.value == "(":
            self._advance()
            inner = self._parse_expr()
            self._expect(OP, ")")
            return inner
        raise ParseError(f"unexpected token {tok.value!r} in expression",
                         tok.loc)


def parse_source(text: str, unit: str = "<input>") -> ast.SourceFile:
    """Parse mini-Fortran source text into an AST."""
    from ..obs import get_tracer
    with get_tracer().span("parse", unit=unit) as sp:
        tokens = tokenize(text, unit)
        tree = Parser(tokens).parse_source()
        sp.tag(tokens=len(tokens), units=len(tree.units))
        return tree
