"""Diagnostics for the mini-Fortran front end."""

from __future__ import annotations


class SourceLocation:
    """A (line, column) position inside a named source unit."""

    __slots__ = ("line", "column", "unit")

    def __init__(self, line: int, column: int = 0, unit: str = "<input>"):
        self.line = line
        self.column = column
        self.unit = unit

    def __repr__(self) -> str:
        return f"{self.unit}:{self.line}:{self.column}"


class FrontEndError(Exception):
    """Base class for lexer/parser/builder diagnostics."""

    def __init__(self, message: str, location: SourceLocation | None = None):
        self.location = location
        where = f"{location}: " if location else ""
        super().__init__(f"{where}{message}")


class LexError(FrontEndError):
    pass


class ParseError(FrontEndError):
    pass


class BuildError(FrontEndError):
    """Raised while lowering the AST to IR (symbol resolution, GOTO
    structuring, shape checking)."""
    pass
