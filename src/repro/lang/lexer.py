"""Tokenizer for the mini-Fortran language.

The workload corpus is written in a Fortran-77-flavoured language: labeled
``DO`` loops terminated by ``CONTINUE``, ``COMMON`` blocks, logical ``IF``
and block ``IF/THEN/ELSE``, dotted relational operators (``.LT.`` etc.), and
``CALL`` statements.  The lexer is line oriented: Fortran statements end at
end of line, and a leading integer on a line is a statement *label*.

Comments: a line whose first non-blank character is ``C``/``c``/``*`` in
column 1, or anything after ``!``.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from .errors import LexError, SourceLocation

# Token kinds
KW = "KW"            # keyword
IDENT = "IDENT"
INT = "INT"
FLOAT = "FLOAT"
STRING = "STRING"
OP = "OP"            # operator / punctuation
LABEL = "LABEL"      # statement label (leading integer)
NEWLINE = "NEWLINE"
EOF = "EOF"

KEYWORDS = {
    "program", "subroutine", "function", "end", "enddo", "endif",
    "do", "if", "then", "else", "elseif", "continue", "call", "return",
    "goto", "common", "dimension", "integer", "real", "parameter",
    "print", "read", "exit", "cycle", "data", "stop",
}

# Multi-character operators, longest first.
_OPERATORS = [
    "**", "<=", ">=", "==", "/=", "!=", "(", ")", ",", "+", "-", "*", "/",
    "<", ">", "=", ":",
]

_DOTTED = {
    ".lt.": "<", ".le.": "<=", ".gt.": ">", ".ge.": ">=",
    ".eq.": "==", ".ne.": "/=", ".and.": ".and.", ".or.": ".or.",
    ".not.": ".not.", ".true.": ".true.", ".false.": ".false.",
}


class Token:
    __slots__ = ("kind", "value", "loc")

    def __init__(self, kind: str, value, loc: SourceLocation):
        self.kind = kind
        self.value = value
        self.loc = loc

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.value!r})"


def tokenize(source: str, unit: str = "<input>") -> List[Token]:
    """Tokenize a whole source file into a flat token list."""
    tokens: List[Token] = []
    for lineno, raw in enumerate(source.splitlines(), start=1):
        line = raw.rstrip()
        if not line.strip():
            continue
        # Classic column-1 comment: marker in column 1 followed by a blank
        # (or nothing).  "CALL foo" is not a comment; "C some text" is.
        if raw[:1] in ("C", "c", "*") and (len(line) == 1
                                           or line[1] in (" ", "\t")):
            continue
        bang = _find_comment(line)
        if bang is not None:
            line = line[:bang].rstrip()
            if not line.strip():
                continue
        tokens.extend(_tokenize_line(line, lineno, unit))
        tokens.append(Token(NEWLINE, "\n", SourceLocation(lineno, len(line), unit)))
    tokens.append(Token(EOF, None, SourceLocation(len(source.splitlines()) + 1, 0, unit)))
    return tokens


def _find_comment(line: str) -> Optional[int]:
    in_string = False
    for i, ch in enumerate(line):
        if ch == "'":
            in_string = not in_string
        elif ch == "!" and not in_string:
            return i
    return None


def _tokenize_line(line: str, lineno: int, unit: str) -> Iterator[Token]:
    out: List[Token] = []
    i = 0
    n = len(line)

    # Leading label: an integer before the first keyword/identifier.
    j = 0
    while j < n and line[j] in " \t":
        j += 1
    k = j
    while k < n and line[k].isdigit():
        k += 1
    if k > j and k < n and line[k] in " \t":
        out.append(Token(LABEL, int(line[j:k]), SourceLocation(lineno, j, unit)))
        i = k

    while i < n:
        ch = line[i]
        loc = SourceLocation(lineno, i, unit)
        if ch in " \t":
            i += 1
            continue
        if ch == "'":
            end = line.find("'", i + 1)
            if end < 0:
                raise LexError("unterminated string literal", loc)
            out.append(Token(STRING, line[i + 1:end], loc))
            i = end + 1
            continue
        if ch == ".":
            matched = False
            low = line[i:i + 7].lower()
            for dotted, norm in _DOTTED.items():
                if low.startswith(dotted):
                    if norm in (".true.", ".false."):
                        out.append(Token(KW, norm.strip("."), loc))
                    elif norm in (".and.", ".or.", ".not."):
                        out.append(Token(OP, norm.strip("."), loc))
                    else:
                        out.append(Token(OP, norm, loc))
                    i += len(dotted)
                    matched = True
                    break
            if matched:
                continue
            # fall through: may be a real literal like .5
        if ch.isdigit() or (ch == "." and i + 1 < n and line[i + 1].isdigit()):
            tok, i = _lex_number(line, i, loc)
            out.append(tok)
            continue
        if ch.isalpha() or ch == "_":
            k = i
            while k < n and (line[k].isalnum() or line[k] == "_"):
                k += 1
            word = line[i:k].lower()
            # normalize split keywords: "go to", "end do", "end if", "else if"
            if word == "go" and line[k:].lstrip().lower().startswith("to"):
                rest = line[k:].lstrip()
                consumed = len(line[k:]) - len(rest) + 2
                out.append(Token(KW, "goto", loc))
                i = k + consumed
                continue
            if word == "end":
                rest = line[k:].lstrip().lower()
                if rest.startswith("do"):
                    out.append(Token(KW, "enddo", loc))
                    i = k + (len(line[k:]) - len(line[k:].lstrip())) + 2
                    continue
                if rest.startswith("if"):
                    out.append(Token(KW, "endif", loc))
                    i = k + (len(line[k:]) - len(line[k:].lstrip())) + 2
                    continue
            if word == "else":
                rest = line[k:].lstrip().lower()
                if rest.startswith("if"):
                    out.append(Token(KW, "elseif", loc))
                    i = k + (len(line[k:]) - len(line[k:].lstrip())) + 2
                    continue
            if word in KEYWORDS:
                out.append(Token(KW, word, loc))
            else:
                out.append(Token(IDENT, word, loc))
            i = k
            continue
        matched = False
        for op in _OPERATORS:
            if line.startswith(op, i):
                out.append(Token(OP, op, loc))
                i += len(op)
                matched = True
                break
        if matched:
            continue
        if ch == "/":
            out.append(Token(OP, "/", loc))
            i += 1
            continue
        raise LexError(f"unexpected character {ch!r}", loc)
    return out


def _lex_number(line: str, i: int, loc: SourceLocation):
    n = len(line)
    k = i
    while k < n and line[k].isdigit():
        k += 1
    is_float = False
    if k < n and line[k] == ".":
        # Don't swallow dotted operators like 1.LT.x
        rest = line[k:k + 7].lower()
        if not any(rest.startswith(d) for d in _DOTTED):
            is_float = True
            k += 1
            while k < n and line[k].isdigit():
                k += 1
    if k < n and line[k] in "eEdD":
        m = k + 1
        if m < n and line[m] in "+-":
            m += 1
        if m < n and line[m].isdigit():
            is_float = True
            k = m
            while k < n and line[k].isdigit():
                k += 1
    text = line[i:k].lower().replace("d", "e")
    if is_float:
        return Token(FLOAT, float(text), loc), k
    return Token(INT, int(text), loc), k
