"""repro — reproduction of *SUIF Explorer: An Interactive and
Interprocedural Parallelizer* (PPoPP 1999).

Public API tour
---------------

* :func:`repro.ir.build_program` — parse a mini-Fortran program,
* :class:`repro.parallelize.Parallelizer` — the automatic interprocedural
  parallelizer (dependence + privatization + reduction + liveness),
* :class:`repro.explorer.ExplorerSession` — the interactive Explorer:
  profiling, dynamic dependences, Guru loop ranking, assertions,
* :mod:`repro.slicing` — demand-driven context-sensitive program slicing,
* :mod:`repro.runtime` — sequential interpreter and the simulated
  multiprocessor used for all speedup measurements,
* :mod:`repro.workloads` — the benchmark corpus (mdg, hydro, arc3d, flo88,
  wave5, hydro2d, bdna, SPEC/NAS/Perfect kernels).
"""

__version__ = "1.0.0"

from .ir import build_program

__all__ = ["build_program", "__version__"]
