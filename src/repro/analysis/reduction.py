"""Statement-level reduction recognition (paper section 6.2.2.1).

"The computation is a commutative update to a single memory location A of
the form A = A op ..., where op is one of the commutative operations
recognized by the compiler.  Currently, the set of such operations includes
+, *, MIN, and MAX.  The MIN (and, similarly, MAX) reductions of the form
'if (a(i) < tmin) tmin = a(i)' are also supported."

Recognition here is purely local; whether the update actually *is* a
reduction over a loop is decided region-wide by the data-flow framework
(the region must not overlap any non-commutative access — see
``VarSummary.validated``).  Because region conflicts are handled there,
sparse updates through index arrays (``HISTOGRAM(A(I)) = HISTOGRAM(A(I))+1``)
are recognized even though their location is statically unknown.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..ir.expressions import (ArrayRef, BinaryOp, Const, Expression,
                              Intrinsic, UnaryOp, VarRef)
from ..ir.statements import AssignStmt, Block, IfStmt, Statement


class ReductionUpdate:
    """One recognized commutative update."""

    __slots__ = ("op", "target", "other_reads", "stmt")

    def __init__(self, op: str, target, other_reads: List[Expression],
                 stmt: Statement):
        self.op = op                    # "+", "*", "min", "max"
        self.target = target            # VarRef or ArrayRef being updated
        self.other_reads = other_reads  # rhs expressions besides the target
        self.stmt = stmt

    def __repr__(self):
        return f"ReductionUpdate({self.op}, {self.target!r})"


def exprs_equal(a: Expression, b: Expression) -> bool:
    """Structural equality of IR expressions (symbols by identity)."""
    if type(a) is not type(b):
        return False
    if isinstance(a, Const):
        return a.value == b.value
    if isinstance(a, VarRef):
        return a.symbol is b.symbol
    if isinstance(a, ArrayRef):
        return (a.symbol is b.symbol and len(a.indices) == len(b.indices)
                and all(exprs_equal(x, y)
                        for x, y in zip(a.indices, b.indices)))
    if isinstance(a, BinaryOp):
        return (a.op == b.op and exprs_equal(a.left, b.left)
                and exprs_equal(a.right, b.right))
    if isinstance(a, UnaryOp):
        return a.op == b.op and exprs_equal(a.operand, b.operand)
    if isinstance(a, Intrinsic):
        return (a.name == b.name and len(a.args) == len(b.args)
                and all(exprs_equal(x, y) for x, y in zip(a.args, b.args)))
    return False


def _additive_terms(expr: Expression, sign: int = 1
                    ) -> List[Tuple[int, Expression]]:
    """Flatten a +/- tree into signed terms."""
    if isinstance(expr, BinaryOp) and expr.op == "+":
        return _additive_terms(expr.left, sign) + \
            _additive_terms(expr.right, sign)
    if isinstance(expr, BinaryOp) and expr.op == "-":
        return _additive_terms(expr.left, sign) + \
            _additive_terms(expr.right, -sign)
    if isinstance(expr, UnaryOp) and expr.op == "-":
        return _additive_terms(expr.operand, -sign)
    return [(sign, expr)]


def _multiplicative_factors(expr: Expression) -> List[Expression]:
    if isinstance(expr, BinaryOp) and expr.op == "*":
        return _multiplicative_factors(expr.left) + \
            _multiplicative_factors(expr.right)
    return [expr]


def _target_mentions(expr: Expression, target) -> bool:
    """Does ``expr`` reference the target's symbol at all?"""
    sym = target.symbol
    return any(s is sym for s in expr.referenced_symbols())


def classify_assignment(stmt: AssignStmt) -> Optional[ReductionUpdate]:
    """Recognize ``t = t + e``, ``t = t * e``, ``t = MIN(t, e)`` etc."""
    target = stmt.target
    value = stmt.value

    # MIN/MAX intrinsic form.
    if isinstance(value, Intrinsic) and value.name in ("min", "max") \
            and len(value.args) == 2:
        for a, b in ((value.args[0], value.args[1]),
                     (value.args[1], value.args[0])):
            if exprs_equal(a, target) and not _target_mentions(b, target):
                return ReductionUpdate(value.name, target, [b], stmt)
        return None

    # Sum form: exactly one +target term among the additive terms, and no
    # other term may mention the target's symbol (a read of the same array
    # elsewhere in the rhs would make the update non-commutative with
    # itself; region-level validation could not see the ordering).
    terms = _additive_terms(value)
    if len(terms) >= 2:
        matches = [k for k, (sgn, t) in enumerate(terms)
                   if sgn == 1 and exprs_equal(t, target)]
        if len(matches) == 1:
            rest = [t for k, (sgn, t) in enumerate(terms)
                    if k != matches[0]]
            if not any(_target_mentions(t, target) for t in rest):
                return ReductionUpdate("+", target, rest, stmt)

    # Product form.
    if isinstance(value, BinaryOp) and value.op == "*":
        factors = _multiplicative_factors(value)
        matches = [k for k, f in enumerate(factors)
                   if exprs_equal(f, target)]
        if len(matches) == 1:
            rest = [f for k, f in enumerate(factors) if k != matches[0]]
            if not any(_target_mentions(f, target) for f in rest):
                return ReductionUpdate("*", target, rest, stmt)
    return None


def classify_if_minmax(stmt: IfStmt) -> Optional[ReductionUpdate]:
    """Recognize ``IF (e .LT. t) t = e`` (min) / ``IF (e .GT. t) t = e``."""
    if len(stmt.arms) != 1 or stmt.else_block is not None:
        return None
    cond, body = stmt.arms[0]
    if len(body.statements) != 1:
        return None
    inner = body.statements[0]
    if not isinstance(inner, AssignStmt):
        return None
    target = inner.target
    value = inner.value
    if not isinstance(cond, BinaryOp) or cond.op not in ("<", "<=", ">",
                                                         ">="):
        return None
    if _target_mentions(value, target):
        return None
    # Normalize to: value OP target
    left, right, op = cond.left, cond.right, cond.op
    if exprs_equal(right, target) and exprs_equal(left, value):
        pass
    elif exprs_equal(left, target) and exprs_equal(right, value):
        op = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}[op]
    else:
        return None
    red = "min" if op in ("<", "<=") else "max"
    return ReductionUpdate(red, target, [value], stmt)


def scan_block_reductions(block: Block) -> List[ReductionUpdate]:
    """All syntactic commutative updates in a statement tree (used by the
    static-measurement benches, Fig 6-2)."""
    out: List[ReductionUpdate] = []
    for stmt in block.walk():
        if isinstance(stmt, AssignStmt):
            got = classify_assignment(stmt)
            if got is not None:
                out.append(got)
        elif isinstance(stmt, IfStmt):
            got = classify_if_minmax(stmt)
            if got is not None:
                out.append(got)
    return out
