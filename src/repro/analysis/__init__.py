"""Static program analyses: symbolic, array data-flow, dependence,
liveness (ch. 5), reduction recognition (ch. 6), scalar liveness, alias."""

from .access import LocKey, location_key
from .alias import Steensgaard, fortran_alias_pairs
from .scalar_liveness import ScalarLiveness
from .dependence import (anti_dependence, flow_into_exposed,
                         loop_carried_conflict, reduction_conflicts_plain)
from .liveness import (FLOW_INSENSITIVE, FULL, ONE_BIT, ArrayLiveness,
                       LivenessResult, dead_fraction_per_program)
from .reduction import (ReductionUpdate, classify_assignment,
                        classify_if_minmax, scan_block_reductions)
from .region_analysis import ArrayDataFlow
from .summaries import (AccessSummary, VarSummary, close_summary, join,
                        seq_compose, transfer)
from .symbolic import ProcSymbolic, SymbolicAnalysis

__all__ = [
    "LocKey", "location_key",
    "Steensgaard", "fortran_alias_pairs", "ScalarLiveness",
    "anti_dependence", "flow_into_exposed", "loop_carried_conflict",
    "reduction_conflicts_plain",
    "FLOW_INSENSITIVE", "FULL", "ONE_BIT", "ArrayLiveness", "LivenessResult",
    "dead_fraction_per_program",
    "ReductionUpdate", "classify_assignment", "classify_if_minmax",
    "scan_block_reductions",
    "ArrayDataFlow",
    "AccessSummary", "VarSummary", "close_summary", "join", "seq_compose",
    "transfer",
    "ProcSymbolic", "SymbolicAnalysis",
]
