"""The ⟨R, E, W, M⟩ array data-flow summaries (paper section 5.2.1).

"One array summary consists of a four-tuple <R, E, W, M>, where R is all of
the array sections that may have been read, E is all of the upwards-exposed
read array sections, W is all of the may-write array sections, and M is all
of the must-write array sections."

We additionally carry the reduction regions of chapter 6 in the same
object: a map from commutative operator (``+ * min max``) to the section
updated by that operator.  "The resulting system of inequalities will only
be marked as a reduction if both reduction types are identical"
(section 6.2.2.3) — a region touched by two different operators, or by a
reduction *and* an ordinary access, is demoted back into the plain
read/write sets.

Convention difference from the paper: our ``W`` includes all writes (must
and may), with ``M ⊆ W``; the paper keeps them disjoint.  The transfer and
meet operators below are the paper's, rewritten for that convention.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Set, Tuple

from ..poly import Constraint, LinExpr, Section, System

REDUCTION_OPS = ("+", "*", "min", "max")


class VarSummary:
    """Access summary for one abstract location."""

    __slots__ = ("read", "exposed", "may_write", "must_write", "reductions",
                 "names")

    def __init__(self,
                 read: Optional[Section] = None,
                 exposed: Optional[Section] = None,
                 may_write: Optional[Section] = None,
                 must_write: Optional[Section] = None,
                 reductions: Optional[Dict[str, Section]] = None,
                 names: Optional[Set[str]] = None):
        self.read = read or Section.empty()
        self.exposed = exposed or Section.empty()
        self.may_write = may_write or Section.empty()
        self.must_write = must_write or Section.empty()
        self.reductions = reductions or {}
        self.names = names or set()

    # -- constructors --------------------------------------------------------
    @staticmethod
    def for_read(section: Section, name: str = "") -> "VarSummary":
        return VarSummary(read=section, exposed=section,
                          names={name} if name else set())

    @staticmethod
    def for_write(section: Section, name: str = "",
                  must: bool = True) -> "VarSummary":
        return VarSummary(may_write=section,
                          must_write=section if must else Section.empty(),
                          names={name} if name else set())

    @staticmethod
    def for_reduction(op: str, section: Section, name: str = ""
                      ) -> "VarSummary":
        return VarSummary(reductions={op: section},
                          names={name} if name else set())

    # -- queries -----------------------------------------------------------
    def is_empty(self) -> bool:
        return (self.read.is_empty() and self.may_write.is_empty()
                and all(s.is_empty() for s in self.reductions.values()))

    def writes_anything(self) -> bool:
        return not self.may_write.is_empty() or any(
            not s.is_empty() for s in self.reductions.values())

    def all_accessed(self) -> Section:
        acc = self.read.union(self.may_write)
        for s in self.reductions.values():
            acc = acc.union(s)
        return acc

    def reduction_region(self) -> Section:
        acc = Section.empty()
        for s in self.reductions.values():
            acc = acc.union(s)
        return acc

    def copy(self) -> "VarSummary":
        return VarSummary(self.read, self.exposed, self.may_write,
                          self.must_write, dict(self.reductions),
                          set(self.names))

    # -- validation -----------------------------------------------------------
    def validated(self) -> "VarSummary":
        """Demote reduction regions that conflict with ordinary accesses or
        with a different reduction operator (section 6.2.2.4)."""
        if not self.reductions:
            return self
        plain = self.read.union(self.may_write)
        bad_ops: Set[str] = set()
        ops = list(self.reductions)
        for i, op in enumerate(ops):
            sec = self.reductions[op]
            if sec.intersects(plain):
                bad_ops.add(op)
            for other in ops[i + 1:]:
                if sec.intersects(self.reductions[other]):
                    bad_ops.add(op)
                    bad_ops.add(other)
        if not bad_ops:
            return self
        out = self.copy()
        for op in bad_ops:
            sec = out.reductions.pop(op)
            # A commutative update both reads (exposed: the old value flows
            # in) and writes its location.
            out.read = out.read.union(sec)
            out.exposed = out.exposed.union(sec)
            out.may_write = out.may_write.union(sec)
        return out

    def __repr__(self):
        return (f"VarSummary(R={self.read!r}, E={self.exposed!r}, "
                f"W={self.may_write!r}, M={self.must_write!r}, "
                f"red={self.reductions!r})")


def transfer(first: VarSummary, then: VarSummary) -> VarSummary:
    """Sequential composition: ``first`` executes, then ``then``.

    The paper's T (section 5.2.2.1), adapted to M ⊆ W:
    R = R1 ∪ R2, E = E1 ∪ (E2 − M1), W = W1 ∪ W2, M = M1 ∪ M2.
    Reduction regions union per operator, then validate.
    """
    reds: Dict[str, Section] = {}
    for op in set(first.reductions) | set(then.reductions):
        a = first.reductions.get(op, Section.empty())
        b = then.reductions.get(op, Section.empty())
        reds[op] = a.union(b)
    out = VarSummary(
        read=first.read.union(then.read),
        exposed=first.exposed.union(then.exposed.subtract(first.must_write)),
        may_write=first.may_write.union(then.may_write),
        must_write=first.must_write.union(then.must_write),
        reductions=reds,
        names=first.names | then.names)
    return out.validated()


def meet(a: VarSummary, b: VarSummary) -> VarSummary:
    """Control-flow join (either path may run):
    R/E/W union, M intersect, reductions union + validate."""
    reds: Dict[str, Section] = {}
    for op in set(a.reductions) | set(b.reductions):
        reds[op] = a.reductions.get(op, Section.empty()).union(
            b.reductions.get(op, Section.empty()))
    out = VarSummary(
        read=a.read.union(b.read),
        exposed=a.exposed.union(b.exposed),
        may_write=a.may_write.union(b.may_write),
        must_write=a.must_write.intersect(b.must_write),
        reductions=reds,
        names=a.names | b.names)
    return out.validated()


def close_over_loop(summary: VarSummary, index_name: str,
                    low: Optional[LinExpr], high: Optional[LinExpr],
                    step: Optional[int]) -> VarSummary:
    """The closure operator: project the loop index out of every section
    after adding the loop-bound constraints (section 5.2.2.1).

    Must-writes survive projection because the bound constraints stay in
    the polyhedron: for parameter values where the loop runs zero times the
    instantiated section is empty.  Non-unit steps drop must-writes (the
    projection would claim elements of skipped iterations).
    """
    def close(section: Section, keep: bool = True) -> Section:
        if not keep:
            return Section.empty()
        constrained = section
        cons: List[Constraint] = []
        v = LinExpr.var(index_name)
        if step is None or step > 0:
            if low is not None:
                cons.append(Constraint.ge(v, low))
            if high is not None:
                cons.append(Constraint.le(v, high))
        else:
            if low is not None:
                cons.append(Constraint.le(v, low))
            if high is not None:
                cons.append(Constraint.ge(v, high))
        if cons:
            constrained = constrained.constrain(*cons)
        return constrained.project_away([index_name])

    must_ok = step in (1, -1) and low is not None and high is not None
    reds = {op: close(sec) for op, sec in summary.reductions.items()}
    return VarSummary(
        read=close(summary.read),
        exposed=close(summary.exposed),
        may_write=close(summary.may_write),
        must_write=close(summary.must_write, keep=must_ok),
        reductions=reds,
        names=set(summary.names)).validated()


class AccessSummary:
    """Map of abstract location → :class:`VarSummary` for a code region."""

    __slots__ = ("vars",)

    def __init__(self, vars_: Optional[Dict[Tuple, VarSummary]] = None):
        self.vars: Dict[Tuple, VarSummary] = vars_ or {}

    @staticmethod
    def empty() -> "AccessSummary":
        return AccessSummary()

    def get(self, key: Tuple) -> VarSummary:
        return self.vars.get(key, VarSummary())

    def add(self, key: Tuple, summary: VarSummary) -> None:
        existing = self.vars.get(key)
        if existing is None:
            self.vars[key] = summary
        else:
            self.vars[key] = transfer(existing, summary)

    def copy(self) -> "AccessSummary":
        return AccessSummary({k: v.copy() for k, v in self.vars.items()})

    def keys(self):
        return self.vars.keys()

    def items(self):
        return self.vars.items()

    def __contains__(self, key):
        return key in self.vars

    def __repr__(self):
        return f"AccessSummary({self.vars!r})"


def seq_compose(first: AccessSummary, then: AccessSummary) -> AccessSummary:
    out: Dict[Tuple, VarSummary] = {}
    for key in set(first.vars) | set(then.vars):
        out[key] = transfer(first.get(key), then.get(key))
    return AccessSummary(out)


def join(a: AccessSummary, b: AccessSummary) -> AccessSummary:
    out: Dict[Tuple, VarSummary] = {}
    for key in set(a.vars) | set(b.vars):
        out[key] = meet(a.get(key), b.get(key))
    return AccessSummary(out)


def close_summary(summary: AccessSummary, index_name: str,
                  low: Optional[LinExpr], high: Optional[LinExpr],
                  step: Optional[int]) -> AccessSummary:
    return AccessSummary({
        key: close_over_loop(vs, index_name, low, high, step)
        for key, vs in summary.vars.items()})
